"""Utility-module tests."""

from __future__ import annotations

import pytest

from repro.util import argsort_by, require, require_positive, stable_unique


class TestOrdering:
    def test_argsort_by(self):
        items = ["bb", "a", "ccc"]
        assert argsort_by(items, len) == [1, 0, 2]

    def test_argsort_stable(self):
        items = [("a", 1), ("b", 1), ("c", 0)]
        assert argsort_by(items, lambda t: t[1]) == [2, 0, 1]

    def test_argsort_empty(self):
        assert argsort_by([], lambda x: x) == []

    def test_stable_unique(self):
        assert stable_unique([3, 1, 3, 2, 1]) == [3, 1, 2]

    def test_stable_unique_empty(self):
        assert stable_unique([]) == []


class TestValidation:
    def test_require_passes(self):
        require(True, "never")

    def test_require_raises(self):
        with pytest.raises(ValueError, match="boom"):
            require(False, "boom")

    def test_require_positive(self):
        require_positive(1, "x")
        with pytest.raises(ValueError, match="x must be positive"):
            require_positive(0, "x")
        with pytest.raises(ValueError):
            require_positive(-1.5, "y")
