"""The telemetry CLI surface: ``batch run --telemetry-dir`` and the
``obs report|export-prom|bench-diff`` toolchain, through ``main(argv)``.

Exercises the ISSUE acceptance flow: drain a queue with telemetry on,
then aggregate the directory and round-trip the Prometheus export.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.flow.xmlio import save_design
from repro.obs import load_telemetry, parse_prometheus


@pytest.fixture
def design_file(tmp_path, tiny_design):
    path = tmp_path / "design.xml"
    save_design(tiny_design, path)
    return str(path)


@pytest.fixture
def telemetry_dir(tmp_path, design_file, capsys):
    """A telemetry directory produced by a real 2-worker batch run."""
    queue = str(tmp_path / "queue")
    tele = str(tmp_path / "tele")
    main(["batch", "submit", "--queue", queue, design_file,
          "--device", "LX30"])
    rc = main(["batch", "run", "--queue", queue, "--workers", "2",
               "--telemetry-dir", tele])
    assert rc == 0
    capsys.readouterr()
    return tele


class TestBatchRunTelemetryFlag:
    def test_run_writes_durable_records(self, telemetry_dir):
        records = load_telemetry(telemetry_dir)
        kinds = {r["kind"] for r in records}
        assert kinds >= {"event", "job", "run"}
        (job,) = [r for r in records if r["kind"] == "job"]
        assert job["status"] == "done" and job["key"]

    def test_run_reports_record_count(self, tmp_path, design_file, capsys):
        queue = str(tmp_path / "q2")
        tele = str(tmp_path / "t2")
        main(["batch", "submit", "--queue", queue, design_file,
              "--device", "LX30"])
        rc = main(["batch", "run", "--queue", queue,
                   "--telemetry-dir", tele])
        assert rc == 0
        assert "telemetry:" in capsys.readouterr().err


class TestObsReport:
    def test_report_prints_percentiles_and_rates(self, telemetry_dir, capsys):
        rc = main(["obs", "report", telemetry_dir])
        assert rc == 0
        out = capsys.readouterr().out
        assert "p50" in out and "p90" in out and "p99" in out
        assert "cache hit rate" in out
        assert "timeouts: 0" in out and "retries: 0" in out
        assert "merge.search_s" in out  # per-stage breakdown

    def test_report_json_flag(self, telemetry_dir, capsys):
        rc = main(["obs", "report", telemetry_dir, "--json"])
        assert rc == 0
        out = capsys.readouterr().out
        doc = json.loads(out[out.index("{"):])
        assert doc["jobs_done"] == 1

    def test_report_missing_directory_errors(self, tmp_path, capsys):
        rc = main(["obs", "report", str(tmp_path / "absent")])
        assert rc == 1
        assert "error" in capsys.readouterr().err

    def test_report_empty_directory_degrades_gracefully(
        self, tmp_path, capsys
    ):
        # A sink directory that exists but was never written to is a
        # normal state (sink opened, run died early): exit 0 with
        # explicit no-data lines, not a SinkError.
        empty = tmp_path / "empty"
        empty.mkdir()
        rc = main(["obs", "report", str(empty)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "runs: no data" in out
        assert "jobs: no data" in out
        assert "--telemetry-dir" in out

    def test_report_empty_directory_json_flag(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        rc = main(["obs", "report", str(empty), "--json"])
        assert rc == 0
        out = capsys.readouterr().out
        doc = json.loads(out[out.index("{"):])
        assert doc["jobs_total"] == 0 and doc["runs"] == 0


class TestObsExportProm:
    def test_export_parses_as_valid_exposition(self, telemetry_dir, capsys):
        rc = main(["obs", "export-prom", telemetry_dir])
        assert rc == 0
        text = capsys.readouterr().out
        families = parse_prometheus(text)
        assert "repro_report_jobs_done_total" in families
        assert any(f.type == "histogram" for f in families.values())

    def test_export_to_file(self, telemetry_dir, tmp_path, capsys):
        out_file = tmp_path / "repro.prom"
        rc = main(["obs", "export-prom", telemetry_dir,
                   "--out", str(out_file)])
        assert rc == 0
        parse_prometheus(out_file.read_text(encoding="utf-8"))

    def test_export_missing_directory_errors(self, tmp_path, capsys):
        rc = main(["obs", "export-prom", str(tmp_path / "absent")])
        assert rc == 1
        assert "error" in capsys.readouterr().err


class TestObsBenchDiff:
    def _write(self, path, **timings):
        path.write_text(json.dumps({
            "suite": "s",
            "benchmarks": [
                {"name": n, "mean": m} for n, m in timings.items()
            ],
        }))
        return str(path)

    def test_clean_diff_exits_zero(self, tmp_path, capsys):
        old = self._write(tmp_path / "old.json", a=1.0)
        new = self._write(tmp_path / "new.json", a=1.1)
        rc = main(["obs", "bench-diff", old, new])
        assert rc == 0
        assert "0 regression(s)" in capsys.readouterr().out

    def test_regression_exits_three(self, tmp_path, capsys):
        old = self._write(tmp_path / "old.json", a=1.0)
        new = self._write(tmp_path / "new.json", a=2.0)
        rc = main(["obs", "bench-diff", old, new])
        assert rc == 3
        assert "REGRESSION" in capsys.readouterr().out

    def test_threshold_flag_widens_tolerance(self, tmp_path, capsys):
        old = self._write(tmp_path / "old.json", a=1.0)
        new = self._write(tmp_path / "new.json", a=2.0)
        rc = main(["obs", "bench-diff", old, new, "--threshold", "1.5"])
        assert rc == 0

    def test_unreadable_bench_errors(self, tmp_path, capsys):
        old = self._write(tmp_path / "old.json", a=1.0)
        rc = main(["obs", "bench-diff", old, str(tmp_path / "absent.json")])
        assert rc == 1
        assert "error" in capsys.readouterr().err


class TestObsReportNewSurface:
    def test_json_output_is_pure_json(self, telemetry_dir, capsys):
        # The --json document is machine-readable as-is: no banner, no
        # trailing prose -- `repro obs report D --json | jq .` works.
        rc = main(["obs", "report", telemetry_dir, "--json"])
        assert rc == 0
        out = capsys.readouterr().out
        doc = json.loads(out)
        assert doc["jobs_done"] == 1
        assert doc["sink"]["segments"] >= 1
        assert doc["events_dropped"] == 0
        assert doc["failure_rate"] == 0.0 and doc["timeout_rate"] == 0.0
        assert isinstance(doc["workers"], list)

    def test_rendered_report_mentions_sink_and_drops(
        self, telemetry_dir, capsys
    ):
        rc = main(["obs", "report", telemetry_dir])
        assert rc == 0
        out = capsys.readouterr().out
        assert "sink:" in out and "segment(s)" in out
        assert "events dropped: 0" in out
        assert "worker resources (per pid):" in out


class TestObsTail:
    def test_tail_drains_all_records(self, telemetry_dir, capsys):
        rc = main(["obs", "tail", telemetry_dir])
        assert rc == 0
        lines = capsys.readouterr().out.strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert records == load_telemetry(telemetry_dir)

    def test_tail_output_is_byte_identical_to_segments(
        self, telemetry_dir, capsys
    ):
        from pathlib import Path

        rc = main(["obs", "tail", telemetry_dir])
        assert rc == 0
        out = capsys.readouterr().out
        disk = "".join(
            p.read_text(encoding="utf-8")
            for p in sorted(Path(telemetry_dir).glob("telemetry-*.jsonl"))
        )
        assert out == disk

    def test_kind_filter(self, telemetry_dir, capsys):
        rc = main(["obs", "tail", telemetry_dir, "--kind", "job"])
        assert rc == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines
        assert all(json.loads(line)["kind"] == "job" for line in lines)

    def test_cursor_file_resumes_without_re_emitting(
        self, telemetry_dir, tmp_path, capsys
    ):
        cursor = str(tmp_path / "cursor.json")
        rc = main(["obs", "tail", telemetry_dir, "--cursor-file", cursor])
        assert rc == 0
        first = capsys.readouterr().out
        assert first.strip()
        # Second invocation resumes at the saved cursor: nothing new.
        rc = main(["obs", "tail", telemetry_dir, "--cursor-file", cursor])
        assert rc == 0
        assert capsys.readouterr().out == ""

    def test_bad_cursor_file_errors(self, telemetry_dir, tmp_path, capsys):
        cursor = tmp_path / "cursor.json"
        cursor.write_text("{broken", encoding="utf-8")
        rc = main(["obs", "tail", telemetry_dir,
                   "--cursor-file", str(cursor)])
        assert rc == 1
        assert "bad cursor file" in capsys.readouterr().err

    def test_missing_directory_errors_without_follow(self, tmp_path, capsys):
        rc = main(["obs", "tail", str(tmp_path / "ghost")])
        assert rc == 1
        assert "not a telemetry directory" in capsys.readouterr().err

    def test_follow_idle_timeout_returns_after_drain(
        self, telemetry_dir, capsys
    ):
        # --follow on a quiesced directory drains everything, then the
        # idle timeout ends the loop: exit 0, full byte-identity.
        rc = main(["obs", "tail", telemetry_dir, "--follow",
                   "--idle-timeout", "0.2", "--poll", "0.05"])
        assert rc == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert [json.loads(line) for line in lines] == load_telemetry(
            telemetry_dir
        )
