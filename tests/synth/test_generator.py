"""Synthetic-generator tests: the Sec. V protocol invariants."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.resources import ResourceVector
from repro.synth.generator import (
    STATIC_REGION,
    GeneratorConfig,
    generate_design,
    generate_population,
    population_summary,
)
from repro.synth.profiles import (
    CIRCUIT_CLASSES,
    MAX_MODE_CLB,
    MIN_MODE_CLB,
    PROFILES,
    CircuitClass,
    profile_for,
)


@pytest.fixture(scope="module")
def population():
    return [
        (cls, d) for cls, d in generate_population(40, seed=99)
    ]


class TestProfiles:
    def test_four_classes(self):
        assert len(CIRCUIT_CLASSES) == 4
        assert set(PROFILES) == set(CIRCUIT_CLASSES)

    def test_sample_within_clb(self):
        rng = np.random.default_rng(0)
        profile = profile_for(CircuitClass.DSP_MEMORY)
        v = profile.sample(1000, rng)
        assert v.clb == 1000
        assert v.bram >= 0 and v.dsp >= 0

    def test_sample_rejects_out_of_range_clb(self):
        rng = np.random.default_rng(0)
        profile = profile_for(CircuitClass.LOGIC)
        with pytest.raises(ValueError):
            profile.sample(MIN_MODE_CLB - 1, rng)
        with pytest.raises(ValueError):
            profile.sample(MAX_MODE_CLB + 1, rng)

    def test_class_intensities_ordered(self):
        """Memory-intensive modes carry more BRAM than logic ones, DSP
        ones more DSP, on average."""
        rng = np.random.default_rng(1)
        samples = {
            cls: [profile_for(cls).sample(2000, rng) for _ in range(200)]
            for cls in CIRCUIT_CLASSES
        }

        def mean(cls, attr):
            return float(np.mean([getattr(v, attr) for v in samples[cls]]))

        assert mean(CircuitClass.MEMORY, "bram") > 4 * mean(CircuitClass.LOGIC, "bram")
        assert mean(CircuitClass.DSP, "dsp") > 4 * mean(CircuitClass.LOGIC, "dsp")
        assert mean(CircuitClass.DSP_MEMORY, "bram") > 4 * mean(
            CircuitClass.DSP, "bram"
        )


class TestGeneratorConfig:
    def test_defaults_follow_paper(self):
        cfg = GeneratorConfig()
        assert (cfg.min_modules, cfg.max_modules) == (2, 6)
        assert (cfg.min_modes, cfg.max_modes) == (2, 4)
        assert (cfg.min_clb, cfg.max_clb) == (25, 4000)
        assert cfg.static_region == ResourceVector(90, 8, 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            GeneratorConfig(min_modules=0)
        with pytest.raises(ValueError):
            GeneratorConfig(min_modes=3, max_modes=2)
        with pytest.raises(ValueError):
            GeneratorConfig(module_presence_probability=0.0)
        with pytest.raises(ValueError):
            GeneratorConfig(min_clb=10, max_clb=5)


class TestGenerateDesign:
    def test_structural_ranges(self, population):
        for _, d in population:
            assert 2 <= len(d.modules) <= 6
            for module in d.modules:
                assert 2 <= len(module.modes) <= 4
                for mode in module.modes:
                    assert MIN_MODE_CLB <= mode.resources.clb <= MAX_MODE_CLB

    def test_every_mode_used(self, population):
        """The paper's stopping rule: every mode appears in some config."""
        for _, d in population:
            assert not d.unused_modes

    def test_static_region_attached(self, population):
        for _, d in population:
            assert d.static_resources == STATIC_REGION

    def test_no_duplicate_configurations(self, population):
        for _, d in population:
            sets = [frozenset(c.modes) for c in d.configurations]
            assert len(sets) == len(set(sets))

    def test_configurations_valid(self, population):
        # PRDesign validation runs at construction; spot-check one mode
        # per module per configuration.
        for _, d in population:
            for config in d.configurations:
                owners = [d.module_of(m).name for m in config.modes]
                assert len(owners) == len(set(owners))


class TestGeneratePopulation:
    def test_round_robin_classes(self, population):
        classes = [cls for cls, _ in population]
        for i, cls in enumerate(classes):
            assert cls == CIRCUIT_CLASSES[i % 4]

    def test_equal_class_counts(self, population):
        from collections import Counter

        counts = Counter(cls for cls, _ in population)
        assert len(set(counts.values())) == 1

    def test_deterministic(self):
        a = [(c, d.name, d.mode_count) for c, d in generate_population(8, seed=1)]
        b = [(c, d.name, d.mode_count) for c, d in generate_population(8, seed=1)]
        assert a == b

    def test_different_seeds_differ(self):
        a = [d.mode_count for _, d in generate_population(8, seed=1)]
        b = [d.mode_count for _, d in generate_population(8, seed=2)]
        assert a != b

    def test_count_validation(self):
        with pytest.raises(ValueError):
            list(generate_population(0))

    def test_names_unique(self, population):
        names = [d.name for _, d in population]
        assert len(names) == len(set(names))


class TestFitTheLadder:
    def test_most_designs_fit_some_device(self):
        """Profile calibration: a generated population should (almost)
        always fit the largest ladder device, as in the paper."""
        from repro.arch.library import virtex5_ladder
        from repro.core.partitioner import minimum_footprint

        lib = virtex5_ladder()
        biggest = lib.get("FX200T")
        misfits = 0
        for _, d in generate_population(60, seed=123):
            if not minimum_footprint(d).fits_in(biggest.capacity):
                misfits += 1
        assert misfits == 0


class TestSummary:
    def test_population_summary(self, population):
        designs = [d for _, d in population]
        s = population_summary(designs)
        assert s["designs"] == len(designs)
        assert 2 <= s["mean_modules"] <= 6
        assert s["max_configurations"] >= s["mean_configurations"]

    def test_empty_summary(self):
        s = population_summary([])
        assert s["designs"] == 0.0
