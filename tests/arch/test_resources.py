"""Unit and property tests for ResourceVector."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.arch.resources import RESOURCE_TYPES, ResourceType, ResourceVector

vectors = st.builds(
    ResourceVector,
    clb=st.integers(0, 10_000),
    bram=st.integers(0, 500),
    dsp=st.integers(0, 800),
)


class TestConstruction:
    def test_defaults_to_zero(self):
        assert ResourceVector() == ResourceVector(0, 0, 0)

    def test_zero_is_singletonish(self):
        assert ResourceVector.zero().is_zero

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ResourceVector(clb=-1)

    def test_non_int_rejected(self):
        with pytest.raises(TypeError):
            ResourceVector(clb=1.5)  # type: ignore[arg-type]

    def test_from_mapping_by_enum(self):
        v = ResourceVector.from_mapping({ResourceType.CLB: 5, ResourceType.DSP: 2})
        assert v == ResourceVector(5, 0, 2)

    def test_from_mapping_by_name(self):
        v = ResourceVector.from_mapping({"clb": 1, "BRAM": 2})
        assert v == ResourceVector(1, 2, 0)

    def test_from_mapping_unknown_key(self):
        with pytest.raises(KeyError):
            ResourceVector.from_mapping({"luts": 3})


class TestAccessors:
    def test_get(self):
        v = ResourceVector(1, 2, 3)
        assert [v.get(t) for t in RESOURCE_TYPES] == [1, 2, 3]

    def test_as_tuple_and_iter(self):
        v = ResourceVector(7, 8, 9)
        assert v.as_tuple() == (7, 8, 9)
        assert tuple(v) == (7, 8, 9)

    def test_str(self):
        assert "clb=1" in str(ResourceVector(1, 0, 0))


class TestArithmetic:
    def test_add(self):
        assert ResourceVector(1, 2, 3) + ResourceVector(4, 5, 6) == ResourceVector(5, 7, 9)

    def test_sub(self):
        assert ResourceVector(4, 5, 6) - ResourceVector(1, 2, 3) == ResourceVector(3, 3, 3)

    def test_sub_negative_raises(self):
        with pytest.raises(ValueError):
            ResourceVector(1, 0, 0) - ResourceVector(2, 0, 0)

    def test_saturating_sub_clamps(self):
        assert ResourceVector(1, 5, 0).saturating_sub(
            ResourceVector(2, 1, 0)
        ) == ResourceVector(0, 4, 0)

    def test_or_is_componentwise_max(self):
        assert (ResourceVector(1, 9, 3) | ResourceVector(5, 2, 3)) == ResourceVector(5, 9, 3)

    def test_mul(self):
        assert ResourceVector(1, 2, 3) * 3 == ResourceVector(3, 6, 9)
        assert 2 * ResourceVector(1, 0, 0) == ResourceVector(2, 0, 0)

    def test_mul_negative_raises(self):
        with pytest.raises(ValueError):
            ResourceVector(1, 0, 0) * -1

    def test_sum(self):
        vs = [ResourceVector(1, 0, 0), ResourceVector(0, 2, 0), ResourceVector(0, 0, 3)]
        assert ResourceVector.sum(vs) == ResourceVector(1, 2, 3)

    def test_sum_empty(self):
        assert ResourceVector.sum([]) == ResourceVector.zero()

    def test_envelope(self):
        vs = [ResourceVector(5, 1, 0), ResourceVector(2, 9, 4)]
        assert ResourceVector.envelope(vs) == ResourceVector(5, 9, 4)

    def test_envelope_empty(self):
        assert ResourceVector.envelope([]) == ResourceVector.zero()


class TestOrdering:
    def test_fits_in(self):
        assert ResourceVector(1, 1, 1).fits_in(ResourceVector(2, 1, 1))
        assert not ResourceVector(3, 1, 1).fits_in(ResourceVector(2, 9, 9))

    def test_partial_order_incomparable(self):
        a, b = ResourceVector(3, 0, 0), ResourceVector(0, 3, 0)
        assert not a <= b and not b <= a

    def test_strict_comparisons(self):
        assert ResourceVector(1, 1, 1) < ResourceVector(2, 1, 1)
        assert not ResourceVector(1, 1, 1) < ResourceVector(1, 1, 1)
        assert ResourceVector(2, 1, 1) > ResourceVector(1, 1, 1)

    def test_dominates(self):
        assert ResourceVector(2, 2, 2).dominates(ResourceVector(2, 1, 0))


class TestCeilDiv:
    def test_rounds_up(self):
        assert ResourceVector(21, 5, 9).ceil_div(
            ResourceVector(20, 4, 8)
        ) == ResourceVector(2, 2, 2)

    def test_exact_division(self):
        assert ResourceVector(40, 8, 16).ceil_div(
            ResourceVector(20, 4, 8)
        ) == ResourceVector(2, 2, 2)

    def test_zero_by_zero_is_zero(self):
        assert ResourceVector(5, 0, 0).ceil_div(
            ResourceVector(5, 0, 8)
        ) == ResourceVector(1, 0, 0)

    def test_nonzero_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            ResourceVector(0, 1, 0).ceil_div(ResourceVector(1, 0, 1))


class TestProperties:
    @given(vectors, vectors)
    def test_envelope_dominates_both(self, a, b):
        env = a | b
        assert a.fits_in(env) and b.fits_in(env)

    @given(vectors, vectors)
    def test_sum_dominates_envelope(self, a, b):
        assert (a | b).fits_in(a + b)

    @given(vectors, vectors, vectors)
    def test_add_associative(self, a, b, c):
        assert (a + b) + c == a + (b + c)

    @given(vectors, vectors)
    def test_or_commutative(self, a, b):
        assert (a | b) == (b | a)

    @given(vectors)
    def test_or_idempotent(self, a):
        assert (a | a) == a

    @given(vectors, vectors)
    def test_fits_antisymmetric(self, a, b):
        if a.fits_in(b) and b.fits_in(a):
            assert a == b

    @given(vectors)
    def test_saturating_sub_self_is_zero(self, a):
        assert a.saturating_sub(a).is_zero
