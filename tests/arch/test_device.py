"""Device-model and column-synthesis tests."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.arch.device import (
    Column,
    Device,
    iter_tiles,
    make_device,
    synthesise_columns,
)
from repro.arch.resources import ResourceType, ResourceVector


class TestColumn:
    def test_primitives_per_row(self):
        assert Column(0, ResourceType.CLB).primitives_per_row == 20
        assert Column(0, ResourceType.BRAM).primitives_per_row == 4
        assert Column(0, ResourceType.DSP).primitives_per_row == 8

    def test_frames(self):
        assert Column(0, ResourceType.CLB).frames == 36


class TestSynthesiseColumns:
    def test_counts_cover_capacity(self):
        cap = ResourceVector(clb=400, bram=8, dsp=16)
        cols = synthesise_columns(cap, rows=2)
        clb_cols = sum(1 for c in cols if c.rtype is ResourceType.CLB)
        bram_cols = sum(1 for c in cols if c.rtype is ResourceType.BRAM)
        dsp_cols = sum(1 for c in cols if c.rtype is ResourceType.DSP)
        assert clb_cols * 2 * 20 >= 400
        assert bram_cols * 2 * 4 >= 8
        assert dsp_cols * 2 * 8 >= 16

    def test_no_clb_rejected(self):
        with pytest.raises(ValueError):
            synthesise_columns(ResourceVector(clb=0, bram=4, dsp=0), rows=1)

    def test_indices_sequential(self):
        cols = synthesise_columns(ResourceVector(400, 8, 16), rows=2)
        assert [c.index for c in cols] == list(range(len(cols)))

    def test_pure_logic_device(self):
        cols = synthesise_columns(ResourceVector(100, 0, 0), rows=1)
        assert all(c.rtype is ResourceType.CLB for c in cols)

    def test_specials_interleaved_not_clumped(self):
        cols = synthesise_columns(ResourceVector(4000, 40, 40), rows=2)
        special_positions = [
            c.index for c in cols if c.rtype is not ResourceType.CLB
        ]
        # No special column at the extreme left edge and they are spread
        # over more than half the device width.
        assert special_positions[0] > 0
        assert special_positions[-1] - special_positions[0] > len(cols) // 2

    @given(
        clb=st.integers(20, 30_000),
        bram=st.integers(0, 400),
        dsp=st.integers(0, 600),
        rows=st.integers(1, 12),
    )
    def test_grid_always_covers_capacity(self, clb, bram, dsp, rows):
        device = make_device("t", clb=clb, bram=bram, dsp=dsp, rows=rows)
        assert device.capacity.fits_in(device.grid_capacity())


class TestDevice:
    def test_make_device(self):
        d = make_device("x", clb=400, bram=8, dsp=16, rows=2)
        assert d.name == "x"
        assert d.capacity == ResourceVector(400, 8, 16)
        assert d.rows == 2

    def test_invalid_rows(self):
        with pytest.raises(ValueError):
            Device(name="x", capacity=ResourceVector(1, 0, 0), rows=0)

    def test_empty_capacity(self):
        with pytest.raises(ValueError):
            Device(name="x", capacity=ResourceVector.zero(), rows=1)

    def test_columns_of(self):
        d = make_device("x", clb=400, bram=8, dsp=16, rows=2)
        assert all(
            c.rtype is ResourceType.BRAM for c in d.columns_of(ResourceType.BRAM)
        )

    def test_total_frames_positive(self):
        d = make_device("x", clb=400, bram=8, dsp=16, rows=2)
        assert d.total_frames() > 0
        # CLB columns alone contribute rows * 36 each.
        clb_cols = len(d.columns_of(ResourceType.CLB))
        assert d.total_frames() >= clb_cols * 2 * 36

    def test_fits(self):
        d = make_device("x", clb=400, bram=8, dsp=16, rows=2)
        assert d.fits(ResourceVector(400, 8, 16))
        assert not d.fits(ResourceVector(401, 0, 0))

    def test_usable_capacity(self):
        d = make_device("x", clb=400, bram=8, dsp=16, rows=2)
        assert d.usable_capacity(ResourceVector(100, 8, 0)) == ResourceVector(300, 0, 16)

    def test_usable_capacity_saturates(self):
        d = make_device("x", clb=400, bram=8, dsp=16, rows=2)
        assert d.usable_capacity(ResourceVector(500, 0, 0)).clb == 0

    def test_iter_tiles_count(self):
        d = make_device("x", clb=400, bram=8, dsp=16, rows=3)
        tiles = list(iter_tiles(d))
        assert len(tiles) == 3 * d.column_count

    def test_tile_capacity_matches_columns(self):
        d = make_device("x", clb=400, bram=8, dsp=16, rows=3)
        tc = d.tile_capacity()
        assert tc.clb == len(d.columns_of(ResourceType.CLB)) * 3
        assert tc.bram == len(d.columns_of(ResourceType.BRAM)) * 3
        assert tc.dsp == len(d.columns_of(ResourceType.DSP)) * 3
