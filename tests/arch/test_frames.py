"""Frame addressing and bitstream-size tests."""

from __future__ import annotations

import pytest

from repro.arch.device import make_device
from repro.arch.frames import (
    BitstreamSize,
    FrameAddress,
    frames_in_tile,
    full_bitstream,
)
from repro.arch.resources import ResourceType
from repro.arch.tiles import FRAMES_PER_TILE


@pytest.fixture
def device():
    return make_device("t", clb=400, bram=8, dsp=16, rows=2)


class TestFrameAddress:
    def test_pack_fields(self):
        addr = FrameAddress(block_type=1, row=3, major=17, minor=5)
        packed = addr.pack()
        assert (packed >> 21) & 0x7 == 1
        assert (packed >> 15) & 0x1F == 3
        assert (packed >> 7) & 0xFF == 17
        assert packed & 0x7F == 5

    def test_pack_range_check(self):
        with pytest.raises(ValueError):
            FrameAddress(block_type=0, row=40, major=0, minor=0).pack()
        with pytest.raises(ValueError):
            FrameAddress(block_type=0, row=0, major=300, minor=0).pack()
        with pytest.raises(ValueError):
            FrameAddress(block_type=0, row=0, major=0, minor=200).pack()

    def test_distinct_addresses_pack_distinct(self):
        a = FrameAddress(0, 0, 1, 2).pack()
        b = FrameAddress(0, 0, 2, 1).pack()
        assert a != b


class TestFramesInTile:
    def test_count_matches_tile_type(self, device):
        for major, column in enumerate(device.columns):
            addrs = list(frames_in_tile(device, 0, major))
            assert len(addrs) == FRAMES_PER_TILE[column.rtype]
            assert all(a.major == major and a.row == 0 for a in addrs)
            break

    def test_all_columns_enumerable(self, device):
        total = sum(
            len(list(frames_in_tile(device, row, major)))
            for row in range(device.rows)
            for major in range(device.column_count)
        )
        assert total == device.total_frames()

    def test_out_of_range(self, device):
        with pytest.raises(ValueError):
            list(frames_in_tile(device, device.rows, 0))
        with pytest.raises(ValueError):
            list(frames_in_tile(device, 0, device.column_count))


class TestBitstreamSize:
    def test_words_and_bytes(self):
        b = BitstreamSize(frames=10)
        assert b.words == 410
        assert b.data_bytes == 1640

    def test_overhead(self):
        b = BitstreamSize(frames=1)
        assert b.total_bytes(overhead_bytes=100) == 164 + 100
        with pytest.raises(ValueError):
            b.total_bytes(overhead_bytes=-1)

    def test_negative_frames(self):
        with pytest.raises(ValueError):
            BitstreamSize(frames=-1)

    def test_full_bitstream(self, device):
        assert full_bitstream(device).frames == device.total_frames()
