"""Tile geometry and area-math tests (paper Sec. IV-B constants)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.arch.resources import ResourceType, ResourceVector
from repro.arch.tiles import (
    BITS_PER_FRAME,
    BYTES_PER_FRAME,
    FRAMES_PER_TILE,
    PRIMITIVES_PER_TILE,
    WORDS_PER_FRAME,
    TileCount,
    describe_tile_constants,
    frames_for,
    frames_to_bytes,
    frames_to_words,
    quantised_footprint,
    region_frames,
    tiles_for,
)

vectors = st.builds(
    ResourceVector,
    clb=st.integers(0, 10_000),
    bram=st.integers(0, 500),
    dsp=st.integers(0, 800),
)


class TestPaperConstants:
    """Sec. IV-B numbers, verbatim."""

    def test_primitives_per_tile(self):
        assert PRIMITIVES_PER_TILE[ResourceType.CLB] == 20
        assert PRIMITIVES_PER_TILE[ResourceType.DSP] == 8
        assert PRIMITIVES_PER_TILE[ResourceType.BRAM] == 4

    def test_frames_per_tile(self):
        assert FRAMES_PER_TILE[ResourceType.CLB] == 36
        assert FRAMES_PER_TILE[ResourceType.DSP] == 28
        assert FRAMES_PER_TILE[ResourceType.BRAM] == 30

    def test_frame_size(self):
        assert WORDS_PER_FRAME == 41
        assert BITS_PER_FRAME == 1312
        assert BYTES_PER_FRAME == 164
        assert WORDS_PER_FRAME * 32 == BITS_PER_FRAME

    def test_allocation_inlined_constants_in_sync(self):
        """The hot loop in repro.core.allocation inlines these numbers."""
        from repro.core import allocation as A

        assert (A._CLB_PER_TILE, A._BRAM_PER_TILE, A._DSP_PER_TILE) == (20, 4, 8)
        assert (A._CLB_FRAMES, A._BRAM_FRAMES, A._DSP_FRAMES) == (36, 30, 28)


class TestTilesFor:
    def test_exact_multiples(self):
        t = tiles_for(ResourceVector(40, 8, 16))
        assert (t.clb_tiles, t.bram_tiles, t.dsp_tiles) == (2, 2, 2)

    def test_rounds_up_per_type(self):
        t = tiles_for(ResourceVector(21, 1, 9))
        assert (t.clb_tiles, t.bram_tiles, t.dsp_tiles) == (2, 1, 2)

    def test_zero(self):
        t = tiles_for(ResourceVector.zero())
        assert t.total_tiles == 0 and t.frames == 0

    def test_frames_formula(self):
        # Eq. 6 by hand: 2 CLB tiles + 1 BRAM tile + 3 DSP tiles.
        t = TileCount(clb_tiles=2, bram_tiles=1, dsp_tiles=3)
        assert t.frames == 2 * 36 + 1 * 30 + 3 * 28

    def test_primitives(self):
        t = TileCount(clb_tiles=2, bram_tiles=1, dsp_tiles=3)
        assert t.primitives() == ResourceVector(40, 4, 24)

    def test_as_vector(self):
        assert TileCount(1, 2, 3).as_vector() == ResourceVector(1, 2, 3)


class TestFramesFor:
    def test_paper_mode_f1(self):
        # Matched filter mode F1: 818 CLBs, 0 BRAM, 28 DSP
        # -> 41 CLB tiles (1476 frames) + 4 DSP tiles (112) = 1588... but
        # 28 DSP = ceil(28/8) = 4 tiles -> 4*28 = 112; 41*36 = 1476.
        assert frames_for(ResourceVector(818, 0, 28)) == 41 * 36 + 4 * 28

    def test_single_clb(self):
        assert frames_for(ResourceVector(1, 0, 0)) == 36

    def test_region_frames_envelope(self):
        a = ResourceVector(30, 0, 0)
        b = ResourceVector(10, 4, 0)
        # envelope (30, 4, 0) -> 2 CLB tiles + 1 BRAM tile
        assert region_frames([a, b]) == 2 * 36 + 30

    def test_region_frames_empty(self):
        assert region_frames([]) == 0


class TestConversions:
    def test_frames_to_bytes(self):
        assert frames_to_bytes(10) == 1640

    def test_frames_to_words(self):
        assert frames_to_words(10) == 410

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            frames_to_bytes(-1)
        with pytest.raises(ValueError):
            frames_to_words(-1)

    def test_describe_mentions_all_types(self):
        text = describe_tile_constants()
        for token in ("CLB", "BRAM", "DSP", "41"):
            assert token in text


class TestProperties:
    @given(vectors)
    def test_quantised_footprint_dominates(self, v):
        assert v.fits_in(quantised_footprint(v))

    @given(vectors)
    def test_quantisation_idempotent(self, v):
        q = quantised_footprint(v)
        assert quantised_footprint(q) == q

    @given(vectors, vectors)
    def test_frames_monotone(self, a, b):
        assert frames_for(a) <= frames_for(a + b)

    @given(vectors, vectors)
    def test_region_frames_at_most_sum(self, a, b):
        """Sharing a region never costs more frames than separate regions."""
        assert region_frames([a, b]) <= frames_for(a) + frames_for(b)

    @given(vectors)
    def test_frames_zero_iff_zero(self, v):
        assert (frames_for(v) == 0) == v.is_zero
