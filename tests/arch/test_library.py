"""Device-library tests: the Fig. 7/8 ladder and selection helpers."""

from __future__ import annotations

import pytest

from repro.arch.library import (
    VIRTEX5_LADDER,
    DeviceLibrary,
    get_device,
    ladder_names,
    virtex5_full,
    virtex5_ladder,
)
from repro.arch.device import make_device
from repro.arch.resources import ResourceVector


class TestLadder:
    def test_paper_axis_names(self):
        assert VIRTEX5_LADDER == (
            "LX20T", "LX30", "FX30T", "SX35T", "FX50T",
            "SX70T", "FX95T", "FX130T", "FX200T",
        )
        assert tuple(ladder_names()) == VIRTEX5_LADDER

    def test_ladder_monotone_in_clb(self):
        lib = virtex5_ladder()
        clbs = [d.capacity.clb for d in lib]
        assert clbs == sorted(clbs)
        assert len(set(clbs)) == len(clbs)

    def test_library_order_matches_axis(self):
        lib = virtex5_ladder()
        assert lib.names == VIRTEX5_LADDER

    def test_index_of(self):
        lib = virtex5_ladder()
        assert lib.index_of("LX20T") == 0
        assert lib.index_of("FX200T") == len(lib) - 1
        with pytest.raises(KeyError):
            lib.index_of("nope")

    def test_full_contains_fx70t(self):
        lib = virtex5_full()
        assert "FX70T" in lib
        assert lib.get("FX70T").capacity.clb == 11200

    def test_get_device_helper(self):
        assert get_device("LX30").name == "LX30"

    def test_get_unknown_raises_with_names(self):
        with pytest.raises(KeyError, match="LX20T"):
            virtex5_ladder().get("XYZ")


class TestSelection:
    def test_smallest_fitting_picks_first(self):
        lib = virtex5_ladder()
        d = lib.smallest_fitting(ResourceVector(3000, 20, 20))
        assert d is not None and d.name == "LX20T"

    def test_smallest_fitting_respects_all_axes(self):
        lib = virtex5_ladder()
        # 3000 CLBs fits LX20T, but 100 DSPs does not (24); SX35T is the
        # first with >= 100 DSPs among devices with >= 3000 CLBs... FX30T
        # has 64; SX35T has 192.
        d = lib.smallest_fitting(ResourceVector(3000, 20, 100))
        assert d is not None and d.name == "SX35T"

    def test_smallest_fitting_none(self):
        lib = virtex5_ladder()
        assert lib.smallest_fitting(ResourceVector(10**6, 0, 0)) is None

    def test_larger_than(self):
        lib = virtex5_ladder()
        bigger = lib.larger_than(lib.get("FX130T"))
        assert [d.name for d in bigger] == ["FX200T"]

    def test_larger_than_top_is_empty(self):
        lib = virtex5_ladder()
        assert lib.larger_than(lib.get("FX200T")) == []

    def test_larger_than_unknown_device(self):
        lib = virtex5_ladder()
        alien = make_device("alien", clb=100, bram=4, dsp=8, rows=1)
        with pytest.raises(KeyError):
            lib.larger_than(alien)

    def test_next_larger(self):
        lib = virtex5_ladder()
        assert lib.next_larger(lib.get("LX20T")).name == "LX30"
        assert lib.next_larger(lib.get("FX200T")) is None


class TestConstruction:
    def test_duplicate_names_rejected(self):
        d1 = make_device("dup", clb=100, bram=4, dsp=8, rows=1)
        d2 = make_device("dup", clb=200, bram=4, dsp=8, rows=1)
        with pytest.raises(ValueError):
            DeviceLibrary([d1, d2])

    def test_sorted_regardless_of_input_order(self):
        small = make_device("s", clb=100, bram=4, dsp=8, rows=1)
        big = make_device("b", clb=200, bram=4, dsp=8, rows=1)
        lib = DeviceLibrary([big, small])
        assert lib.names == ("s", "b")

    def test_len_and_contains(self):
        lib = virtex5_ladder()
        assert len(lib) == 9
        assert "LX30" in lib and "XC7Z020" not in lib
