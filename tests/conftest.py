"""Shared fixtures: paper designs, devices, small helper builders."""

from __future__ import annotations

import pytest

from repro.arch import ResourceVector, get_device, virtex5_full, virtex5_ladder
from repro.eval.casestudy import (
    CASESTUDY_BUDGET,
    casestudy_design,
    casestudy_design_modified,
)
from repro.eval.example_design import (
    example_design,
    hybrid_example_design,
    single_mode_mix_design,
)


@pytest.fixture
def paper_example():
    """The Sec. III running example (A/B/C modules, 5 configurations)."""
    return example_design()


@pytest.fixture
def hybrid_example():
    """The Sec. IV-A two-module example (Fig. 3)."""
    return hybrid_example_design()


@pytest.fixture
def single_mode_mix():
    """The Sec. IV-D special-condition design (single-mode modules)."""
    return single_mode_mix_design()


@pytest.fixture
def receiver():
    """Case-study design, original eight configurations."""
    return casestudy_design()


@pytest.fixture
def receiver_modified():
    """Case-study design, modified five configurations."""
    return casestudy_design_modified()


@pytest.fixture
def budget():
    """The case-study PR budget."""
    return CASESTUDY_BUDGET


@pytest.fixture
def ladder():
    """The nine-device Fig. 7/8 ladder."""
    return virtex5_ladder()


@pytest.fixture
def full_library():
    return virtex5_full()


@pytest.fixture
def fx70t():
    return get_device("FX70T")


def make_design(modules, configurations, static=(0, 0, 0), name="t"):
    """Terse builder used across the core tests.

    ``modules`` maps module name to {mode: (clb, bram, dsp)};
    ``configurations`` is a list of mode-name tuples.
    """
    from repro.core.model import design_from_tables

    return design_from_tables(
        name=name,
        module_table={
            m: {k: tuple(v) for k, v in modes.items()}
            for m, modes in modules.items()
        },
        configurations=configurations,
        static_resources=ResourceVector(*static),
    )


@pytest.fixture
def tiny_design():
    """Two modules, two modes each, three configurations (fits anywhere)."""
    return make_design(
        {
            "A": {"A1": (40, 0, 0), "A2": (200, 0, 0)},
            "B": {"B1": (220, 0, 0), "B2": (50, 0, 0)},
        },
        [("A1", "B1"), ("A2", "B2"), ("A1", "B2")],
    )
