"""CLI tests: every subcommand through ``main(argv)``."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.eval.casestudy import CASESTUDY_BUDGET
from repro.flow.xmlio import save_design


@pytest.fixture
def design_xml(tmp_path, paper_example):
    path = tmp_path / "design.xml"
    save_design(paper_example, path)
    return str(path)


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestDevices:
    def test_lists_ladder(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        for name in ("LX20T", "FX200T"):
            assert name in out


class TestExample:
    def test_prints_matrix_and_table1(self, capsys):
        assert main(["example"]) == 0
        out = capsys.readouterr().out
        assert "Conf.1" in out
        assert "{A3, B2, C3}" in out

    def test_trace_runs_partitioning(self, capsys):
        assert main(["example", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "Pipeline trace" in out
        assert "partition.total_frames" in out


class TestCasestudy:
    def test_prints_all_tables(self, capsys):
        assert main(["casestudy"]) == 0
        out = capsys.readouterr().out
        assert "Table III" in out
        assert "Table IV" in out
        assert "Table V" in out
        assert "244872" in out  # paper reference value shown alongside


class TestSweep:
    def test_small_sweep(self, capsys):
        assert main(["sweep", "--designs", "6", "--seed", "9"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 7" in out and "Fig. 9(d)" in out
        assert "headline" in out

    def test_sweep_with_analysis(self, capsys):
        assert main(
            ["sweep", "--designs", "8", "--seed", "9", "--analysis"]
        ) == 0
        out = capsys.readouterr().out
        assert "per-circuit-class" in out


class TestPartition:
    def test_auto_device_selection(self, design_xml, capsys):
        assert main(["partition", design_xml]) == 0
        out = capsys.readouterr().out
        assert "selected device:" in out
        assert "total reconfiguration:" in out

    def test_explicit_device(self, design_xml, capsys):
        assert main(["partition", design_xml, "--device", "LX30"]) == 0
        out = capsys.readouterr().out
        assert "scheme" in out

    def test_floorplan_and_ucf(self, design_xml, capsys):
        assert main(
            ["partition", design_xml, "--device", "LX30", "--floorplan", "--ucf"]
        ) == 0
        out = capsys.readouterr().out
        assert "legend:" in out  # ASCII floorplan
        assert "AREA_GROUP" in out
        assert "bitstreams:" in out

    def test_device_from_xml_attribute(self, tmp_path, paper_example, capsys):
        path = tmp_path / "with_device.xml"
        save_design(paper_example, path, device_name="LX30")
        assert main(["partition", str(path)]) == 0

    def test_budget_from_xml(self, tmp_path, receiver, capsys):
        path = tmp_path / "budgeted.xml"
        save_design(
            receiver, path, device_name="FX70T", budget=CASESTUDY_BUDGET
        )
        assert main(["partition", str(path)]) == 0
        out = capsys.readouterr().out
        assert "total reconfiguration:" in out

    def test_trace_summary(self, design_xml, capsys):
        assert main(["partition", design_xml, "--trace"]) == 0
        out = capsys.readouterr().out
        assert "Pipeline trace" in out
        assert "merge_search" in out
        assert "clustering.base_partitions" in out

    def test_trace_json_file(self, design_xml, tmp_path, capsys):
        from repro.obs import trace_from_json

        path = tmp_path / "trace.json"
        assert main(
            ["partition", design_xml, "--trace-json", str(path)]
        ) == 0
        trace = trace_from_json(path.read_text(encoding="utf-8"))
        assert "merge_search" in trace.span_names()
        assert trace.counters["merge.states_explored"] > 0

    def test_infeasible_design_exits_nonzero(self, tmp_path, capsys):
        from .conftest import make_design

        path = tmp_path / "huge.xml"
        save_design(
            make_design({"A": {"a": (90_000, 0, 0)}}, [("a",)]), path
        )
        assert main(["partition", str(path)]) == 1
        assert "error" in capsys.readouterr().err


class TestPareto:
    def test_pareto_front(self, design_xml, capsys):
        assert main(["pareto", design_xml, "--device", "LX30"]) == 0
        out = capsys.readouterr().out
        assert "Pareto" in out

    def test_pareto_auto_device(self, design_xml, capsys):
        assert main(["pareto", design_xml]) == 0


class TestArtifactOutput:
    def test_out_directory_written(self, design_xml, tmp_path, capsys):
        out = tmp_path / "artifacts"
        assert main(
            [
                "partition", design_xml, "--device", "LX30",
                "--floorplan", "--out", str(out),
            ]
        ) == 0
        names = {p.name for p in out.iterdir()}
        assert "system.ucf" in names
        assert any(n.endswith("_wrapper.v") for n in names)
        assert any(n.endswith(".bit") for n in names)


class TestEngineFlags:
    def test_reference_engine_matches_default(self, design_xml, capsys):
        assert main(["partition", design_xml, "--device", "LX30"]) == 0
        default_out = capsys.readouterr().out
        assert main(
            ["partition", design_xml, "--device", "LX30",
             "--engine", "reference"]
        ) == 0
        assert capsys.readouterr().out == default_out  # bit-identical

    def test_parallel_restarts(self, design_xml, capsys):
        assert main(
            ["partition", design_xml, "--device", "LX30",
             "--parallel-restarts", "2"]
        ) == 0
        assert "total reconfiguration:" in capsys.readouterr().out

    def test_invalid_engine_rejected(self, design_xml):
        with pytest.raises(SystemExit):
            main(["partition", design_xml, "--engine", "quantum"])

    def test_parallel_requires_incremental(self, design_xml, capsys):
        # Invalid knob combinations exit 2 with the validation message on
        # stderr instead of surfacing a traceback.
        assert main(
            ["partition", design_xml, "--device", "LX30",
             "--engine", "reference", "--parallel-restarts", "2"]
        ) == 2
        assert "error:" in capsys.readouterr().err

    def test_beam_and_prune_run(self, design_xml, capsys):
        assert main(
            ["partition", design_xml, "--device", "LX30",
             "--beam-width", "4", "--prune", "--trace"]
        ) == 0
        out = capsys.readouterr().out
        assert "total reconfiguration:" in out
        assert "search.nodes_expanded" in out

    def test_portfolio_engine_runs(self, design_xml, capsys):
        assert main(
            ["partition", design_xml, "--device", "LX30",
             "--engine", "portfolio"]
        ) == 0
        assert "total reconfiguration:" in capsys.readouterr().out

    def test_shared_seen_filter_flag(self, design_xml, capsys):
        assert main(
            ["partition", design_xml, "--device", "LX30",
             "--parallel-restarts", "2", "--shared-seen-filter"]
        ) == 0
        assert "total reconfiguration:" in capsys.readouterr().out

    def test_reference_engine_rejects_beam(self, design_xml, capsys):
        assert main(
            ["partition", design_xml, "--device", "LX30",
             "--engine", "reference", "--beam-width", "4"]
        ) == 2
        assert "reference" in capsys.readouterr().err


class TestProfile:
    def test_profile_prints_hot_functions(self, design_xml, capsys):
        assert main(
            ["--profile", "partition", design_xml, "--device", "LX30"]
        ) == 0
        captured = capsys.readouterr()
        assert "total reconfiguration:" in captured.out
        assert "cumulative" in captured.err
        assert "profile (top 25" in captured.err
