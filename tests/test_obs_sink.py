"""TelemetrySink: rotation, reopen, tracer attachment, crash recovery.

The crash property mirrors ``tests/service/test_jobs_properties.py``:
truncating the newest segment at *every byte offset* inside its final
record must never raise -- the load either sees the full record or
cleanly drops the torn tail.  Rotated (non-newest) segments get no such
forgiveness: a tear there is real corruption.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.obs import (
    SINK_VERSION,
    RecordingTracer,
    SinkError,
    TelemetrySink,
    iter_telemetry,
    load_telemetry,
)


class FakeClock:
    def __init__(self, start: float = 100.0, step: float = 1.0):
        self.now, self.step = start, step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


@pytest.fixture
def sink(tmp_path):
    return TelemetrySink(tmp_path / "tele", clock=FakeClock())


class TestAppend:
    def test_records_are_self_describing(self, sink):
        record = sink.append("job", job="j1", key="k" * 64, status="done")
        assert record["v"] == SINK_VERSION
        assert record["kind"] == "job"
        assert record["ts"] == 100.0
        assert sink.records_written == 1
        loaded = load_telemetry(sink.directory)
        assert loaded == [record]

    def test_reserved_header_fields_rejected(self, sink):
        for reserved in ("v", "kind", "ts"):
            with pytest.raises(SinkError):
                sink.append("event", **{reserved: 1})

    def test_rotation_by_size(self, tmp_path):
        sink = TelemetrySink(tmp_path / "tele", max_bytes=200)
        for i in range(10):
            sink.append("event", name="tick", payload={"i": i})
        segments = sorted(p.name for p in sink.directory.glob("*.jsonl"))
        assert len(segments) > 1
        assert segments[0] == "telemetry-00000.jsonl"
        # Order survives rotation.
        loaded = load_telemetry(sink.directory)
        assert [r["payload"]["i"] for r in loaded] == list(range(10))

    def test_invalid_max_bytes(self, tmp_path):
        with pytest.raises(SinkError):
            TelemetrySink(tmp_path / "t", max_bytes=0)

    def test_reopen_resumes_numbering(self, tmp_path):
        first = TelemetrySink(tmp_path / "tele", max_bytes=120)
        for i in range(6):
            first.append("event", name="a", payload={"i": i})
        again = TelemetrySink(tmp_path / "tele", max_bytes=120)
        again.append("event", name="b", payload={"i": 99})
        loaded = load_telemetry(tmp_path / "tele")
        assert [r["payload"]["i"] for r in loaded] == [0, 1, 2, 3, 4, 5, 99]

    def test_reopen_heals_torn_tail(self, tmp_path):
        sink = TelemetrySink(tmp_path / "tele")
        sink.append("event", name="a", payload={})
        sink.append("event", name="b", payload={})
        path = sink.segment_path
        raw = path.read_bytes()
        path.write_bytes(raw[:-10])  # tear the final record
        healed = TelemetrySink(tmp_path / "tele")
        healed.append("event", name="c", payload={})
        names = [r["name"] for r in load_telemetry(tmp_path / "tele")]
        assert names == ["a", "c"]


class TestAttach:
    def test_progress_events_stream_to_disk(self, sink):
        tracer = RecordingTracer()
        sink.attach(tracer)
        tracer.progress("batch.job_started", job="j1", key="k1")
        tracer.progress("batch.job_done", job="j1", key="k1")
        loaded = load_telemetry(sink.directory)
        assert [r["kind"] for r in loaded] == ["event", "event"]
        assert loaded[0]["name"] == "batch.job_started"
        assert loaded[0]["payload"] == {"job": "j1", "key": "k1"}

    def test_attach_is_idempotent(self, sink):
        tracer = RecordingTracer()
        sink.attach(tracer)
        sink.attach(tracer)
        tracer.progress("tick")
        assert len(load_telemetry(sink.directory)) == 1

    def test_null_tracer_attach_is_harmless(self, sink):
        from repro.obs import NULL_TRACER

        sink.attach(NULL_TRACER)
        NULL_TRACER.progress("tick")
        with pytest.raises(SinkError):  # nothing written, no segments
            load_telemetry(sink.directory)


class TestLoad:
    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(SinkError):
            load_telemetry(tmp_path / "absent")

    def test_empty_directory_raises(self, tmp_path):
        (tmp_path / "tele").mkdir()
        with pytest.raises(SinkError):
            load_telemetry(tmp_path / "tele")

    def test_wrong_version_rejected(self, sink):
        sink.append("event", name="a", payload={})
        path = sink.segment_path
        record = dict(json.loads(path.read_text()))
        record["v"] = 99
        path.write_text(json.dumps(record) + "\n")
        with pytest.raises(SinkError, match="version"):
            load_telemetry(sink.directory)

    def test_kindless_record_rejected(self, sink):
        sink.segment_path.write_text('{"v": 1, "ts": 0}\n')
        with pytest.raises(SinkError, match="kind"):
            load_telemetry(sink.directory)

    def test_non_object_record_rejected(self, sink):
        sink.segment_path.write_text("[1, 2]\n")
        with pytest.raises(SinkError, match="object"):
            load_telemetry(sink.directory)

    def test_mid_file_corruption_raises(self, sink):
        sink.append("event", name="a", payload={})
        sink.append("event", name="b", payload={})
        path = sink.segment_path
        lines = path.read_text().splitlines(keepends=True)
        path.write_text("{broken\n" + lines[1])
        with pytest.raises(SinkError):
            load_telemetry(sink.directory)

    def test_torn_rotated_segment_raises(self, tmp_path):
        sink = TelemetrySink(tmp_path / "tele", max_bytes=120)
        for i in range(6):
            sink.append("event", name="a", payload={"i": i})
        segments = sorted(sink.directory.glob("*.jsonl"))
        assert len(segments) > 1
        raw = segments[0].read_bytes()
        segments[0].write_bytes(raw[:-3])
        with pytest.raises(SinkError, match="rotated"):
            load_telemetry(tmp_path / "tele")

    def test_load_does_not_repair(self, sink):
        sink.append("event", name="a", payload={})
        sink.append("event", name="b", payload={})
        path = sink.segment_path
        raw = path.read_bytes()
        torn = raw[:-5]
        path.write_bytes(torn)
        loaded = load_telemetry(sink.directory)
        assert [r["name"] for r in loaded] == ["a"]
        assert path.read_bytes() == torn  # read-only: the tear remains

    def test_iter_is_lazy_generator(self, sink):
        sink.append("event", name="a", payload={})
        it = iter_telemetry(sink.directory)
        assert next(it)["name"] == "a"


record_fields = st.dictionaries(
    st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=8
    ).filter(lambda k: k not in ("v", "kind", "ts")),
    st.one_of(
        st.integers(-1000, 1000),
        st.text(max_size=20),
        st.booleans(),
        st.none(),
    ),
    max_size=4,
)


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.function_scoped_fixture,
    ],
)
@given(records=st.lists(record_fields, min_size=1, max_size=8))
def test_truncation_at_every_offset_of_the_final_record(
    tmp_path_factory, records
):
    """Mirror of the JobStore crash property, for the telemetry sink."""
    directory = tmp_path_factory.mktemp("tele")
    sink = TelemetrySink(directory, clock=FakeClock())
    for fields in records:
        sink.append("event", **fields)
    path = sink.segment_path
    raw = path.read_bytes()
    lines = raw.decode("utf-8").splitlines(keepends=True)
    final = lines[-1].encode("utf-8")
    prefix = raw[: len(raw) - len(final)]

    complete = load_telemetry(directory)
    for cut in range(len(final) + 1):
        path.write_bytes(prefix + final[:cut])
        # Never raises: a torn newest tail is a crash, not corruption.
        loaded = load_telemetry(directory)
        if cut == len(final):
            assert loaded == complete
        else:
            assert loaded in (complete[:-1], complete)
        # Reopening for writing heals the tear and accepts appends.
        healed = TelemetrySink(directory, clock=FakeClock(start=500.0))
        appended = healed.append("event", marker=True)
        assert load_telemetry(directory)[-1] == appended
        path.write_bytes(prefix + final)  # restore for the next cut
