"""The obs toolchain: run aggregation, Prometheus export, bench diff.

The export tests are *round-trip* tests: everything ``prometheus_text``
emits must survive the strict :func:`parse_prometheus` reader -- the
guarantee that a real scraper (node_exporter textfile collector) can
consume ``repro obs export-prom`` output.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    BenchDiffError,
    Histogram,
    PrometheusFormatError,
    TelemetrySink,
    aggregate_run,
    bench_diff,
    export_prometheus_dir,
    load_bench,
    parse_prometheus,
    prometheus_text,
    render_bench_diff,
    render_run_report,
)
from repro.obs.report import DEFAULT_BENCH_THRESHOLD


def _write_run(directory, jobs=(), counters=None, gauges=None, histograms=None):
    sink = TelemetrySink(directory)
    for fields in jobs:
        sink.append("job", **fields)
    sink.append(
        "run",
        report={"total": len(jobs)},
        counters=counters or {},
        gauges=gauges or {},
        histograms=histograms or {},
    )
    return sink


class TestAggregateRun:
    def test_job_statuses_and_latencies(self, tmp_path):
        _write_run(
            tmp_path / "t",
            jobs=[
                {"job": "a", "key": "k1", "status": "done", "compute_s": 1.0},
                {"job": "b", "key": "k2", "status": "done", "compute_s": 3.0},
                {"job": "c", "key": "k1", "status": "cached"},
                {"job": "d", "key": "k3", "status": "retried", "attempts": 1,
                 "timeout": True},
                {"job": "d", "key": "k3", "status": "failed", "attempts": 2,
                 "timeout": True},
            ],
        )
        report = aggregate_run(tmp_path / "t")
        assert report.runs == 1
        assert report.jobs_done == 2
        assert report.jobs_cached == 1
        assert report.jobs_failed == 1
        assert report.retries == 1
        assert report.timeouts == 2
        assert report.jobs_total == 4
        assert report.cache_hit_rate == pytest.approx(0.25)
        assert report.latency_percentile(50) == pytest.approx(2.0)
        assert report.latency_percentile(0) == 1.0
        assert report.latency_percentile(100) == 3.0

    def test_multi_run_directories_sum(self, tmp_path):
        h = Histogram(bounds=(1.0,))
        h.observe(0.5)
        sink = _write_run(
            tmp_path / "t",
            jobs=[{"job": "a", "key": "k", "status": "done", "compute_s": 1.0}],
            counters={"service.jobs_done": 1},
            gauges={"service.cache_hit_rate": 0.0},
            histograms={"stage_s": h.to_dict()},
        )
        sink.append(
            "job", job="b", key="k", status="cached"
        )
        sink.append(
            "run",
            report={"total": 1},
            counters={"service.jobs_done": 1},
            gauges={"service.cache_hit_rate": 1.0},
            histograms={"stage_s": h.to_dict()},
        )
        report = aggregate_run(tmp_path / "t")
        assert report.runs == 2
        assert report.counters == {"service.jobs_done": 2}
        assert report.gauges == {"service.cache_hit_rate": 1.0}  # last wins
        assert report.histograms["stage_s"].count == 2

    def test_unknown_kinds_skipped(self, tmp_path):
        sink = TelemetrySink(tmp_path / "t")
        sink.append("mystery", anything=1)
        sink.append("job", job="a", key="k", status="done", compute_s=0.5)
        report = aggregate_run(tmp_path / "t")
        assert report.jobs_done == 1

    def test_render_and_to_dict(self, tmp_path):
        _write_run(
            tmp_path / "t",
            jobs=[{"job": "a", "key": "k", "status": "done", "compute_s": 2.0}],
            counters={"service.jobs_done": 1},
        )
        report = aggregate_run(tmp_path / "t")
        text = render_run_report(report)
        assert "p50 2.0000 s" in text
        assert "cache hit rate: 0.0%" in text
        assert "service.jobs_done" in text
        doc = report.to_dict()
        assert doc["jobs_done"] == 1
        assert doc["latency_p50_s"] == pytest.approx(2.0)
        json.dumps(doc)  # machine-readable

    def test_empty_latency_renders_dashes(self, tmp_path):
        _write_run(tmp_path / "t", jobs=[
            {"job": "a", "key": "k", "status": "cached"},
        ])
        report = aggregate_run(tmp_path / "t")
        assert report.latency_percentile(50) is None
        assert "p50 -" in render_run_report(report)

    def test_segmentless_directory_aggregates_to_empty_report(self, tmp_path):
        empty = tmp_path / "t"
        empty.mkdir()
        report = aggregate_run(empty)
        assert report.is_empty
        assert report.jobs_total == 0 and report.runs == 0

    def test_missing_directory_still_raises(self, tmp_path):
        from repro.obs import SinkError

        with pytest.raises(SinkError):
            aggregate_run(tmp_path / "absent")

    def test_empty_report_renders_no_data_lines(self, tmp_path):
        empty = tmp_path / "t"
        empty.mkdir()
        text = render_run_report(aggregate_run(empty))
        assert "runs: no data" in text
        assert "jobs: no data" in text
        assert "job latency: no data" in text
        assert "replay: no data" in text
        assert "--telemetry-dir" in text

    def test_populated_report_is_not_empty(self, tmp_path):
        _write_run(tmp_path / "t")
        assert not aggregate_run(tmp_path / "t").is_empty


def _replay_summary(policy, latencies):
    h = Histogram(bounds=(0.001, 0.01, 0.1))
    for v in latencies:
        h.observe(v)
    return {
        "policy": policy,
        "events": 4 * len(latencies),
        "switches": len(latencies),
        "stall_events": 1,
        "total_seconds": sum(latencies),
        "icap_utilisation": 0.1,
        "latency": h.to_dict(),
    }


class TestReplaySection:
    def test_replay_summaries_aggregate_per_policy(self, tmp_path):
        _write_run(
            tmp_path / "t",
            jobs=[
                {"job": "a", "key": "k1", "status": "done", "compute_s": 0.1,
                 "replay": _replay_summary("no-prefetch", [0.02, 0.05])},
                {"job": "b", "key": "k2", "status": "done", "compute_s": 0.1,
                 "replay": _replay_summary("no-prefetch", [0.03])},
                {"job": "c", "key": "k3", "status": "done", "compute_s": 0.1,
                 "replay": _replay_summary("prefetch-oracle", [0.002])},
            ],
        )
        report = aggregate_run(tmp_path / "t")
        assert set(report.replay_policies) == {"no-prefetch",
                                              "prefetch-oracle"}
        stats = report.replay_policies["no-prefetch"]
        assert stats.jobs == 2
        assert stats.switches == 3
        assert stats.events == 12
        assert stats.stall_events == 2
        assert stats.percentile(50) is not None
        doc = report.to_dict()
        assert doc["replay"]["no-prefetch"]["jobs"] == 2
        json.dumps(doc)

    def test_replay_section_renders_per_policy_lines(self, tmp_path):
        _write_run(
            tmp_path / "t",
            jobs=[
                {"job": "a", "key": "k1", "status": "done", "compute_s": 0.1,
                 "replay": _replay_summary("no-prefetch", [0.02])},
            ],
        )
        text = render_run_report(aggregate_run(tmp_path / "t"))
        assert "replay (computed jobs, switch latency):" in text
        assert "no-prefetch" in text
        assert "p95=" in text

    def test_jobs_without_replay_degrade_to_no_data_line(self, tmp_path):
        _write_run(
            tmp_path / "t",
            jobs=[{"job": "a", "key": "k", "status": "done",
                   "compute_s": 0.1}],
        )
        text = render_run_report(aggregate_run(tmp_path / "t"))
        assert (
            "replay: no data (no computed replay jobs in this directory)"
            in text
        )

    def test_cached_replay_jobs_carry_no_summary(self, tmp_path):
        # Cached completions skip the replay; their records must not
        # perturb the per-policy aggregates.
        _write_run(
            tmp_path / "t",
            jobs=[
                {"job": "a", "key": "k", "status": "cached"},
                {"job": "b", "key": "k2", "status": "done", "compute_s": 0.1,
                 "replay": _replay_summary("no-prefetch", [0.02])},
            ],
        )
        report = aggregate_run(tmp_path / "t")
        assert report.replay_policies["no-prefetch"].jobs == 1


class TestPrometheusRoundTrip:
    def test_counters_gauges_histograms(self):
        h = Histogram(bounds=(0.1, 1.0))
        for v in (0.05, 0.5, 0.5, 5.0):
            h.observe(v)
        text = prometheus_text(
            counters={"service.cache_hits": 3},
            gauges={"service.cache_hit_rate": 0.75},
            histograms={"job.wall_s": h},
        )
        families = parse_prometheus(text)
        assert families["repro_service_cache_hits_total"].type == "counter"
        assert families["repro_service_cache_hits_total"].samples[0][2] == 3
        assert families["repro_service_cache_hit_rate"].type == "gauge"
        hist = families["repro_job_wall_s"]
        assert hist.type == "histogram"
        buckets = [
            (labels["le"], value)
            for name, labels, value in hist.samples
            if name == "repro_job_wall_s_bucket"
        ]
        assert buckets == [("0.1", 1.0), ("1", 3.0), ("+Inf", 4.0)]

    def test_empty_is_empty(self):
        assert prometheus_text() == ""
        assert parse_prometheus("") == {}

    def test_name_sanitisation(self):
        text = prometheus_text(counters={"merge.heap-pops/total": 1})
        assert "repro_merge_heap_pops_total_total 1" in text
        parse_prometheus(text)

    def test_export_prometheus_dir(self, tmp_path):
        h = Histogram(bounds=(1.0,))
        h.observe(0.5)
        _write_run(
            tmp_path / "t",
            jobs=[
                {"job": "a", "key": "k", "status": "done", "compute_s": 1.5},
                {"job": "b", "key": "k", "status": "cached"},
            ],
            counters={"service.jobs_done": 2},
            histograms={"merge.search_s": h.to_dict()},
        )
        text = export_prometheus_dir(tmp_path / "t")
        families = parse_prometheus(text)  # must be valid exposition
        assert "repro_report_jobs_done_total" in families
        assert "repro_report_cache_hit_rate" in families
        assert "repro_report_job_latency_p50_s" in families
        assert families["repro_merge_search_s"].type == "histogram"

    def test_custom_prefix(self, tmp_path):
        _write_run(tmp_path / "t", jobs=[
            {"job": "a", "key": "k", "status": "done", "compute_s": 1.0},
        ])
        text = export_prometheus_dir(tmp_path / "t", prefix="acme_")
        assert all(
            line.split()[-2].startswith("acme_") or line.startswith("#")
            for line in text.splitlines()
            if line
        )
        parse_prometheus(text)


class TestPrometheusParserStrictness:
    def test_undeclared_sample_rejected(self):
        with pytest.raises(PrometheusFormatError, match="no TYPE"):
            parse_prometheus("orphan_metric 1\n")

    def test_malformed_type_rejected(self):
        with pytest.raises(PrometheusFormatError, match="TYPE"):
            parse_prometheus("# TYPE lonely\n")

    def test_unknown_type_rejected(self):
        with pytest.raises(PrometheusFormatError, match="unknown"):
            parse_prometheus("# TYPE m sideways\n")

    def test_duplicate_type_rejected(self):
        with pytest.raises(PrometheusFormatError, match="duplicate"):
            parse_prometheus("# TYPE m counter\n# TYPE m counter\n")

    def test_non_numeric_value_rejected(self):
        with pytest.raises(PrometheusFormatError, match="non-numeric"):
            parse_prometheus("# TYPE m gauge\nm banana\n")

    def test_malformed_label_rejected(self):
        with pytest.raises(PrometheusFormatError, match="label"):
            parse_prometheus('# TYPE m gauge\nm{le=0.5} 1\n')

    def test_histogram_without_inf_bucket_rejected(self):
        with pytest.raises(PrometheusFormatError, match="Inf"):
            parse_prometheus(
                '# TYPE h histogram\nh_bucket{le="1"} 1\nh_count 1\n'
            )

    def test_non_cumulative_buckets_rejected(self):
        with pytest.raises(PrometheusFormatError, match="cumulative"):
            parse_prometheus(
                '# TYPE h histogram\n'
                'h_bucket{le="1"} 5\n'
                'h_bucket{le="+Inf"} 3\n'
            )

    def test_count_bucket_mismatch_rejected(self):
        with pytest.raises(PrometheusFormatError, match="_count"):
            parse_prometheus(
                '# TYPE h histogram\n'
                'h_bucket{le="+Inf"} 3\n'
                'h_count 4\n'
            )


def _bench_doc(**timings):
    return {
        "suite": "allocation",
        "benchmarks": [
            {"name": name, "mean": mean} for name, mean in timings.items()
        ],
    }


class TestBenchDiff:
    def test_flags_regressions_past_threshold(self):
        diff = bench_diff(
            _bench_doc(a=1.0, b=1.0, c=1.0),
            _bench_doc(a=1.1, b=1.6, c=0.5),
            threshold=0.25,
        )
        assert [d.name for d in diff.regressions] == ["b"]
        assert [d.name for d in diff.improvements] == ["c"]
        assert diff.deltas[1].delta_pct == pytest.approx(60.0)

    def test_membership_changes_listed_not_flagged(self):
        diff = bench_diff(_bench_doc(a=1.0, gone=1.0), _bench_doc(a=1.0, new=1.0))
        assert diff.only_old == ["gone"]
        assert diff.only_new == ["new"]
        assert diff.regressions == []

    def test_render(self):
        diff = bench_diff(_bench_doc(a=1.0), _bench_doc(a=2.0))
        text = render_bench_diff(diff)
        assert "REGRESSION" in text
        assert "1 regression(s)" in text

    def test_default_threshold(self):
        assert DEFAULT_BENCH_THRESHOLD == 0.25

    def test_negative_threshold_rejected(self):
        with pytest.raises(BenchDiffError):
            bench_diff(_bench_doc(), _bench_doc(), threshold=-0.1)

    def test_load_bench_validates(self, tmp_path):
        good = tmp_path / "BENCH_x.json"
        good.write_text(json.dumps(_bench_doc(a=1.0)))
        assert load_bench(good)["suite"] == "allocation"
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        with pytest.raises(BenchDiffError, match="suite"):
            load_bench(bad)
        with pytest.raises(BenchDiffError, match="cannot read"):
            load_bench(tmp_path / "absent.json")

    def test_mean_falls_back_to_min(self):
        old = {"suite": "s", "benchmarks": [{"name": "a", "min": 1.0}]}
        new = {"suite": "s", "benchmarks": [{"name": "a", "min": 2.0}]}
        diff = bench_diff(old, new, threshold=0.25)
        assert diff.deltas[0].ratio == pytest.approx(2.0)

    def test_committed_artifact_diffs_against_itself(self):
        from pathlib import Path

        path = Path(__file__).parent.parent / "benchmarks" / "BENCH_allocation.json"
        doc = load_bench(path)
        diff = bench_diff(doc, doc)
        assert diff.regressions == []
        assert diff.deltas  # the committed artifact has benchmarks


class TestSearchCounters:
    def test_search_frontier_counters_flow_into_report(self, tmp_path):
        """Counters the bounded merge search emits surface in obs report."""
        from repro.arch.resources import ResourceVector
        from repro.core.allocation import AllocationOptions
        from repro.core.partitioner import PartitionerOptions, partition
        from repro.eval.example_design import example_design
        from repro.obs import RecordingTracer

        tracer = RecordingTracer()
        opts = PartitionerOptions(
            allocation=AllocationOptions(beam_width=4, prune=True)
        )
        partition(example_design(), ResourceVector(5000, 64, 64), opts, tracer)
        assert "search.nodes_expanded" in tracer.counters
        assert "search.nodes_pruned" in tracer.counters

        _write_run(tmp_path / "t", counters=dict(tracer.counters))
        report = aggregate_run(tmp_path / "t")
        text = render_run_report(report)
        assert "search.nodes_expanded" in text
        assert "search.nodes_pruned" in text
