"""Histogram / QuantileSummary: exactness, merging, serialisation.

The merge properties matter operationally: worker processes record
histograms locally and the parent folds them together, so exact fields
(count/sum/min/max/bucket counts) must merge *associatively* -- any
grouping of the same observations yields the same aggregate.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import DEFAULT_BOUNDS, Histogram, MetricsError, QuantileSummary
from repro.obs.metrics import merge_histogram_maps

values = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestQuantileSummary:
    def test_exact_until_cap(self):
        s = QuantileSummary(max_samples=64)
        for v in range(10):
            s.observe(float(v))
        assert s.count == 10
        assert s.total == 45.0
        assert s.minimum == 0.0 and s.maximum == 9.0
        assert s.quantile(0.0) == 0.0
        assert s.quantile(1.0) == 9.0
        assert s.quantile(0.5) == pytest.approx(4.5)

    def test_empty_quantile_is_none(self):
        assert QuantileSummary().quantile(0.5) is None

    def test_quantile_out_of_range_raises(self):
        with pytest.raises(MetricsError):
            QuantileSummary().quantile(1.5)

    def test_thinning_bounds_memory_but_keeps_aggregates(self):
        s = QuantileSummary(max_samples=16)
        n = 10_000
        for v in range(n):
            s.observe(float(v))
        assert s.count == n
        assert s.total == float(sum(range(n)))
        assert s.minimum == 0.0 and s.maximum == float(n - 1)
        assert len(s._samples) < 16
        # The thinned estimate stays in the data range and roughly central.
        est = s.quantile(0.5)
        assert 0.0 <= est <= n - 1

    def test_deterministic(self):
        a, b = QuantileSummary(max_samples=8), QuantileSummary(max_samples=8)
        for v in range(1000):
            a.observe(v * 0.1)
            b.observe(v * 0.1)
        assert a.to_dict() == b.to_dict()

    def test_round_trip(self):
        s = QuantileSummary(max_samples=8)
        for v in range(100):
            s.observe(float(v))
        doc = s.to_dict()
        back = QuantileSummary.from_dict(doc)
        assert back.to_dict() == doc

    def test_rejects_malformed(self):
        with pytest.raises(MetricsError):
            QuantileSummary.from_dict({"count": "many"})
        with pytest.raises(MetricsError):
            QuantileSummary.from_dict(
                {"count": 1, "sum": 1.0, "min": 1.0, "max": 1.0, "stride": 0}
            )

    def test_min_cap(self):
        with pytest.raises(MetricsError):
            QuantileSummary(max_samples=1)


class TestHistogram:
    def test_bucket_assignment_le_semantics(self):
        h = Histogram(bounds=(1.0, 10.0))
        for v in (0.5, 1.0, 5.0, 10.0, 11.0):
            h.observe(v)
        assert h.bucket_counts == [2, 2, 1]
        assert h.cumulative_buckets() == [(1.0, 2), (10.0, 4), (math.inf, 5)]

    def test_default_bounds(self):
        h = Histogram()
        assert h.bounds == DEFAULT_BOUNDS
        assert len(h.bucket_counts) == len(DEFAULT_BOUNDS) + 1

    def test_rejects_bad_bounds(self):
        with pytest.raises(MetricsError):
            Histogram(bounds=())
        with pytest.raises(MetricsError):
            Histogram(bounds=(1.0, 1.0))
        with pytest.raises(MetricsError):
            Histogram(bounds=(2.0, 1.0))

    def test_aggregates(self):
        h = Histogram(bounds=(1.0,))
        assert h.mean is None and h.percentile(50) is None
        h.observe(2.0)
        h.observe(4.0)
        assert h.count == 2 and h.total == 6.0 and h.mean == 3.0
        assert h.minimum == 2.0 and h.maximum == 4.0
        assert h.percentile(50) == pytest.approx(3.0)

    def test_bucket_quantile_fallback_without_samples(self):
        h = Histogram(bounds=(1.0, 2.0))
        for v in (0.5, 1.5, 1.6, 1.7):
            h.observe(v)
        doc = h.to_dict()
        doc["summary"]["samples"] = []  # a thinned-away document
        back = Histogram.from_dict(doc)
        est = back.percentile(50)
        assert est is not None and 0.0 <= est <= 2.0

    def test_merge_requires_matching_bounds(self):
        with pytest.raises(MetricsError):
            Histogram(bounds=(1.0,)).merge(Histogram(bounds=(2.0,)))

    def test_round_trip(self):
        h = Histogram(bounds=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        doc = h.to_dict()
        assert Histogram.from_dict(doc).to_dict() == doc

    def test_from_dict_rejects_wrong_count_arity(self):
        with pytest.raises(MetricsError):
            Histogram.from_dict({"bounds": [1.0], "bucket_counts": [1]})


class TestMergeAssociativity:
    """Any grouping of the same observations -> the same exact fields."""

    @staticmethod
    def _exact(h: Histogram) -> tuple:
        return (h.count, pytest.approx(h.total), h.minimum, h.maximum,
                tuple(h.bucket_counts))

    @settings(max_examples=50, deadline=None)
    @given(
        chunks=st.lists(
            st.lists(values, min_size=0, max_size=30),
            min_size=2, max_size=5,
        )
    )
    def test_histogram_merge_grouping_invariant(self, chunks):
        def hist(vals):
            h = Histogram(bounds=(0.1, 1.0, 100.0), max_samples=8)
            for v in vals:
                h.observe(v)
            return h

        # Left fold of per-chunk histograms...
        left = hist([])
        for chunk in chunks:
            left.merge(hist(chunk))
        # ... right fold ...
        right = hist([])
        for chunk in reversed(chunks):
            right.merge(hist(chunk))
        # ... and one histogram fed everything directly.
        flat = hist([v for chunk in chunks for v in chunk])

        for other in (right, flat):
            assert left.count == other.count
            assert left.total == pytest.approx(other.total)
            assert left.minimum == other.minimum
            assert left.maximum == other.maximum
            assert left.bucket_counts == other.bucket_counts

    def test_merge_histogram_maps_copies_on_adopt(self):
        src = Histogram(bounds=(1.0,))
        src.observe(0.5)
        target: dict = {}
        merge_histogram_maps(target, {"m": src})
        src.observe(0.5)  # must not leak into the adopted copy
        assert target["m"].count == 1
        merge_histogram_maps(target, {"m": src})
        assert target["m"].count == 3
