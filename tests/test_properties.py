"""Hypothesis property tests over randomly generated PR designs.

These are the library-wide invariants: whatever design the generator
produces, the pipeline must yield valid, cost-consistent schemes with the
dominance relations the paper's evaluation relies on.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.arch.resources import ResourceVector
from repro.core.baselines import (
    one_module_per_region_scheme,
    single_region_scheme,
    static_scheme,
)
from repro.core.clustering import enumerate_base_partitions
from repro.core.compatibility import are_compatible
from repro.core.cost import (
    TransitionPolicy,
    total_reconfiguration_frames,
    transition_frames,
    worst_case_frames,
)
from repro.core.covering import candidate_partition_sets, cover
from repro.core.matrix import ConnectivityMatrix
from repro.core.partitioner import partition
from repro.synth.generator import GeneratorConfig, generate_design
from repro.synth.profiles import CircuitClass

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def synthetic_designs(draw):
    """Designs from the real Sec. V generator, seeded by hypothesis."""
    seed = draw(st.integers(0, 2**32 - 1))
    cls = draw(st.sampled_from(list(CircuitClass)))
    rng = np.random.default_rng(seed)
    cfg = GeneratorConfig(max_modules=4, max_modes=3)
    return generate_design(rng, cls, name=f"prop-{seed}", config=cfg)


def generous_budget(design):
    """Room for every mode in its own region, tile rounding included."""
    from repro.arch.tiles import quantised_footprint

    need = ResourceVector.sum(
        quantised_footprint(m.resources) for m in design.all_modes
    )
    return need + ResourceVector(100, 16, 16)


def tight_budget(design):
    need = single_region_scheme(design).resource_usage()
    return ResourceVector(
        int(need.clb * 1.3) + 20, int(need.bram * 1.5) + 8, int(need.dsp * 1.5) + 8
    )


class TestPipelineInvariants:
    @SETTINGS
    @given(synthetic_designs())
    def test_covering_always_succeeds_with_all_partitions(self, design):
        cm = ConnectivityMatrix.from_design(design)
        bps = enumerate_base_partitions(design, cm)
        cps = cover(bps, cm)
        assert cps is not None
        cps.validate(design)

    @SETTINGS
    @given(synthetic_designs())
    def test_all_candidate_sets_valid(self, design):
        cm = ConnectivityMatrix.from_design(design)
        bps = enumerate_base_partitions(design, cm)
        for cps in candidate_partition_sets(bps, cm, max_sets=10):
            cps.validate(design)

    @SETTINGS
    @given(synthetic_designs())
    def test_partitions_in_one_region_pairwise_compatible(self, design):
        result = partition(design, tight_budget(design))
        if result.scheme.strategy == "single-region":
            # The single-region fallback deliberately hosts one partition
            # per configuration; they reconfigure wholesale instead of
            # being compatibility-checked alternatives.
            return
        for region in result.scheme.regions:
            ps = region.partitions
            for i in range(len(ps)):
                for j in range(i + 1, len(ps)):
                    assert are_compatible(ps[i], ps[j], design)

    @SETTINGS
    @given(synthetic_designs())
    def test_proposed_fits_and_never_worse_than_single(self, design):
        budget = tight_budget(design)
        result = partition(design, budget)
        assert result.scheme.fits(budget)
        single = single_region_scheme(design)
        assert result.total_frames <= total_reconfiguration_frames(single)

    @SETTINGS
    @given(synthetic_designs())
    def test_generous_budget_gives_zero_cost(self, design):
        result = partition(design, generous_budget(design))
        assert result.total_frames == 0

    @SETTINGS
    @given(synthetic_designs())
    def test_reported_costs_match_scheme(self, design):
        result = partition(design, tight_budget(design))
        assert result.total_frames == total_reconfiguration_frames(result.scheme)
        assert result.worst_frames == worst_case_frames(result.scheme)


class TestCostInvariants:
    @SETTINGS
    @given(synthetic_designs())
    def test_triangle_like_symmetry(self, design):
        scheme = one_module_per_region_scheme(design)
        names = [c.name for c in design.configurations][:4]
        for policy in TransitionPolicy:
            for a in names:
                for b in names:
                    assert transition_frames(
                        scheme, a, b, policy
                    ) == transition_frames(scheme, b, a, policy)

    @SETTINGS
    @given(synthetic_designs())
    def test_lenient_bounded_by_strict(self, design):
        for scheme in (
            one_module_per_region_scheme(design),
            single_region_scheme(design),
        ):
            assert total_reconfiguration_frames(
                scheme, TransitionPolicy.LENIENT
            ) <= total_reconfiguration_frames(scheme, TransitionPolicy.STRICT)

    @SETTINGS
    @given(synthetic_designs())
    def test_worst_bounded_by_total(self, design):
        scheme = one_module_per_region_scheme(design)
        assert worst_case_frames(scheme) <= total_reconfiguration_frames(scheme)

    @SETTINGS
    @given(synthetic_designs())
    def test_single_region_minimal_area(self, design):
        """Sec. IV-A: the single-region arrangement is the area floor."""
        single = single_region_scheme(design).resource_usage()
        modular = one_module_per_region_scheme(design).resource_usage()
        proposed = partition(design, tight_budget(design)).usage
        assert single.fits_in(modular)
        assert single.clb <= proposed.clb + 20  # tile rounding slack


class TestRuntimeAgreement:
    @SETTINGS
    @given(synthetic_designs())
    def test_fresh_pair_replay_bracketed_by_policies(self, design):
        from repro.runtime.manager import ConfigurationManager

        scheme = one_module_per_region_scheme(design)
        names = [c.name for c in design.configurations]
        if len(names) < 2:
            return
        a, b = names[0], names[-1]
        mgr = ConfigurationManager(scheme)
        mgr.goto(a)
        measured = mgr.goto(b).frames
        assert transition_frames(
            scheme, a, b, TransitionPolicy.LENIENT
        ) <= measured <= transition_frames(scheme, a, b, TransitionPolicy.STRICT)


class TestFlowRoundTrips:
    @SETTINGS
    @given(synthetic_designs())
    def test_xml_round_trip_preserves_everything(self, design):
        from repro.flow.xmlio import design_to_xml, parse_design

        doc = parse_design(design_to_xml(design))
        back = doc.design
        assert back.name == design.name
        assert back.static_resources == design.static_resources
        assert {m.name for m in back.all_modes} == {
            m.name for m in design.all_modes
        }
        for mode in design.all_modes:
            assert back.mode(mode.name).resources == mode.resources
            assert back.mode(mode.name).interface == mode.interface
        assert {frozenset(c.modes) for c in back.configurations} == {
            frozenset(c.modes) for c in design.configurations
        }

    @SETTINGS
    @given(synthetic_designs())
    def test_partitioned_scheme_always_floorplans_somewhere(self, design):
        """The feedback loop terminates with a valid placement for every
        generated design that fits the ladder at all."""
        from repro.arch.library import virtex5_ladder
        from repro.core.partitioner import InfeasibleError
        from repro.flow.feedback import partition_and_place

        try:
            placed = partition_and_place(design, virtex5_ladder())
        except InfeasibleError:
            return
        placed.plan.validate(placed.scheme)

    @SETTINGS
    @given(synthetic_designs())
    def test_bitstream_round_trip_for_modular_scheme(self, design):
        from repro.flow.bitgen import BitstreamInfo, build_partial_bitstream, parse_bitstream

        scheme = one_module_per_region_scheme(design)
        region = scheme.regions[0]
        info = BitstreamInfo(
            design=design.name,
            region=region.name,
            partition_label=region.partitions[0].label,
            frame_address=0x100,
            frames=max(1, region.frames // 36),
        )
        assert parse_bitstream(build_partial_bitstream(info)) == info
