"""End-to-end integration tests: XML -> partition -> floorplan -> UCF ->
bitstreams -> runtime replay, plus cross-model consistency oracles."""

from __future__ import annotations

import pytest

from repro.arch.library import virtex5_full, virtex5_ladder
from repro.arch.resources import ResourceVector
from repro.core.baselines import baseline_schemes
from repro.core.cost import (
    TransitionPolicy,
    total_reconfiguration_frames,
    transition_frames,
)
from repro.core.partitioner import partition, partition_with_device_selection
from repro.eval.casestudy import CASESTUDY_BUDGET, casestudy_design
from repro.flow.bitstream import generate_bitstreams
from repro.flow.constraints import emit_ucf, parse_ranges
from repro.flow.floorplan import floorplan
from repro.flow.netlist import build_netlists, variant_count
from repro.flow.xmlio import design_to_xml, parse_design
from repro.runtime.adaptive import UniformEnvironment
from repro.runtime.manager import ConfigurationManager, replay


class TestFullToolFlow:
    """Fig. 2 end to end, starting from an XML design description."""

    def test_xml_to_bitstreams(self):
        design = casestudy_design()
        xml = design_to_xml(design, device_name="FX70T", budget=CASESTUDY_BUDGET)
        doc = parse_design(xml)

        library = virtex5_full()
        device = library.get(doc.device_name)
        result = partition(doc.design, doc.budget)

        plan = floorplan(result.scheme, device)
        ucf = emit_ucf(result.scheme, plan)
        groups = parse_ranges(ucf)
        assert len(groups) == result.scheme.region_count

        netlists = build_netlists(result.scheme)
        bits = generate_bitstreams(result.scheme, device, plan)
        assert len(bits.partials) == variant_count(netlists)
        assert bits.total_storage_bytes > bits.full_bytes

    def test_partition_then_replay(self):
        design = casestudy_design()
        result = partition(design, CASESTUDY_BUDGET)
        trace = UniformEnvironment(design).trace(300, seed=42)
        stats = replay(result.scheme, trace)
        assert stats.transitions == 299
        assert stats.worst_frames <= result.worst_frames


class TestCrossModelConsistency:
    """The runtime simulator and the analytic cost model must agree up to
    the documented policy gap: the LENIENT proxy treats a region coming
    into use as already loaded (the information Eq. 7 cannot have), while
    the simulator charges the actual load.  STRICT over-counts instead,
    so every real transition lands between the two."""

    def test_fresh_transition_bracketed_by_policies(self):
        design = casestudy_design()
        schemes = baseline_schemes(design)
        schemes["proposed"] = partition(design, CASESTUDY_BUDGET).scheme
        names = [c.name for c in design.configurations]
        for scheme in schemes.values():
            for a in names[:4]:
                for b in names[4:]:
                    mgr = ConfigurationManager(scheme)
                    mgr.goto(a)
                    measured = mgr.goto(b).frames
                    assert transition_frames(
                        scheme, a, b, TransitionPolicy.LENIENT
                    ) <= measured <= transition_frames(
                        scheme, a, b, TransitionPolicy.STRICT
                    )

    def test_fresh_transition_exact_when_regions_always_active(self):
        """For the modular receiver every module appears in every
        configuration, so no region is ever unused and the simulator
        agrees with Eq. 8 exactly under both policies."""
        design = casestudy_design()
        scheme = baseline_schemes(design)["modular"]
        names = [c.name for c in design.configurations]
        for a in names[:4]:
            for b in names[4:]:
                mgr = ConfigurationManager(scheme)
                mgr.goto(a)
                assert mgr.goto(b).frames == transition_frames(scheme, a, b)

    def test_all_pairs_tour_total_bracketed(self):
        """Fresh per-pair visits land between the LENIENT and STRICT
        totals; a continuous tour can only be cheaper than fresh visits
        (stale contents persist)."""
        import itertools

        design = casestudy_design()
        scheme = partition(design, CASESTUDY_BUDGET).scheme
        names = [c.name for c in design.configurations]

        fresh_total = 0
        for a, b in itertools.combinations(names, 2):
            mgr = ConfigurationManager(scheme)
            mgr.goto(a)
            fresh_total += mgr.goto(b).frames
        assert (
            total_reconfiguration_frames(scheme, TransitionPolicy.LENIENT)
            <= fresh_total
            <= total_reconfiguration_frames(scheme, TransitionPolicy.STRICT)
        )

        # A continuous tour is bounded above by STRICT summed over its
        # consecutive hops (each hop rewrites at most what STRICT counts).
        tour = [n for pair in itertools.combinations(names, 2) for n in pair]
        stats = replay(scheme, tour)
        strict_hops = sum(
            transition_frames(scheme, a, b, TransitionPolicy.STRICT)
            for a, b in zip(tour, tour[1:])
        )
        assert stats.total_frames <= strict_hops

    def test_strict_policy_upper_bounds_runtime(self):
        """STRICT Eq. 7 over-counts relative to any actual trace."""
        design = casestudy_design()
        scheme = partition(design, CASESTUDY_BUDGET).scheme
        names = [c.name for c in design.configurations]
        trace = names + names[::-1]
        stats = replay(scheme, trace)
        pairwise_strict = sum(
            transition_frames(scheme, a, b, TransitionPolicy.STRICT)
            for a, b in zip(trace, trace[1:])
        )
        assert stats.total_frames <= pairwise_strict


class TestDeviceSelectionIntegration:
    def test_feedback_loop_places_every_design(self):
        """The paper's future-work item, implemented: a scheme that fits
        by aggregate area may not be placeable (the partitioner fills the
        device), so floorplan failures feed back into partitioning
        (budget tightening, then device escalation) until a placed
        scheme exists."""
        from repro.flow.feedback import partition_and_place
        from repro.synth.generator import generate_population

        library = virtex5_ladder()
        for _, design in generate_population(6, seed=31):
            placed = partition_and_place(design, library)
            placed.plan.validate(placed.scheme)
            assert placed.scheme.fits(
                placed.device.usable_capacity(design.static_resources)
            )

    def test_feedback_loop_reports_attempts(self):
        from repro.flow.feedback import partition_and_place
        from repro.synth.generator import generate_population

        library = virtex5_ladder()
        _, design = next(iter(generate_population(1, seed=31)))
        placed = partition_and_place(design, library)
        assert placed.partition_attempts >= 1
        assert placed.device_escalations >= 0


class TestPolicyConsistency:
    def test_lenient_total_never_exceeds_strict(self):
        design = casestudy_design()
        for scheme in baseline_schemes(design).values():
            assert total_reconfiguration_frames(
                scheme, TransitionPolicy.LENIENT
            ) <= total_reconfiguration_frames(scheme, TransitionPolicy.STRICT)

    def test_partitioner_with_strict_policy_still_beats_single(self):
        from repro.core.baselines import single_region_scheme
        from repro.core.partitioner import PartitionerOptions

        design = casestudy_design()
        opts = PartitionerOptions(policy=TransitionPolicy.STRICT)
        result = partition(design, CASESTUDY_BUDGET, opts)
        single = single_region_scheme(design)
        assert result.total_frames <= total_reconfiguration_frames(
            single, TransitionPolicy.STRICT
        )
