"""Documentation-accuracy guards.

The walkthrough in docs/ALGORITHM.md quotes concrete artefacts (matrix
rows, partition counts, frame totals).  These tests execute the same
steps so the documentation cannot silently rot.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.arch.resources import ResourceVector
from repro.core.clustering import enumerate_base_partitions
from repro.core.matrix import ConnectivityMatrix
from repro.core.partitioner import partition
from repro.eval.example_design import example_design

DOCS = Path(__file__).resolve().parent.parent / "docs"


class TestAlgorithmWalkthrough:
    def test_matrix_rendering_matches_doc(self):
        cm = ConnectivityMatrix.from_design(example_design())
        rendered = cm.render()
        doc = (DOCS / "ALGORITHM.md").read_text()
        # The doc quotes the Conf.1 row verbatim (modulo comment markers).
        assert "Conf.1   0  0  1  0  1  0  0  1" in rendered
        assert "Conf.1   0  0  1  0  1  0  0  1" in doc

    def test_partition_count_matches_doc(self):
        n = len(enumerate_base_partitions(example_design()))
        doc = (DOCS / "ALGORITHM.md").read_text()
        assert n == 26
        assert "26 partitions" in doc

    def test_quoted_totals_match(self):
        result = partition(example_design(), ResourceVector(520, 16, 16))
        doc = (DOCS / "ALGORITHM.md").read_text()
        assert result.total_frames == 3330
        assert "3330 frames" in doc
        assert "7000" in doc  # the single-region comparison

    def test_quoted_scheme_structure(self):
        result = partition(example_design(), ResourceVector(520, 16, 16))
        described = result.scheme.describe()
        # The doc shows three never-reconfiguring regions.
        assert described.count("never reconfigures") == 3


class TestDocsMentionRealSymbols:
    """Every backticked dotted repro.* symbol in the docs must import."""

    @pytest.mark.parametrize(
        "doc",
        [
            "ALGORITHM.md",
            "API.md",
            "FAQ.md",
            "OBSERVABILITY.md",
            "PERFORMANCE.md",
            "REPLAY.md",
            "REPRODUCING.md",
            "SERVICE.md",
        ],
    )
    def test_module_references_resolve(self, doc):
        import importlib

        text = (DOCS / doc).read_text()
        modules = set(re.findall(r"`(repro(?:\.\w+)+)`", text))
        for dotted in modules:
            parts = dotted.split(".")
            # Try as module, then as module.attribute.
            try:
                importlib.import_module(dotted)
                continue
            except ImportError:
                pass
            mod = importlib.import_module(".".join(parts[:-1]))
            assert hasattr(mod, parts[-1]), f"{doc}: {dotted} does not resolve"


class TestObservabilityDocNumbers:
    """docs/OBSERVABILITY.md and docs/ALGORITHM.md quote trace metrics
    for the running example; re-measure them."""

    def test_quoted_metrics_match(self):
        from repro.obs import RecordingTracer

        tracer = RecordingTracer()
        partition(example_design(), ResourceVector(520, 16, 16), tracer=tracer)
        c, g = tracer.counters, tracer.gauges
        assert c["clustering.cliques_enumerated"] == 27
        assert c["clustering.cliques_filtered"] == 1
        assert g["clustering.base_partitions"] == 26
        assert c["covering.passes"] == 23
        assert c["covering.sets_produced"] == 22
        assert c["partition.candidate_sets"] == 22
        assert g["partition.total_frames"] == 3330
        assert g["partition.regions"] == 5
        doc = (DOCS / "OBSERVABILITY.md").read_text()
        for quoted in ("26", "22", "3330"):
            assert quoted in doc


class TestReadmeQuickstartRuns:
    def test_readme_code_block(self):
        """The README's quickstart snippet executes as printed."""
        text = (Path(__file__).resolve().parent.parent / "README.md").read_text()
        blocks = re.findall(r"```python\n(.*?)```", text, re.S)
        assert blocks, "README must contain a python quickstart block"
        ns: dict = {}
        exec(blocks[0], ns)  # noqa: S102 - executing our own README
        assert "result" in ns
        assert ns["result"].total_frames >= 0
