"""Run-dashboard renderer over RunReport objects."""

from __future__ import annotations

from repro.obs.report import RunReport
from repro.render import render_report_html, renderer_meta

from .conftest import parse_markup
from .sample_inputs import sample_report


class TestPopulatedReport:
    def test_well_formed_and_stamped(self):
        text = render_report_html(sample_report())
        parse_markup(text)
        assert f"<!-- {renderer_meta('report')} -->" in text

    def test_job_tiles_carry_the_counts(self):
        report = sample_report()
        text = render_report_html(report)
        assert str(report.jobs_total) in text
        assert "cache hit rate" in text
        assert "30.0%" in text  # 3 cached of 10

    def test_latency_percentiles_and_sparkline(self):
        text = render_report_html(sample_report())
        assert "p50" in text and "p99" in text
        assert "polyline" in text  # the latency profile sparkline

    def test_histograms_counters_gauges_tabulated(self):
        text = render_report_html(sample_report())
        assert "service.job_wall_s" in text
        assert "batch.jobs.done" in text
        assert "batch.queue.depth" in text

    def test_double_render_is_byte_identical(self):
        report = sample_report()
        assert render_report_html(report) == render_report_html(report)


class TestEmptyReport:
    def test_empty_report_renders_no_data_sections(self):
        report = RunReport(directory="/tmp/empty")
        assert report.is_empty
        text = render_report_html(report)
        parse_markup(text)
        assert text.count("no data recorded") >= 4
        assert "contains no records yet" in text
        assert "--telemetry-dir" in text

    def test_empty_report_is_still_deterministic(self):
        report = RunReport(directory="/tmp/empty")
        assert render_report_html(report) == render_report_html(report)

    def test_partial_report_mixes_data_and_no_data(self):
        report = RunReport(directory="d")
        report.runs = 1
        report.jobs_cached = 2  # jobs, but no computed latencies
        text = render_report_html(report)
        parse_markup(text)
        assert "contains no records yet" not in text
        assert "no data recorded" in text  # the latency section
