"""The replay latency dashboard renderer: structure, determinism, golden."""

from __future__ import annotations

from repro.obs.metrics import Histogram
from repro.render import artifact_key, render_replay_html, renderer_meta
from repro.replay import REPLAY_LATENCY_BOUNDS, PolicyComparison, comparison_key
from repro.replay.compare import PolicyLatency

from .conftest import parse_markup
from .test_determinism import check_golden


def _latency(policy: str, values, stalls=0, prefetch_hits=0, store_misses=0):
    agg = PolicyLatency(policy=policy)
    agg.traces = 2
    agg.events = 4 * len(values)
    agg.switches = len(values)
    agg.rewrites = 2 * len(values)
    agg.total_frames = 100 * len(values)
    agg.total_seconds = sum(values)
    agg.stall_events = stalls
    agg.slot_budget_s = agg.events * 0.01
    agg.prefetch_hits = prefetch_hits
    agg.store_misses = store_misses
    agg.latency = Histogram(bounds=REPLAY_LATENCY_BOUNDS)
    for v in values:
        agg.latency.observe(v)
    return agg


def sample_comparison() -> PolicyComparison:
    """A fixed two-policy comparison (no partitioning, fully synthetic)."""
    fast = _latency(
        "prefetch-oracle", [0.0002, 0.0004, 0.0008, 0.002], prefetch_hits=3
    )
    slow = _latency(
        "no-prefetch", [0.004, 0.006, 0.009, 0.02], stalls=1, store_misses=2
    )
    keys = ("a" * 64, "b" * 64)
    return PolicyComparison(policies=(slow, fast), keys=keys)


class TestReplayDashboard:
    def test_golden(self):
        check_golden("replay.html", render_replay_html(sample_comparison()))

    def test_double_render_is_byte_identical(self):
        comparison = sample_comparison()
        assert render_replay_html(comparison) == render_replay_html(comparison)

    def test_well_formed_and_stamped(self):
        text = render_replay_html(sample_comparison())
        parse_markup(text)
        assert renderer_meta("replay") in text

    def test_best_policy_flagged(self):
        text = render_replay_html(sample_comparison())
        assert "best p95" in text
        assert "prefetch-oracle" in text

    def test_prefetch_section_renders_effect_rows(self):
        text = render_replay_html(sample_comparison())
        assert "Prefetch and bitstream-store effects" in text
        assert "frames streamed" in text

    def test_empty_comparison_degrades(self):
        empty = PolicyComparison(policies=(), keys=())
        text = render_replay_html(empty)
        parse_markup(text)
        assert "no replay records" in text
        assert "repro replay sweep" in text

    def test_no_prefetching_policies_degrades_that_section(self):
        plain = PolicyComparison(
            policies=(_latency("no-prefetch", [0.001, 0.002]),), keys=("c" * 64,)
        )
        text = render_replay_html(plain)
        assert "no prefetching or eviction policies" in text

    def test_artifact_key_accepts_replay_renderer(self):
        comparison = sample_comparison()
        key = artifact_key(comparison_key(comparison.keys), "replay")
        assert len(key) == 64
        assert key != artifact_key(comparison_key(comparison.keys), "report")
