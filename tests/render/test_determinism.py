"""The determinism contract: goldens, cache keys, renderer identity.

Golden files pin the exact bytes of every renderer on fixed inputs: the
Sec. IV example (scheme + floorplan) and the synthetic report/history of
``sample_inputs``.  A legitimate output change must bump
``RENDERER_VERSION`` and regenerate the goldens with
``REPRO_UPDATE_GOLDENS=1 pytest tests/render``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

import repro.render as render_pkg
from repro.core import problem_key
from repro.render import (
    RENDERERS,
    artifact_key,
    render_bench_trend_html,
    render_floorplan_svg,
    render_report_html,
    render_scheme_svg,
    renderer_meta,
)

from .sample_inputs import sample_history, sample_report

GOLDENS = Path(__file__).parent / "goldens"


def check_golden(name: str, text: str) -> None:
    path = GOLDENS / name
    if os.environ.get("REPRO_UPDATE_GOLDENS"):
        path.write_text(text, encoding="utf-8")
        return
    assert path.exists(), (
        f"missing golden {path}; regenerate with "
        "REPRO_UPDATE_GOLDENS=1 pytest tests/render"
    )
    assert text == path.read_text(encoding="utf-8"), (
        f"{name} drifted from its golden; if the change is intentional, "
        "bump RENDERER_VERSION and regenerate with "
        "REPRO_UPDATE_GOLDENS=1 pytest tests/render"
    )


class TestGoldens:
    def test_scheme_golden(self, example_result):
        check_golden("example_scheme.svg", render_scheme_svg(example_result))

    def test_floorplan_golden(self, example_plan):
        check_golden(
            "example_floorplan.svg", render_floorplan_svg(example_plan)
        )

    def test_report_golden(self):
        check_golden("report_sample.html", render_report_html(sample_report()))

    def test_bench_golden(self):
        check_golden(
            "bench_sample.html", render_bench_trend_html(sample_history())
        )


class TestArtifactKeys:
    def test_renderers_key_differently_for_one_problem(self, paper_example):
        pk = problem_key(paper_example)
        keys = {artifact_key(pk, r) for r in RENDERERS}
        assert len(keys) == len(RENDERERS)

    def test_key_is_stable(self, paper_example):
        pk = problem_key(paper_example)
        assert artifact_key(pk, "scheme") == artifact_key(pk, "scheme")

    def test_unknown_renderer_rejected(self, paper_example):
        with pytest.raises(ValueError, match="unknown renderer"):
            artifact_key(problem_key(paper_example), "pdf")

    def test_version_bump_changes_every_key(self, paper_example, monkeypatch):
        pk = problem_key(paper_example)
        before = artifact_key(pk, "scheme")
        monkeypatch.setattr(
            render_pkg, "RENDERER_VERSION", render_pkg.RENDERER_VERSION + 1
        )
        assert artifact_key(pk, "scheme") != before

    def test_meta_stamp_names_renderer_and_version(self):
        assert renderer_meta("scheme") == (
            f"repro.render/scheme v{render_pkg.RENDERER_VERSION}"
        )
