"""Bench-trend renderer over ordered BENCH histories."""

from __future__ import annotations

from repro.render import render_bench_trend_html, renderer_meta

from .conftest import parse_markup
from .sample_inputs import sample_history


class TestTrendPage:
    def test_well_formed_and_stamped(self):
        text = render_bench_trend_html(sample_history())
        parse_markup(text)
        assert f"<!-- {renderer_meta('bench')} -->" in text

    def test_documents_overview_lists_every_label(self):
        history = sample_history()
        text = render_bench_trend_html(history)
        for label, _ in history:
            assert label in text

    def test_flags_match_bench_diff_semantics(self):
        # partition: 0.50 -> 0.80 (+60%) regresses; floorplan:
        # 0.20 -> 0.12 (-40%) improves; sweep stays within 25%.
        text = render_bench_trend_html(sample_history())
        assert text.count("REGRESSION") == 1
        assert text.count(">improved<") == 1
        assert "+60.0%" in text
        assert "-40.0%" in text

    def test_threshold_is_configurable(self):
        text = render_bench_trend_html(sample_history(), threshold=10.0)
        assert "REGRESSION" not in text
        assert "1000%" in text  # the threshold line reflects the argument

    def test_custom_records_table(self):
        text = render_bench_trend_html(sample_history())
        assert "Custom records" in text
        assert "frames" in text and "3330" in text

    def test_benchmark_missing_from_some_documents(self):
        history = sample_history()
        history[1][1]["benchmarks"] = []  # middle document lost its timings
        text = render_bench_trend_html(history)
        parse_markup(text)
        assert "partition" in text

    def test_double_render_is_byte_identical(self):
        history = sample_history()
        assert render_bench_trend_html(history) == render_bench_trend_html(
            history
        )


class TestEmptyHistory:
    def test_empty_history_renders_no_data_page(self):
        text = render_bench_trend_html([])
        parse_markup(text)
        assert "no BENCH documents given" in text

    def test_documents_without_timings(self):
        text = render_bench_trend_html([("a.json", {"suite": "x"})])
        parse_markup(text)
        assert "no comparable benchmark timings" in text
