"""Fixtures for the rendering-layer tests."""

from __future__ import annotations

import xml.etree.ElementTree as ET

import pytest

from repro.arch import ResourceVector, virtex5_ladder
from repro.core.partitioner import partition
from repro.eval.example_design import example_design
from repro.flow.floorplan import plan_on_smallest_device


def parse_markup(text: str) -> ET.Element:
    """Structural well-formedness check for SVG and HTML artifacts.

    Both artifact kinds are emitted XML-well-formed by design
    (explicitly closed tags, self-closed voids), so one parser covers
    them; only the HTML doctype line has to go first.
    """
    if text.startswith("<!DOCTYPE"):
        text = text.split("\n", 1)[1]
    return ET.fromstring(text)


@pytest.fixture(scope="session")
def example_result():
    """The Sec. IV example partitioned under the walkthrough budget."""
    return partition(example_design(), ResourceVector(520, 16, 16))


@pytest.fixture(scope="session")
def example_plan(example_result):
    """The example scheme placed on the smallest fitting ladder device."""
    return plan_on_smallest_device(example_result.scheme, virtex5_ladder())
