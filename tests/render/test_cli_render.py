"""`repro render` CLI: writing, --check drift detection, the cache."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.service import ArtifactStore

from .conftest import parse_markup


@pytest.fixture
def bench_dir(tmp_path):
    for stamp, mean in (("01", 0.5), ("02", 0.9)):
        (tmp_path / f"BENCH_{stamp}.json").write_text(
            json.dumps(
                {
                    "suite": "core",
                    "benchmarks": [{"name": "partition", "mean": mean}],
                }
            ),
            encoding="utf-8",
        )
    return tmp_path


class TestRenderScheme:
    def test_writes_a_well_formed_svg(self, tmp_path, capsys):
        out = tmp_path / "scheme.svg"
        assert main(["render", "scheme", "example", "--out", str(out)]) == 0
        parse_markup(out.read_text(encoding="utf-8"))
        assert "repro.render/scheme" in out.read_text(encoding="utf-8")

    def test_stdout_with_dash(self, capsys):
        assert main(["render", "scheme", "example", "--out", "-"]) == 0
        parse_markup(capsys.readouterr().out)

    def test_check_passes_on_fresh_artifact(self, tmp_path):
        out = tmp_path / "scheme.svg"
        assert main(["render", "scheme", "example", "--out", str(out)]) == 0
        assert main(
            ["render", "scheme", "example", "--out", str(out), "--check"]
        ) == 0

    def test_check_exits_3_on_drift(self, tmp_path, capsys):
        out = tmp_path / "scheme.svg"
        assert main(["render", "scheme", "example", "--out", str(out)]) == 0
        out.write_text(
            out.read_text(encoding="utf-8") + "<!-- tampered -->\n",
            encoding="utf-8",
        )
        assert main(
            ["render", "scheme", "example", "--out", str(out), "--check"]
        ) == 3
        assert "render drift" in capsys.readouterr().err

    def test_check_exits_1_when_artifact_missing(self, tmp_path, capsys):
        out = tmp_path / "nope.svg"
        assert main(
            ["render", "scheme", "example", "--out", str(out), "--check"]
        ) == 1

    def test_check_rejects_stdout(self, capsys):
        assert main(
            ["render", "scheme", "example", "--out", "-", "--check"]
        ) == 1

    def test_unknown_design_path_errors(self, tmp_path, capsys):
        assert main(
            ["render", "scheme", str(tmp_path / "missing.xml"),
             "--out", "-"]
        ) == 1


class TestRenderCache:
    def test_second_render_hits_the_artifact_cache(self, tmp_path, capsys):
        cache = tmp_path / "art"
        out1, out2 = tmp_path / "a.svg", tmp_path / "b.svg"
        args = ["render", "scheme", "example", "--cache", str(cache)]
        assert main(args + ["--out", str(out1)]) == 0
        assert "artifact cache miss" in capsys.readouterr().err
        assert main(args + ["--out", str(out2)]) == 0
        assert "artifact cache hit" in capsys.readouterr().err
        assert out1.read_bytes() == out2.read_bytes()
        assert len(ArtifactStore(cache)) == 1

    def test_scheme_and_floorplan_cache_separately(self, tmp_path):
        cache = tmp_path / "art"
        for renderer in ("scheme", "floorplan"):
            assert main(
                ["render", renderer, "example", "--cache", str(cache),
                 "--out", str(tmp_path / f"{renderer}.svg")]
            ) == 0
        assert len(ArtifactStore(cache)) == 2


class TestRenderFloorplan:
    def test_auto_device_selection(self, tmp_path):
        out = tmp_path / "plan.svg"
        assert main(["render", "floorplan", "example", "--out", str(out)]) == 0
        text = out.read_text(encoding="utf-8")
        parse_markup(text)
        assert "LX20T" in text  # smallest ladder device that places it

    def test_named_device(self, tmp_path):
        out = tmp_path / "plan.svg"
        assert main(
            ["render", "floorplan", "example", "--device", "LX50T",
             "--out", str(out)]
        ) == 0
        assert "LX50T" in out.read_text(encoding="utf-8")


class TestRenderReport:
    def test_empty_telemetry_dir_exits_0_with_no_data_page(
        self, tmp_path, capsys
    ):
        tel = tmp_path / "tel"
        tel.mkdir()
        out = tmp_path / "dash.html"
        assert main(["render", "report", str(tel), "--out", str(out)]) == 0
        text = out.read_text(encoding="utf-8")
        parse_markup(text)
        assert "no data recorded" in text

    def test_missing_telemetry_dir_exits_1(self, tmp_path, capsys):
        assert main(
            ["render", "report", str(tmp_path / "nope"), "--out", "-"]
        ) == 1
        assert "error:" in capsys.readouterr().err


class TestRenderBench:
    def test_directory_scan_equals_explicit_files(self, bench_dir, tmp_path):
        out1, out2 = tmp_path / "a.html", tmp_path / "b.html"
        assert main(
            ["render", "bench", str(bench_dir), "--out", str(out1)]
        ) == 0
        files = sorted(str(p) for p in bench_dir.glob("BENCH_*.json"))
        assert main(["render", "bench", *files, "--out", str(out2)]) == 0
        assert out1.read_bytes() == out2.read_bytes()
        assert "REGRESSION" in out1.read_text(encoding="utf-8")

    def test_threshold_flag(self, bench_dir, tmp_path):
        out = tmp_path / "t.html"
        assert main(
            ["render", "bench", str(bench_dir), "--threshold", "2.0",
             "--out", str(out)]
        ) == 0
        assert "REGRESSION" not in out.read_text(encoding="utf-8")

    def test_malformed_bench_file_errors(self, tmp_path, capsys):
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text("{}", encoding="utf-8")
        assert main(["render", "bench", str(bad), "--out", "-"]) == 1
        assert "error:" in capsys.readouterr().err
