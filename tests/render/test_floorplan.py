"""Floorplan renderer + the free-space analysis underneath it."""

from __future__ import annotations

from repro.arch import get_device
from repro.flow.floorplan import Floorplan
from repro.render import (
    fragmentation_stats,
    largest_free_rectangle,
    render_floorplan_svg,
    renderer_meta,
)

from .conftest import parse_markup


def grid(rows: list[str]) -> list[list[bool]]:
    """'#' = occupied, '.' = free; row 0 first."""
    return [[c == "#" for c in row] for row in rows]


class TestLargestFreeRectangle:
    def test_empty_grid(self):
        assert largest_free_rectangle([]) is None

    def test_fully_occupied(self):
        assert largest_free_rectangle(grid(["##", "##"])) is None

    def test_fully_free_takes_everything(self):
        assert largest_free_rectangle(grid(["...", "..."])) == (0, 0, 1, 2)

    def test_l_shaped_hole(self):
        # Free space is an L; the best rectangle is the 2x2 block.
        g = grid([
            "..#",
            "..#",
            "###",
        ])
        assert largest_free_rectangle(g) == (0, 0, 1, 1)

    def test_prefers_wide_over_narrow(self):
        g = grid([
            "....",
            "####",
            "..##",
        ])
        assert largest_free_rectangle(g) == (0, 0, 0, 3)

    def test_column_spanning_rectangle(self):
        g = grid([
            "#.#",
            "#.#",
            "#.#",
        ])
        assert largest_free_rectangle(g) == (0, 1, 2, 1)


class TestFragmentationStats:
    def test_empty_plan_is_one_solid_rectangle(self):
        device = get_device("LX20T")
        stats = fragmentation_stats(Floorplan(device=device, placements=()))
        assert stats["occupancy"] == 0.0
        assert stats["fragmentation"] == 0.0
        assert stats["free_tiles"] == float(
            device.rows * device.column_count
        )
        assert stats["largest_free_rect"] == stats["free_tiles"]

    def test_placed_plan_reduces_free_space(self, example_plan):
        stats = fragmentation_stats(example_plan)
        total = example_plan.device.rows * example_plan.device.column_count
        covered = sum(
            p.n_rows * p.n_cols for p in example_plan.placements
        )
        assert stats["occupancy"] == covered / total
        assert 0.0 <= stats["fragmentation"] <= 1.0
        assert stats["largest_free_rect"] <= stats["free_tiles"]


class TestRenderFloorplan:
    def test_well_formed_and_stamped(self, example_plan):
        text = render_floorplan_svg(example_plan)
        parse_markup(text)
        assert f"<!-- {renderer_meta('floorplan')} -->" in text

    def test_shows_device_regions_and_stats(self, example_plan):
        text = render_floorplan_svg(example_plan)
        assert example_plan.device.name in text
        for placement in example_plan.placements:
            assert placement.region_name in text
        assert "occupancy" in text
        assert "largest free rectangle" in text

    def test_zero_placement_plan_renders_bare_grid(self):
        device = get_device("LX20T")
        text = render_floorplan_svg(Floorplan(device=device, placements=()))
        parse_markup(text)
        assert "0 regions" in text
        assert "occupancy 0.0%" in text

    def test_double_render_is_byte_identical(self, example_plan):
        assert render_floorplan_svg(example_plan) == render_floorplan_svg(
            example_plan
        )
