"""Synthetic renderer inputs shared by the render tests and goldens.

Pure in-memory builders (fixed numbers, no clock, no filesystem) so the
dashboard/bench golden files regenerate to identical bytes on any
machine: ``REPRO_UPDATE_GOLDENS=1 pytest tests/render`` rewrites them.
"""

from __future__ import annotations

from repro.obs.metrics import Histogram
from repro.obs.report import RunReport


def sample_report() -> RunReport:
    """A populated RunReport exercising every dashboard section."""
    report = RunReport(directory="tests/render/sample-telemetry")
    report.runs = 2
    report.events = 11
    report.jobs_done = 6
    report.jobs_cached = 3
    report.jobs_failed = 1
    report.retries = 2
    report.timeouts = 1
    report.job_latencies_s = [0.11, 0.14, 0.18, 0.22, 0.35, 0.61]
    report.counters = {"batch.jobs.done": 6.0, "batch.cache.hits": 3.0}
    report.gauges = {"batch.queue.depth": 0.0}
    hist = Histogram()
    for value in (0.02, 0.04, 0.05, 0.11, 0.3, 0.9, 1.4):
        hist.observe(value)
    report.histograms = {"service.job_wall_s": hist}
    return report


def sample_history() -> list[tuple[str, dict]]:
    """Three BENCH documents: one regression, one improvement, one flat."""

    def doc(partition_s: float, floorplan_s: float, sweep_s: float) -> dict:
        return {
            "suite": "core",
            "python": "3.x",
            "machine": "ci",
            "benchmarks": [
                {"name": "partition", "mean": partition_s},
                {"name": "floorplan", "mean": floorplan_s},
                {"name": "sweep", "mean": sweep_s},
            ],
            "records": {"frames": 3330},
        }

    return [
        ("BENCH_2026-01.json", doc(0.50, 0.20, 2.00)),
        ("BENCH_2026-02.json", doc(0.48, 0.21, 2.05)),
        ("BENCH_2026-03.json", doc(0.80, 0.12, 1.98)),
    ]
