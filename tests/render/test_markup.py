"""Unit tests of the deterministic markup primitives."""

from __future__ import annotations

from repro.render._markup import (
    PALETTE,
    Raw,
    color_for,
    coord,
    esc,
    fnum,
    html_page,
    html_table,
    sparkline,
    stat_tiles,
    svg_document,
    svg_rect,
    svg_text,
)

from .conftest import parse_markup


class TestFormatting:
    def test_esc_covers_markup_characters(self):
        assert esc('<a href="x">&</a>') == (
            "&lt;a href=&quot;x&quot;&gt;&amp;&lt;/a&gt;"
        )

    def test_fnum_integers_stay_integers(self):
        assert fnum(3330) == "3330"
        assert fnum(4.0) == "4"

    def test_fnum_compact_floats_and_none(self):
        assert fnum(0.123456) == "0.1235"
        assert fnum(None) == "-"

    def test_coord_is_two_decimal_and_kills_negative_zero(self):
        assert coord(3.14159) == "3.14"
        assert coord(-0.0000001) == "0.00"

    def test_color_for_wraps_palette(self):
        assert color_for(0) == PALETTE[0]
        assert color_for(len(PALETTE)) == PALETTE[0]


class TestSparkline:
    def test_empty_series_is_a_valid_frame(self):
        text = sparkline([])
        parse_markup(text)
        assert "polyline" not in text and "circle" not in text

    def test_single_point_renders_one_dot(self):
        text = sparkline([1.0])
        parse_markup(text)
        assert "polyline" not in text and "circle" in text

    def test_flat_series_centres_the_line(self):
        text = sparkline([2.0, 2.0, 2.0], height=30)
        parse_markup(text)
        assert "15.00" in text  # the vertical centre

    def test_deterministic(self):
        series = [0.1, 0.9, 0.4, 0.4]
        assert sparkline(series) == sparkline(series)


class TestScaffold:
    def test_svg_document_embeds_meta_comment(self):
        text = svg_document(10, 10, svg_rect(0, 0, 5, 5, fill="#fff"),
                            meta="repro.render/test v1")
        parse_markup(text)
        assert "<!-- repro.render/test v1 -->" in text

    def test_svg_text_escapes_content(self):
        assert "&lt;b&gt;" in svg_text(0, 0, "<b>")

    def test_html_page_is_well_formed_and_self_contained(self):
        text = html_page("t", ["<p>hello</p>"], meta="m v1")
        parse_markup(text)
        assert "<style>" in text
        assert "http" not in text  # no external assets

    def test_html_table_escapes_unless_raw(self):
        text = html_table(("h",), [("<x>",), (Raw("<em>ok</em>"),)],
                          numeric=(0,))
        assert "&lt;x&gt;" in text
        assert "<em>ok</em>" in text
        assert 'class="num"' in text

    def test_stat_tiles(self):
        text = stat_tiles([("jobs", "12")])
        assert "jobs" in text and "12" in text
