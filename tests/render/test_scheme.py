"""Scheme-diagram renderer: content, degenerate inputs, purity."""

from __future__ import annotations

from repro.arch import ResourceVector
from repro.core.partitioner import partition
from repro.core.result import PartitioningScheme
from repro.render import render_scheme_svg, renderer_meta
from tests.conftest import make_design

from .conftest import parse_markup


class TestContent:
    def test_well_formed_and_stamped(self, example_result):
        text = render_scheme_svg(example_result)
        parse_markup(text)
        assert f"<!-- {renderer_meta('scheme')} -->" in text

    def test_shows_regions_configs_and_costs(self, example_result):
        text = render_scheme_svg(example_result)
        scheme = example_result.scheme
        for region in scheme.regions:
            assert region.name in text
            assert f"{region.frames} frames" in text
        for config in scheme.design.configurations:
            assert config.name in text
        assert f"total reconfiguration {example_result.total_frames} " in text
        assert f"worst case {example_result.worst_frames} frames" in text

    def test_budget_footer_only_with_a_result(self, example_result):
        with_budget = render_scheme_svg(example_result)
        bare = render_scheme_svg(example_result.scheme)
        assert "of budget 520/16/16" in with_budget
        assert "of budget" not in bare

    def test_accepts_bare_scheme(self, example_result):
        parse_markup(render_scheme_svg(example_result.scheme))


class TestDegenerate:
    def test_zero_region_scheme_renders_placeholders(self):
        design = make_design({"A": {"A1": (40, 0, 0)}}, [("A1",)])
        scheme = PartitioningScheme(
            design=design,
            regions=(),
            cover={"Conf.1": ()},
            static_modes=frozenset({"A1"}),
            strategy="static",
        )
        text = render_scheme_svg(scheme)
        parse_markup(text)
        assert "fully static scheme" in text

    def test_single_configuration_has_no_transition_matrix(self):
        design = make_design(
            {"A": {"A1": (40, 0, 0)}, "B": {"B1": (50, 0, 0)}},
            [("A1", "B1")],
        )
        result = partition(design, ResourceVector(520, 16, 16))
        text = render_scheme_svg(result)
        parse_markup(text)
        assert "no transitions" in text
        assert "Eq. 8" not in text


class TestPurity:
    def test_double_render_is_byte_identical(self, example_result):
        assert render_scheme_svg(example_result) == render_scheme_svg(
            example_result
        )

    def test_no_mutation_of_the_input(self, example_result):
        before = example_result.scheme.describe()
        render_scheme_svg(example_result)
        assert example_result.scheme.describe() == before
