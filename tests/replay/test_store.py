"""The replay record store: envelope, sharding, probe, corruption."""

from __future__ import annotations

import json

import pytest

from repro.eval.persistence import PersistenceError
from repro.replay import ReplayResultStore, replay_record
from repro.replay.engine import ReplayResult

KEY = "ab" + "0" * 62


def _result(policy="no-prefetch"):
    r = ReplayResult(policy={"name": policy})
    r.events = 10
    r.switches = 4
    r.total_seconds = 0.25
    for latency in (0.01, 0.02, 0.05, 0.17):
        r.latency.observe(latency)
    return r


class TestReplayResultStore:
    def test_round_trip(self, tmp_path):
        store = ReplayResultStore(tmp_path / "replay")
        result = _result()
        store.put_result(KEY, result)
        again = store.get_result(KEY)
        assert again is not None
        assert replay_record(again) == replay_record(result)

    def test_sharded_layout(self, tmp_path):
        store = ReplayResultStore(tmp_path / "replay")
        path = store.put_result(KEY, _result())
        assert path.parent.name == KEY[:2]
        assert path.name == f"{KEY}.json"

    def test_short_key_rejected(self, tmp_path):
        store = ReplayResultStore(tmp_path / "replay")
        with pytest.raises(PersistenceError):
            store.path_for("ab")

    def test_bytes_are_deterministic(self, tmp_path):
        a = ReplayResultStore(tmp_path / "a")
        b = ReplayResultStore(tmp_path / "b")
        pa = a.put_result(KEY, _result())
        pb = b.put_result(KEY, _result())
        assert pa.read_bytes() == pb.read_bytes()

    def test_miss_returns_none_and_counts(self, tmp_path):
        store = ReplayResultStore(tmp_path / "replay")
        assert store.get_record(KEY) is None
        assert store.misses == 1 and store.hits == 0

    def test_probe(self, tmp_path):
        store = ReplayResultStore(tmp_path / "replay")
        assert not store.probe(KEY)
        store.put_result(KEY, _result())
        assert store.probe(KEY)
        assert store.hits == 1 and store.misses == 1

    @pytest.mark.parametrize(
        "corrupt",
        [
            "not json at all",
            json.dumps({"format": "wrong", "version": 1, "key": KEY,
                        "record": {}}),
            json.dumps({"format": "repro-replay-record", "version": 99,
                        "key": KEY, "record": {}}),
            json.dumps({"format": "repro-replay-record", "version": 1,
                        "key": "mismatch", "record": {}}),
            json.dumps({"format": "repro-replay-record", "version": 1,
                        "key": KEY, "record": None}),
        ],
    )
    def test_corrupt_entries_count_as_misses(self, tmp_path, corrupt):
        store = ReplayResultStore(tmp_path / "replay")
        path = store.path_for(KEY)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(corrupt, encoding="utf-8")
        assert store.get_record(KEY) is None
        assert store.hits == 0 and store.misses == 1
        assert not store.probe(KEY)

    def test_keys_enumerates_stored_records(self, tmp_path):
        store = ReplayResultStore(tmp_path / "replay")
        other = "cd" + "1" * 62
        store.put_result(KEY, _result())
        store.put_result(other, _result("prefetch-oracle"))
        assert sorted(store.keys()) == sorted([KEY, other])
