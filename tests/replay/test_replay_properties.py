"""Hypothesis properties of the replay subsystem.

Three invariants hold for *every* synthesized trace, not just the
seeds the unit tests pin:

* the oracle predictor is an upper bound -- prefetching with perfect
  one-step lookahead never delivers more reconfiguration seconds than
  serving the same trace with no prefetching at all;
* :class:`repro.runtime.manager.RuntimeStats` is exactly the fold of
  its :class:`TransitionRecord` history (charged records only);
* replay is a pure function of (scheme, trace, policy): same inputs,
  byte-identical canonical records.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.arch.resources import ResourceVector
from repro.core.partitioner import partition
from repro.replay import (
    TraceSpec,
    generator_matrix,
    iter_trace,
    replay_record,
    replay_trace,
)
from repro.replay.trace import config_names
from repro.runtime.manager import ConfigurationManager

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@pytest.fixture(scope="module")
def example_scheme():
    from repro.eval.example_design import example_design

    return partition(example_design(), ResourceVector(520, 16, 16)).scheme


@st.composite
def trace_specs(draw):
    environment = draw(st.sampled_from(["uniform", "markov", "bursty"]))
    return TraceSpec(
        environment=environment,
        length=draw(st.integers(0, 120)),
        seed=draw(st.integers(0, 2**32 - 1)),
        dwell=draw(st.floats(0.0, 0.99)),
    )


@SETTINGS
@given(spec=trace_specs())
def test_oracle_never_worse_than_no_prefetch(example_scheme, spec):
    names = config_names(example_scheme.design)
    base = replay_trace(example_scheme, iter_trace(names, spec))
    oracle = replay_trace(
        example_scheme, iter_trace(names, spec), "prefetch-oracle"
    )
    assert oracle.total_seconds <= base.total_seconds + 1e-12
    assert oracle.events == base.events == spec.length
    assert oracle.switches == base.switches


@SETTINGS
@given(spec=trace_specs())
def test_runtime_stats_equal_record_sums(example_scheme, spec):
    names = config_names(example_scheme.design)
    manager = ConfigurationManager(example_scheme)
    for name in iter_trace(names, spec):
        manager.goto(name)
    charged = [
        r for r in manager.history if r.from_configuration is not None
    ]
    stats = manager.stats
    assert stats.transitions == len(charged)
    assert stats.total_frames == sum(r.frames for r in charged)
    assert stats.total_seconds == pytest.approx(
        sum(r.seconds for r in charged)
    )
    assert stats.worst_frames == max(
        (r.frames for r in charged), default=0
    )
    assert stats.rewrites_by_region == {
        name: sum(1 for r in charged if name in r.regions_rewritten)
        for name in {n for r in charged for n in r.regions_rewritten}
    }


@SETTINGS
@given(
    spec=trace_specs(),
    policy=st.sampled_from(
        ["no-prefetch", "prefetch-markov", "prefetch-oracle", "evict-lru"]
    ),
)
def test_replay_is_bit_identical_for_same_inputs(example_scheme, spec, policy):
    names = config_names(example_scheme.design)
    matrix = generator_matrix(names, spec)
    records = [
        replay_record(
            replay_trace(
                example_scheme, iter_trace(names, spec), policy, matrix=matrix
            )
        )
        for _ in range(2)
    ]
    assert records[0] == records[1]
