"""Micro-batched replay jobs: equivalence, segments, warm pools, counters."""

from __future__ import annotations

import json

import pytest

from repro.flow.xmlio import design_to_xml
from repro.obs import RecordingTracer
from repro.replay import (
    POLICY_PRESETS,
    ReplayResultStore,
    TraceSpec,
    WorkloadSuite,
    collect_policy_comparison,
    replay_batch_key,
    replay_probe_keys,
    replay_store_for,
    submit_replay_suite,
)
from repro.replay.store import SEGMENT_DIRNAME
from repro.service import JobStore, ResultCache, run_batch
from repro.service.jobs import Job

POLICIES = ["no-prefetch", "prefetch-oracle"]
SUITE = dict(designs=2, traces_per_design=2, length=24, seed=7)


def _sweep(tmp_path, label, batch_size, workers):
    """Submit + drain one suite; return (report, replay store, jobs)."""
    queue = JobStore(tmp_path / f"q-{label}")
    cache = ResultCache(tmp_path / f"c-{label}")
    jobs = submit_replay_suite(queue, WorkloadSuite(**SUITE), POLICIES,
                               batch_size=batch_size)
    report = run_batch(queue, cache, workers=workers)
    assert report.failed == 0
    return report, replay_store_for(cache), jobs


def _records(store):
    """Every record in the store as canonical JSON, keyed by record key."""
    return {
        key: json.dumps(store.get_record(key), sort_keys=True)
        for key in store.keys()
    }


class TestBatchedSweepEquivalence:
    """Batching and warm pools are pure throughput knobs: byte-identity."""

    @pytest.mark.parametrize("batch_size,workers", [(4, 2), (3, 1)])
    def test_batched_records_match_single(self, tmp_path, batch_size,
                                          workers):
        _, single_store, single_jobs = _sweep(tmp_path, "single", 1, 1)
        _, batch_store, batch_jobs = _sweep(
            tmp_path, f"b{batch_size}w{workers}", batch_size, workers)
        assert len(batch_jobs) < len(single_jobs)
        single = _records(single_store)
        batched = _records(batch_store)
        assert single and batched == single
        # PolicyComparison folds must agree too (Histogram has no __eq__,
        # so compare the canonical dict forms).
        one = collect_policy_comparison(single_store)
        two = collect_policy_comparison(batch_store)
        assert json.dumps(one.to_dict(), sort_keys=True) == \
            json.dumps(two.to_dict(), sort_keys=True)

    def test_batched_rerun_is_all_cache_hits(self, tmp_path):
        _, _, _ = _sweep(tmp_path, "warm", 4, 1)
        queue = JobStore(tmp_path / "q-warm2")
        cache = ResultCache(tmp_path / "c-warm")
        submit_replay_suite(queue, WorkloadSuite(**SUITE), POLICIES,
                            batch_size=4)
        report = run_batch(queue, cache, workers=1)
        assert report.computed == 0
        assert report.cache_hits == report.total == report.done

    def test_single_jobs_hit_segments_written_by_batches(self, tmp_path):
        # Cross-layout: batched sweeps write segments, legacy one-trace
        # jobs must still probe as hits against them.
        _, _, _ = _sweep(tmp_path, "xl", 4, 1)
        queue = JobStore(tmp_path / "q-xl2")
        cache = ResultCache(tmp_path / "c-xl")
        submit_replay_suite(queue, WorkloadSuite(**SUITE), POLICIES,
                            batch_size=1)
        report = run_batch(queue, cache, workers=1)
        assert report.computed == 0 and report.failed == 0

    def test_partial_cache_only_computes_the_gap(self, tmp_path):
        small = dict(SUITE, traces_per_design=1)
        queue = JobStore(tmp_path / "q-gap1")
        cache = ResultCache(tmp_path / "c-gap")
        submit_replay_suite(queue, WorkloadSuite(**small), POLICIES,
                            batch_size=1)
        assert run_batch(queue, cache).failed == 0
        # The wider suite's batches cover new traces, so they recompute;
        # the covered cells stay byte-identical in the shared store.
        queue2 = JobStore(tmp_path / "q-gap2")
        submit_replay_suite(queue2, WorkloadSuite(**SUITE), POLICIES,
                            batch_size=4)
        report = run_batch(queue2, cache, workers=1)
        assert report.failed == 0
        assert len(replay_store_for(cache)) == 2 * 2 * 2


class TestReplayBatchJob:
    def _xml(self, tiny_design):
        return design_to_xml(tiny_design)

    def _doc(self, n=2):
        return {
            "traces": [
                TraceSpec(environment="bursty", length=12, seed=s).to_dict()
                for s in range(n)
            ],
            "policy": POLICY_PRESETS["no-prefetch"].to_dict(),
        }

    def test_valid_batch_job(self, tiny_design):
        job = Job(id="x", name="x", design_xml=self._xml(tiny_design),
                  kind="replay-batch", replay=self._doc())
        assert job.kind == "replay-batch"

    def test_batch_needs_traces_and_policy(self, tiny_design):
        xml = self._xml(tiny_design)
        with pytest.raises(ValueError):
            Job(id="x", name="x", design_xml=xml, kind="replay-batch")
        with pytest.raises(ValueError):
            Job(id="x", name="x", design_xml=xml, kind="replay-batch",
                replay={"traces": [], "policy": {}})
        with pytest.raises(ValueError):
            Job(id="x", name="x", design_xml=xml, kind="replay-batch",
                replay={"traces": "nope", "policy": {}})

    def test_probe_keys_cover_every_member(self, tiny_design):
        xml = self._xml(tiny_design)
        job = Job(id="x", name="x", design_xml=xml, kind="replay-batch",
                  replay=self._doc(3))
        key, members = replay_probe_keys(job, None)
        assert len(members) == 3 and len(set(members)) == 3
        assert key not in members
        # The job key is order-sensitive and derived from the members.
        single = Job(id="y", name="y", design_xml=xml, kind="replay",
                     replay={"trace": self._doc(1)["traces"][0],
                             "policy": self._doc(1)["policy"]})
        skey, smembers = replay_probe_keys(single, None)
        assert smembers == [skey]
        assert smembers[0] == members[0]

    def test_batch_key_is_order_sensitive(self):
        a = replay_batch_key("p" * 64, ["t1", "t2"], POLICY_PRESETS["no-prefetch"])
        b = replay_batch_key("p" * 64, ["t2", "t1"], POLICY_PRESETS["no-prefetch"])
        assert a != b and len(a) == 64


class TestSubmitBatched:
    def test_batches_group_traces_within_a_design(self, tmp_path):
        store = JobStore(tmp_path / "q")
        suite = WorkloadSuite(designs=2, traces_per_design=3, length=24)
        jobs = submit_replay_suite(store, suite, POLICIES, batch_size=2)
        # Per design and policy: ceil(3/2) = 2 jobs -> 2*2*2 = 8.
        assert len(jobs) == 8
        assert all(j.kind == "replay-batch" for j in jobs)
        sizes = sorted(len(j.replay["traces"]) for j in jobs)
        assert sizes == [1, 1, 1, 1, 2, 2, 2, 2]
        assert any("/batch0[2]/" in j.name for j in jobs)

    def test_batch_size_one_is_the_legacy_submission(self, tmp_path):
        store = JobStore(tmp_path / "q")
        suite = WorkloadSuite(designs=1, traces_per_design=2, length=24)
        jobs = submit_replay_suite(store, suite, POLICIES, batch_size=1)
        assert all(j.kind == "replay" for j in jobs)

    def test_bad_batch_size_rejected(self, tmp_path):
        from repro.replay import ReplayError

        store = JobStore(tmp_path / "q")
        with pytest.raises(ReplayError):
            submit_replay_suite(store, WorkloadSuite(designs=1), POLICIES,
                                batch_size=0)

    def test_resubmission_dedupes_batches(self, tmp_path):
        store = JobStore(tmp_path / "q")
        suite = WorkloadSuite(designs=1, traces_per_design=4, length=24)
        submit_replay_suite(store, suite, ["no-prefetch"], batch_size=2)
        submit_replay_suite(store, suite, ["no-prefetch"], batch_size=2)
        assert store.counts()["pending"] == 2


class TestSegmentStore:
    KEYS = ["ab" + format(i, "062x") for i in range(4)]

    def _record(self, i):
        return {"events": 10 + i, "switches": i, "policy": "p",
                "total_seconds": 0.1 * i}

    def test_put_many_writes_one_segment(self, tmp_path):
        store = ReplayResultStore(tmp_path / "replay")
        records = {k: self._record(i) for i, k in enumerate(self.KEYS)}
        path = store.put_many(records)
        assert path is not None and path.parent.name == SEGMENT_DIRNAME
        assert len(list(store.segment_paths())) == 1
        for i, key in enumerate(self.KEYS):
            assert store.get_record(key) == self._record(i)

    def test_put_many_empty_is_a_no_op(self, tmp_path):
        store = ReplayResultStore(tmp_path / "replay")
        assert store.put_many({}) is None
        assert len(store) == 0

    def test_segment_bytes_are_deterministic(self, tmp_path):
        records = {k: self._record(i) for i, k in enumerate(self.KEYS)}
        pa = ReplayResultStore(tmp_path / "a").put_many(records)
        pb = ReplayResultStore(tmp_path / "b").put_many(records)
        assert pa.read_bytes() == pb.read_bytes()
        assert pa.name == pb.name  # content-addressed file name

    def test_probe_many_mixes_layouts_and_counts(self, tmp_path):
        store = ReplayResultStore(tmp_path / "replay")
        store.put_record(self.KEYS[0], self._record(0))
        store.put_many({self.KEYS[1]: self._record(1)})
        missing = "cd" + "0" * 62
        present = store.probe_many(self.KEYS[:2] + [missing])
        assert present == set(self.KEYS[:2])
        assert store.hits == 2 and store.misses == 1

    def test_keys_len_contains_union_both_layouts(self, tmp_path):
        store = ReplayResultStore(tmp_path / "replay")
        store.put_record(self.KEYS[0], self._record(0))
        store.put_many({k: self._record(i)
                        for i, k in enumerate(self.KEYS[1:3], start=1)})
        assert set(store.keys()) == set(self.KEYS[:3])
        assert len(store) == 3
        assert self.KEYS[2] in store and self.KEYS[3] not in store

    def test_corrupt_segment_is_skipped(self, tmp_path):
        store = ReplayResultStore(tmp_path / "replay")
        store.put_many({self.KEYS[0]: self._record(0)})
        (store.segment_dir() / "garbage.json").write_text("{not json",
                                                          encoding="utf-8")
        fresh = ReplayResultStore(tmp_path / "replay")
        assert set(fresh.keys()) == {self.KEYS[0]}

    def test_index_sees_segments_from_other_writers(self, tmp_path):
        a = ReplayResultStore(tmp_path / "replay")
        assert a.probe_many(self.KEYS[:1]) == set()
        b = ReplayResultStore(tmp_path / "replay")
        b.put_many({self.KEYS[0]: self._record(0)})
        # A fresh store (a worker re-opening the directory) sees it.
        c = ReplayResultStore(tmp_path / "replay")
        assert c.probe_many(self.KEYS[:1]) == {self.KEYS[0]}


class TestThroughputCounters:
    def test_batch_and_warm_counters_flow_to_the_tracer(self, tmp_path):
        queue = JobStore(tmp_path / "q")
        cache = ResultCache(tmp_path / "cache")
        suite = WorkloadSuite(designs=1, traces_per_design=2, length=24,
                              seed=3)
        submit_replay_suite(queue, suite, POLICIES, batch_size=2)
        tracer = RecordingTracer()
        report = run_batch(queue, cache, workers=1, tracer=tracer)
        assert report.failed == 0
        counters = tracer.counters
        # One batch job per policy.
        assert counters.get("replay.batch_jobs") == 2
        # The second policy's batch reuses the worker-warm scheme.
        assert counters.get("pool.warm_hits", 0) >= 1
        # Only no-prefetch is vector-eligible (prefetch-oracle runs the
        # stateful scalar fallback): 2 traces x 24 events.
        assert counters.get("replay.vector_events", 0) == 2 * 24

    def test_counters_render_in_the_obs_report(self, tmp_path, capsys):
        from repro.cli import main

        telemetry = tmp_path / "telemetry"
        rc = main([
            "replay", "sweep", "--queue", str(tmp_path / "q"),
            "--designs", "1", "--traces-per-design", "2",
            "--length", "24", "--policy", "no-prefetch",
            "--batch-size", "2", "--telemetry-dir", str(telemetry),
        ])
        assert rc == 0
        capsys.readouterr()
        assert main(["obs", "report", str(telemetry)]) == 0
        out = capsys.readouterr().out
        assert "replay.batch_jobs" in out
        assert "replay.vector_events" in out
