"""The replay loop: determinism, policy effects, record round-trips."""

from __future__ import annotations

import pytest

from repro.arch.resources import ResourceVector
from repro.core.partitioner import partition
from repro.replay import (
    REPLAY_LATENCY_BOUNDS,
    POLICY_PRESETS,
    PolicySpec,
    ReplayError,
    TraceSpec,
    generator_matrix,
    iter_trace,
    replay_record,
    replay_result_key,
    replay_trace,
)
from repro.replay.engine import result_from_record
from repro.replay.trace import config_names

EXAMPLE_BUDGET = ResourceVector(520, 16, 16)


@pytest.fixture(scope="module")
def example_scheme():
    from repro.eval.example_design import example_design

    return partition(example_design(), EXAMPLE_BUDGET).scheme


def _trace(scheme, environment="bursty", length=400, seed=21, dwell=0.85):
    names = config_names(scheme.design)
    spec = TraceSpec(environment=environment, length=length, seed=seed,
                     dwell=dwell)
    return names, spec


class TestReplayTrace:
    def test_counts_are_consistent(self, example_scheme):
        names, spec = _trace(example_scheme)
        result = replay_trace(example_scheme, iter_trace(names, spec))
        assert result.events == spec.length
        assert 0 < result.switches < result.events
        assert result.latency.count == result.switches
        assert result.total_frames > 0
        assert result.total_seconds > 0
        assert result.percentile(50) is not None
        assert result.prefetch is None and result.store is None

    def test_initial_configuration_is_uncharged(self, example_scheme):
        names = config_names(example_scheme.design)
        result = replay_trace(example_scheme, [names[0]])
        assert result.events == 1
        assert result.switches == 0
        assert result.total_seconds == 0.0

    def test_deterministic_records(self, example_scheme):
        names, spec = _trace(example_scheme)
        records = [
            replay_record(
                replay_trace(
                    example_scheme, iter_trace(names, spec), "prefetch-oracle"
                )
            )
            for _ in range(2)
        ]
        assert records[0] == records[1]

    def test_oracle_not_worse_than_no_prefetch(self, example_scheme):
        names, spec = _trace(example_scheme)
        base = replay_trace(example_scheme, iter_trace(names, spec))
        oracle = replay_trace(
            example_scheme, iter_trace(names, spec), "prefetch-oracle"
        )
        assert oracle.total_seconds <= base.total_seconds
        assert oracle.prefetch is not None
        assert oracle.prefetch["hits"] > 0
        assert oracle.prefetch_hit_rate > 0

    def test_markov_predictor_needs_matrix(self, example_scheme):
        names, spec = _trace(example_scheme)
        with pytest.raises(ReplayError):
            replay_trace(
                example_scheme, iter_trace(names, spec), "prefetch-markov"
            )
        result = replay_trace(
            example_scheme,
            iter_trace(names, spec),
            "prefetch-markov",
            matrix=generator_matrix(names, spec),
        )
        assert result.events == spec.length

    def test_eviction_store_slows_misses_and_reports_stats(
        self, example_scheme
    ):
        names, spec = _trace(example_scheme)
        resident = replay_trace(example_scheme, iter_trace(names, spec))
        # A one-frame store forces a slow-path fetch on nearly every
        # rewrite: delivered latency must degrade.
        tight = PolicySpec(name="tight", eviction="lru",
                           store_capacity_frames=1)
        evicted = replay_trace(example_scheme, iter_trace(names, spec), tight)
        assert evicted.store is not None
        assert evicted.store["misses"] > 0
        assert evicted.total_seconds > resident.total_seconds
        assert evicted.stall_events >= resident.stall_events

    def test_stalls_counted_against_dwell_budget(self, example_scheme):
        names, spec = _trace(example_scheme)
        strict = PolicySpec(name="strict", dwell_s=1e-9)
        result = replay_trace(example_scheme, iter_trace(names, spec), strict)
        # Every switch that rewrote anything busts a nanosecond slot
        # budget; free switches (stale content already correct) don't.
        assert 0 < result.stall_events <= result.switches
        assert result.icap_utilisation > 0
        generous = PolicySpec(name="generous", dwell_s=10.0)
        relaxed = replay_trace(
            example_scheme, iter_trace(names, spec), generous
        )
        assert relaxed.stall_events == 0

    def test_empty_trace(self, example_scheme):
        result = replay_trace(example_scheme, [])
        assert result.events == 0 and result.switches == 0
        assert result.icap_utilisation == 0.0
        assert result.percentile(50) is None


class TestRecords:
    def test_round_trip(self, example_scheme):
        names, spec = _trace(example_scheme)
        result = replay_trace(
            example_scheme,
            iter_trace(names, spec),
            "prefetch-oracle",
            problem_key="p" * 64,
            trace_key="t" * 64,
        )
        again = result_from_record(replay_record(result))
        assert replay_record(again) == replay_record(result)
        assert again.problem_key == "p" * 64
        assert again.trace_key == "t" * 64
        assert again.percentile(95) == result.percentile(95)

    def test_record_has_no_wallclock_fields(self, example_scheme):
        names, spec = _trace(example_scheme, length=10)
        record = replay_record(
            replay_trace(example_scheme, iter_trace(names, spec))
        )
        assert not any("wall" in k or "time" in k for k in record)

    def test_malformed_record_rejected(self):
        with pytest.raises(ReplayError):
            result_from_record({"events": 1})

    def test_latency_bounds_are_increasing(self):
        assert list(REPLAY_LATENCY_BOUNDS) == sorted(REPLAY_LATENCY_BOUNDS)
        assert len(set(REPLAY_LATENCY_BOUNDS)) == len(REPLAY_LATENCY_BOUNDS)


class TestResultKey:
    def test_stable_and_distinct(self):
        k = replay_result_key("p1", "t1", "no-prefetch")
        assert k == replay_result_key("p1", "t1", "no-prefetch")
        assert len(k) == 64
        assert k != replay_result_key("p2", "t1", "no-prefetch")
        assert k != replay_result_key("p1", "t2", "no-prefetch")
        assert k != replay_result_key("p1", "t1", "prefetch-oracle")

    def test_policy_forms_are_equivalent(self):
        spec = POLICY_PRESETS["evict-lru"]
        assert (
            replay_result_key("p", "t", spec)
            == replay_result_key("p", "t", "evict-lru")
            == replay_result_key("p", "t", spec.to_dict())
        )
