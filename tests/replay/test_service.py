"""Replay jobs through the batch service: keys, digests, cache layers."""

from __future__ import annotations

import pytest

import json

from repro.flow.xmlio import design_to_xml
from repro.replay import (
    POLICY_PRESETS,
    ReplayError,
    TraceSpec,
    WorkloadSuite,
    replay_job_key,
    replay_store_for,
    submit_replay_suite,
)
from repro.replay.service import run_replay_payload
from repro.service import JobStore, ResultCache, run_batch
from repro.service.jobs import Job, _spec_digest
from repro.service.pool import job_problem_key


def payload_for(job, cache_root):
    """The worker payload run_batch builds for one job (test stand-in)."""
    return {
        "job_id": job.id,
        "design_xml": job.design_xml,
        "device": job.device,
        "max_candidate_sets": job.max_candidate_sets,
        "kind": job.kind,
        "replay": job.replay,
        "cache_root": str(cache_root),
        "key": job_problem_key(job),
        "library": None,
        "collect_trace": False,
    }


def _replay_doc(spec=None, policy="no-prefetch"):
    spec = spec or TraceSpec(environment="bursty", length=40, seed=5)
    return {
        "trace": spec.to_dict(),
        "policy": POLICY_PRESETS[policy].to_dict(),
    }


class TestJobKind:
    def test_default_kind_is_partition(self, tiny_design, tmp_path):
        store = JobStore(tmp_path / "q")
        job = store.submit(name="j", design_xml=design_to_xml(tiny_design))
        assert job.kind == "partition" and job.replay is None

    def test_unknown_kind_rejected(self, tiny_design):
        with pytest.raises(ValueError):
            Job(id="x", name="x", design_xml=design_to_xml(tiny_design),
                kind="teleport")

    def test_replay_job_needs_a_spec(self, tiny_design):
        xml = design_to_xml(tiny_design)
        with pytest.raises(ValueError):
            Job(id="x", name="x", design_xml=xml, kind="replay")
        with pytest.raises(ValueError):
            Job(id="x", name="x", design_xml=xml, kind="replay",
                replay={"trace": {}})

    def test_partition_job_rejects_replay_spec(self, tiny_design):
        with pytest.raises(ValueError):
            Job(id="x", name="x", design_xml=design_to_xml(tiny_design),
                replay=_replay_doc())

    def test_partition_digest_is_unchanged_by_kind_field(self, tiny_design):
        # Back-compat: queues written before the kind field must dedupe
        # against fresh submissions, so the partition digest ignores it.
        xml = design_to_xml(tiny_design)
        legacy_payload = (
            '{"device": null, "sets": null, "xml": ' + json.dumps(xml) + "}"
        )
        import hashlib
        expected = hashlib.sha256(
            legacy_payload.encode("utf-8")
        ).hexdigest()[:16]
        assert _spec_digest(xml, None, None) == expected
        assert _spec_digest(xml, None, None, kind="partition") == expected

    def test_replay_digest_differs_per_policy(self, tiny_design):
        xml = design_to_xml(tiny_design)
        a = _spec_digest(xml, None, None, "replay", _replay_doc())
        b = _spec_digest(xml, None, None, "replay",
                         _replay_doc(policy="prefetch-oracle"))
        assert a != b != _spec_digest(xml, None, None)

    def test_payload_carries_kind_and_replay(self, tiny_design, tmp_path):
        store = JobStore(tmp_path / "q")
        job = store.submit(name="j", design_xml=design_to_xml(tiny_design),
                           kind="replay", replay=_replay_doc())
        payload = payload_for(job, tmp_path / "cache")
        assert payload["kind"] == "replay"
        assert payload["replay"] == job.replay

    def test_jobs_round_trip_through_the_log(self, tiny_design, tmp_path):
        store = JobStore(tmp_path / "q")
        store.submit(name="j", design_xml=design_to_xml(tiny_design),
                     kind="replay", replay=_replay_doc())
        again = JobStore(tmp_path / "q").jobs()[0]
        assert again.kind == "replay"
        assert again.replay == _replay_doc()


class TestReplayJobKey:
    def test_key_dispatch_and_sensitivity(self, tiny_design):
        xml = design_to_xml(tiny_design)
        job = Job(id="x", name="x", design_xml=xml, kind="replay",
                  replay=_replay_doc())
        key = job_problem_key(job)
        assert key == replay_job_key(job)
        assert len(key) == 64
        partition_job = Job(id="y", name="y", design_xml=xml)
        assert key != job_problem_key(partition_job)
        other = Job(id="z", name="z", design_xml=xml, kind="replay",
                    replay=_replay_doc(policy="prefetch-oracle"))
        assert key != job_problem_key(other)

    def test_malformed_replay_spec_raises(self, tiny_design):
        job = Job(id="x", name="x", design_xml=design_to_xml(tiny_design),
                  kind="replay", replay=_replay_doc())
        object.__setattr__(job, "replay", {"trace": {}, "policy": {}})
        with pytest.raises((ReplayError, ValueError)):
            replay_job_key(job)


class TestRunReplayPayload:
    def test_fills_both_cache_layers(self, tiny_design, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        store = JobStore(tmp_path / "q")
        job = store.submit(name="j", design_xml=design_to_xml(tiny_design),
                           kind="replay", replay=_replay_doc())
        outcome = run_replay_payload(payload_for(job, cache.root))
        assert outcome["ok"]
        assert outcome["key"] == replay_job_key(job)
        assert outcome["replay"]["policy"] == "no-prefetch"
        assert outcome["replay"]["events"] == 40
        # Layer 1: the partition result landed in the result cache.
        assert len(cache) == 1
        # Layer 2: the replay record landed in the replay store.
        replay_store = replay_store_for(cache)
        assert replay_store.get_record(outcome["key"]) is not None

    def test_partition_cache_reused_across_policies(self, tiny_design,
                                                    tmp_path):
        cache = ResultCache(tmp_path / "cache")
        store = JobStore(tmp_path / "q")
        xml = design_to_xml(tiny_design)
        for policy in ("no-prefetch", "prefetch-oracle"):
            job = store.submit(name=policy, design_xml=xml, kind="replay",
                               replay=_replay_doc(policy=policy))
            run_replay_payload(payload_for(job, cache.root))
        # Two replay records, but the expensive search ran once.
        assert len(cache) == 1
        assert len(replay_store_for(cache)) == 2


class TestSubmitReplaySuite:
    def test_fans_out_the_full_cross_product(self, tmp_path):
        store = JobStore(tmp_path / "q")
        suite = WorkloadSuite(designs=2, traces_per_design=2, length=24,
                              seed=3)
        jobs = submit_replay_suite(
            store, suite, ["no-prefetch", "prefetch-oracle"]
        )
        assert len(jobs) == 2 * 2 * 2
        assert all(j.kind == "replay" for j in jobs)
        assert "/uniform[" in jobs[0].name

    def test_resubmission_dedupes(self, tmp_path):
        store = JobStore(tmp_path / "q")
        suite = WorkloadSuite(designs=1, traces_per_design=2, length=24)
        submit_replay_suite(store, suite, ["no-prefetch"])
        submit_replay_suite(store, suite, ["no-prefetch"])
        assert store.counts()["pending"] == 2

    def test_needs_a_policy(self, tmp_path):
        store = JobStore(tmp_path / "q")
        suite = WorkloadSuite(designs=1)
        with pytest.raises(ReplayError):
            submit_replay_suite(store, suite, [])


class TestBatchIntegration:
    def test_sweep_runs_and_reruns_from_cache(self, tmp_path):
        queue = JobStore(tmp_path / "q")
        cache = ResultCache(tmp_path / "cache")
        suite = WorkloadSuite(designs=2, traces_per_design=2, length=24,
                              seed=7)
        jobs = submit_replay_suite(
            queue, suite, ["no-prefetch", "prefetch-oracle", "evict-lru"]
        )
        assert len(jobs) == 12
        report = run_batch(queue, cache, workers=2)
        assert report.done == 12 and report.failed == 0
        assert report.cache_hits == 0
        store = replay_store_for(cache)
        assert len(store) == 12

        # A fresh queue holding the same suite completes from the
        # replay store without dispatching a single worker.
        queue2 = JobStore(tmp_path / "q2")
        submit_replay_suite(
            queue2, suite, ["no-prefetch", "prefetch-oracle", "evict-lru"]
        )
        report2 = run_batch(queue2, cache, workers=2)
        assert report2.done == 12
        assert report2.cache_hits == 12

    def test_mixed_kind_batch(self, tiny_design, tmp_path):
        queue = JobStore(tmp_path / "q")
        cache = ResultCache(tmp_path / "cache")
        xml = design_to_xml(tiny_design)
        queue.submit(name="partition", design_xml=xml)
        queue.submit(name="replay", design_xml=xml, kind="replay",
                     replay=_replay_doc())
        report = run_batch(queue, cache, workers=1)
        assert report.done == 2 and report.failed == 0
        assert len(cache) == 1
        assert len(replay_store_for(cache)) == 1
