"""Trace specs, streaming generators and the workload suite.

The load-bearing guarantee is rng-sequence equivalence: the lazy
streams of :func:`repro.replay.iter_trace` must equal the eager lists
built by the :mod:`repro.runtime.adaptive` environment classes element
for element, per environment kind.
"""

from __future__ import annotations

from itertools import islice

import pytest

from repro.replay import (
    ENVIRONMENTS,
    TraceSpec,
    WorkloadSuite,
    generator_matrix,
    iter_trace,
    ring_matrix,
    trace_key,
)
from repro.replay.trace import TraceSpecError, config_names, resolved_matrix
from repro.runtime.adaptive import (
    BurstyEnvironment,
    MarkovEnvironment,
    UniformEnvironment,
)


class TestStreamEquivalence:
    """iter_trace draws the exact rng sequence of the eager classes."""

    def test_uniform_matches_environment(self, paper_example):
        names = config_names(paper_example)
        spec = TraceSpec(environment="uniform", length=300, seed=7)
        assert list(iter_trace(names, spec)) == UniformEnvironment(
            paper_example
        ).trace(300, seed=7)

    def test_bursty_matches_environment(self, paper_example):
        names = config_names(paper_example)
        spec = TraceSpec(environment="bursty", length=300, seed=42, dwell=0.85)
        assert list(iter_trace(names, spec)) == BurstyEnvironment(
            paper_example, dwell=0.85
        ).trace(300, seed=42)

    def test_markov_matches_environment(self, paper_example):
        names = config_names(paper_example)
        matrix = ring_matrix(names, bias=0.6)
        # Destination order matters to the rng walk: the stream consumes
        # rows in canonical (sorted) order, so prime the eager class
        # with the same ordering.
        nested = {src: dict(row) for src, row in matrix}
        spec = TraceSpec(environment="markov", length=300, seed=9, matrix=matrix)
        assert list(iter_trace(names, spec)) == MarkovEnvironment(
            paper_example, nested
        ).trace(300, seed=9)

    def test_markov_default_matrix_is_the_ring(self, paper_example):
        names = config_names(paper_example)
        spec = TraceSpec(environment="markov", length=50, seed=3)
        assert resolved_matrix(names, spec) == ring_matrix(names)

    def test_single_configuration_uniform(self):
        spec = TraceSpec(environment="uniform", length=5)
        # Mirrors UniformEnvironment: one event, then nothing to switch to.
        assert list(iter_trace(["only"], spec)) == ["only"]
        assert list(iter_trace(["only"], TraceSpec("uniform", 0))) == []

    def test_empty_names_rejected(self):
        with pytest.raises(TraceSpecError):
            list(iter_trace([], TraceSpec(environment="uniform", length=1)))

    def test_stream_is_lazy(self, paper_example):
        names = config_names(paper_example)
        spec = TraceSpec(environment="bursty", length=10**9, seed=1)
        head = list(islice(iter_trace(names, spec), 8))
        assert len(head) == 8
        assert all(h in names for h in head)


class TestTraceKey:
    def test_stable_across_equal_specs(self, paper_example):
        names = config_names(paper_example)
        a = trace_key(names, TraceSpec("uniform", 100, seed=4))
        b = trace_key(names, TraceSpec("uniform", 100, seed=4))
        assert a == b and len(a) == 64

    @pytest.mark.parametrize(
        "other",
        [
            TraceSpec("uniform", 100, seed=5),
            TraceSpec("uniform", 101, seed=4),
            TraceSpec("bursty", 100, seed=4),
            TraceSpec("bursty", 100, seed=4, dwell=0.5),
        ],
    )
    def test_sensitive_to_spec_fields(self, paper_example, other):
        names = config_names(paper_example)
        assert trace_key(names, TraceSpec("uniform", 100, seed=4)) != trace_key(
            names, other
        )

    def test_sensitive_to_name_order(self):
        spec = TraceSpec("uniform", 10)
        assert trace_key(["a", "b"], spec) != trace_key(["b", "a"], spec)

    def test_round_trips_through_dict(self, paper_example):
        names = config_names(paper_example)
        spec = TraceSpec(
            environment="markov", length=64, seed=11, matrix=ring_matrix(names)
        )
        again = TraceSpec.from_dict(spec.to_dict())
        assert again == spec
        assert trace_key(names, again) == trace_key(names, spec)


class TestSpecValidation:
    def test_unknown_environment(self):
        with pytest.raises(TraceSpecError):
            TraceSpec(environment="lunar", length=1)

    def test_negative_length(self):
        with pytest.raises(TraceSpecError):
            TraceSpec(environment="uniform", length=-1)

    def test_dwell_out_of_range(self):
        with pytest.raises(TraceSpecError):
            TraceSpec(environment="bursty", length=1, dwell=1.0)

    def test_matrix_only_for_markov(self):
        with pytest.raises(TraceSpecError):
            TraceSpec(
                environment="uniform", length=1, matrix=ring_matrix(["a", "b"])
            )

    def test_start_only_for_markov(self):
        with pytest.raises(TraceSpecError):
            TraceSpec(environment="bursty", length=1, start="a")

    def test_matrix_rows_must_sum_to_one(self):
        with pytest.raises(TraceSpecError):
            TraceSpec(
                environment="markov",
                length=1,
                matrix={"a": {"b": 0.5}, "b": {"a": 1.0}},
            )

    def test_markov_matrix_unknown_names_rejected_at_stream_time(self):
        spec = TraceSpec(
            environment="markov",
            length=4,
            matrix={"a": {"x": 1.0}, "b": {"a": 1.0}},
        )
        with pytest.raises(TraceSpecError):
            list(iter_trace(["a", "b"], spec))

    def test_markov_unknown_start_rejected(self):
        spec = TraceSpec(environment="markov", length=4, start="zz")
        with pytest.raises(TraceSpecError):
            list(iter_trace(["a", "b"], spec))


class TestRingMatrix:
    def test_rows_are_stochastic_and_biased(self):
        rows = dict(ring_matrix(["a", "b", "c"], bias=0.7))
        assert set(rows) == {"a", "b", "c"}
        for src, row in rows.items():
            probs = dict(row)
            assert src not in probs
            assert sum(probs.values()) == pytest.approx(1.0)
        assert dict(rows["a"])["b"] == pytest.approx(0.7)

    def test_two_names_degenerates_to_certainty(self):
        rows = dict(ring_matrix(["a", "b"]))
        assert dict(rows["a"]) == {"b": 1.0}

    def test_needs_two_names(self):
        with pytest.raises(TraceSpecError):
            ring_matrix(["solo"])

    def test_bias_must_be_open_interval(self):
        with pytest.raises(TraceSpecError):
            ring_matrix(["a", "b"], bias=1.0)


class TestGeneratorMatrix:
    def test_markov_returns_resolved_matrix(self, paper_example):
        names = config_names(paper_example)
        spec = TraceSpec(environment="markov", length=1)
        nested = generator_matrix(names, spec)
        assert nested == {src: dict(row) for src, row in ring_matrix(names)}

    def test_uniform_and_bursty_return_jump_distribution(self):
        for env in ("uniform", "bursty"):
            nested = generator_matrix(
                ["a", "b", "c"], TraceSpec(environment=env, length=1)
            )
            assert nested["a"] == {"b": 0.5, "c": 0.5}

    def test_single_configuration_has_no_distribution(self):
        assert generator_matrix(["a"], TraceSpec("uniform", 1)) is None


class TestWorkloadSuite:
    def test_deterministic_fleet(self):
        a = WorkloadSuite(designs=3, traces_per_design=2, length=32, seed=5)
        b = WorkloadSuite(designs=3, traces_per_design=2, length=32, seed=5)
        wa = [(d.name, spec) for d, spec in a.iter_workloads()]
        wb = [(d.name, spec) for d, spec in b.iter_workloads()]
        assert wa == wb
        assert len(wa) == a.trace_count == 6

    def test_environments_round_robin(self):
        suite = WorkloadSuite(designs=1, traces_per_design=4, length=8)
        envs = [suite.spec_for(0, t).environment for t in range(4)]
        assert envs == ["uniform", "markov", "bursty", "uniform"]
        assert set(envs) <= set(ENVIRONMENTS)

    def test_slot_seeds_are_distinct(self):
        suite = WorkloadSuite(designs=4, traces_per_design=3, length=8, seed=1)
        seeds = {
            suite.spec_for(d, t).seed
            for d in range(suite.designs)
            for t in range(suite.traces_per_design)
        }
        assert len(seeds) == suite.trace_count

    def test_iteration_is_lazy(self):
        # A fleet far too large to materialise: islice must return fast.
        suite = WorkloadSuite(designs=10_000, traces_per_design=10, length=16)
        head = list(islice(suite.iter_workloads(), 3))
        assert len(head) == 3
        design, spec = head[0]
        assert spec.length == 16
        assert design.configurations

    def test_validation(self):
        with pytest.raises(TraceSpecError):
            WorkloadSuite(designs=0)
        with pytest.raises(TraceSpecError):
            WorkloadSuite(designs=1, traces_per_design=0)
        with pytest.raises(TraceSpecError):
            WorkloadSuite(designs=1, environments=())
        with pytest.raises(TraceSpecError):
            WorkloadSuite(designs=1, environments=("lunar",))
