"""Folding replay records into per-policy comparisons and text output."""

from __future__ import annotations

import pytest

from repro.arch.library import virtex5_full
from repro.core.partitioner import PartitionerOptions, partition_with_device_selection
from repro.replay import (
    PolicyComparison,
    ReplayError,
    ReplayResultStore,
    TraceSpec,
    collect_policy_comparison,
    comparison_key,
    iter_trace,
    render_policy_comparison,
    replay_result_key,
    replay_trace,
)
from repro.replay.compare import PolicyLatency
from repro.replay.trace import config_names, trace_key


@pytest.fixture(scope="module")
def synthetic_scheme():
    """A Sec. V synthetic design: prefetching visibly improves its p95."""
    from repro.synth.generator import generate_population

    _cls, design = next(iter(generate_population(1, seed=7)))
    selected = partition_with_device_selection(
        design, virtex5_full(), PartitionerOptions(max_candidate_sets=3)
    )
    return selected.result.scheme


@pytest.fixture
def filled_store(tmp_path, synthetic_scheme):
    """A store holding 2 traces x 2 policies of real replay records."""
    store = ReplayResultStore(tmp_path / "replay")
    names = config_names(synthetic_scheme.design)
    for seed in (1, 2):
        spec = TraceSpec(environment="bursty", length=200, seed=seed,
                         dwell=0.9)
        for policy in ("no-prefetch", "prefetch-oracle"):
            result = replay_trace(
                synthetic_scheme, iter_trace(names, spec), policy,
                problem_key="p" * 64, trace_key=trace_key(names, spec),
            )
            key = replay_result_key("p" * 64, trace_key(names, spec), policy)
            store.put_result(key, result)
    return store


class TestCollect:
    def test_groups_by_policy(self, filled_store):
        comparison = collect_policy_comparison(filled_store)
        assert [p.policy for p in comparison.policies] == [
            "no-prefetch", "prefetch-oracle",
        ]
        assert comparison.traces == 4
        for p in comparison.policies:
            assert p.traces == 2
            assert p.events == 400
            assert p.latency.count == p.switches
            assert p.percentile(95) is not None
            assert 0.0 <= p.stall_rate <= 1.0
            assert p.icap_utilisation > 0

    def test_key_subset_restricts(self, filled_store):
        keys = sorted(filled_store.keys())[:1]
        comparison = collect_policy_comparison(filled_store, keys=keys)
        assert comparison.traces == 1
        assert comparison.keys == tuple(keys)

    def test_missing_key_raises(self, filled_store):
        with pytest.raises(ReplayError):
            collect_policy_comparison(filled_store, keys=["ff" + "0" * 62])

    def test_oracle_wins_on_bursty(self, filled_store):
        comparison = collect_policy_comparison(filled_store)
        best = comparison.best_by(95)
        assert best is not None
        assert best.policy == "prefetch-oracle"
        by_name = {p.policy: p for p in comparison.policies}
        assert (
            by_name["prefetch-oracle"].total_seconds
            < by_name["no-prefetch"].total_seconds
        )

    def test_deterministic_and_serialisable(self, filled_store):
        a = collect_policy_comparison(filled_store)
        b = collect_policy_comparison(filled_store)
        assert a.to_dict() == b.to_dict()
        doc = a.to_dict()
        assert doc["key"] == comparison_key(a.keys)
        assert doc["traces"] == 4
        assert {p["policy"] for p in doc["policies"]} == {
            "no-prefetch", "prefetch-oracle",
        }


class TestComparisonKey:
    def test_order_and_duplicates_are_irrelevant(self):
        keys = ["b" * 64, "a" * 64]
        assert comparison_key(keys) == comparison_key(reversed(keys))
        assert comparison_key(keys) == comparison_key(keys + keys)
        assert comparison_key(keys) != comparison_key(keys[:1])


class TestPolicyLatencyFold:
    def test_fold_accumulates(self, filled_store):
        agg = PolicyLatency(policy="x")
        for key in sorted(filled_store.keys()):
            agg.fold(filled_store.get_record(key))
        assert agg.traces == 4
        assert agg.events == 800
        assert agg.slot_budget_s == pytest.approx(800 * 0.01)

    def test_fold_rejects_malformed_records(self):
        agg = PolicyLatency(policy="x")
        with pytest.raises(ReplayError):
            agg.fold({"events": "many"})


class TestRenderText:
    def test_table_lists_policies_and_best(self, filled_store):
        text = render_policy_comparison(collect_policy_comparison(filled_store))
        assert "no-prefetch" in text
        assert "prefetch-oracle" in text
        assert "best p95: prefetch-oracle" in text
        assert text.endswith("\n")

    def test_empty_comparison(self):
        comparison = PolicyComparison(policies=(), keys=())
        assert render_policy_comparison(comparison) == "no replay records\n"
        assert comparison.best_by() is None

    def test_byte_deterministic(self, filled_store):
        a = render_policy_comparison(collect_policy_comparison(filled_store))
        b = render_policy_comparison(collect_policy_comparison(filled_store))
        assert a == b
