"""The ``replay`` CLI group: run, sweep, compare through ``main(argv)``."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.service import JobStore, ResultCache


@pytest.fixture
def swept(tmp_path):
    """A tiny completed sweep: (queue dir, cache dir)."""
    queue = tmp_path / "queue"
    rc = main([
        "replay", "sweep", "--queue", str(queue),
        "--designs", "2", "--traces-per-design", "2",
        "--length", "40", "--seed", "3", "--workers", "1",
        "--policy", "no-prefetch", "--policy", "prefetch-oracle",
    ])
    assert rc == 0
    return queue, queue / "cache"


class TestReplayRun:
    def test_builtin_example(self, capsys):
        rc = main(["replay", "run", "example", "--length", "120",
                   "--seed", "5", "--policy", "no-prefetch",
                   "--policy", "prefetch-oracle"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "bursty trace of 120 events" in out
        assert "no-prefetch" in out and "prefetch-oracle" in out
        assert "best p95:" in out

    def test_output_is_deterministic(self, capsys):
        argv = ["replay", "run", "example", "--length", "80", "--seed", "9"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_unknown_policy_errors(self, capsys):
        rc = main(["replay", "run", "example", "--policy", "nope"])
        assert rc == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_design_file_errors(self, tmp_path, capsys):
        rc = main(["replay", "run", str(tmp_path / "absent.xml")])
        assert rc == 1
        assert "error:" in capsys.readouterr().err


class TestReplaySweep:
    def test_sweep_completes_and_fills_stores(self, swept, capsys):
        queue, cache_dir = swept
        counts = JobStore(queue).counts()
        assert counts["done"] == 2 * 2 * 2
        from repro.replay import replay_store_for

        store = replay_store_for(ResultCache(cache_dir))
        assert len(store) == 8

    def test_rerun_serves_everything_from_cache(self, swept, tmp_path,
                                                capsys):
        _queue, cache_dir = swept
        capsys.readouterr()
        rc = main([
            "replay", "sweep", "--queue", str(tmp_path / "queue2"),
            "--cache", str(cache_dir),
            "--designs", "2", "--traces-per-design", "2",
            "--length", "40", "--seed", "3", "--workers", "1",
            "--policy", "no-prefetch", "--policy", "prefetch-oracle",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert (
            "submitted 8 replay jobs covering 8 cells "
            "(2 designs x 2 traces x 2 policies)"
        ) in out
        assert "cache hits" in out and "8" in out

    def test_batched_sweep_matches_single_and_reports_batches(
            self, swept, tmp_path, capsys):
        _queue, cache_dir = swept
        capsys.readouterr()
        queue2 = tmp_path / "queue-batched"
        rc = main([
            "replay", "sweep", "--queue", str(queue2),
            "--designs", "2", "--traces-per-design", "2",
            "--length", "40", "--seed", "3", "--workers", "1",
            "--policy", "no-prefetch", "--policy", "prefetch-oracle",
            "--batch-size", "2",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert (
            "submitted 4 replay jobs covering 8 cells "
            "(2 designs x 2 traces x 2 policies, batch size 2)"
        ) in out
        from repro.replay import replay_store_for

        single = replay_store_for(ResultCache(cache_dir))
        batched = replay_store_for(ResultCache(queue2 / "cache"))
        assert set(batched.keys()) == set(single.keys())
        for key in single.keys():
            assert batched.get_record(key) == single.get_record(key)

    def test_bad_batch_size_errors(self, tmp_path, capsys):
        rc = main([
            "replay", "sweep", "--queue", str(tmp_path / "q"),
            "--designs", "1", "--batch-size", "0",
        ])
        assert rc == 1
        assert "error:" in capsys.readouterr().err

    def test_all_jobs_failing_exits_4_with_grouped_reasons(
            self, tmp_path, monkeypatch, capsys):
        import repro.replay.service as replay_service

        def boom(payload, **kwargs):
            raise RuntimeError("synthetic replay failure")

        monkeypatch.setattr(replay_service, "run_replay_payload", boom)
        rc = main([
            "replay", "sweep", "--queue", str(tmp_path / "q"),
            "--designs", "1", "--traces-per-design", "2",
            "--length", "24", "--policy", "no-prefetch",
        ])
        assert rc == 4
        err = capsys.readouterr().err
        assert "failed jobs: 2/2" in err
        assert "2 x RuntimeError: synthetic replay failure" in err

    def test_partial_failure_exits_3(self, tmp_path, monkeypatch, capsys):
        import repro.replay.service as replay_service

        real = replay_service.run_replay_batch_payload

        def selective(payload, **kwargs):
            if payload["replay"]["policy"]["name"] == "prefetch-oracle":
                raise RuntimeError("synthetic oracle failure")
            return real(payload, **kwargs)

        monkeypatch.setattr(
            replay_service, "run_replay_batch_payload", selective)
        rc = main([
            "replay", "sweep", "--queue", str(tmp_path / "q"),
            "--designs", "1", "--traces-per-design", "2",
            "--length", "24", "--batch-size", "2",
            "--policy", "no-prefetch", "--policy", "prefetch-oracle",
        ])
        assert rc == 3
        err = capsys.readouterr().err
        assert "failed jobs: 1/2" in err

    def test_telemetry_records_replay_summaries(self, tmp_path, capsys):
        telemetry = tmp_path / "telemetry"
        rc = main([
            "replay", "sweep", "--queue", str(tmp_path / "q"),
            "--designs", "1", "--traces-per-design", "1",
            "--length", "30", "--policy", "no-prefetch",
            "--telemetry-dir", str(telemetry),
        ])
        assert rc == 0
        records = [
            json.loads(line)
            for path in sorted(telemetry.glob("*.jsonl"))
            for line in path.read_text().splitlines()
        ]
        jobs = [r for r in records if r.get("kind") == "job"]
        assert any(isinstance(r.get("replay"), dict) for r in jobs)


class TestReplayCompare:
    def test_text_table(self, swept, capsys):
        _queue, cache_dir = swept
        capsys.readouterr()
        rc = main(["replay", "compare", "--cache", str(cache_dir)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "no-prefetch" in out and "prefetch-oracle" in out
        assert "best p95:" in out

    def test_check_needs_out(self, swept, capsys):
        _queue, cache_dir = swept
        rc = main(["replay", "compare", "--cache", str(cache_dir), "--check"])
        assert rc == 1
        assert "--check needs --out" in capsys.readouterr().err

    def test_dashboard_write_then_check(self, swept, tmp_path, capsys):
        _queue, cache_dir = swept
        out_file = tmp_path / "dash.html"
        rc = main(["replay", "compare", "--cache", str(cache_dir),
                   "--out", str(out_file)])
        assert rc == 0
        text = out_file.read_text(encoding="utf-8")
        assert "Replay latency dashboard" in text
        capsys.readouterr()
        # Byte-determinism: --check re-renders and must agree.
        rc = main(["replay", "compare", "--cache", str(cache_dir),
                   "--out", str(out_file), "--check"])
        assert rc == 0
        # Drift: --check fails with exit 3.
        out_file.write_text(text + "tamper", encoding="utf-8")
        rc = main(["replay", "compare", "--cache", str(cache_dir),
                   "--out", str(out_file), "--check"])
        assert rc == 3

    def test_artifact_cache_miss_then_hit(self, swept, tmp_path, capsys):
        _queue, cache_dir = swept
        out_file = tmp_path / "dash.html"
        art = tmp_path / "artifacts"
        capsys.readouterr()
        rc = main(["replay", "compare", "--cache", str(cache_dir),
                   "--out", str(out_file), "--artifact-cache", str(art)])
        assert rc == 0
        assert "artifact cache miss" in capsys.readouterr().err
        rc = main(["replay", "compare", "--cache", str(cache_dir),
                   "--out", str(out_file), "--artifact-cache", str(art)])
        assert rc == 0
        assert "artifact cache hit" in capsys.readouterr().err

    def test_empty_store_renders_no_records(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        ResultCache(cache_dir)
        rc = main(["replay", "compare", "--cache", str(cache_dir)])
        assert rc == 0
        assert "no replay records" in capsys.readouterr().out
