"""The vectorized event kernel: differential identity vs the reference.

The vector kernel is a pure throughput optimisation, so its contract is
absolute: for every (scheme, trace, policy) it must emit a canonical
record byte-identical to the hand-written reference loop -- same bucket
counts, same exact float aggregates, same retained quantile samples.
These tests enforce that with a hypothesis differential gate over the
full policy matrix (including the scalar fallback for stateful
policies), plus unit pins for engine selection and the empty trace.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.arch.resources import ResourceVector
from repro.core.partitioner import partition
from repro.obs.metrics import Histogram
from repro.replay import (
    POLICY_PRESETS,
    REPLAY_ENGINES,
    ReplayError,
    TraceSpec,
    generator_matrix,
    iter_trace,
    replay_record,
    replay_trace,
)
from repro.replay.kernel import tables_for, vector_eligible
from repro.replay.trace import config_names

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@pytest.fixture(scope="module")
def example_scheme():
    from repro.eval.example_design import example_design

    return partition(example_design(), ResourceVector(520, 16, 16)).scheme


def _canonical(scheme, spec, policy, engine):
    names = config_names(scheme.design)
    matrix = generator_matrix(names, spec)
    result = replay_trace(scheme, iter_trace(names, spec), policy,
                          matrix=matrix, engine=engine)
    return json.dumps(replay_record(result), sort_keys=True)


@st.composite
def trace_specs(draw):
    return TraceSpec(
        environment=draw(st.sampled_from(["uniform", "markov", "bursty"])),
        length=draw(st.sampled_from([0, 1, 2, 17, 48])),
        seed=draw(st.integers(min_value=0, max_value=50)),
        dwell=draw(st.sampled_from([0.5, 0.85])),
    )


class TestDifferentialGate:
    @SETTINGS
    @given(spec=trace_specs(),
           policy=st.sampled_from(sorted(POLICY_PRESETS)),
           engine=st.sampled_from(["auto", "scalar", "vector"]))
    def test_every_engine_matches_the_reference(self, example_scheme, spec,
                                                policy, engine):
        preset = POLICY_PRESETS[policy]
        if engine == "vector" and not vector_eligible(preset):
            engine = "scalar"
        ref = _canonical(example_scheme, spec, preset, "reference")
        assert _canonical(example_scheme, spec, preset, engine) == ref

    @SETTINGS
    @given(spec=trace_specs(), policy=st.sampled_from(sorted(POLICY_PRESETS)))
    def test_default_engine_is_the_reference(self, example_scheme, spec,
                                             policy):
        # The dispatcher default (auto) is what every caller gets.
        preset = POLICY_PRESETS[policy]
        assert _canonical(example_scheme, spec, preset, "auto") == \
            _canonical(example_scheme, spec, preset, "reference")


class TestEngineSelection:
    def test_engine_names_are_published(self):
        assert set(REPLAY_ENGINES) == {"auto", "vector", "scalar",
                                       "reference"}

    def test_unknown_engine_rejected(self, example_scheme):
        with pytest.raises(ReplayError):
            replay_trace(example_scheme, [], engine="warp")

    def test_vector_eligibility_tracks_policy_state(self):
        assert vector_eligible(POLICY_PRESETS["no-prefetch"])
        assert vector_eligible(POLICY_PRESETS["evict-static"])
        # Prefetching managers and dynamic stores carry per-event state
        # the array kernel does not model.
        assert not vector_eligible(POLICY_PRESETS["prefetch-oracle"])
        assert not vector_eligible(POLICY_PRESETS["evict-lru"])

    def test_vector_engine_refuses_stateful_policies(self, example_scheme):
        names = config_names(example_scheme.design)
        spec = TraceSpec(environment="uniform", length=4, seed=1)
        with pytest.raises(ReplayError):
            replay_trace(example_scheme, iter_trace(names, spec),
                         POLICY_PRESETS["prefetch-oracle"], engine="vector")

    def test_tables_are_cached_per_scheme(self, example_scheme):
        assert tables_for(example_scheme) is tables_for(example_scheme)

    def test_empty_trace_matches_reference_with_static_store(
            self, example_scheme):
        spec = TraceSpec(environment="uniform", length=0, seed=0)
        preset = POLICY_PRESETS["evict-static"]
        assert _canonical(example_scheme, spec, preset, "vector") == \
            _canonical(example_scheme, spec, preset, "reference")


class TestObserveMany:
    @SETTINGS
    @given(values=st.lists(
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        max_size=200))
    def test_bit_identical_to_repeated_observe(self, values):
        one = Histogram()
        for v in values:
            one.observe(v)
        many = Histogram()
        many.observe_many(values)
        assert json.dumps(one.to_dict(), sort_keys=True) == \
            json.dumps(many.to_dict(), sort_keys=True)

    def test_sample_thinning_matches_across_the_cap(self):
        # Push past the reservoir cap so stride doubling kicks in.
        values = [i * 1e-3 for i in range(3000)]
        one, many = Histogram(), Histogram()
        for v in values:
            one.observe(v)
        many.observe_many(values)
        assert one.to_dict() == many.to_dict()
