"""Policy specs, presets and the finite bitstream store."""

from __future__ import annotations

import pytest

from repro.core.partitioner import partition
from repro.eval.casestudy import CASESTUDY_BUDGET
from repro.replay import (
    EVICTION_POLICIES,
    POLICY_PRESETS,
    BitstreamStore,
    PolicySpec,
    resolve_policy,
)
from repro.replay.policies import PolicyError, default_store_capacity


class TestPolicySpec:
    def test_presets_cover_the_matrix(self):
        assert set(POLICY_PRESETS) == {
            "no-prefetch", "prefetch-markov", "prefetch-oracle",
            "evict-lru", "evict-static", "evict-activity",
        }
        assert {p.eviction for p in POLICY_PRESETS.values()} == set(
            EVICTION_POLICIES
        )

    def test_round_trips_through_dict(self):
        for preset in POLICY_PRESETS.values():
            assert PolicySpec.from_dict(preset.to_dict()) == preset

    def test_resolve_accepts_spec_name_and_mapping(self):
        spec = POLICY_PRESETS["no-prefetch"]
        assert resolve_policy(spec) is spec
        assert resolve_policy("no-prefetch") == spec
        assert resolve_policy(spec.to_dict()) == spec

    def test_resolve_unknown_preset(self):
        with pytest.raises(PolicyError):
            resolve_policy("definitely-not-a-preset")

    def test_plain_manager_rejects_predictor(self):
        with pytest.raises(PolicyError):
            PolicySpec(name="x", manager="plain", predictor="markov")

    def test_prefetch_needs_predictor(self):
        with pytest.raises(PolicyError):
            PolicySpec(name="x", manager="prefetch", predictor="none")

    def test_prefetch_and_eviction_are_mutually_exclusive(self):
        with pytest.raises(PolicyError):
            PolicySpec(
                name="x", manager="prefetch", predictor="oracle",
                eviction="lru",
            )

    def test_unknown_vocabulary_entries(self):
        with pytest.raises(PolicyError):
            PolicySpec(name="x", manager="psychic")
        with pytest.raises(PolicyError):
            PolicySpec(name="x", eviction="fifo")
        with pytest.raises(PolicyError):
            PolicySpec(name="x", icap="warp-drive")

    def test_store_capacity_needs_eviction(self):
        with pytest.raises(PolicyError):
            PolicySpec(name="x", store_capacity_frames=10)
        with pytest.raises(PolicyError):
            PolicySpec(name="x", eviction="lru", store_capacity_frames=0)

    def test_dwell_must_be_positive(self):
        with pytest.raises(PolicyError):
            PolicySpec(name="x", dwell_s=0.0)

    def test_nameless_policy_rejected(self):
        with pytest.raises(PolicyError):
            PolicySpec(name="")


@pytest.fixture(scope="module")
def receiver_scheme():
    from repro.eval.casestudy import casestudy_design

    return partition(casestudy_design(), CASESTUDY_BUDGET).scheme


class TestBitstreamStore:
    def test_needs_an_eviction_policy(self, receiver_scheme):
        with pytest.raises(PolicyError):
            BitstreamStore(receiver_scheme, POLICY_PRESETS["no-prefetch"])

    def test_default_capacity_admits_every_partial(self, receiver_scheme):
        capacity = default_store_capacity(receiver_scheme)
        largest = max(r.frames for r in receiver_scheme.regions)
        assert capacity >= largest >= 1

    def test_miss_then_hit_lru(self, receiver_scheme):
        store = BitstreamStore(receiver_scheme, POLICY_PRESETS["evict-lru"])
        region = receiver_scheme.regions[0]
        label = region.partitions[0].label
        miss_s, resident = store.fetch(region.name, label)
        assert not resident
        hit_s, resident = store.fetch(region.name, label)
        assert resident
        # The miss streams through the slow controller.
        assert miss_s > hit_s > 0.0
        assert store.stats()["hits"] == 1 and store.stats()["misses"] == 1

    def test_lru_evicts_coldest_under_pressure(self, receiver_scheme):
        region = receiver_scheme.regions[0]
        labels = [p.label for p in region.partitions]
        assert len(labels) >= 2
        store = BitstreamStore(
            receiver_scheme, POLICY_PRESETS["evict-lru"],
            capacity_frames=region.frames,  # room for exactly one entry
        )
        store.fetch(region.name, labels[0])
        store.fetch(region.name, labels[1])  # evicts labels[0]
        assert store.evictions == 1
        _, resident = store.fetch(region.name, labels[0])
        assert not resident  # it was evicted

    def test_activity_keeps_the_hot_entry(self, receiver_scheme):
        region = receiver_scheme.regions[0]
        labels = [p.label for p in region.partitions]
        assert len(labels) >= 2
        store = BitstreamStore(
            receiver_scheme, POLICY_PRESETS["evict-activity"],
            capacity_frames=2 * region.frames,
        )
        store.fetch(region.name, labels[0])
        store.fetch(region.name, labels[0])  # labels[0] now hot
        store.fetch(region.name, labels[1])
        # A third entry forces an eviction; the hot entry must survive.
        other = next(
            (r, p.label)
            for r in receiver_scheme.regions
            for p in r.partitions
            if r.frames <= region.frames and (r.name, p.label) not in (
                (region.name, labels[0]), (region.name, labels[1]))
        )
        store.fetch(other[0].name, other[1])
        assert (region.name, labels[0]) in store.resident_keys

    def test_static_pins_up_front_and_never_adapts(self, receiver_scheme):
        store = BitstreamStore(receiver_scheme, POLICY_PRESETS["evict-static"])
        pinned = store.resident_keys
        assert pinned  # activity-ranked pinning fills the store
        # Misses never become resident under static.
        victim = next(
            (r.name, p.label)
            for r in receiver_scheme.regions
            for p in r.partitions
            if (r.name, p.label) not in pinned
        )
        store.fetch(*victim)
        assert store.resident_keys == pinned
        assert store.misses == 1 and store.evictions == 0

    def test_preload_is_free_and_idempotent(self, receiver_scheme):
        store = BitstreamStore(receiver_scheme, POLICY_PRESETS["evict-lru"])
        region = receiver_scheme.regions[0]
        label = region.partitions[0].label
        store.preload(region.name, label)
        store.preload(region.name, label)
        assert store.misses == 0
        _, resident = store.fetch(region.name, label)
        assert resident

    def test_unknown_bitstream_rejected(self, receiver_scheme):
        store = BitstreamStore(receiver_scheme, POLICY_PRESETS["evict-lru"])
        with pytest.raises(PolicyError):
            store.fetch("no-such-region", "no-such-label")
        with pytest.raises(PolicyError):
            store.preload("no-such-region", "no-such-label")

    def test_oversized_entry_streams_without_becoming_resident(
        self, receiver_scheme
    ):
        region = max(receiver_scheme.regions, key=lambda r: r.frames)
        store = BitstreamStore(
            receiver_scheme, POLICY_PRESETS["evict-lru"],
            capacity_frames=max(region.frames - 1, 1),
        )
        label = region.partitions[0].label
        seconds, resident = store.fetch(region.name, label)
        assert seconds > 0 and not resident
        assert (region.name, label) not in store.resident_keys
