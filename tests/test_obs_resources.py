"""Resource telemetry: getrusage sampling, per-job deltas, per-worker
folding, and the records a real batch run ships through the sink."""

from __future__ import annotations

import pytest

from repro.flow.xmlio import design_to_xml
from repro.obs import (
    TelemetrySink,
    fold_resource_records,
    job_resources,
    load_telemetry,
    sample_self,
)
from repro.obs.resources import RUSAGE_AVAILABLE, _maxrss_mb
from repro.service import JobStore, ResultCache, run_batch

needs_rusage = pytest.mark.skipif(
    not RUSAGE_AVAILABLE, reason="resource.getrusage unavailable"
)


class TestSampleSelf:
    @needs_rusage
    def test_sample_is_plausible(self):
        sample = sample_self()
        assert sample is not None
        assert sample.pid > 0
        # A Python interpreter cannot have a zero high-water mark, and a
        # test process should sit well under 16 GiB.
        assert 1.0 < sample.rss_peak_mb < 16 * 1024
        assert sample.cpu_user_s >= 0.0 and sample.cpu_sys_s >= 0.0

    @needs_rusage
    def test_rss_is_monotone(self):
        first = sample_self()
        ballast = [list(range(1000)) for _ in range(100)]
        second = sample_self()
        del ballast
        assert second.rss_peak_mb >= first.rss_peak_mb

    @needs_rusage
    def test_to_dict_round_trip_fields(self):
        doc = sample_self().to_dict()
        assert set(doc) == {"pid", "rss_peak_mb", "cpu_user_s", "cpu_sys_s"}


class TestMaxrssUnits:
    def test_linux_reports_kib(self, monkeypatch):
        monkeypatch.setattr("repro.obs.resources.sys.platform", "linux")
        assert _maxrss_mb(2048) == 2.0

    def test_darwin_reports_bytes(self, monkeypatch):
        monkeypatch.setattr("repro.obs.resources.sys.platform", "darwin")
        assert _maxrss_mb(2 * 1024 * 1024) == 2.0


class TestJobResources:
    @needs_rusage
    def test_delta_semantics(self):
        start = sample_self()
        sum(i * i for i in range(200_000))  # burn a little CPU
        delta = job_resources(start)
        assert delta is not None
        assert delta["pid"] == start.pid
        assert delta["cpu_user_s"] >= 0.0 and delta["cpu_sys_s"] >= 0.0
        # The delta is bounded by the cumulative counter at job end.
        end = sample_self()
        assert delta["cpu_user_s"] <= end.cpu_user_s + 1e-9
        assert delta["rss_peak_mb"] >= start.rss_peak_mb

    def test_none_start_is_none(self):
        assert job_resources(None) is None

    @needs_rusage
    def test_clock_weirdness_clamps_to_zero(self):
        inflated = sample_self()
        inflated = type(inflated)(
            pid=inflated.pid,
            rss_peak_mb=inflated.rss_peak_mb,
            cpu_user_s=inflated.cpu_user_s + 1e6,
            cpu_sys_s=inflated.cpu_sys_s + 1e6,
        )
        delta = job_resources(inflated)
        assert delta["cpu_user_s"] == 0.0 and delta["cpu_sys_s"] == 0.0


class TestFoldResourceRecords:
    def _record(self, pid, rss, user, sys_, live=False):
        return {
            "kind": "resource", "pid": pid, "rss_peak_mb": rss,
            "cpu_user_s": user, "cpu_sys_s": sys_, "live": live,
        }

    def test_job_samples_sum_cpu_and_count_jobs(self):
        folded = fold_resource_records([
            self._record(10, 50.0, 1.0, 0.5),
            self._record(10, 60.0, 2.0, 0.5),
            self._record(11, 40.0, 0.25, 0.25),
        ])
        assert set(folded) == {10, 11}
        assert folded[10].jobs == 2
        assert folded[10].cpu_user_s == 3.0 and folded[10].cpu_sys_s == 1.0
        assert folded[10].cpu_s == 4.0
        assert folded[10].rss_peak_mb == 60.0
        assert folded[11].jobs == 1 and folded[11].cpu_s == 0.5

    def test_live_samples_raise_rss_but_never_cpu(self):
        folded = fold_resource_records([
            self._record(10, 50.0, 1.0, 0.5),
            # Live heartbeat: cumulative CPU counters -- must NOT sum.
            self._record(10, 90.0, 100.0, 100.0, live=True),
        ])
        assert folded[10].rss_peak_mb == 90.0
        assert folded[10].cpu_s == 1.5
        assert folded[10].jobs == 1

    def test_records_without_pid_are_skipped(self):
        assert fold_resource_records([{"kind": "resource", "rss_peak_mb": 1}]) == {}

    def test_empty(self):
        assert fold_resource_records([]) == {}


@needs_rusage
class TestBatchRunShipsResourceTelemetry:
    def _run(self, tmp_path, tiny_design, jobs=2, **kwargs):
        store = JobStore.open(tmp_path / "queue")
        cache = ResultCache(tmp_path / "cache")
        for i in range(jobs):
            store.submit(
                name=f"d{i}",
                design_xml=design_to_xml(tiny_design, device_name="LX30"),
                device="LX30",
                dedupe=False,
            )
        sink = TelemetrySink(tmp_path / "tele")
        report = run_batch(store, cache, sink=sink, **kwargs)
        return report, load_telemetry(tmp_path / "tele")

    def test_inline_run_emits_resource_and_pool_records(
        self, tmp_path, tiny_design
    ):
        report, records = self._run(tmp_path, tiny_design)
        resources = [r for r in records if r["kind"] == "resource"]
        # One job computes, the second hits the dedupe-by-content cache
        # only if keys match; we disabled dedupe, so both compute.
        assert len(resources) == 2
        for record in resources:
            assert record["live"] is False
            assert record["pid"] > 0 and record["rss_peak_mb"] > 1.0
            assert record["job"]
        pools = [r for r in records if r["kind"] == "pool"]
        assert pools[0]["phase"] == "start"
        assert pools[0]["pending"] == 2
        # Occupancy returns to idle once the batch drains.
        assert pools[-1]["in_flight"] == 0 and pools[-1]["queue_depth"] == 0
        assert report.done == 2

    def test_warm_pool_run_emits_per_worker_resources(
        self, tmp_path, tiny_design
    ):
        report, records = self._run(tmp_path, tiny_design, workers=2)
        resources = [r for r in records if r["kind"] == "resource"]
        assert len(resources) == 2
        # Worker processes, not the parent.
        import os

        assert all(r["pid"] != os.getpid() for r in resources)
        folded = fold_resource_records(resources)
        assert sum(w.jobs for w in folded.values()) == 2
        assert report.done == 2

    def test_report_folds_worker_resources(self, tmp_path, tiny_design):
        from repro.obs import aggregate_run

        self._run(tmp_path, tiny_design)
        report = aggregate_run(tmp_path / "tele")
        assert report.worker_resources
        assert report.worker_peak_rss_mb > 1.0
        assert report.cpu_total_s >= 0.0
        doc = report.to_dict()
        assert doc["worker_peak_rss_mb"] == report.worker_peak_rss_mb
        assert doc["workers"][0]["pid"] > 0
