"""The streaming follower: torn tails, rotation mid-follow, resume,
and the byte-equivalence contract against ``load_telemetry``.

The crash properties mirror ``tests/test_obs_sink.py``: truncating the
*active* segment at every byte offset must never raise -- the follower
yields exactly the complete prefix and treats the tear as pending data,
emitting the rest once the bytes land.  The streaming regression proves
``iter_telemetry`` decodes lazily (no whole-directory materialisation)
by counting calls through the ``repro.obs.follow._decode`` hook.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.obs.follow as follow_mod
from repro.obs import (
    FollowCursor,
    SinkError,
    TelemetryFollower,
    TelemetrySink,
    follow_records,
    iter_telemetry,
    load_telemetry,
)


class FakeClock:
    def __init__(self, start: float = 100.0, step: float = 1.0):
        self.now, self.step = start, step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


def make_sink(directory, max_bytes=16 * 1024 * 1024):
    return TelemetrySink(directory, max_bytes=max_bytes, clock=FakeClock())


class TestCursor:
    def test_round_trip(self):
        cursor = FollowCursor(segment=3, offset=128, records=17)
        assert FollowCursor.from_dict(cursor.to_dict()) == cursor

    def test_invalid_dict_raises(self):
        with pytest.raises(SinkError):
            FollowCursor.from_dict({"segment": "x", "offset": None})
        with pytest.raises(SinkError):
            FollowCursor.from_dict({})


class TestPoll:
    def test_empty_and_missing_directory_yield_nothing(self, tmp_path):
        assert list(TelemetryFollower(tmp_path / "absent").poll()) == []
        (tmp_path / "empty").mkdir()
        assert list(TelemetryFollower(tmp_path / "empty").poll()) == []

    def test_yields_records_in_order(self, tmp_path):
        sink = make_sink(tmp_path / "tele")
        for i in range(5):
            sink.append("event", name="tick", payload={"i": i})
        follower = TelemetryFollower(sink.directory)
        got = list(follower.poll())
        assert [r["payload"]["i"] for r in got] == list(range(5))
        assert list(follower.poll()) == []  # nothing new

    def test_incremental_polls_never_re_emit(self, tmp_path):
        sink = make_sink(tmp_path / "tele")
        follower = TelemetryFollower(sink.directory)
        seen = []
        for i in range(6):
            sink.append("event", name="tick", payload={"i": i})
            seen.extend(follower.poll())
        assert [r["payload"]["i"] for r in seen] == list(range(6))

    def test_follows_rotation_mid_follow(self, tmp_path):
        sink = make_sink(tmp_path / "tele", max_bytes=150)
        follower = TelemetryFollower(sink.directory)
        seen = []
        for i in range(12):
            sink.append("event", name="tick", payload={"i": i})
            seen.extend(follower.poll())
        assert len(list(sink.directory.glob("*.jsonl"))) > 1
        assert [r["payload"]["i"] for r in seen] == list(range(12))
        assert seen == load_telemetry(sink.directory)

    def test_abandoning_the_generator_loses_nothing(self, tmp_path):
        sink = make_sink(tmp_path / "tele")
        for i in range(4):
            sink.append("event", name="tick", payload={"i": i})
        follower = TelemetryFollower(sink.directory)
        gen = follower.poll()
        first = next(gen)
        gen.close()  # abandon mid-iteration
        rest = list(follower.poll())
        assert [first["payload"]["i"]] + [
            r["payload"]["i"] for r in rest
        ] == list(range(4))

    def test_resume_from_serialised_cursor(self, tmp_path):
        sink = make_sink(tmp_path / "tele", max_bytes=150)
        for i in range(8):
            sink.append("event", name="tick", payload={"i": i})
        first = TelemetryFollower(sink.directory)
        head = list(first.poll())
        doc = json.loads(json.dumps(first.cursor.to_dict()))
        for i in range(8, 12):
            sink.append("event", name="tick", payload={"i": i})
        resumed = TelemetryFollower(
            sink.directory, FollowCursor.from_dict(doc)
        )
        tail = list(resumed.poll())
        assert [r["payload"]["i"] for r in head + tail] == list(range(12))

    def test_torn_active_tail_is_pending_not_error(self, tmp_path):
        sink = make_sink(tmp_path / "tele")
        sink.append("event", name="a", payload={})
        sink.append("event", name="b", payload={})
        path = sink.segment_path
        raw = path.read_bytes()
        path.write_bytes(raw[:-7])  # tear the final record
        follower = TelemetryFollower(sink.directory)
        assert [r["name"] for r in follower.poll()] == ["a"]
        path.write_bytes(raw)  # the writer finishes the record
        assert [r["name"] for r in follower.poll()] == ["b"]

    def test_torn_rotated_segment_raises(self, tmp_path):
        sink = make_sink(tmp_path / "tele", max_bytes=100)
        for i in range(6):
            sink.append("event", name="tick", payload={"i": i})
        segments = sorted(sink.directory.glob("*.jsonl"))
        assert len(segments) > 1
        raw = segments[0].read_bytes()
        segments[0].write_bytes(raw[:-3])
        follower = TelemetryFollower(sink.directory)
        with pytest.raises(SinkError, match="rotated"):
            list(follower.poll())

    def test_segment_shrinking_beneath_cursor_raises(self, tmp_path):
        sink = make_sink(tmp_path / "tele")
        for i in range(3):
            sink.append("event", name="tick", payload={"i": i})
        follower = TelemetryFollower(sink.directory)
        assert len(list(follower.poll())) == 3
        sink.segment_path.write_bytes(b'{"v": 1, "kind": "event"}\n')
        with pytest.raises(SinkError, match="shrank"):
            list(follower.poll())

    def test_vanished_segment_raises(self, tmp_path):
        sink = make_sink(tmp_path / "tele", max_bytes=100)
        for i in range(6):
            sink.append("event", name="tick", payload={"i": i})
        segments = sorted(sink.directory.glob("*.jsonl"))
        follower = TelemetryFollower(sink.directory)
        segments[0].unlink()
        with pytest.raises(SinkError, match="vanished"):
            list(follower.poll())

    def test_invalid_record_raises(self, tmp_path):
        sink = make_sink(tmp_path / "tele")
        sink.append("event", name="a", payload={})
        with sink.segment_path.open("a", encoding="utf-8") as fh:
            fh.write('{"v": 99, "kind": "event", "ts": 0}\n')
        with pytest.raises(SinkError, match="version"):
            list(TelemetryFollower(sink.directory).poll())


class TestCrashProperties:
    """Truncation at every byte of the active segment is survivable."""

    #: tmp_path is function-scoped but hypothesis runs many examples per
    #: call -- a monotonic suffix keeps every example's sink private.
    _serial = 0

    @classmethod
    def _fresh(cls, tmp_path):
        cls._serial += 1
        return tmp_path / f"tele-{cls._serial}"

    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(cut=st.integers(min_value=0, max_value=400))
    def test_truncate_active_segment_at_every_byte(self, tmp_path, cut):
        directory = self._fresh(tmp_path)
        sink = make_sink(directory)
        for i in range(5):
            sink.append("event", name="tick", payload={"i": i})
        path = sink.segment_path
        raw = path.read_bytes()
        cut = min(cut, len(raw))
        path.write_bytes(raw[:cut])
        follower = TelemetryFollower(directory)
        seen = list(follower.poll())  # must never raise
        complete = raw[:cut].count(b"\n")
        assert [r["payload"]["i"] for r in seen] == list(range(complete))
        # The writer completes the stream; the follower catches up and
        # the full follow equals the post-hoc load.
        path.write_bytes(raw)
        seen.extend(follower.poll())
        assert seen == load_telemetry(directory)

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        sizes=st.lists(
            st.integers(min_value=0, max_value=40), min_size=1, max_size=20
        ),
        max_bytes=st.sampled_from([80, 150, 400, 16 * 1024 * 1024]),
    )
    def test_follow_then_quiesce_equals_load(self, tmp_path, sizes, max_bytes):
        directory = self._fresh(tmp_path)
        sink = make_sink(directory, max_bytes=max_bytes)
        follower = TelemetryFollower(directory)
        seen = []
        for i, size in enumerate(sizes):
            sink.append("event", name="tick", payload={"i": i, "pad": "x" * size})
            if i % 3 == 0:  # interleave polls with writes
                seen.extend(follower.poll())
        seen.extend(follower.poll())
        assert seen == load_telemetry(directory)
        assert follower.cursor.records == len(sizes)


class TestFollowRecords:
    def test_idle_timeout_terminates(self, tmp_path):
        sink = make_sink(tmp_path / "tele")
        for i in range(3):
            sink.append("event", name="tick", payload={"i": i})
        clock = FakeClock(step=0.5)
        got = list(
            follow_records(
                sink.directory,
                idle_timeout_s=2.0,
                clock=clock,
                sleep=lambda s: None,
            )
        )
        assert [r["payload"]["i"] for r in got] == [0, 1, 2]

    def test_stop_drains_once_more_before_returning(self, tmp_path):
        sink = make_sink(tmp_path / "tele")
        sink.append("event", name="early", payload={})
        polls = {"n": 0}

        def stop() -> bool:
            # A record lands *between* the stop decision and the final
            # poll -- the follower must still deliver it.
            if polls["n"] == 0:
                sink.append("event", name="late", payload={})
                polls["n"] += 1
                return True
            return True

        got = list(
            follow_records(
                sink.directory,
                stop=stop,
                clock=FakeClock(),
                sleep=lambda s: None,
            )
        )
        assert [r["name"] for r in got] == ["early", "late"]


class TestStreamingGuarantee:
    """iter_telemetry holds O(1) records -- never a directory at a time."""

    def test_iter_decodes_lazily(self, tmp_path, monkeypatch):
        sink = make_sink(tmp_path / "tele", max_bytes=500)
        for i in range(200):
            sink.append("event", name="tick", payload={"i": i})
        calls = {"n": 0}
        real = follow_mod._decode

        def counting(line):
            calls["n"] += 1
            return real(line)

        monkeypatch.setattr(follow_mod, "_decode", counting)
        it = iter_telemetry(sink.directory)
        taken = [next(it) for _ in range(3)]
        # Peak records decoded is bounded by records consumed (+1 for
        # generator lookahead slack), not by the 200 on disk.
        assert calls["n"] <= len(taken) + 1
        rest = list(it)
        assert calls["n"] == 200
        assert [r["payload"]["i"] for r in taken + rest] == list(range(200))

    def test_follower_buffers_one_line_at_a_time(self, tmp_path, monkeypatch):
        sink = make_sink(tmp_path / "tele")
        for i in range(50):
            sink.append("event", name="tick", payload={"i": i})
        calls = {"n": 0}
        real = follow_mod._decode

        def counting(line):
            calls["n"] += 1
            return real(line)

        monkeypatch.setattr(follow_mod, "_decode", counting)
        gen = TelemetryFollower(sink.directory).poll()
        next(gen)
        assert calls["n"] <= 2
        gen.close()


class TestLiveFollowAcceptance:
    """Records stream out of a *running* batch, and the full follow is
    byte-equivalent to ``load_telemetry`` after quiesce."""

    def test_follow_sees_records_before_run_returns(self, tmp_path, tiny_design):
        from repro.flow.xmlio import design_to_xml
        from repro.obs import RecordingTracer
        from repro.service import JobStore, ResultCache, run_batch

        store = JobStore.open(tmp_path / "queue")
        cache = ResultCache(tmp_path / "cache")
        xml = design_to_xml(tiny_design, device_name="LX30")
        for i in range(2):
            store.submit(name=f"job-{i}", design_xml=xml, device="LX30",
                         max_candidate_sets=4 + i)
        sink = TelemetrySink(tmp_path / "tele")
        tracer = RecordingTracer()
        follower = TelemetryFollower(tmp_path / "tele")
        mid_run: list[dict] = []
        # Poll from inside the run via the progress stream -- fully
        # deterministic, no sleeps or subprocesses.
        tracer.on_progress(lambda e: mid_run.extend(follower.poll()))
        report = run_batch(store, cache, workers=1, tracer=tracer, sink=sink)
        assert report.done == 2
        assert mid_run, "follower saw nothing while the batch ran"
        followed = mid_run + list(follower.poll())
        assert followed == load_telemetry(tmp_path / "tele")
