"""ArtifactStore: the text-artifact sibling of ResultCache."""

from __future__ import annotations

import pytest

from repro.core import problem_key
from repro.eval.example_design import example_design
from repro.render import artifact_key
from repro.service import ArtifactStore
from repro.eval.persistence import PersistenceError


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "artifacts")


def key_for(renderer: str = "scheme") -> str:
    return artifact_key(problem_key(example_design()), renderer)


class TestRoundTrip:
    def test_miss_then_hit(self, store):
        key = key_for()
        assert store.get(key) is None
        store.put(key, "<svg/>")
        assert store.get(key) == "<svg/>"
        assert store.stats() == {"hits": 1, "misses": 1, "entries": 1}

    def test_contains_and_len(self, store):
        key = key_for()
        assert key not in store
        store.put(key, "x")
        assert key in store
        assert len(store) == 1
        assert list(store.keys()) == [key]

    def test_overwrite_replaces_text(self, store):
        key = key_for()
        store.put(key, "one")
        store.put(key, "two")
        assert store.get(key) == "two"
        assert len(store) == 1

    def test_unicode_survives(self, store):
        key = key_for()
        store.put(key, "…&#183;·")
        assert store.get(key) == "…&#183;·"


class TestLayout:
    def test_sharded_by_key_prefix(self, store):
        key = key_for()
        path = store.put(key, "x")
        assert path.parent.name == key[:2]
        assert path.name == f"{key}.txt"
        assert path == store.path_for(key)

    def test_short_key_rejected(self, store):
        with pytest.raises(PersistenceError, match="too short"):
            store.path_for("ab")

    def test_no_temp_debris_after_put(self, store):
        key = key_for()
        store.put(key, "x")
        debris = list(store.root.rglob("*.tmp"))
        assert debris == []

    def test_distinct_renderers_distinct_slots(self, store):
        store.put(key_for("scheme"), "s")
        store.put(key_for("floorplan"), "f")
        assert len(store) == 2
