"""Property tests of the JobStore log: legal-transition sequences and
crash-truncation of the append-only ``jobs.jsonl``.

Two invariants, in the spirit of crash-consistency testing of
append-only logs:

* **replay fidelity** -- after any sequence of legal transitions, a
  fresh load of the log reproduces the in-memory store exactly;
* **torn-tail recovery** -- truncating the log at *every byte offset*
  inside its final record must never raise ``JobStoreError``: the load
  either sees the full final record (cut after the terminating newline
  was durable... i.e. nothing lost) or cleanly falls back to the state
  before the final append.  A cut anywhere else in the tail is the
  crash-mid-append case the store promises to survive.
"""

from __future__ import annotations

import json

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.service.jobs import Job, JobStore

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.function_scoped_fixture,
    ],
)

#: Action vocabulary for the random walk.  Each step picks one and the
#: model only applies it when legal, so every generated sequence is a
#: valid history by construction.
ACTIONS = ("submit", "run", "done", "fail")


def snapshot(store: JobStore) -> list[tuple]:
    """The comparable essence of a store's state, in submission order."""
    return [
        (
            j.id,
            j.state,
            j.attempts,
            j.error,
            j.result_key,
            j.priority,
            j.submitter,
        )
        for j in store.jobs()
    ]


def drive(store: JobStore, script: list[tuple[str, int]]) -> None:
    """Apply a script of (action, selector) steps, skipping illegal ones."""
    for action, pick in script:
        if action == "submit":
            store.submit(
                name=f"d{pick}",
                design_xml=f"<design-{pick}/>",
                dedupe=False,
                max_attempts=1 + pick % 3,
                priority=pick % 4 - 1,
                submitter=("alice", "bob", "")[pick % 3],
            )
            continue
        jobs = store.jobs()
        if not jobs:
            continue
        job = jobs[pick % len(jobs)]
        if action == "run" and job.state == "pending":
            store.mark_running(job.id)
        elif action == "done" and job.state in ("pending", "running"):
            store.mark_done(job.id, "k" * 64, cache_hit=job.state == "pending")
        elif action == "fail" and job.state in ("pending", "running"):
            store.mark_failed(job.id, f"boom-{pick}")


scripts = st.lists(
    st.tuples(st.sampled_from(ACTIONS), st.integers(0, 11)),
    min_size=1,
    max_size=25,
)


@SETTINGS
@given(script=scripts)
def test_reload_reproduces_the_store(tmp_path_factory, script):
    directory = tmp_path_factory.mktemp("queue")
    store = JobStore(directory)
    drive(store, script)
    assert snapshot(JobStore(directory)) == snapshot(store)


@SETTINGS
@given(script=scripts)
def test_truncation_at_every_offset_of_the_final_record(
    tmp_path_factory, script
):
    directory = tmp_path_factory.mktemp("queue")
    store = JobStore(directory)
    drive(store, script)
    if not store.path.exists():
        return  # the script never submitted: nothing was logged
    raw = store.path.read_bytes()
    lines = raw.decode("utf-8").splitlines(keepends=True)
    if not lines:
        return
    final = lines[-1]
    prefix = raw[: len(raw) - len(final.encode("utf-8"))]

    # What a clean load of everything-but-the-final-record yields.
    before = _fold(lines[:-1])
    complete = _fold(lines)

    for cut in range(len(final.encode("utf-8")) + 1):
        store.path.write_bytes(prefix + final.encode("utf-8")[:cut])
        # Never raises: a torn tail is a crash, not corruption.
        loaded = JobStore(directory)
        got = snapshot(loaded)
        if cut == len(final.encode("utf-8")):
            assert got == complete
        else:
            # Any partial tail (including an empty one) recovers to the
            # pre-append state -- except when the partial fragment
            # happens to be valid JSON of a valid record (e.g. the cut
            # landed exactly on the final newline), which keeps it.
            assert got in (before, complete)
        # And the recovered log must accept appends cleanly: the torn
        # fragment was truncated away, not concatenated onto.
        loaded.submit(name="post-crash", design_xml="<post/>", dedupe=False)
        reloaded = JobStore(directory)
        assert snapshot(reloaded) == snapshot(loaded)


def _fold(lines: list[str]) -> list[tuple]:
    """Replay records the way JobStore._load does, as a plain fold."""
    from dataclasses import fields

    known = {f.name for f in fields(Job)}
    jobs: dict[str, Job] = {}
    order: list[str] = []
    for line in lines:
        raw = json.loads(line)
        job = Job(**{k: v for k, v in raw.items() if k in known})
        if job.id not in jobs:
            order.append(job.id)
        jobs[job.id] = job
    return [
        (
            j.id,
            j.state,
            j.attempts,
            j.error,
            j.result_key,
            j.priority,
            j.submitter,
        )
        for j in (jobs[i] for i in order)
    ]
