"""Differential correctness: the service layer must never change answers.

For a small synthetic population, ``run_batch`` -- one worker or two,
cold cache or warm -- must yield results identical to calling
``partition()`` directly: same ``total_frames``, same scheme.  This is
the guard that lets every other service feature (supervision, retries,
priorities, caching) evolve without silently moving paper-level
numbers.
"""

from __future__ import annotations

import pytest

from repro.arch.library import virtex5_full
from repro.core.partitioner import (
    PartitionerOptions,
    partition_with_device_selection,
)
from repro.service import JobStore, ResultCache, run_batch
from repro.service.problem import resolve_problem_text
from repro.synth.generator import generate_population

N_DESIGNS = 3
SEED = 13
MAX_SETS = 3  # bound the covering loop; part of both paths' options


@pytest.fixture(scope="module")
def population():
    return [d for _cls, d in generate_population(N_DESIGNS, seed=SEED)]


@pytest.fixture(scope="module")
def direct_answers(population):
    """The ground truth: partition() called directly, no service layer."""
    options = PartitionerOptions(max_candidate_sets=MAX_SETS)
    answers = {}
    for design in population:
        selected = partition_with_device_selection(
            design, virtex5_full(), options=options
        )
        answers[design.name] = (
            selected.device.name,
            selected.result.total_frames,
            selected.result.scheme.describe(),
        )
    return answers


def batch_answers(tmp_path, population, workers, cache):
    store = JobStore.open(tmp_path / f"q-w{workers}-{len(list(cache.keys()))}")
    for design in population:
        store.submit_design(design, max_candidate_sets=MAX_SETS)
    report = run_batch(store, cache, workers=workers)
    assert report.failed == 0
    assert report.done == len(population)
    answers = {}
    for job in store.jobs():
        entry = cache.get(job.result_key)
        # The cached design must round-trip to the submitted problem.
        assert resolve_problem_text(job.design_xml).design.name == job.name
        answers[job.name] = (
            entry.device_name,
            entry.total_frames,
            entry.result.scheme.describe(),
        )
    return report, answers


@pytest.mark.parametrize("workers", [1, 2])
def test_batch_matches_direct_partition(
    tmp_path, population, direct_answers, workers
):
    cache = ResultCache(tmp_path / f"cache-{workers}")
    cold_report, cold = batch_answers(tmp_path, population, workers, cache)
    assert cold_report.cache_hits == 0
    assert cold == direct_answers

    # Warm pass: same submissions again, everything from cache -- and
    # still byte-identical to the direct answers.
    warm_report, warm = batch_answers(tmp_path, population, workers, cache)
    assert warm_report.cache_hits == len(population)
    assert warm_report.computed == 0
    assert warm == direct_answers


def test_single_and_multi_worker_caches_are_identical(tmp_path, population):
    solo_cache = ResultCache(tmp_path / "c1")
    pool_cache = ResultCache(tmp_path / "c2")
    batch_answers(tmp_path / "solo", population, 1, solo_cache)
    batch_answers(tmp_path / "pool", population, 2, pool_cache)
    assert sorted(solo_cache.keys()) == sorted(pool_cache.keys())
