"""JobStore: lifecycle, persistence, crash recovery, corruption."""

from __future__ import annotations

import json

import pytest

from repro.service.jobs import (
    DEFAULT_MAX_ATTEMPTS,
    JOB_STATES,
    Job,
    JobStore,
    JobStoreError,
)


@pytest.fixture
def store(tmp_path):
    return JobStore(tmp_path / "queue")


def submit_one(store, name="j", xml="<x/>", **kwargs):
    return store.submit(name=name, design_xml=xml, **kwargs)


class TestSubmit:
    def test_submit_creates_pending_job(self, store):
        job = submit_one(store)
        assert job.state == "pending"
        assert job.attempts == 0
        assert job.max_attempts == DEFAULT_MAX_ATTEMPTS
        assert store.pending() == [job]

    def test_ids_are_unique_and_ordered(self, store):
        a = submit_one(store, xml="<a/>")
        b = submit_one(store, xml="<b/>")
        assert a.id != b.id
        assert [j.id for j in store.jobs()] == [a.id, b.id]

    def test_identical_specs_dedupe(self, store):
        a = submit_one(store)
        b = submit_one(store, name="other-label")
        assert a.id == b.id
        assert len(store.jobs()) == 1

    def test_dedupe_can_be_disabled(self, store):
        a = submit_one(store)
        b = submit_one(store, dedupe=False)
        assert a.id != b.id

    def test_failed_job_is_not_a_dedupe_target(self, store):
        a = submit_one(store, max_attempts=1)
        store.mark_running(a.id)
        assert store.mark_failed(a.id, "boom").state == "failed"
        b = submit_one(store)  # resubmit == retry with fresh attempts
        assert b.id != a.id
        assert b.state == "pending"
        assert b.attempts == 0
        assert store.get(a.id).state == "failed"  # history preserved

    def test_different_device_is_a_different_spec(self, store):
        a = submit_one(store)
        b = submit_one(store, device="LX30")
        assert a.id != b.id

    def test_submit_design_round_trips(self, store, tiny_design):
        job = store.submit_design(tiny_design, device="LX30")
        from repro.flow.xmlio import parse_design

        parsed = parse_design(job.design_xml)
        assert parsed.design.name == tiny_design.name
        assert job.device == "LX30"


class TestTransitions:
    def test_full_success_lifecycle(self, store):
        job = submit_one(store)
        job = store.mark_running(job.id)
        assert job.state == "running"
        assert job.attempts == 1
        job = store.mark_done(job.id, "deadbeef" * 8, compute_s=0.5)
        assert job.state == "done"
        assert job.result_key == "deadbeef" * 8
        assert not job.cache_hit

    def test_cache_hit_completes_from_pending(self, store):
        job = submit_one(store)
        job = store.mark_done(job.id, "k" * 64, cache_hit=True)
        assert job.state == "done"
        assert job.cache_hit
        assert job.attempts == 0  # no worker ever claimed it

    def test_failure_requeues_until_exhausted(self, store):
        job = submit_one(store, max_attempts=2)
        job = store.mark_running(job.id)
        job = store.mark_failed(job.id, "boom 1")
        assert job.state == "pending"  # one attempt left
        assert job.error == "boom 1"
        job = store.mark_running(job.id)
        job = store.mark_failed(job.id, "boom 2")
        assert job.state == "failed"
        assert job.attempts == 2
        assert job.error == "boom 2"

    def test_done_clears_stale_error(self, store):
        job = submit_one(store)
        store.mark_running(job.id)
        store.mark_failed(job.id, "flaky")
        store.mark_running(job.id)
        job = store.mark_done(job.id, "k" * 64)
        assert job.error is None

    def test_illegal_transitions_raise(self, store):
        job = submit_one(store)
        store.mark_running(job.id)
        with pytest.raises(JobStoreError, match="running"):
            store.mark_running(job.id)
        store.mark_done(job.id, "k" * 64)
        with pytest.raises(JobStoreError):
            store.mark_failed(job.id, "late")

    def test_unknown_job_raises(self, store):
        with pytest.raises(JobStoreError, match="unknown job"):
            store.get("job-99999-missing")

    def test_counts_cover_every_state(self, store):
        assert store.counts() == {s: 0 for s in JOB_STATES}
        submit_one(store)
        assert store.counts()["pending"] == 1


class TestPersistence:
    def test_reload_replays_the_log(self, store, tmp_path):
        job = submit_one(store)
        store.mark_running(job.id)
        store.mark_failed(job.id, "boom")
        reloaded = JobStore(tmp_path / "queue")
        back = reloaded.get(job.id)
        assert back.state == "pending"
        assert back.attempts == 1
        assert back.error == "boom"

    def test_open_recovers_interrupted_running_jobs(self, store, tmp_path):
        job = submit_one(store)
        store.mark_running(job.id)  # crash here: never completed
        reloaded = JobStore.open(tmp_path / "queue")
        back = reloaded.get(job.id)
        assert back.state == "pending"
        assert back.attempts == 1  # interrupted attempt stays counted

    def test_recover_fails_exhausted_running_jobs(self, store, tmp_path):
        job = submit_one(store, max_attempts=1)
        store.mark_running(job.id)
        reloaded = JobStore.open(tmp_path / "queue")
        back = reloaded.get(job.id)
        assert back.state == "failed"
        assert "interrupted" in back.error

    def test_torn_final_line_is_tolerated(self, store, tmp_path):
        job = submit_one(store)
        store.mark_running(job.id)
        with store.path.open("a", encoding="utf-8") as fh:
            fh.write('{"id": "job-trunc')  # crash mid-append
        reloaded = JobStore.open(tmp_path / "queue")
        assert reloaded.get(job.id).state == "pending"

    def test_torn_final_line_is_truncated_before_next_append(
        self, store, tmp_path
    ):
        # crash -> recover -> append -> reload: the fragment must not
        # corrupt records written after recovery.
        job = submit_one(store)
        store.mark_running(job.id)
        with store.path.open("a", encoding="utf-8") as fh:
            fh.write('{"id": "job-trunc')  # crash mid-append
        recovered = JobStore.open(tmp_path / "queue")
        other = recovered.submit(name="after-crash", design_xml="<y/>")
        final = JobStore.open(tmp_path / "queue")  # must replay cleanly
        assert final.get(job.id).state == "pending"
        assert final.get(other.id).state == "pending"
        assert '"job-trunc' not in store.path.read_text(encoding="utf-8")

    def test_corrupt_interior_line_raises(self, store, tmp_path):
        submit_one(store)
        text = store.path.read_text(encoding="utf-8")
        store.path.write_text("not json\n" + text, encoding="utf-8")
        with pytest.raises(JobStoreError, match="corrupt"):
            JobStore(tmp_path / "queue")

    def test_non_object_record_raises(self, store):
        submit_one(store)
        with store.path.open("a", encoding="utf-8") as fh:
            fh.write("[1, 2]\n")
            fh.write(json.dumps({"id": "x"}) + "\n")  # not the final line
        with pytest.raises(JobStoreError, match="must be an object"):
            JobStore(store.directory)

    def test_invalid_state_in_log_raises(self, store):
        record = json.dumps({"id": "j1", "name": "n", "design_xml": "<x/>",
                             "state": "exploded"})
        with store.path.open("a", encoding="utf-8") as fh:
            fh.write(record + "\n" + record + "\n")
        with pytest.raises(JobStoreError, match="invalid job record"):
            JobStore(store.directory)


class TestJobValidation:
    def test_unknown_state_rejected(self):
        with pytest.raises(JobStoreError):
            Job(id="j", name="n", design_xml="<x/>", state="nope")

    def test_max_attempts_must_be_positive(self):
        with pytest.raises(JobStoreError):
            Job(id="j", name="n", design_xml="<x/>", max_attempts=0)

    def test_exhausted_property(self):
        job = Job(id="j", name="n", design_xml="<x/>", attempts=2,
                  max_attempts=2)
        assert job.exhausted
