"""JobStore: lifecycle, persistence, crash recovery, corruption."""

from __future__ import annotations

import json

import pytest

from repro.service.jobs import (
    DEFAULT_MAX_ATTEMPTS,
    JOB_STATES,
    Job,
    JobStore,
    JobStoreError,
)


@pytest.fixture
def store(tmp_path):
    return JobStore(tmp_path / "queue")


def submit_one(store, name="j", xml="<x/>", **kwargs):
    return store.submit(name=name, design_xml=xml, **kwargs)


class TestSubmit:
    def test_submit_creates_pending_job(self, store):
        job = submit_one(store)
        assert job.state == "pending"
        assert job.attempts == 0
        assert job.max_attempts == DEFAULT_MAX_ATTEMPTS
        assert store.pending() == [job]

    def test_ids_are_unique_and_ordered(self, store):
        a = submit_one(store, xml="<a/>")
        b = submit_one(store, xml="<b/>")
        assert a.id != b.id
        assert [j.id for j in store.jobs()] == [a.id, b.id]

    def test_identical_specs_dedupe(self, store):
        a = submit_one(store)
        b = submit_one(store, name="other-label")
        assert a.id == b.id
        assert len(store.jobs()) == 1

    def test_dedupe_can_be_disabled(self, store):
        a = submit_one(store)
        b = submit_one(store, dedupe=False)
        assert a.id != b.id

    def test_failed_job_is_not_a_dedupe_target(self, store):
        a = submit_one(store, max_attempts=1)
        store.mark_running(a.id)
        assert store.mark_failed(a.id, "boom").state == "failed"
        b = submit_one(store)  # resubmit == retry with fresh attempts
        assert b.id != a.id
        assert b.state == "pending"
        assert b.attempts == 0
        assert store.get(a.id).state == "failed"  # history preserved

    def test_different_device_is_a_different_spec(self, store):
        a = submit_one(store)
        b = submit_one(store, device="LX30")
        assert a.id != b.id

    def test_submit_design_round_trips(self, store, tiny_design):
        job = store.submit_design(tiny_design, device="LX30")
        from repro.flow.xmlio import parse_design

        parsed = parse_design(job.design_xml)
        assert parsed.design.name == tiny_design.name
        assert job.device == "LX30"


class TestTransitions:
    def test_full_success_lifecycle(self, store):
        job = submit_one(store)
        job = store.mark_running(job.id)
        assert job.state == "running"
        assert job.attempts == 1
        job = store.mark_done(job.id, "deadbeef" * 8, compute_s=0.5)
        assert job.state == "done"
        assert job.result_key == "deadbeef" * 8
        assert not job.cache_hit

    def test_cache_hit_completes_from_pending(self, store):
        job = submit_one(store)
        job = store.mark_done(job.id, "k" * 64, cache_hit=True)
        assert job.state == "done"
        assert job.cache_hit
        assert job.attempts == 0  # no worker ever claimed it

    def test_failure_requeues_until_exhausted(self, store):
        job = submit_one(store, max_attempts=2)
        job = store.mark_running(job.id)
        job = store.mark_failed(job.id, "boom 1")
        assert job.state == "pending"  # one attempt left
        assert job.error == "boom 1"
        job = store.mark_running(job.id)
        job = store.mark_failed(job.id, "boom 2")
        assert job.state == "failed"
        assert job.attempts == 2
        assert job.error == "boom 2"

    def test_done_clears_stale_error(self, store):
        job = submit_one(store)
        store.mark_running(job.id)
        store.mark_failed(job.id, "flaky")
        store.mark_running(job.id)
        job = store.mark_done(job.id, "k" * 64)
        assert job.error is None

    def test_illegal_transitions_raise(self, store):
        job = submit_one(store)
        store.mark_running(job.id)
        with pytest.raises(JobStoreError, match="running"):
            store.mark_running(job.id)
        store.mark_done(job.id, "k" * 64)
        with pytest.raises(JobStoreError):
            store.mark_failed(job.id, "late")

    def test_unknown_job_raises(self, store):
        with pytest.raises(JobStoreError, match="unknown job"):
            store.get("job-99999-missing")

    def test_counts_cover_every_state(self, store):
        assert store.counts() == {s: 0 for s in JOB_STATES}
        submit_one(store)
        assert store.counts()["pending"] == 1


class TestPersistence:
    def test_reload_replays_the_log(self, store, tmp_path):
        job = submit_one(store)
        store.mark_running(job.id)
        store.mark_failed(job.id, "boom")
        reloaded = JobStore(tmp_path / "queue")
        back = reloaded.get(job.id)
        assert back.state == "pending"
        assert back.attempts == 1
        assert back.error == "boom"

    def test_open_recovers_interrupted_running_jobs(self, store, tmp_path):
        job = submit_one(store)
        store.mark_running(job.id)  # crash here: never completed
        reloaded = JobStore.open(tmp_path / "queue")
        back = reloaded.get(job.id)
        assert back.state == "pending"
        assert back.attempts == 1  # interrupted attempt stays counted

    def test_recover_fails_exhausted_running_jobs(self, store, tmp_path):
        job = submit_one(store, max_attempts=1)
        store.mark_running(job.id)
        reloaded = JobStore.open(tmp_path / "queue")
        back = reloaded.get(job.id)
        assert back.state == "failed"
        assert "interrupted" in back.error

    def test_torn_final_line_is_tolerated(self, store, tmp_path):
        job = submit_one(store)
        store.mark_running(job.id)
        with store.path.open("a", encoding="utf-8") as fh:
            fh.write('{"id": "job-trunc')  # crash mid-append
        reloaded = JobStore.open(tmp_path / "queue")
        assert reloaded.get(job.id).state == "pending"

    def test_torn_final_line_is_truncated_before_next_append(
        self, store, tmp_path
    ):
        # crash -> recover -> append -> reload: the fragment must not
        # corrupt records written after recovery.
        job = submit_one(store)
        store.mark_running(job.id)
        with store.path.open("a", encoding="utf-8") as fh:
            fh.write('{"id": "job-trunc')  # crash mid-append
        recovered = JobStore.open(tmp_path / "queue")
        other = recovered.submit(name="after-crash", design_xml="<y/>")
        final = JobStore.open(tmp_path / "queue")  # must replay cleanly
        assert final.get(job.id).state == "pending"
        assert final.get(other.id).state == "pending"
        assert '"job-trunc' not in store.path.read_text(encoding="utf-8")

    def test_corrupt_interior_line_raises(self, store, tmp_path):
        submit_one(store)
        text = store.path.read_text(encoding="utf-8")
        store.path.write_text("not json\n" + text, encoding="utf-8")
        with pytest.raises(JobStoreError, match="corrupt"):
            JobStore(tmp_path / "queue")

    def test_non_object_record_raises(self, store):
        submit_one(store)
        with store.path.open("a", encoding="utf-8") as fh:
            fh.write("[1, 2]\n")
            fh.write(json.dumps({"id": "x"}) + "\n")  # not the final line
        with pytest.raises(JobStoreError, match="must be an object"):
            JobStore(store.directory)

    def test_invalid_state_in_log_raises(self, store):
        record = json.dumps({"id": "j1", "name": "n", "design_xml": "<x/>",
                             "state": "exploded"})
        with store.path.open("a", encoding="utf-8") as fh:
            fh.write(record + "\n" + record + "\n")
        with pytest.raises(JobStoreError, match="invalid job record"):
            JobStore(store.directory)


class TestScheduling:
    """pending() dispatch order: priority desc, fair round-robin, FIFO."""

    def test_default_is_plain_fifo(self, store):
        a = submit_one(store, xml="<a/>")
        b = submit_one(store, xml="<b/>")
        c = submit_one(store, xml="<c/>")
        assert [j.id for j in store.pending()] == [a.id, b.id, c.id]

    def test_higher_priority_dispatches_first(self, store):
        low = submit_one(store, xml="<a/>", priority=0)
        high = submit_one(store, xml="<b/>", priority=5)
        mid = submit_one(store, xml="<c/>", priority=1)
        assert [j.id for j in store.pending()] == [high.id, mid.id, low.id]

    def test_negative_priority_sinks_below_default(self, store):
        sink = submit_one(store, xml="<a/>", priority=-2)
        norm = submit_one(store, xml="<b/>")
        assert [j.id for j in store.pending()] == [norm.id, sink.id]

    def test_round_robin_across_submitters(self, store):
        a1 = submit_one(store, xml="<a1/>", submitter="alice")
        a2 = submit_one(store, xml="<a2/>", submitter="alice")
        a3 = submit_one(store, xml="<a3/>", submitter="alice")
        b1 = submit_one(store, xml="<b1/>", submitter="bob")
        b2 = submit_one(store, xml="<b2/>", submitter="bob")
        # Bob's backlog interleaves with Alice's despite submitting last.
        assert [j.id for j in store.pending()] == [
            a1.id, b1.id, a2.id, b2.id, a3.id
        ]

    def test_mixed_priority_two_submitters(self, store):
        # The acceptance ordering: priority bands first, round-robin
        # within a band, FIFO as the final tie-break.
        a1 = submit_one(store, xml="<a1/>", submitter="alice")
        a2 = submit_one(store, xml="<a2/>", submitter="alice")
        b1 = submit_one(store, xml="<b1/>", submitter="bob")
        urgent = submit_one(store, xml="<u/>", submitter="carol", priority=5)
        b2 = submit_one(store, xml="<b2/>", submitter="bob")
        assert [j.id for j in store.pending()] == [
            urgent.id, a1.id, b1.id, a2.id, b2.id
        ]

    def test_only_pending_jobs_are_scheduled(self, store):
        done = submit_one(store, xml="<a/>", priority=9)
        queued = submit_one(store, xml="<b/>")
        store.mark_done(done.id, "k" * 64, cache_hit=True)
        assert [j.id for j in store.pending()] == [queued.id]

    def test_priority_does_not_distinguish_specs(self, store):
        a = submit_one(store, priority=0)
        b = submit_one(store, priority=7)  # same spec, new priority
        assert b.id == a.id
        assert b.priority == 0  # the queued job stands unchanged

    def test_priority_survives_reload(self, store, tmp_path):
        submit_one(store, priority=3, submitter="alice")
        back = JobStore(tmp_path / "queue").jobs()[0]
        assert back.priority == 3
        assert back.submitter == "alice"

    def test_non_integer_priority_rejected(self):
        with pytest.raises(JobStoreError, match="priority"):
            Job(id="j", name="n", design_xml="<x/>", priority="high")


class TestLegacyLogs:
    """A pre-priority jobs.jsonl (PR 2 field set) must load unchanged."""

    LEGACY = {
        "id": "job-00000-aabbccdd",
        "name": "old-design",
        "design_xml": "<x/>",
        "device": "LX30",
        "max_candidate_sets": None,
        "spec_digest": "aabbccddeeff0011",
        "state": "pending",
        "attempts": 1,
        "max_attempts": 2,
        "error": "boom",
        "result_key": None,
        "cache_hit": False,
        "compute_s": None,
        "submitted_at": 1700000000.0,
        "updated_at": 1700000001.0,
    }

    def test_legacy_record_loads_with_scheduling_defaults(self, store):
        with store.path.open("a", encoding="utf-8") as fh:
            fh.write(json.dumps(self.LEGACY) + "\n")
        loaded = JobStore(store.directory)
        job = loaded.get("job-00000-aabbccdd")
        assert job.priority == 0
        assert job.submitter == ""
        assert job.state == "pending"
        assert job.attempts == 1
        assert job.error == "boom"
        # And it participates in scheduling (plain FIFO band 0).
        assert [j.id for j in loaded.pending()] == [job.id]

    def test_legacy_and_new_records_mix_in_one_log(self, store):
        with store.path.open("a", encoding="utf-8") as fh:
            fh.write(json.dumps(self.LEGACY) + "\n")
        loaded = JobStore(store.directory)
        fresh = loaded.submit(
            name="new", design_xml="<y/>", priority=2, submitter="alice"
        )
        again = JobStore(store.directory)
        assert [j.id for j in again.pending()] == [
            fresh.id, "job-00000-aabbccdd"
        ]
        # The legacy job's spec digest still joins the dedupe index.
        dup = again.submit(name="dup", design_xml="<x/>", device="LX30")
        assert dup.id != "job-00000-aabbccdd"  # digest differs: real spec


class TestDedupeIndex:
    """submit() dedupe is indexed, not a scan -- same observable rules."""

    def test_duplicate_after_many_jobs_still_dedupes(self, store):
        first = submit_one(store)
        for i in range(50):
            submit_one(store, xml=f"<other-{i}/>")
        assert submit_one(store).id == first.id

    def test_dedupe_falls_through_failed_to_live_duplicate(self, store):
        a = submit_one(store, max_attempts=1)
        b = submit_one(store, dedupe=False)  # same spec, forced duplicate
        store.mark_running(a.id)
        store.mark_failed(a.id, "boom")
        assert store.get(a.id).state == "failed"
        # The index must serve the *live* duplicate, not the failed one.
        assert submit_one(store).id == b.id

    def test_index_rebuilds_on_reload(self, store, tmp_path):
        first = submit_one(store)
        reloaded = JobStore(tmp_path / "queue")
        assert submit_one(reloaded).id == first.id

    def test_submit_is_not_quadratic(self, store):
        # 300 distinct specs: with the digest index this is ~instant;
        # the old all-jobs scan would cross 45k comparisons.
        import time as _time

        started = _time.perf_counter()
        for i in range(300):
            submit_one(store, xml=f"<n-{i}/>")
        assert len(store.jobs()) == 300
        assert _time.perf_counter() - started < 5.0


class TestJobValidation:
    def test_unknown_state_rejected(self):
        with pytest.raises(JobStoreError):
            Job(id="j", name="n", design_xml="<x/>", state="nope")

    def test_max_attempts_must_be_positive(self):
        with pytest.raises(JobStoreError):
            Job(id="j", name="n", design_xml="<x/>", max_attempts=0)

    def test_exhausted_property(self):
        job = Job(id="j", name="n", design_xml="<x/>", attempts=2,
                  max_attempts=2)
        assert job.exhausted
