"""ResultCache: layout, round-trip fidelity, corruption, atomicity."""

from __future__ import annotations

import json

import pytest

from repro.arch.resources import ResourceVector
from repro.core import partition, problem_key
from repro.eval.persistence import PersistenceError
from repro.service.cache import ENTRY_FORMAT, ENTRY_VERSION, ResultCache

CAPACITY = ResourceVector(500, 8, 8)


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


@pytest.fixture
def computed(tiny_design):
    result = partition(tiny_design, CAPACITY)
    key = problem_key(tiny_design, CAPACITY)
    return key, result


class TestLayout:
    def test_paths_shard_on_first_two_hex_digits(self, cache):
        key = "ab" + "0" * 62
        path = cache.path_for(key)
        assert path.parent.name == "ab"
        assert path.name == f"{key}.json"

    def test_short_key_rejected(self, cache):
        with pytest.raises(PersistenceError, match="too short"):
            cache.path_for("ab")

    def test_contains_len_keys(self, cache, computed):
        key, result = computed
        assert key not in cache
        assert len(cache) == 0
        cache.put(key, result)
        assert key in cache
        assert len(cache) == 1
        assert list(cache.keys()) == [key]


class TestRoundTrip:
    def test_hit_restores_a_complete_result(self, cache, computed, tiny_design):
        key, result = computed
        cache.put(key, result, device_name="LX30", compute_s=1.25)
        entry = cache.get(key)
        assert entry.key == key
        assert entry.device_name == "LX30"
        assert entry.compute_s == 1.25
        assert entry.total_frames == result.total_frames
        restored = entry.result
        assert restored.scheme.design.name == tiny_design.name
        assert len(restored.scheme.regions) == len(result.scheme.regions)
        assert [r.requirement for r in restored.scheme.regions] == [
            r.requirement for r in result.scheme.regions
        ]

    def test_miss_returns_none_and_counts(self, cache):
        assert cache.get("f" * 64) is None
        assert cache.stats()["misses"] == 1
        assert cache.stats()["hits"] == 0

    def test_hit_counter(self, cache, computed):
        key, result = computed
        cache.put(key, result)
        cache.get(key)
        cache.get(key)
        assert cache.stats() == {"hits": 2, "misses": 0, "entries": 1}

    def test_put_is_idempotent(self, cache, computed):
        key, result = computed
        first = cache.put(key, result)
        second = cache.put(key, result)
        assert first == second
        assert len(cache) == 1

    def test_clear_removes_everything(self, cache, computed):
        key, result = computed
        cache.put(key, result)
        assert cache.clear() == 1
        assert len(cache) == 0
        assert cache.get(key) is None


class TestProbe:
    def test_probe_hits_valid_entry(self, cache, computed):
        key, result = computed
        cache.put(key, result)
        assert cache.probe(key)
        assert cache.stats()["hits"] == 1

    def test_probe_misses_absent_entry(self, cache):
        assert not cache.probe("f" * 64)
        assert cache.stats()["misses"] == 1

    def test_probe_treats_corruption_as_miss(self, cache, computed):
        key, result = computed
        path = cache.put(key, result)
        path.write_text("{", encoding="utf-8")
        assert not cache.probe(key)

    def test_probe_rejects_wrong_envelope(self, cache):
        key = "a" * 64
        path = cache.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps({"format": ENTRY_FORMAT, "version": ENTRY_VERSION,
                        "key": "b" * 64}),
            encoding="utf-8",
        )
        assert not cache.probe(key)

    def test_probe_agrees_with_lookup_on_real_entries(self, cache, computed):
        key, result = computed
        cache.put(key, result)
        assert cache.probe(key) == (cache.lookup(key) is not None)


class TestCorruption:
    def write_doc(self, cache, key, doc):
        path = cache.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            doc if isinstance(doc, str) else json.dumps(doc), encoding="utf-8"
        )

    def test_truncated_entry_raises_persistence_error(self, cache, computed):
        key, result = computed
        path = cache.put(key, result)
        path.write_text(path.read_text(encoding="utf-8")[:40], encoding="utf-8")
        with pytest.raises(PersistenceError, match="corrupt cache entry"):
            cache.get(key)

    def test_lookup_treats_corruption_as_miss(self, cache, computed):
        key, result = computed
        path = cache.put(key, result)
        path.write_text("{", encoding="utf-8")
        assert cache.lookup(key) is None
        assert cache.stats()["misses"] >= 1

    def test_wrong_format_rejected(self, cache):
        key = "a" * 64
        self.write_doc(cache, key, {"format": "something-else"})
        with pytest.raises(PersistenceError, match="wrong format"):
            cache.get(key)

    def test_wrong_version_rejected(self, cache):
        key = "a" * 64
        self.write_doc(
            cache, key, {"format": ENTRY_FORMAT, "version": ENTRY_VERSION + 1}
        )
        with pytest.raises(PersistenceError, match="unsupported version"):
            cache.get(key)

    def test_key_mismatch_rejected(self, cache, computed):
        key, result = computed
        other = "b" * 64
        doc = json.loads(cache.put(key, result).read_text(encoding="utf-8"))
        self.write_doc(cache, other, doc)
        with pytest.raises(PersistenceError, match="claims key"):
            cache.get(other)

    def test_non_object_entry_rejected(self, cache):
        key = "a" * 64
        self.write_doc(cache, key, [1, 2, 3])
        with pytest.raises(PersistenceError):
            cache.get(key)

    def test_no_temp_files_left_behind(self, cache, computed):
        key, result = computed
        cache.put(key, result)
        leftovers = [p for p in cache.root.rglob("*.tmp")]
        assert leftovers == []
