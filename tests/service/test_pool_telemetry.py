"""Cross-process telemetry through run_batch: re-rooted worker traces,
associative counter merges, and the durable sink records.

The associativity test is the observability analogue of the engine
differential tests: the same job set drained with 1, 2 and 4 workers
must fold to identical pipeline counters -- parallelism must never
change *what happened*, only where it was recorded.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    RecordingTracer,
    TelemetrySink,
    load_telemetry,
    render_trace_summary,
    trace_from_dict,
)
from repro.service import JobStore, ResultCache, run_batch

from ..conftest import make_design


def simple_design(name: str, clb: int = 40):
    return make_design(
        {
            "A": {"A1": (clb, 0, 0), "A2": (clb + 160, 0, 0)},
            "B": {"B1": (220, 0, 0), "B2": (50, 0, 0)},
        },
        [("A1", "B1"), ("A2", "B2"), ("A1", "B2")],
        name=name,
    )


def submit_three(store: JobStore) -> None:
    for i in range(3):
        store.submit_design(simple_design(f"d{i}", clb=40 + i), device="LX30")


#: Deterministic pipeline counters (timing-free) that must be identical
#: whatever the worker count.
PIPELINE_COUNTERS = (
    "covering.passes",
    "covering.sets_produced",
    "merge.states_explored",
    "merge.feasible_states",
    "partition.candidate_sets",
    "service.cache_misses",
    "service.jobs_done",
)


class TestWorkerTracePropagation:
    def test_worker_spans_re_root_under_batch_span(self, tmp_path):
        store = JobStore.open(tmp_path / "q")
        submit_three(store)
        tracer = RecordingTracer()
        report = run_batch(
            store, ResultCache(tmp_path / "c"), workers=2, tracer=tracer
        )
        assert report.done == 3
        trace = tracer.trace()
        (batch_span,) = trace.find("batch_run")
        jobs = batch_span.find("job")
        assert len(jobs) == 3
        for job_span in jobs:
            assert set(job_span.attrs) == {"job", "key"}
            # The worker pipeline nests under the synthetic job span.
            assert [c.name for c in job_span.children] == ["partition"]
            (partition,) = job_span.children
            assert "merge_search" in {s.name for _, s in partition.walk()}
            # Shifted spans stay inside the parent time base.
            for _path, span in job_span.walk():
                assert span.start_s >= job_span.start_s
                for child in span.children:
                    assert child.start_s >= span.start_s
        # The one coherent tree renders: worker stages under batch_run.
        summary = render_trace_summary(trace)
        assert "batch_run" in summary
        assert "merge_search" in summary

    def test_counter_merge_associative_across_worker_counts(self, tmp_path):
        folded = {}
        for workers in (1, 2, 4):
            store = JobStore.open(tmp_path / f"q{workers}")
            submit_three(store)
            tracer = RecordingTracer()
            report = run_batch(
                store,
                ResultCache(tmp_path / f"c{workers}"),
                workers=workers,
                tracer=tracer,
            )
            assert report.done == 3 and report.failed == 0
            folded[workers] = {
                name: tracer.counters.get(name, 0)
                for name in PIPELINE_COUNTERS
            }
        assert folded[1] == folded[2] == folded[4]

    def test_inline_run_without_recording_ships_no_traces(self, tmp_path):
        store = JobStore.open(tmp_path / "q")
        submit_three(store)
        report = run_batch(store, ResultCache(tmp_path / "c"), workers=1)
        assert report.done == 3  # no tracer, no sink: nothing to collect

    def test_collect_can_be_forced_off(self, tmp_path):
        store = JobStore.open(tmp_path / "q")
        submit_three(store)
        tracer = RecordingTracer()
        run_batch(
            store,
            ResultCache(tmp_path / "c"),
            workers=2,
            tracer=tracer,
            collect_worker_traces=False,
        )
        (batch_span,) = tracer.trace().find("batch_run")
        assert batch_span.find("job") == []  # no adopted worker spans

    def test_failed_job_trace_is_still_adopted(self, tmp_path):
        store = JobStore.open(tmp_path / "q")
        # 90k CLBs fits no library device: the worker raises mid-pipeline.
        store.submit_design(
            make_design({"A": {"A1": (90_000, 0, 0)}}, [("A1",)], name="huge"),
            max_attempts=1,
        )
        tracer = RecordingTracer()
        report = run_batch(
            store, ResultCache(tmp_path / "c"), workers=2, tracer=tracer
        )
        assert report.failed == 1
        (batch_span,) = tracer.trace().find("batch_run")
        assert len(batch_span.find("job")) == 1


durations = st.floats(min_value=0.001, max_value=0.5,
                      allow_nan=False, allow_infinity=False)
span_layouts = st.recursive(
    st.tuples(durations, st.just(())),
    lambda children: st.tuples(durations, st.lists(children, max_size=3)),
    max_leaves=8,
)


class TestAdoptTraceProperties:
    """Re-rooting preserves relative order and nesting exactly."""

    @settings(max_examples=30, deadline=None)
    @given(
        layout=span_layouts,
        start=st.floats(min_value=0.0, max_value=100.0),
    )
    def test_re_rooted_spans_preserve_order_and_nesting(self, layout, start):
        def record(tracer, node, name="s"):
            duration, children = node
            with tracer.span(name):
                for i, child in enumerate(children):
                    record(tracer, child, f"{name}.{i}")
                tracer.now()  # advance nothing; FakeClock-free determinism

        worker = RecordingTracer()
        record(worker, layout)
        shipped = worker.trace().to_dict()

        def shape(span):
            return (span.name, [shape(c) for c in span.children])

        def offsets(span, base):
            return [
                (span.start_s - base, span.duration_s)
            ] + [o for c in span.children for o in offsets(c, base)]

        original = trace_from_dict(shipped)
        parent = RecordingTracer()
        with parent.span("batch_run"):
            job_span = parent.adopt_trace(shipped, name="job", start_s=start)

        # Nesting: the adopted subtree's shape is untouched.
        assert [shape(c) for c in job_span.children] == [
            shape(s) for s in original.spans
        ]
        # Ordering and relative timing: every span sits at the same
        # offset from the job span as it did from the worker's epoch.
        got = [o for c in job_span.children for o in offsets(c, start)]
        want = [o for s in original.spans for o in offsets(s, 0.0)]
        # Re-rooting computes (start + offset) - start; for micro-second
        # spans under a large start the cancellation error exceeds
        # approx's relative default, so compare with an absolute floor.
        assert got == pytest.approx(want, abs=1e-9)
        assert job_span.start_s == start

    def test_adoption_merges_counters_into_totals(self):
        worker = RecordingTracer()
        with worker.span("partition"):
            worker.count("merge.states_explored", 7)
            worker.observe("merge.search_s", 0.25)
        parent = RecordingTracer()
        parent.count("merge.states_explored", 3)
        with parent.span("batch_run"):
            parent.adopt_trace(worker.trace().to_dict(), job="j1")
        assert parent.counters["merge.states_explored"] == 10
        assert parent.histograms["merge.search_s"].count == 1

    def test_adoption_counts_worker_events(self):
        worker = RecordingTracer()
        worker.progress("tick")
        worker.progress("tock")
        parent = RecordingTracer()
        parent.adopt_trace(worker.trace().to_dict())
        assert parent.counters["obs.worker_events"] == 2


class TestSinkIntegration:
    def test_batch_run_writes_job_and_run_records(self, tmp_path):
        store = JobStore.open(tmp_path / "q")
        submit_three(store)
        cache = ResultCache(tmp_path / "c")
        tracer = RecordingTracer()
        sink = TelemetrySink(tmp_path / "tele")
        run_batch(store, cache, workers=2, tracer=tracer, sink=sink)

        records = load_telemetry(tmp_path / "tele")
        jobs = [r for r in records if r["kind"] == "job"]
        runs = [r for r in records if r["kind"] == "run"]
        events = [r for r in records if r["kind"] == "event"]
        assert len(jobs) == 3 and len(runs) == 1
        for record in jobs:
            assert record["status"] == "done"
            assert record["job"] and record["key"]
            assert record["compute_s"] > 0
        # Every batch.* progress event carries both job id and key.
        for record in events:
            if record["name"].startswith("batch.job"):
                assert "job" in record["payload"]
                assert "key" in record["payload"]
        assert runs[0]["report"]["done"] == 3
        assert runs[0]["counters"]["service.jobs_done"] == 3
        assert "service.job_wall_s" in runs[0]["histograms"]

    def test_warm_rerun_appends_cached_records(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        sink_dir = tmp_path / "tele"
        for attempt in ("cold", "warm"):
            store = JobStore.open(tmp_path / f"q-{attempt}")
            submit_three(store)
            run_batch(
                store, cache, workers=1, sink=TelemetrySink(sink_dir)
            )
        jobs = [
            r for r in load_telemetry(sink_dir) if r["kind"] == "job"
        ]
        assert [r["status"] for r in jobs] == ["done"] * 3 + ["cached"] * 3
        for record in jobs[3:]:
            assert record["key"]  # cached records still join on key

    def test_unkeyable_job_lands_in_sink_as_failed(self, tmp_path):
        store = JobStore.open(tmp_path / "q")
        store.submit(name="poison", design_xml="<not-a-design>",
                     max_attempts=1)
        sink = TelemetrySink(tmp_path / "tele")
        report = run_batch(
            store, ResultCache(tmp_path / "c"), workers=1, sink=sink
        )
        assert report.failed == 1
        (record,) = [
            r for r in load_telemetry(tmp_path / "tele") if r["kind"] == "job"
        ]
        assert record["status"] == "failed"
        assert record["key"] is None
