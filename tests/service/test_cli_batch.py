"""The ``batch`` CLI: submit, run, status through ``main(argv)``."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.flow.xmlio import save_design
from repro.service import JobStore, ResultCache


@pytest.fixture
def design_file(tmp_path, tiny_design):
    path = tmp_path / "design.xml"
    save_design(tiny_design, path)
    return str(path)


@pytest.fixture
def queue_dir(tmp_path):
    return str(tmp_path / "queue")


class TestSubmit:
    def test_submit_design_file(self, queue_dir, design_file, capsys):
        rc = main(["batch", "submit", "--queue", queue_dir, design_file,
                   "--device", "LX30"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "pending" in out
        assert "1 pending / 1 total" in out
        store = JobStore(queue_dir)
        assert len(store.jobs()) == 1
        assert store.jobs()[0].device == "LX30"

    def test_submit_synthetic_population(self, queue_dir, capsys):
        rc = main(["batch", "submit", "--queue", queue_dir,
                   "--synthetic", "5", "--seed", "11"])
        assert rc == 0
        assert "5 pending / 5 total" in capsys.readouterr().out

    def test_resubmitting_dedupes(self, queue_dir, design_file, capsys):
        main(["batch", "submit", "--queue", queue_dir, design_file])
        rc = main(["batch", "submit", "--queue", queue_dir, design_file])
        assert rc == 0
        assert "1 pending / 1 total" in capsys.readouterr().out

    def test_no_dedupe_flag_forces_duplicate(self, queue_dir, design_file,
                                             capsys):
        main(["batch", "submit", "--queue", queue_dir, design_file])
        rc = main(["batch", "submit", "--queue", queue_dir, design_file,
                   "--no-dedupe"])
        assert rc == 0
        assert "2 pending / 2 total" in capsys.readouterr().out

    def test_resubmitting_a_failed_spec_retries_it(self, queue_dir, capsys):
        # A spec whose job exhausted its attempts can be retried from
        # the CLI: failed jobs are not dedupe targets.
        bad = "<not-a-design>"
        store = JobStore(queue_dir)
        store.submit(name="poison", design_xml=bad)
        main(["batch", "run", "--queue", queue_dir])
        assert JobStore(queue_dir).counts()["failed"] == 1
        capsys.readouterr()
        fresh = JobStore(queue_dir).submit(name="poison", design_xml=bad)
        assert fresh.state == "pending"
        assert fresh.attempts == 0

    def test_nothing_to_submit_errors(self, queue_dir, capsys):
        rc = main(["batch", "submit", "--queue", queue_dir])
        assert rc == 1
        assert "nothing to submit" in capsys.readouterr().err

    def test_priority_and_submitter_flags(self, queue_dir, design_file):
        rc = main(["batch", "submit", "--queue", queue_dir, design_file,
                   "--priority", "5", "--submitter", "alice"])
        assert rc == 0
        job = JobStore(queue_dir).jobs()[0]
        assert job.priority == 5
        assert job.submitter == "alice"


class TestRun:
    def test_run_completes_submitted_jobs(self, queue_dir, design_file, capsys):
        main(["batch", "submit", "--queue", queue_dir, design_file,
              "--device", "LX30"])
        rc = main(["batch", "run", "--queue", queue_dir, "--workers", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "jobs" in out
        assert "cache hit rate" in out
        store = JobStore(queue_dir)
        assert store.counts()["done"] == 1

    def test_second_run_is_all_cache_hits(self, tmp_path, design_file, capsys):
        q1, q2 = str(tmp_path / "q1"), str(tmp_path / "q2")
        cache = str(tmp_path / "cache")
        main(["batch", "submit", "--queue", q1, design_file, "--device", "LX30"])
        main(["batch", "run", "--queue", q1, "--cache", cache])
        capsys.readouterr()
        main(["batch", "submit", "--queue", q2, design_file, "--device", "LX30"])
        rc = main(["batch", "run", "--queue", q2, "--cache", cache])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cache hit rate" in out
        assert "100.0%" in out

    def test_failed_jobs_set_exit_code(self, queue_dir, tmp_path, capsys):
        bad = tmp_path / "bad.xml"
        bad.write_text("<not-a-design>", encoding="utf-8")
        store = JobStore(queue_dir)
        store.submit(name="poison", design_xml=bad.read_text(encoding="utf-8"))
        rc = main(["batch", "run", "--queue", queue_dir])
        assert rc == 3
        assert "failed jobs" in capsys.readouterr().err

    def test_progress_streams_events(self, queue_dir, design_file, capsys):
        main(["batch", "submit", "--queue", queue_dir, design_file,
              "--device", "LX30"])
        rc = main(["batch", "run", "--queue", queue_dir, "--progress"])
        assert rc == 0
        err = capsys.readouterr().err
        assert "batch.job_started" in err
        assert "batch.job_done" in err


class TestSupervisionFlags:
    def test_injected_crash_sets_exit_code(self, queue_dir, design_file,
                                           capsys):
        main(["batch", "submit", "--queue", queue_dir, design_file,
              "--device", "LX30"])
        rc = main(["batch", "run", "--queue", queue_dir,
                   "--inject-fault", "crash:*"])
        assert rc == 3
        assert "failed jobs" in capsys.readouterr().err
        job = JobStore(queue_dir).jobs()[0]
        assert "InjectedFault" in job.error

    def test_hang_fault_without_timeout_is_refused(self, queue_dir,
                                                   design_file, capsys):
        main(["batch", "submit", "--queue", queue_dir, design_file,
              "--device", "LX30"])
        rc = main(["batch", "run", "--queue", queue_dir,
                   "--inject-fault", "hang:*"])
        assert rc == 1
        assert "hang" in capsys.readouterr().err
        # Nothing was claimed: the refusal precedes any dispatch.
        assert JobStore(queue_dir).counts()["pending"] == 1

    def test_hang_fault_with_timeout_drains_to_failed(self, queue_dir,
                                                      design_file, capsys):
        main(["batch", "submit", "--queue", queue_dir, design_file,
              "--device", "LX30"])
        rc = main(["batch", "run", "--queue", queue_dir,
                   "--inject-fault", "hang:*",
                   "--job-timeout", "0.5",
                   "--heartbeat-interval", "0.1"])
        assert rc == 3
        out = capsys.readouterr().out
        assert "timeouts" in out
        job = JobStore(queue_dir).jobs()[0]
        assert job.state == "failed"
        assert job.error.startswith("timeout")

    def test_malformed_fault_spec_errors(self, queue_dir, design_file,
                                         capsys):
        main(["batch", "submit", "--queue", queue_dir, design_file])
        rc = main(["batch", "run", "--queue", queue_dir,
                   "--inject-fault", "explode:*"])
        assert rc == 1
        assert "unknown fault kind" in capsys.readouterr().err

    def test_job_timeout_allows_healthy_jobs(self, queue_dir, design_file,
                                             capsys):
        main(["batch", "submit", "--queue", queue_dir, design_file,
              "--device", "LX30"])
        rc = main(["batch", "run", "--queue", queue_dir,
                   "--job-timeout", "120"])
        assert rc == 0
        assert JobStore(queue_dir).counts()["done"] == 1


class TestStatus:
    def test_status_lists_jobs_and_counts(self, queue_dir, design_file, capsys):
        main(["batch", "submit", "--queue", queue_dir, design_file,
              "--device", "LX30"])
        capsys.readouterr()
        rc = main(["batch", "status", "--queue", queue_dir])
        assert rc == 0
        out = capsys.readouterr().out
        assert "1 pending" in out
        assert "cache entries: 0" in out

    def test_status_after_run_shows_done_and_cache(
        self, queue_dir, design_file, capsys
    ):
        main(["batch", "submit", "--queue", queue_dir, design_file,
              "--device", "LX30"])
        main(["batch", "run", "--queue", queue_dir])
        capsys.readouterr()
        rc = main(["batch", "status", "--queue", queue_dir])
        assert rc == 0
        out = capsys.readouterr().out
        assert "1 done" in out
        assert "cache entries: 1" in out

    def test_errors_flag_prints_tracebacks(self, queue_dir, capsys):
        store = JobStore(queue_dir)
        store.submit(name="poison", design_xml="<junk")
        main(["batch", "run", "--queue", queue_dir])
        capsys.readouterr()
        rc = main(["batch", "status", "--queue", queue_dir, "--errors"])
        assert rc == 0
        assert "Traceback" in capsys.readouterr().out

    def test_status_on_empty_queue(self, queue_dir, capsys):
        rc = main(["batch", "status", "--queue", queue_dir])
        assert rc == 0
        assert "0 pending" in capsys.readouterr().out
