"""run_batch: cache fast-path, worker pool, failure isolation, metrics."""

from __future__ import annotations

import pytest

from repro.obs import RecordingTracer
from repro.service import (
    BatchReport,
    JobStore,
    ResultCache,
    ServiceError,
    job_problem_key,
    run_batch,
)
from repro.service.pool import execute_job_payload

from ..conftest import make_design


def simple_design(name: str, clb: int = 40):
    """A tiny feasible two-module design with a distinct footprint."""
    return make_design(
        {
            "A": {"A1": (clb, 0, 0), "A2": (clb + 160, 0, 0)},
            "B": {"B1": (220, 0, 0), "B2": (50, 0, 0)},
        },
        [("A1", "B1"), ("A2", "B2"), ("A1", "B2")],
        name=name,
    )


def infeasible_design(name: str = "huge"):
    """No library device fits 90k CLBs: every worker attempt raises."""
    return make_design({"A": {"A1": (90_000, 0, 0)}}, [("A1",)], name=name)


@pytest.fixture
def queue(tmp_path):
    return JobStore.open(tmp_path / "queue")


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestColdRun:
    def test_single_worker_computes_everything(self, queue, cache):
        for i in range(3):
            queue.submit_design(simple_design(f"d{i}", clb=40 + i), device="LX30")
        report = run_batch(queue, cache, workers=1)
        assert isinstance(report, BatchReport)
        assert report.total == 3
        assert report.done == 3
        assert report.computed == 3
        assert report.cache_hits == 0
        assert report.failed == 0
        assert queue.counts()["done"] == 3
        assert len(cache) == 3
        for job in queue.jobs():
            assert job.result_key in cache
            assert not job.cache_hit
            assert job.compute_s > 0

    def test_auto_device_jobs_run_selection(self, queue, cache):
        queue.submit_design(simple_design("auto"))  # no device named
        report = run_batch(queue, cache, workers=1)
        assert report.done == 1
        entry = cache.get(queue.jobs()[0].result_key)
        assert entry.device_name  # selection picked one

    def test_empty_queue_is_a_noop(self, queue, cache):
        report = run_batch(queue, cache)
        assert report.total == 0
        assert report.jobs_per_s == 0.0
        assert report.cache_hit_rate == 0.0

    def test_workers_must_be_positive(self, queue, cache):
        with pytest.raises(ServiceError):
            run_batch(queue, cache, workers=0)


class TestWarmRun:
    def test_second_run_serves_entirely_from_cache(self, tmp_path, cache):
        designs = [simple_design(f"d{i}", clb=40 + i) for i in range(3)]
        first = JobStore.open(tmp_path / "q1")
        for d in designs:
            first.submit_design(d, device="LX30")
        run_batch(first, cache, workers=1)

        second = JobStore.open(tmp_path / "q2")
        for d in designs:
            second.submit_design(d, device="LX30")
        report = run_batch(second, cache, workers=1)
        assert report.cache_hits == 3
        assert report.cache_hit_rate == 1.0
        assert report.computed == 0
        assert report.busy_s == 0.0  # no worker ever ran
        for job in second.jobs():
            assert job.state == "done"
            assert job.cache_hit
            assert job.attempts == 0  # completed without being claimed

    def test_warm_hit_survives_design_renaming(self, tmp_path, cache):
        base = simple_design("original")
        first = JobStore.open(tmp_path / "q1")
        first.submit_design(base, device="LX30")
        run_batch(first, cache, workers=1)

        renamed = simple_design("renamed")  # same structure, new label
        second = JobStore.open(tmp_path / "q2")
        second.submit_design(renamed, device="LX30")
        report = run_batch(second, cache, workers=1)
        assert report.cache_hits == 1


class TestFailureIsolation:
    def test_worker_crash_lands_in_failed_without_poisoning_batch(
        self, queue, cache
    ):
        queue.submit_design(simple_design("ok-1"), device="LX30")
        bad = queue.submit_design(infeasible_design(), device="LX30")
        queue.submit_design(simple_design("ok-2", clb=45), device="LX30")

        report = run_batch(queue, cache, workers=2)
        assert report.done == 2
        assert report.failed == 1
        assert report.failed_ids == (bad.id,)

        failed = queue.get(bad.id)
        assert failed.state == "failed"
        assert failed.attempts == failed.max_attempts
        assert "InfeasibleError" in failed.error
        assert "Traceback" in failed.error  # full traceback recorded
        for job in queue.jobs():
            if job.id != bad.id:
                assert job.state == "done"

    def test_deterministic_failure_burns_retries_then_fails(self, queue, cache):
        job = queue.submit_design(infeasible_design(), device="LX30",
                                  max_attempts=3)
        report = run_batch(queue, cache, workers=1)
        assert report.failed == 1
        assert report.retries == 2  # attempts 1 and 2 re-queued
        assert queue.get(job.id).attempts == 3

    def test_unkeyable_job_fails_before_dispatch(self, queue, cache):
        bad = queue.submit(name="poison", design_xml="<not-a-design>")
        queue.submit_design(simple_design("ok"), device="LX30")
        report = run_batch(queue, cache, workers=1)
        assert report.failed == 1
        assert report.done == 1
        failed = queue.get(bad.id)
        assert failed.state == "failed"
        assert failed.attempts == failed.max_attempts  # terminal, no retry loop
        assert "Traceback" in failed.error


class TestPoolPath:
    def test_multiworker_results_match_single_worker(self, tmp_path):
        designs = [simple_design(f"d{i}", clb=40 + 2 * i) for i in range(4)]

        solo_q = JobStore.open(tmp_path / "q1")
        solo_c = ResultCache(tmp_path / "c1")
        for d in designs:
            solo_q.submit_design(d, device="LX30")
        solo = run_batch(solo_q, solo_c, workers=1)

        pool_q = JobStore.open(tmp_path / "q2")
        pool_c = ResultCache(tmp_path / "c2")
        for d in designs:
            pool_q.submit_design(d, device="LX30")
        pooled = run_batch(pool_q, pool_c, workers=2)

        assert pooled.done == solo.done == 4
        # same problems -> same keys -> identical cache contents
        assert sorted(pool_c.keys()) == sorted(solo_c.keys())
        by_name = lambda q: {j.name: j.result_key for j in q.jobs()}
        assert by_name(pool_q) == by_name(solo_q)


class TestPriorityDrain:
    def test_dispatch_follows_priority_then_round_robin(self, queue, cache):
        low = queue.submit_design(simple_design("low", clb=41), device="LX30",
                                  priority=0, submitter="alice")
        high = queue.submit_design(simple_design("high", clb=42), device="LX30",
                                   priority=5, submitter="bob")
        mid = queue.submit_design(simple_design("mid", clb=43), device="LX30",
                                  priority=1, submitter="alice")
        tracer = RecordingTracer()
        report = run_batch(queue, cache, workers=1, tracer=tracer)
        assert report.done == 3
        started = [e.payload["job"] for e in tracer.events
                   if e.name == "batch.job_started"]
        assert started == [high.id, mid.id, low.id]

    def test_two_submitters_interleave_in_dispatch(self, queue, cache):
        a = [queue.submit_design(simple_design(f"a{i}", clb=41 + i),
                                 device="LX30", submitter="alice")
             for i in range(2)]
        b = [queue.submit_design(simple_design(f"b{i}", clb=51 + i),
                                 device="LX30", submitter="bob")
             for i in range(2)]
        tracer = RecordingTracer()
        run_batch(queue, cache, workers=1, tracer=tracer)
        started = [e.payload["job"] for e in tracer.events
                   if e.name == "batch.job_started"]
        assert started == [a[0].id, b[0].id, a[1].id, b[1].id]


class TestMetricConsistency:
    def test_jobs_per_s_gauge_matches_report_definition(self, queue, cache):
        # One computed, one terminally failed: the gauge and the report
        # property must agree on what "jobs per second" means.
        queue.submit_design(simple_design("ok"), device="LX30")
        queue.submit_design(infeasible_design(), device="LX30")
        tracer = RecordingTracer()
        report = run_batch(queue, cache, workers=1, tracer=tracer)
        assert report.done + report.failed == report.total
        assert tracer.gauges["service.jobs_per_s"] == pytest.approx(
            report.jobs_per_s, rel=1e-3
        )

    def test_timeouts_default_to_zero(self, queue, cache):
        queue.submit_design(simple_design("ok"), device="LX30")
        report = run_batch(queue, cache)
        assert report.timeouts == 0
        assert report.to_dict()["timeouts"] == 0
        assert "timeouts" in report.to_dict()


class TestObservability:
    def test_tracer_sees_lifecycle_events_and_metrics(self, queue, cache):
        queue.submit_design(simple_design("ok"), device="LX30")
        queue.submit_design(infeasible_design(), device="LX30")
        tracer = RecordingTracer()
        report = run_batch(queue, cache, workers=1, tracer=tracer)

        names = [e.name for e in tracer.events]
        assert "batch.job_started" in names
        assert "batch.job_done" in names
        assert "batch.job_failed" in names
        assert "batch.job_retried" in names

        assert tracer.counters["service.cache_misses"] == 2
        assert tracer.counters["service.jobs_done"] == 1
        assert tracer.counters["service.jobs_failed"] == 1
        assert tracer.gauges["service.jobs_per_s"] > 0
        assert [s.name for s in tracer.spans].count("batch_run") == 1

        # warm rerun emits cached events
        rerun = JobStore.open(queue.directory.parent / "q2")
        rerun.submit_design(simple_design("ok"), device="LX30")
        tracer2 = RecordingTracer()
        run_batch(rerun, cache, workers=1, tracer=tracer2)
        assert [e.name for e in tracer2.events] == ["batch.job_cached"]
        assert tracer2.gauges["service.cache_hit_rate"] == 1.0
        assert report.worker_utilisation <= 1.0

    def test_report_to_dict_is_json_ready(self, queue, cache):
        import json

        queue.submit_design(simple_design("ok"), device="LX30")
        report = run_batch(queue, cache)
        doc = report.to_dict()
        json.dumps(doc)
        for field in ("jobs_per_s", "cache_hit_rate", "worker_utilisation",
                      "total", "done", "failed", "workers"):
            assert field in doc


class TestProblemKeys:
    def test_same_job_spec_same_key(self, queue):
        a = queue.submit_design(simple_design("x"), device="LX30")
        b = queue.submit_design(simple_design("y"), device="LX30",
                                dedupe=False)
        # different display names, same structure and device
        assert job_problem_key(a) == job_problem_key(b)

    def test_device_changes_key(self, queue):
        a = queue.submit_design(simple_design("x"), device="LX30")
        b = queue.submit_design(simple_design("x"), device="LX50T")
        assert job_problem_key(a) != job_problem_key(b)

    def test_auto_and_fixed_device_keys_differ(self, queue):
        a = queue.submit_design(simple_design("x"), device="LX30")
        b = queue.submit_design(simple_design("x"))
        assert job_problem_key(a) != job_problem_key(b)

    def test_candidate_cap_changes_key(self, queue):
        a = queue.submit_design(simple_design("x"), device="LX30")
        b = queue.submit_design(simple_design("x"), device="LX30",
                                max_candidate_sets=2)
        assert job_problem_key(a) != job_problem_key(b)


class TestWorkerEntryPoint:
    def test_payload_failure_is_returned_not_raised(self, tmp_path):
        outcome = execute_job_payload(
            {
                "job_id": "j1",
                "design_xml": "<broken",
                "device": None,
                "max_candidate_sets": None,
                "cache_root": str(tmp_path / "cache"),
                "key": "a" * 64,
                "library": None,
            }
        )
        assert outcome["ok"] is False
        assert outcome["job_id"] == "j1"
        assert "Traceback" in outcome["error"]


class TestSharedSeenFilter:
    def test_exchange_publishes_and_returns_known_set(self):
        from repro.service.pool import SharedSeenFilter

        filt = SharedSeenFilter({})
        assert filt.exchange([1, 2, 3]) == {1, 2, 3}
        # A second party sees the first batch plus its own.
        assert filt.exchange([4]) == {1, 2, 3, 4}
        # Re-publishing is idempotent.
        assert filt.exchange([2, 4]) == {1, 2, 3, 4}
        # An empty publish is a pure read.
        assert filt.exchange([]) == {1, 2, 3, 4}

    def test_make_seen_filter_shares_state_across_instances(self):
        from repro.service.pool import make_seen_filter

        filt = make_seen_filter()
        assert filt is not None
        filt.exchange([99])
        other = make_seen_filter()
        # A brand-new filter has its own dict: state is per-filter, one
        # filter object per fan-out.
        assert 99 not in other.exchange([])
        assert 99 in filt.exchange([])
