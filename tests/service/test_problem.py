"""resolve_problem: the shared design-XML -> model -> device preamble."""

from __future__ import annotations

import pytest

from repro.arch import ResourceVector, virtex5_ladder
from repro.flow.xmlio import design_to_xml, save_design
from repro.service.problem import resolve_problem, resolve_problem_text


class TestResolveText:
    def test_named_device_fixes_the_capacity(self, tiny_design):
        problem = resolve_problem_text(design_to_xml(tiny_design), "LX30")
        assert problem.device is not None
        assert problem.device.name == "LX30"
        assert problem.capacity == problem.device.usable_capacity(
            tiny_design.static_resources
        )
        assert not problem.auto_device

    def test_device_from_xml_attribute(self, tiny_design):
        xml = design_to_xml(tiny_design, device_name="LX50T")
        problem = resolve_problem_text(xml)
        assert problem.device.name == "LX50T"

    def test_argument_overrides_xml_device(self, tiny_design):
        xml = design_to_xml(tiny_design, device_name="LX50T")
        assert resolve_problem_text(xml, "LX30").device.name == "LX30"

    def test_explicit_budget_wins_over_device_capacity(self, tiny_design):
        budget = ResourceVector(123, 4, 5)
        xml = design_to_xml(tiny_design, device_name="LX30", budget=budget)
        assert resolve_problem_text(xml).capacity == budget

    def test_no_device_means_auto_selection(self, tiny_design):
        problem = resolve_problem_text(design_to_xml(tiny_design))
        assert problem.auto_device
        assert problem.device is None
        assert problem.capacity is None

    def test_with_selected_device_picks_smallest_fit(self, tiny_design):
        problem = resolve_problem_text(design_to_xml(tiny_design))
        resolved = problem.with_selected_device()
        assert resolved.device is not None
        assert resolved.capacity is not None
        assert not resolved.auto_device
        # idempotent once resolved
        assert resolved.with_selected_device() is resolved

    def test_custom_library(self, tiny_design):
        ladder = virtex5_ladder()
        problem = resolve_problem_text(design_to_xml(tiny_design), library=ladder)
        assert problem.library is ladder

    def test_unknown_device_raises(self, tiny_design):
        with pytest.raises(KeyError):
            resolve_problem_text(design_to_xml(tiny_design), "NOT-A-DEVICE")


class TestResolveFile:
    def test_reads_from_disk(self, tmp_path, tiny_design):
        path = tmp_path / "d.xml"
        save_design(tiny_design, path)
        problem = resolve_problem(path, "LX30")
        assert problem.design.name == tiny_design.name
        assert problem.device.name == "LX30"
