"""Fault injection and supervision: hung/slow/crashing workers on demand.

The hung-worker tests are the acceptance path for supervision: a
deterministically injected hang must be *detected* (heartbeat staleness
or deadline), its job re-queued until the attempt cap and failed with a
``timeout`` error, and the batch must still drain -- no sleeps-and-hope,
no leaked worker processes.
"""

from __future__ import annotations

import pytest

from repro.obs import RecordingTracer
from repro.service import (
    FaultError,
    FaultPlan,
    FaultSpec,
    JobStore,
    ResultCache,
    ServiceError,
    parse_fault,
    run_batch,
)

from ..conftest import make_design


def simple_design(name: str, clb: int = 40):
    return make_design(
        {
            "A": {"A1": (clb, 0, 0), "A2": (clb + 160, 0, 0)},
            "B": {"B1": (220, 0, 0), "B2": (50, 0, 0)},
        },
        [("A1", "B1"), ("A2", "B2"), ("A1", "B2")],
        name=name,
    )


@pytest.fixture
def queue(tmp_path):
    return JobStore.open(tmp_path / "queue")


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestSpecParsing:
    def test_bare_kind(self):
        spec = parse_fault("hang")
        assert spec == FaultSpec(kind="hang", match="*", seconds=None)

    def test_kind_and_glob(self):
        assert parse_fault("crash:design_a").match == "design_a"

    def test_full_form(self):
        spec = parse_fault("slow:synth-*:0.25")
        assert spec.kind == "slow"
        assert spec.match == "synth-*"
        assert spec.seconds == 0.25

    def test_empty_glob_means_match_all(self):
        assert parse_fault("crash::1.5") == FaultSpec("crash", "*", 1.5)

    @pytest.mark.parametrize(
        "text", ["", "explode", "hang:a:b:c", "slow:*:nan-ish"]
    )
    def test_malformed_specs_raise(self, text):
        with pytest.raises(FaultError):
            parse_fault(text)

    def test_negative_seconds_rejected(self):
        with pytest.raises(FaultError):
            FaultSpec("slow", "*", -1.0)


class TestPlanMatching:
    def test_first_match_wins(self):
        plan = FaultPlan.parse(["crash:victim", "slow:*"])
        assert plan.for_job("victim", attempt=1).kind == "crash"
        assert plan.for_job("anything-else", attempt=1).kind == "slow"

    def test_fail_once_only_matches_attempt_one(self):
        plan = FaultPlan.parse(["fail-once:flaky"])
        assert plan.for_job("flaky", attempt=1) is not None
        assert plan.for_job("flaky", attempt=2) is None

    def test_no_match_returns_none(self):
        plan = FaultPlan.parse(["hang:victim"])
        assert plan.for_job("innocent", attempt=1) is None
        assert plan.payload_for("innocent", 1) is None

    def test_payload_round_trips(self):
        from repro.service.faults import spec_from_payload

        spec = FaultSpec("slow", "a*", 0.5)
        assert spec_from_payload(spec.to_payload()) == spec

    def test_has_hang(self):
        assert FaultPlan.parse(["hang:x"]).has_hang
        assert not FaultPlan.parse(["crash:x"]).has_hang
        assert not FaultPlan()


class TestHungWorkerDetection:
    """The tentpole acceptance: hangs are detected, batches terminate."""

    def test_hang_detected_by_heartbeat_staleness(self, queue, cache):
        victim = queue.submit_design(simple_design("victim"), device="LX30")
        ok = queue.submit_design(simple_design("ok", clb=44), device="LX30")
        tracer = RecordingTracer()
        report = run_batch(
            queue,
            cache,
            workers=2,
            faults=FaultPlan.parse(["hang:victim"]),
            job_timeout_s=30.0,  # generous: staleness must fire first
            heartbeat_interval_s=0.1,
            heartbeat_timeout_s=0.5,
            tracer=tracer,
        )
        # The batch drained: the healthy job finished, the hung one
        # burned its attempts (killed + re-queued each time) and failed.
        assert report.done == 1
        assert report.failed == 1
        assert report.failed_ids == (victim.id,)
        assert report.retries == victim.max_attempts - 1
        assert report.timeouts == victim.max_attempts

        failed = queue.get(victim.id)
        assert failed.state == "failed"
        assert failed.attempts == failed.max_attempts
        assert failed.error.startswith("timeout")
        assert "no heartbeat" in failed.error
        assert queue.get(ok.id).state == "done"

        names = [e.name for e in tracer.events]
        assert names.count("batch.job_timeout") == victim.max_attempts
        assert "batch.job_retried" in names
        assert tracer.counters["service.timeouts"] == victim.max_attempts

    def test_hang_detected_by_deadline_without_heartbeats(self, queue, cache):
        queue.submit_design(simple_design("victim"), device="LX30")
        tracer = RecordingTracer()
        report = run_batch(
            queue,
            cache,
            workers=1,  # supervision engages via the deadline alone
            faults=FaultPlan.parse(["hang:victim"]),
            job_timeout_s=0.5,
            tracer=tracer,
        )
        assert report.failed == 1
        assert report.timeouts == 2
        error = queue.jobs()[0].error
        assert "deadline" in error
        events = [e for e in tracer.events if e.name == "batch.job_timeout"]
        assert all("deadline" in e.payload["reason"] for e in events)

    def test_hang_without_any_timeout_is_refused(self, queue, cache):
        queue.submit_design(simple_design("victim"), device="LX30")
        with pytest.raises(ServiceError, match="hang"):
            run_batch(
                queue, cache, workers=2, faults=FaultPlan.parse(["hang:*"])
            )

    def test_timed_out_spec_can_eventually_succeed(self, queue, cache):
        # fail-once composes with supervision: attempt 1 hangs nothing,
        # just fails fast; attempt 2 computes under the same deadlines.
        job = queue.submit_design(simple_design("flaky"), device="LX30")
        report = run_batch(
            queue,
            cache,
            faults=FaultPlan.parse(["fail-once:flaky"]),
            job_timeout_s=60.0,
            heartbeat_interval_s=0.1,
            heartbeat_timeout_s=5.0,
        )
        assert report.done == 1
        assert report.retries == 1
        assert report.timeouts == 0
        assert queue.get(job.id).state == "done"


class TestLiveWorkersSurvive:
    def test_slow_but_beating_worker_is_not_killed(self, queue, cache):
        # Slower than the staleness threshold, but heartbeats keep
        # flowing -- supervision must tell busy apart from wedged.
        queue.submit_design(simple_design("slowpoke"), device="LX30")
        tracer = RecordingTracer()
        report = run_batch(
            queue,
            cache,
            workers=2,
            faults=FaultPlan.parse(["slow:slowpoke:1.2"]),
            job_timeout_s=60.0,
            heartbeat_interval_s=0.1,
            heartbeat_timeout_s=0.6,
            tracer=tracer,
        )
        assert report.timeouts == 0
        assert report.failed == 0
        assert report.done == 1
        # The parent observed the beats it spared the worker for.
        assert any(e.name == "batch.heartbeat" for e in tracer.events)

    def test_unfaulted_jobs_ignore_the_plan(self, queue, cache):
        queue.submit_design(simple_design("innocent"), device="LX30")
        report = run_batch(
            queue,
            cache,
            faults=FaultPlan.parse(["crash:somebody-else"]),
            job_timeout_s=60.0,
        )
        assert report.done == 1
        assert report.failed == 0


class TestInjectedFailures:
    def test_crash_burns_attempts_then_fails(self, queue, cache):
        job = queue.submit_design(
            simple_design("doomed"), device="LX30", max_attempts=3
        )
        report = run_batch(
            queue, cache, faults=FaultPlan.parse(["crash:doomed"])
        )
        assert report.failed == 1
        assert report.retries == 2
        failed = queue.get(job.id)
        assert failed.attempts == 3
        assert "InjectedFault" in failed.error
        assert "injected crash" in failed.error

    def test_fail_once_recovers_on_retry_inline(self, queue, cache):
        job = queue.submit_design(simple_design("flaky"), device="LX30")
        report = run_batch(
            queue, cache, faults=FaultPlan.parse(["fail-once:flaky"])
        )
        assert report.done == 1
        assert report.failed == 0
        assert report.retries == 1
        done = queue.get(job.id)
        assert done.state == "done"
        assert done.attempts == 2
        assert done.error is None

    def test_worker_death_without_outcome_is_survived(self, queue, cache):
        # Not a FaultPlan kind: kill the worker process mid-flight by
        # injecting a hang and a tight deadline, then verify the .work
        # spool holds no leftovers -- the supervisor must retire every
        # file it creates.
        queue.submit_design(simple_design("victim"), device="LX30")
        run_batch(
            queue,
            cache,
            faults=FaultPlan.parse(["hang:victim"]),
            job_timeout_s=0.4,
        )
        workdir = queue.directory / ".work"
        assert workdir.exists()
        assert list(workdir.iterdir()) == []
