"""Interface-contract tests (Sec. III-A: modes share compatible I/O)."""

from __future__ import annotations

import pytest

from repro.arch.resources import ResourceVector
from repro.core.model import DesignError, Mode, Module, PRDesign, Configuration
from repro.core.baselines import one_module_per_region_scheme
from repro.flow.netlist import (
    INTERFACES,
    build_netlists,
    emit_wrapper_hdl,
    ports_for_region,
    register_interface,
)


def _mode(name, module, interface="stream32", clb=10):
    return Mode(
        name=name,
        module=module,
        resources=ResourceVector(clb, 0, 0),
        interface=interface,
    )


class TestModelValidation:
    def test_default_interface(self):
        assert _mode("a", "M").interface == "stream32"

    def test_empty_interface_rejected(self):
        with pytest.raises(DesignError):
            Mode(
                name="a", module="M",
                resources=ResourceVector(1, 0, 0), interface="",
            )

    def test_module_rejects_mixed_interfaces(self):
        with pytest.raises(DesignError, match="mixes interfaces"):
            Module(
                name="M",
                modes=(
                    _mode("a", "M", "stream32"),
                    _mode("b", "M", "stream64"),
                ),
            )

    def test_module_interface_property(self):
        m = Module(name="M", modes=(_mode("a", "M", "memmap32"),))
        assert m.interface == "memmap32"


def _design_with_interfaces():
    a = Module(name="A", modes=(_mode("a1", "A", "stream32"),
                                _mode("a2", "A", "stream32")))
    b = Module(name="B", modes=(_mode("b1", "B", "memmap32"),))
    return PRDesign(
        name="iface",
        modules=(a, b),
        configurations=(
            Configuration.of("c1", ["a1", "b1"]),
            Configuration.of("c2", ["a2", "b1"]),
        ),
    )


class TestNetlistPorts:
    def test_single_interface_region(self):
        design = _design_with_interfaces()
        scheme = one_module_per_region_scheme(design)
        netlists = build_netlists(scheme)
        assert netlists["R_A"].ports == INTERFACES["stream32"]
        assert netlists["R_B"].ports == INTERFACES["memmap32"]

    def test_mixed_interface_region_prefixes_ports(self):
        design = _design_with_interfaces()
        # Region hosting modes from both interfaces (a1 never co-occurs
        # with... it does; build a region by hand via the Region API).
        from repro.core.clustering import enumerate_base_partitions, partitions_by_label
        from repro.core.result import PartitioningScheme, Region

        bps = partitions_by_label(enumerate_base_partitions(design))
        region_ab = Region(
            name="R1", partitions=(bps["{a1}"], bps["{a2}"])
        )
        region_b = Region(name="R2", partitions=(bps["{b1}"],))
        scheme = PartitioningScheme(
            design=design,
            regions=(region_ab, region_b),
            cover={"c1": ("{a1}", "{b1}"), "c2": ("{a2}", "{b1}")},
        )
        ports = ports_for_region(scheme, region_ab)
        assert ports == INTERFACES["stream32"]  # single interface

    def test_wrapper_hdl_uses_interface_ports(self):
        design = _design_with_interfaces()
        scheme = one_module_per_region_scheme(design)
        hdl = emit_wrapper_hdl(build_netlists(scheme)["R_B"])
        assert "addr" in hdl and "rdata" in hdl
        assert "s_valid" not in hdl

    def test_unregistered_interface_rejected(self):
        m = Module(name="M", modes=(_mode("x1", "M", "weird"),))
        design = PRDesign(
            name="d", modules=(m,),
            configurations=(Configuration.of("c", ["x1"]),),
        )
        scheme = one_module_per_region_scheme(design)
        with pytest.raises(KeyError, match="weird"):
            build_netlists(scheme)


class TestRegisterInterface:
    def test_register_and_use(self):
        ports = (("clk", "input", 1), ("data", "output", 16))
        register_interface("test16", ports)
        assert INTERFACES["test16"] == ports
        register_interface("test16", ports)  # idempotent

    def test_conflicting_registration_rejected(self):
        register_interface("test_conflict", (("clk", "input", 1),))
        with pytest.raises(ValueError, match="already registered"):
            register_interface("test_conflict", (("clk", "input", 2),))

    def test_invalid_port_spec(self):
        with pytest.raises(ValueError):
            register_interface("bad", (("p", "sideways", 1),))
        with pytest.raises(ValueError):
            register_interface("bad", (("p", "input", 0),))


class TestXmlInterfaceRoundTrip:
    def test_interface_attribute_round_trips(self):
        from repro.flow.xmlio import design_to_xml, parse_design

        design = _design_with_interfaces()
        doc = parse_design(design_to_xml(design))
        assert doc.design.mode("b1").interface == "memmap32"
        assert doc.design.mode("a1").interface == "stream32"
