"""Clustering tests: Table I reproduction plus structural properties."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.resources import ResourceVector
from repro.core.clustering import (
    BasePartition,
    agglomerate,
    enumerate_base_partitions,
    partitions_by_label,
    verify_agglomeration_matches,
)
from repro.core.matrix import ConnectivityMatrix
from repro.eval.example_design import TABLE1_EXPECTED

from ..conftest import make_design


class TestTable1:
    """The paper's Table I, exactly."""

    def test_labels_and_weights(self, paper_example):
        got = {
            bp.label: bp.frequency_weight
            for bp in enumerate_base_partitions(paper_example)
        }
        assert got == TABLE1_EXPECTED

    def test_count(self, paper_example):
        assert len(enumerate_base_partitions(paper_example)) == 26

    def test_non_joint_clique_excluded_by_default(self, paper_example):
        labels = {bp.label for bp in enumerate_base_partitions(paper_example)}
        assert "{A1, B2, C1}" not in labels

    def test_non_joint_clique_included_on_request(self, paper_example):
        labels = {
            bp.label
            for bp in enumerate_base_partitions(
                paper_example, include_non_joint_cliques=True
            )
        }
        assert "{A1, B2, C1}" in labels

    def test_full_configurations_present_with_weight_1(self, paper_example):
        by_label = partitions_by_label(enumerate_base_partitions(paper_example))
        for label in ("{A3, B2, C3}", "{A1, B1, C1}", "{A2, B2, C3}"):
            assert by_label[label].frequency_weight == 1


class TestBasePartition:
    def _bp(self, modes, weight=1, clb=10):
        return BasePartition(
            modes=frozenset(modes),
            frequency_weight=weight,
            resources=ResourceVector(clb, 0, 0),
            modules=frozenset(m[0] for m in modes),
        )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            self._bp([])

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            self._bp(["A1"], weight=-1)

    def test_label_sorted(self):
        assert self._bp(["B1", "A1"]).label == "{A1, B1}"

    def test_size(self):
        assert self._bp(["A1", "B1"]).size == 2

    def test_frames_quantised(self):
        assert self._bp(["A1"], clb=21).frames == 2 * 36

    def test_overlaps(self):
        assert self._bp(["A1", "B1"]).overlaps(self._bp(["B1"]))
        assert not self._bp(["A1"]).overlaps(self._bp(["B1"]))

    def test_sort_key_orders_by_size_then_weight_then_area(self):
        small = self._bp(["A1"], weight=5, clb=100)
        pair_light = self._bp(["A1", "B1"], weight=1, clb=10)
        pair_heavy = self._bp(["A2", "B2"], weight=1, clb=500)
        pair_frequent = self._bp(["A3", "B3"], weight=2, clb=10)
        ordered = sorted(
            [pair_frequent, pair_heavy, small, pair_light],
            key=BasePartition.sort_key,
        )
        assert ordered[0] is small
        assert ordered[1] is pair_light
        assert ordered[2] is pair_heavy
        assert ordered[3] is pair_frequent


class TestPartitionSemantics:
    def test_resources_are_summed_over_members(self, paper_example):
        by_label = partitions_by_label(enumerate_base_partitions(paper_example))
        a3 = paper_example.mode("A3").resources
        b2 = paper_example.mode("B2").resources
        assert by_label["{A3, B2}"].resources == a3 + b2

    def test_modules_recorded(self, paper_example):
        by_label = partitions_by_label(enumerate_base_partitions(paper_example))
        assert by_label["{A3, B2, C3}"].modules == frozenset("ABC")

    def test_at_most_one_mode_per_module(self, paper_example):
        for bp in enumerate_base_partitions(
            paper_example, include_non_joint_cliques=True
        ):
            assert len(bp.modules) == bp.size

    def test_singletons_present_for_every_active_mode(self, paper_example):
        labels = {bp.label for bp in enumerate_base_partitions(paper_example)}
        for m in ("A1", "A2", "A3", "B1", "B2", "C1", "C2", "C3"):
            assert "{" + m + "}" in labels


class TestAgglomeration:
    def test_events_in_descending_weight(self, paper_example):
        events = list(agglomerate(paper_example))
        weights = [e.edge_weight for e in events]
        assert weights == sorted(weights, reverse=True)

    def test_first_edge_is_heaviest(self, paper_example):
        # Paper walks through linking A3-B2 first (weight 2).
        first = next(iter(agglomerate(paper_example)))
        assert first.edge_weight == 2
        assert first.edge in (frozenset(("A3", "B2")), frozenset(("B2", "C3")))

    def test_every_event_contains_its_edge_as_clique(self, paper_example):
        for event in agglomerate(paper_example):
            assert event.edge in event.new_cliques

    def test_incremental_matches_direct(self, paper_example):
        incremental, direct = verify_agglomeration_matches(paper_example)
        assert incremental == direct

    def test_incremental_matches_direct_single_mode_mix(self, single_mode_mix):
        incremental, direct = verify_agglomeration_matches(single_mode_mix)
        assert incremental == direct


class TestSingleModeMix:
    """Sec. IV-D: single-mode modules with absent-module configurations."""

    def test_configurations_become_partitions(self, single_mode_mix):
        labels = {bp.label for bp in enumerate_base_partitions(single_mode_mix)}
        assert "{C1, F1}" in labels
        assert "{E1, P1, R1}" in labels

    def test_no_cross_configuration_cliques(self, single_mode_mix):
        # Modes of different configurations never co-occur.
        labels = {bp.label for bp in enumerate_base_partitions(single_mode_mix)}
        assert "{C1, E1}" not in labels


@st.composite
def small_designs(draw):
    """Random 2-4 module designs with 1-6 random configurations."""
    n_modules = draw(st.integers(2, 4))
    modules = {}
    for i in range(n_modules):
        n_modes = draw(st.integers(1, 3))
        modules[f"M{i}"] = {
            f"M{i}.{k}": (draw(st.integers(1, 200)), draw(st.integers(0, 8)),
                          draw(st.integers(0, 8)))
            for k in range(n_modes)
        }
    mode_names = {m: list(modes) for m, modes in modules.items()}
    n_configs = draw(st.integers(1, 6))
    configs = []
    seen = set()
    for _ in range(n_configs):
        present = [
            m for m in modules if draw(st.booleans())
        ] or [next(iter(modules))]
        choice = tuple(
            draw(st.sampled_from(mode_names[m])) for m in present
        )
        if frozenset(choice) not in seen:
            seen.add(frozenset(choice))
            configs.append(choice)
    return make_design(modules, configs)


class TestClusteringProperties:
    @settings(max_examples=40, deadline=None)
    @given(small_designs())
    def test_every_partition_is_subset_of_some_configuration(self, design):
        cm = ConnectivityMatrix.from_design(design)
        for bp in enumerate_base_partitions(design, cm):
            assert any(
                bp.modes <= frozenset(c.modes) for c in design.configurations
            )

    @settings(max_examples=40, deadline=None)
    @given(small_designs())
    def test_frequency_weight_positive_and_bounded(self, design):
        for bp in enumerate_base_partitions(design):
            assert 1 <= bp.frequency_weight <= design.configuration_count

    @settings(max_examples=40, deadline=None)
    @given(small_designs())
    def test_sorted_by_covering_order(self, design):
        bps = enumerate_base_partitions(design)
        keys = [bp.sort_key() for bp in bps]
        assert keys == sorted(keys)

    @settings(max_examples=40, deadline=None)
    @given(small_designs())
    def test_singleton_weight_equals_node_weight(self, design):
        cm = ConnectivityMatrix.from_design(design)
        for bp in enumerate_base_partitions(design, cm):
            if bp.size == 1:
                (mode,) = bp.modes
                assert bp.frequency_weight == cm.node_weight(mode)
