"""Exact-reference partitioner tests: the heuristic's quality oracle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.resources import ResourceVector
from repro.core.clustering import enumerate_base_partitions
from repro.core.cost import total_reconfiguration_frames
from repro.core.covering import cover
from repro.core.exact import (
    MAX_EXACT_PARTITIONS,
    exact_candidate_set,
    partition_exact,
)
from repro.core.matrix import ConnectivityMatrix
from repro.core.partitioner import InfeasibleError, partition

from ..conftest import make_design


def first_cps(design):
    cm = ConnectivityMatrix.from_design(design)
    return cover(enumerate_base_partitions(design, cm), cm)


class TestExactCandidateSet:
    def test_refuses_oversized_sets(self, receiver):
        cps = first_cps(receiver)
        assert len(cps.partitions) > 5
        with pytest.raises(ValueError, match="limited to"):
            exact_candidate_set(
                receiver,
                cps,
                ResourceVector(10**6, 10**4, 10**4),
                max_partitions=5,
            )

    def test_unconstrained_optimum_is_all_separate(self, tiny_design):
        cps = first_cps(tiny_design)
        outcome = exact_candidate_set(
            tiny_design, cps, ResourceVector(10**5, 100, 100)
        )
        assert outcome.found
        assert outcome.best_cost == 0
        assert len(outcome.best_groups) == len(cps.partitions)

    def test_infeasible_budget(self, tiny_design):
        cps = first_cps(tiny_design)
        outcome = exact_candidate_set(tiny_design, cps, ResourceVector(1, 0, 0))
        assert not outcome.found

    def test_enumeration_count_positive(self, tiny_design):
        cps = first_cps(tiny_design)
        outcome = exact_candidate_set(
            tiny_design, cps, ResourceVector(340, 0, 0)
        )
        assert outcome.states_enumerated >= 1


class TestHeuristicOptimality:
    """The restarted greedy search must match the exhaustive optimum on
    small designs across a range of budgets."""

    @pytest.mark.parametrize("clb_budget", [340, 400, 460, 520, 600])
    def test_tiny_design_budget_sweep(self, tiny_design, clb_budget):
        budget = ResourceVector(clb_budget, 0, 0)
        exact = partition_exact(tiny_design, budget)
        heuristic = partition(tiny_design, budget)
        assert heuristic.total_frames == total_reconfiguration_frames(exact)

    def test_paper_example_matches_exact(self, paper_example):
        budget = ResourceVector(520, 16, 16)
        exact = partition_exact(paper_example, budget)
        heuristic = partition(paper_example, budget)
        assert heuristic.total_frames == total_reconfiguration_frames(exact)

    def test_random_small_designs(self):
        """Randomised cross-check over structured small designs."""
        rng = np.random.default_rng(7)
        checked = 0
        for trial in range(8):
            modules = {}
            for m in range(int(rng.integers(2, 4))):
                modules[f"M{m}"] = {
                    f"M{m}.{k}": (int(rng.integers(20, 300)), 0, 0)
                    for k in range(int(rng.integers(1, 3)))
                }
            mode_names = {m: list(v) for m, v in modules.items()}
            configs = []
            seen = set()
            for _ in range(int(rng.integers(2, 5))):
                present = [m for m in modules if rng.random() < 0.8] or list(modules)[:1]
                pick = tuple(
                    mode_names[m][int(rng.integers(len(mode_names[m])))]
                    for m in present
                )
                if frozenset(pick) not in seen:
                    seen.add(frozenset(pick))
                    configs.append(pick)
            design = make_design(modules, configs, name=f"x{trial}")
            need = sum(
                max(r[0] for r in modes.values()) for modes in modules.values()
            )
            budget = ResourceVector(int(need * 1.2) + 40, 8, 8)
            try:
                exact = partition_exact(design, budget)
            except (InfeasibleError, ValueError):
                continue
            heuristic = partition(design, budget)
            assert heuristic.total_frames <= total_reconfiguration_frames(exact)
            checked += 1
        assert checked >= 4


class TestPartitionExact:
    def test_infeasible_raises(self, tiny_design):
        with pytest.raises(InfeasibleError):
            partition_exact(tiny_design, ResourceVector(10, 0, 0))

    def test_strategy_tag(self, tiny_design):
        scheme = partition_exact(tiny_design, ResourceVector(400, 0, 0))
        assert scheme.strategy in ("exact", "single-region")

    def test_single_region_fallback(self, tiny_design):
        scheme = partition_exact(tiny_design, ResourceVector(260, 0, 0))
        assert scheme.strategy == "single-region"
