"""Simulated-annealing comparator tests."""

from __future__ import annotations

import pytest

from repro.arch.resources import ResourceVector
from repro.core.annealing import (
    AnnealingOptions,
    anneal_candidate_set,
    partition_annealing,
)
from repro.core.clustering import enumerate_base_partitions
from repro.core.cost import total_reconfiguration_frames
from repro.core.covering import cover
from repro.core.matrix import ConnectivityMatrix
from repro.core.partitioner import InfeasibleError, partition


class TestOptionsValidation:
    def test_bounds(self):
        with pytest.raises(ValueError):
            AnnealingOptions(initial_temperature=0)
        with pytest.raises(ValueError):
            AnnealingOptions(cooling=1.0)
        with pytest.raises(ValueError):
            AnnealingOptions(steps=0)
        with pytest.raises(ValueError):
            AnnealingOptions(area_penalty=0)


class TestAnnealCandidateSet:
    def test_unconstrained_budget_finds_zero(self, paper_example):
        cm = ConnectivityMatrix.from_design(paper_example)
        cps = cover(enumerate_base_partitions(paper_example, cm), cm)
        groups, cost = anneal_candidate_set(
            paper_example,
            cps,
            ResourceVector(10**5, 10**3, 10**3),
            options=AnnealingOptions(steps=500, seed=0),
        )
        assert groups is not None
        assert cost == 0  # the all-separate start is already optimal

    def test_infeasible_budget(self, paper_example):
        cm = ConnectivityMatrix.from_design(paper_example)
        cps = cover(enumerate_base_partitions(paper_example, cm), cm)
        groups, cost = anneal_candidate_set(
            paper_example,
            cps,
            ResourceVector(1, 0, 0),
            options=AnnealingOptions(steps=200, seed=0),
        )
        assert groups is None and cost is None

    def test_groups_stay_compatible(self, paper_example):
        from repro.core.compatibility import are_compatible

        cm = ConnectivityMatrix.from_design(paper_example)
        cps = cover(enumerate_base_partitions(paper_example, cm), cm)
        groups, _ = anneal_candidate_set(
            paper_example,
            cps,
            ResourceVector(520, 16, 16),
            options=AnnealingOptions(steps=2000, seed=3),
        )
        assert groups is not None
        for g in groups:
            for i in range(len(g.members)):
                for j in range(i + 1, len(g.members)):
                    assert are_compatible(
                        g.members[i], g.members[j], paper_example
                    )


class TestPartitionAnnealing:
    def test_matches_greedy_on_running_example(self, paper_example):
        budget = ResourceVector(520, 16, 16)
        greedy = partition(paper_example, budget)
        best_sa = min(
            total_reconfiguration_frames(
                partition_annealing(
                    paper_example,
                    budget,
                    options=AnnealingOptions(steps=4000, seed=seed),
                )
            )
            for seed in (0, 1)
        )
        assert best_sa == greedy.total_frames

    def test_never_worse_than_single_region(self, paper_example):
        from repro.core.baselines import single_region_scheme

        budget = ResourceVector(400, 16, 16)
        sa = partition_annealing(
            paper_example, budget, options=AnnealingOptions(steps=800, seed=0)
        )
        assert total_reconfiguration_frames(sa) <= total_reconfiguration_frames(
            single_region_scheme(paper_example)
        )

    def test_infeasible_raises(self, paper_example):
        with pytest.raises(InfeasibleError):
            partition_annealing(paper_example, ResourceVector(10, 0, 0))

    def test_deterministic_per_seed(self, paper_example):
        budget = ResourceVector(520, 16, 16)
        opts = AnnealingOptions(steps=1000, seed=9)
        a = partition_annealing(paper_example, budget, options=opts)
        b = partition_annealing(paper_example, budget, options=opts)
        assert total_reconfiguration_frames(a) == total_reconfiguration_frames(b)
