"""Cost-model tests (Eqs. 7-11): hand-computed cases and both policies."""

from __future__ import annotations

import itertools

import pytest

from repro.core.baselines import single_region_scheme, static_scheme
from repro.core.clustering import enumerate_base_partitions, partitions_by_label
from repro.core.cost import (
    SchemeCost,
    TransitionPolicy,
    evaluate,
    percentage_change,
    total_reconfiguration_frames,
    transition_frames,
    transition_matrix,
    weighted_total_frames,
    worst_case_frames,
)
from repro.core.result import PartitioningScheme, regions_from_partitions

from ..conftest import make_design


@pytest.fixture
def two_region_design():
    """Modules X (x1/x2) and Y (y1), 3 configs; easy to hand-compute.

    Conf.1: x1+y1, Conf.2: x2+y1, Conf.3: x1 alone.
    """
    return make_design(
        {
            "X": {"x1": (20, 0, 0), "x2": (40, 0, 0)},
            "Y": {"y1": (20, 0, 0)},
        },
        [("x1", "y1"), ("x2", "y1"), ("x1",)],
    )


@pytest.fixture
def two_region_scheme(two_region_design):
    bps = partitions_by_label(enumerate_base_partitions(two_region_design))
    regions = regions_from_partitions(
        [[bps["{x1}"], bps["{x2}"]], [bps["{y1}"]]]
    )
    cover = {
        "Conf.1": ("{x1}", "{y1}"),
        "Conf.2": ("{x2}", "{y1}"),
        "Conf.3": ("{x1}",),
    }
    return PartitioningScheme(
        design=two_region_design, regions=regions, cover=cover
    )


class TestHandComputed:
    """Region X: frames(40 clb) = 2 tiles = 72; region Y = 36 frames."""

    def test_region_frames(self, two_region_scheme):
        frames = {r.name: r.frames for r in two_region_scheme.regions}
        assert frames == {"PRR1": 72, "PRR2": 36}

    def test_transition_lenient(self, two_region_scheme):
        # Conf.1 -> Conf.2: X switches x1->x2 (72), Y keeps y1 (0) = 72.
        assert transition_frames(two_region_scheme, "Conf.1", "Conf.2") == 72
        # Conf.1 -> Conf.3: X keeps x1; Y unused in Conf.3 -> free.
        assert transition_frames(two_region_scheme, "Conf.1", "Conf.3") == 0
        # Conf.2 -> Conf.3: X switches (72); Y side unused -> 72.
        assert transition_frames(two_region_scheme, "Conf.2", "Conf.3") == 72

    def test_transition_strict(self, two_region_scheme):
        strict = TransitionPolicy.STRICT
        assert transition_frames(two_region_scheme, "Conf.1", "Conf.2", strict) == 72
        # Conf.1 -> Conf.3: Y goes active->inactive: charged under STRICT.
        assert transition_frames(two_region_scheme, "Conf.1", "Conf.3", strict) == 36
        assert transition_frames(two_region_scheme, "Conf.2", "Conf.3", strict) == 72 + 36

    def test_totals(self, two_region_scheme):
        assert total_reconfiguration_frames(two_region_scheme) == 144
        assert (
            total_reconfiguration_frames(two_region_scheme, TransitionPolicy.STRICT)
            == 72 + 36 + 108
        )

    def test_worst_case(self, two_region_scheme):
        assert worst_case_frames(two_region_scheme) == 72
        assert worst_case_frames(two_region_scheme, TransitionPolicy.STRICT) == 108


class TestSymmetry:
    def test_transition_symmetric_both_policies(self, two_region_scheme):
        names = [c.name for c in two_region_scheme.design.configurations]
        for policy in TransitionPolicy:
            for a, b in itertools.permutations(names, 2):
                assert transition_frames(
                    two_region_scheme, a, b, policy
                ) == transition_frames(two_region_scheme, b, a, policy)

    def test_self_transition_free(self, two_region_scheme):
        for policy in TransitionPolicy:
            assert transition_frames(
                two_region_scheme, "Conf.1", "Conf.1", policy
            ) == 0

    def test_lenient_never_exceeds_strict(self, two_region_scheme):
        assert total_reconfiguration_frames(
            two_region_scheme, TransitionPolicy.LENIENT
        ) <= total_reconfiguration_frames(two_region_scheme, TransitionPolicy.STRICT)


class TestTransitionMatrix:
    def test_keys_are_ordered_pairs(self, two_region_scheme):
        tm = transition_matrix(two_region_scheme)
        assert set(tm) == {
            ("Conf.1", "Conf.2"),
            ("Conf.1", "Conf.3"),
            ("Conf.2", "Conf.3"),
        }

    def test_sum_matches_total(self, two_region_scheme):
        tm = transition_matrix(two_region_scheme)
        assert sum(tm.values()) == total_reconfiguration_frames(two_region_scheme)


class TestWeightedTotal:
    def test_uniform_weights_recover_total(self, two_region_scheme):
        tm = transition_matrix(two_region_scheme)
        weights = {k: 1.0 for k in tm}
        assert weighted_total_frames(two_region_scheme, weights) == pytest.approx(
            total_reconfiguration_frames(two_region_scheme)
        )

    def test_missing_pairs_default_zero(self, two_region_scheme):
        assert weighted_total_frames(two_region_scheme, {}) == 0.0

    def test_reversed_keys_found(self, two_region_scheme):
        w = {("Conf.2", "Conf.1"): 1.0}
        assert weighted_total_frames(two_region_scheme, w) == 72.0

    def test_negative_weight_rejected(self, two_region_scheme):
        with pytest.raises(ValueError):
            weighted_total_frames(two_region_scheme, {("Conf.1", "Conf.2"): -1.0})


class TestStaticAndSingleRegion:
    def test_static_scheme_costs_zero(self, paper_example):
        scheme = static_scheme(paper_example)
        assert total_reconfiguration_frames(scheme) == 0
        assert worst_case_frames(scheme) == 0

    def test_single_region_every_transition_full(self, paper_example):
        scheme = single_region_scheme(paper_example)
        frames = scheme.regions[0].frames
        n = paper_example.configuration_count
        # All configuration contents differ, so every pair pays the full
        # region, under both policies.
        for policy in TransitionPolicy:
            assert total_reconfiguration_frames(scheme, policy) == (
                frames * n * (n - 1) // 2
            )
            assert worst_case_frames(scheme, policy) == frames


class TestSchemeCost:
    def test_evaluate_fields(self, two_region_scheme):
        cost = evaluate(two_region_scheme, two_region_scheme.resource_usage())
        assert isinstance(cost, SchemeCost)
        assert cost.total_frames == 144
        assert cost.worst_frames == 72
        assert cost.region_count == 2
        assert cost.feasible

    def test_evaluate_without_capacity(self, two_region_scheme):
        assert evaluate(two_region_scheme, None).feasible


class TestPercentageChange:
    def test_improvement(self):
        assert percentage_change(200, 100) == 50.0

    def test_regression_negative(self):
        assert percentage_change(100, 110) == -10.0

    def test_zero_zero(self):
        assert percentage_change(0, 0) == 0.0

    def test_zero_baseline_nonzero_proposal(self):
        with pytest.raises(ZeroDivisionError):
            percentage_change(0, 5)
