"""Differential gate: incremental engine bit-identical to the reference.

The ``"incremental"`` engine (heap-driven pair selection, memoised pair
stats, vectorized switch kernels) must reproduce the ``"reference"``
engine bit-for-bit: same best cost (exact float equality), same winning
arrangement (region member order included), same states-explored and
feasible-states counters, same seen-state sets -- under both transition
policies, with and without pair weights, with and without restart/step
caps, and across the shared-merge-cache coupling of a full
``partition()`` run (searches later in a run read merged groups cached
by earlier ones, so cache *contents* are part of the contract).

``REPRO_DIFF_DESIGNS`` scales the random-design sweep (default small for
CI; the committed BENCH run used 200).
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.arch.resources import ResourceVector
from repro.arch.tiles import quantised_footprint
from repro.core.allocation import (
    AllocationOptions,
    _MergeCache,
    search_candidate_set,
)
from repro.core.baselines import single_region_scheme
from repro.core.clustering import enumerate_base_partitions
from repro.core.cost import TransitionPolicy
from repro.core.covering import candidate_partition_sets
from repro.core.matrix import ConnectivityMatrix
from repro.core.partitioner import PartitionerOptions, partition
from repro.eval.casestudy import CASESTUDY_BUDGET, casestudy_design
from repro.obs import RecordingTracer
from repro.synth.generator import GeneratorConfig, generate_design
from repro.synth.profiles import CIRCUIT_CLASSES, CircuitClass

DIFF_DESIGNS = int(os.environ.get("REPRO_DIFF_DESIGNS", "12"))

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def synthetic_designs(draw):
    seed = draw(st.integers(0, 2**32 - 1))
    cls = draw(st.sampled_from(list(CircuitClass)))
    rng = np.random.default_rng(seed)
    cfg = GeneratorConfig(max_modules=4, max_modes=3)
    return generate_design(rng, cls, name=f"diff-{seed}", config=cfg)


def budget_for(design, scale=1.4):
    need = single_region_scheme(design).resource_usage()
    return ResourceVector(
        int(need.clb * scale) + 20,
        int(need.bram * scale) + 4,
        int(need.dsp * scale) + 8,
    )


def weight_matrix(design, seed=0):
    n = len(design.configurations)
    rng = np.random.default_rng(seed)
    W = rng.random((n, n))
    return W + W.T


def search_fingerprint(design, capacity, engine, policy, weights=None,
                       alloc_kwargs=None):
    """Run every candidate set through one shared cache, like partition()."""
    opts = AllocationOptions(
        policy=policy,
        engine=engine,
        pair_weights=weights,
        **(alloc_kwargs or {}),
    )
    cache = _MergeCache(weights)
    out = []
    cm = ConnectivityMatrix.from_design(design)
    bps = enumerate_base_partitions(design, cm)
    for cps in candidate_partition_sets(bps, cm, max_sets=4):
        res = search_candidate_set(design, cps, capacity, opts, cache)
        groups = None
        if res.best_groups is not None:
            groups = tuple(
                tuple(p.label for p in g.members) for g in res.best_groups
            )
        out.append(
            (groups, res.best_cost, res.states_explored, res.feasible_states)
        )
    # Cache contents feed later searches; key set and member order are
    # part of the bit-identical contract.
    out.append(sorted(tuple(sorted(k)) for k in cache._cache))
    return out


def partition_fingerprint(design, capacity, engine, policy, weights=None):
    opts = PartitionerOptions(
        policy=policy,
        allocation=AllocationOptions(policy=policy, engine=engine),
        pair_probabilities=weights,
    )
    tracer = RecordingTracer()
    result = partition(design, capacity, opts, tracer)
    counters = {
        k: v
        for k, v in sorted(tracer.counters.items())
        if not k.startswith("merge.heap") and not k.startswith("merge.cache")
    }
    regions = tuple(
        (r.name, r.labels, r.frames) for r in result.scheme.regions
    )
    return (
        regions,
        result.total_frames,
        result.worst_frames,
        result.objective,
        counters,
    )


class TestSearchLevelDifferential:
    @SETTINGS
    @given(synthetic_designs(), st.sampled_from(list(TransitionPolicy)),
           st.booleans())
    def test_hypothesis_search_identical(self, design, policy, weighted):
        capacity = budget_for(design)
        weights = weight_matrix(design) if weighted else None
        ref = search_fingerprint(design, capacity, "reference", policy, weights)
        inc = search_fingerprint(design, capacity, "incremental", policy,
                                 weights)
        assert ref == inc

    @pytest.mark.parametrize("policy", list(TransitionPolicy))
    @pytest.mark.parametrize(
        "caps",
        [
            {"max_initial_pairs": 1},
            {"max_initial_pairs": 3, "max_descent_steps": 2},
            {"max_descent_steps": 1},
        ],
    )
    def test_capped_options_identical(self, policy, caps):
        for k in range(6):
            rng = np.random.default_rng(900 + k)
            design = generate_design(
                rng, CIRCUIT_CLASSES[k % len(CIRCUIT_CLASSES)], f"cap{k}",
                GeneratorConfig(max_modules=4, max_modes=3),
            )
            capacity = budget_for(design)
            ref = search_fingerprint(
                design, capacity, "reference", policy, alloc_kwargs=caps
            )
            inc = search_fingerprint(
                design, capacity, "incremental", policy, alloc_kwargs=caps
            )
            assert ref == inc, f"design {k} caps {caps}"

    def test_random_design_sweep(self):
        """The scaled version of the committed 200-design gate."""
        for k in range(DIFF_DESIGNS):
            rng = np.random.default_rng(3000 + k)
            design = generate_design(
                rng, CIRCUIT_CLASSES[k % len(CIRCUIT_CLASSES)], f"sweep{k}",
                GeneratorConfig(max_modules=5, max_modes=3),
            )
            capacity = budget_for(design)
            for policy in TransitionPolicy:
                ref = search_fingerprint(design, capacity, "reference", policy)
                inc = search_fingerprint(
                    design, capacity, "incremental", policy
                )
                assert ref == inc, f"design {k} policy {policy}"


class TestPartitionLevelDifferential:
    @pytest.mark.parametrize("policy", list(TransitionPolicy))
    def test_case_study_identical(self, policy):
        design = casestudy_design()
        ref = partition_fingerprint(design, CASESTUDY_BUDGET, "reference",
                                    policy)
        inc = partition_fingerprint(design, CASESTUDY_BUDGET, "incremental",
                                    policy)
        assert ref == inc

    def test_case_study_weighted_identical(self):
        design = casestudy_design()
        names = [c.name for c in design.configurations]
        weights = {(names[0], names[1]): 0.6, (names[-1], names[0]): 1.7}
        ref = partition_fingerprint(
            design, CASESTUDY_BUDGET, "reference", TransitionPolicy.LENIENT,
            weights,
        )
        inc = partition_fingerprint(
            design, CASESTUDY_BUDGET, "incremental", TransitionPolicy.LENIENT,
            weights,
        )
        assert ref == inc

    def test_random_partitions_identical(self):
        for k in range(max(2, DIFF_DESIGNS // 3)):
            rng = np.random.default_rng(5000 + k)
            design = generate_design(
                rng, CIRCUIT_CLASSES[k % len(CIRCUIT_CLASSES)], f"part{k}",
                GeneratorConfig(max_modules=4, max_modes=3),
            )
            capacity = budget_for(design)
            ref = partition_fingerprint(
                design, capacity, "reference", TransitionPolicy.LENIENT
            )
            inc = partition_fingerprint(
                design, capacity, "incremental", TransitionPolicy.LENIENT
            )
            assert ref == inc, f"design {k}"


class TestParallelFanout:
    def _run(self, design, capacity, parallel):
        opts = PartitionerOptions(
            allocation=AllocationOptions(parallel_restarts=parallel)
        )
        result = partition(design, capacity, opts)
        return (
            tuple((r.name, r.labels) for r in result.scheme.regions),
            result.objective,
            result.total_frames,
        )

    def test_parallel_deterministic_and_no_worse(self):
        rng = np.random.default_rng(77)
        design = generate_design(
            rng, CircuitClass.LOGIC, "par",
            GeneratorConfig(max_modules=4, max_modes=3),
        )
        capacity = budget_for(design)
        serial = self._run(design, capacity, None)
        first = self._run(design, capacity, 2)
        second = self._run(design, capacity, 2)
        assert first == second  # deterministic across runs
        # Private per-shard seen-state sets explore a superset of the
        # sequential states, so the fan-out is never worse.
        assert first[1] <= serial[1]

    def test_parallel_counters_emitted(self):
        rng = np.random.default_rng(78)
        design = generate_design(
            rng, CircuitClass.DSP, "parc",
            GeneratorConfig(max_modules=4, max_modes=3),
        )
        capacity = budget_for(design)
        tracer = RecordingTracer()
        opts = PartitionerOptions(
            allocation=AllocationOptions(parallel_restarts=2)
        )
        partition(design, capacity, opts, tracer)
        assert tracer.counters.get("merge.parallel_shards", 0) > 0
        assert "merge.parallel_duplicate_states" in tracer.counters
