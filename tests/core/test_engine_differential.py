"""Differential gate: incremental engine bit-identical to the reference.

The ``"incremental"`` engine (heap-driven pair selection, memoised pair
stats, vectorized switch kernels) must reproduce the ``"reference"``
engine bit-for-bit: same best cost (exact float equality), same winning
arrangement (region member order included), same states-explored and
feasible-states counters, same seen-state sets -- under both transition
policies, with and without pair weights, with and without restart/step
caps, and across the shared-merge-cache coupling of a full
``partition()`` run (searches later in a run read merged groups cached
by earlier ones, so cache *contents* are part of the contract).

``REPRO_DIFF_DESIGNS`` scales the random-design sweep (default small for
CI; the committed BENCH run used 200).
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.arch.resources import ResourceVector
from repro.arch.tiles import quantised_footprint
from repro.core.allocation import (
    AllocationOptions,
    _MergeCache,
    search_candidate_set,
)
from repro.core.baselines import single_region_scheme
from repro.core.clustering import enumerate_base_partitions
from repro.core.cost import TransitionPolicy
from repro.core.covering import candidate_partition_sets
from repro.core.matrix import ConnectivityMatrix
from repro.core.partitioner import PartitionerOptions, partition
from repro.eval.casestudy import CASESTUDY_BUDGET, casestudy_design
from repro.obs import RecordingTracer
from repro.synth.generator import GeneratorConfig, generate_design
from repro.synth.profiles import CIRCUIT_CLASSES, CircuitClass

DIFF_DESIGNS = int(os.environ.get("REPRO_DIFF_DESIGNS", "12"))

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def synthetic_designs(draw):
    seed = draw(st.integers(0, 2**32 - 1))
    cls = draw(st.sampled_from(list(CircuitClass)))
    rng = np.random.default_rng(seed)
    cfg = GeneratorConfig(max_modules=4, max_modes=3)
    return generate_design(rng, cls, name=f"diff-{seed}", config=cfg)


def budget_for(design, scale=1.4):
    need = single_region_scheme(design).resource_usage()
    return ResourceVector(
        int(need.clb * scale) + 20,
        int(need.bram * scale) + 4,
        int(need.dsp * scale) + 8,
    )


def weight_matrix(design, seed=0):
    n = len(design.configurations)
    rng = np.random.default_rng(seed)
    W = rng.random((n, n))
    return W + W.T


def search_fingerprint(design, capacity, engine, policy, weights=None,
                       alloc_kwargs=None):
    """Run every candidate set through one shared cache, like partition()."""
    opts = AllocationOptions(
        policy=policy,
        engine=engine,
        pair_weights=weights,
        **(alloc_kwargs or {}),
    )
    cache = _MergeCache(weights)
    out = []
    cm = ConnectivityMatrix.from_design(design)
    bps = enumerate_base_partitions(design, cm)
    for cps in candidate_partition_sets(bps, cm, max_sets=4):
        res = search_candidate_set(design, cps, capacity, opts, cache)
        groups = None
        if res.best_groups is not None:
            groups = tuple(
                tuple(p.label for p in g.members) for g in res.best_groups
            )
        out.append(
            (groups, res.best_cost, res.states_explored, res.feasible_states)
        )
    # Cache contents feed later searches; key set and member order are
    # part of the bit-identical contract.
    out.append(sorted(tuple(sorted(k)) for k in cache._cache))
    return out


def partition_fingerprint(design, capacity, engine, policy, weights=None):
    opts = PartitionerOptions(
        policy=policy,
        allocation=AllocationOptions(policy=policy, engine=engine),
        pair_probabilities=weights,
    )
    tracer = RecordingTracer()
    result = partition(design, capacity, opts, tracer)
    # Engine-machinery counters (heap traffic, cache effectiveness,
    # frontier pruned/expanded) legitimately differ between engines; the
    # contract covers the result and the search-shape counters.
    counters = {
        k: v
        for k, v in sorted(tracer.counters.items())
        if not k.startswith("merge.heap")
        and not k.startswith("merge.cache")
        and not k.startswith("search.")
        and not k.startswith("merge.portfolio")
    }
    regions = tuple(
        (r.name, r.labels, r.frames) for r in result.scheme.regions
    )
    return (
        regions,
        result.total_frames,
        result.worst_frames,
        result.objective,
        counters,
    )


class TestSearchLevelDifferential:
    @SETTINGS
    @given(synthetic_designs(), st.sampled_from(list(TransitionPolicy)),
           st.booleans())
    def test_hypothesis_search_identical(self, design, policy, weighted):
        capacity = budget_for(design)
        weights = weight_matrix(design) if weighted else None
        ref = search_fingerprint(design, capacity, "reference", policy, weights)
        inc = search_fingerprint(design, capacity, "incremental", policy,
                                 weights)
        assert ref == inc

    @pytest.mark.parametrize("policy", list(TransitionPolicy))
    @pytest.mark.parametrize(
        "caps",
        [
            {"max_initial_pairs": 1},
            {"max_initial_pairs": 3, "max_descent_steps": 2},
            {"max_descent_steps": 1},
        ],
    )
    def test_capped_options_identical(self, policy, caps):
        for k in range(6):
            rng = np.random.default_rng(900 + k)
            design = generate_design(
                rng, CIRCUIT_CLASSES[k % len(CIRCUIT_CLASSES)], f"cap{k}",
                GeneratorConfig(max_modules=4, max_modes=3),
            )
            capacity = budget_for(design)
            ref = search_fingerprint(
                design, capacity, "reference", policy, alloc_kwargs=caps
            )
            inc = search_fingerprint(
                design, capacity, "incremental", policy, alloc_kwargs=caps
            )
            assert ref == inc, f"design {k} caps {caps}"

    def test_random_design_sweep(self):
        """The scaled version of the committed 200-design gate."""
        for k in range(DIFF_DESIGNS):
            rng = np.random.default_rng(3000 + k)
            design = generate_design(
                rng, CIRCUIT_CLASSES[k % len(CIRCUIT_CLASSES)], f"sweep{k}",
                GeneratorConfig(max_modules=5, max_modes=3),
            )
            capacity = budget_for(design)
            for policy in TransitionPolicy:
                ref = search_fingerprint(design, capacity, "reference", policy)
                inc = search_fingerprint(
                    design, capacity, "incremental", policy
                )
                assert ref == inc, f"design {k} policy {policy}"


class TestPartitionLevelDifferential:
    @pytest.mark.parametrize("policy", list(TransitionPolicy))
    def test_case_study_identical(self, policy):
        design = casestudy_design()
        ref = partition_fingerprint(design, CASESTUDY_BUDGET, "reference",
                                    policy)
        inc = partition_fingerprint(design, CASESTUDY_BUDGET, "incremental",
                                    policy)
        assert ref == inc

    def test_case_study_weighted_identical(self):
        design = casestudy_design()
        names = [c.name for c in design.configurations]
        weights = {(names[0], names[1]): 0.6, (names[-1], names[0]): 1.7}
        ref = partition_fingerprint(
            design, CASESTUDY_BUDGET, "reference", TransitionPolicy.LENIENT,
            weights,
        )
        inc = partition_fingerprint(
            design, CASESTUDY_BUDGET, "incremental", TransitionPolicy.LENIENT,
            weights,
        )
        assert ref == inc

    def test_random_partitions_identical(self):
        for k in range(max(2, DIFF_DESIGNS // 3)):
            rng = np.random.default_rng(5000 + k)
            design = generate_design(
                rng, CIRCUIT_CLASSES[k % len(CIRCUIT_CLASSES)], f"part{k}",
                GeneratorConfig(max_modules=4, max_modes=3),
            )
            capacity = budget_for(design)
            ref = partition_fingerprint(
                design, capacity, "reference", TransitionPolicy.LENIENT
            )
            inc = partition_fingerprint(
                design, capacity, "incremental", TransitionPolicy.LENIENT
            )
            assert ref == inc, f"design {k}"


class TestParallelFanout:
    def _run(self, design, capacity, parallel):
        opts = PartitionerOptions(
            allocation=AllocationOptions(parallel_restarts=parallel)
        )
        result = partition(design, capacity, opts)
        return (
            tuple((r.name, r.labels) for r in result.scheme.regions),
            result.objective,
            result.total_frames,
        )

    def test_parallel_deterministic_and_no_worse(self):
        rng = np.random.default_rng(77)
        design = generate_design(
            rng, CircuitClass.LOGIC, "par",
            GeneratorConfig(max_modules=4, max_modes=3),
        )
        capacity = budget_for(design)
        serial = self._run(design, capacity, None)
        first = self._run(design, capacity, 2)
        second = self._run(design, capacity, 2)
        assert first == second  # deterministic across runs
        # Private per-shard seen-state sets explore a superset of the
        # sequential states, so the fan-out is never worse.
        assert first[1] <= serial[1]

    def test_parallel_counters_emitted(self):
        rng = np.random.default_rng(78)
        design = generate_design(
            rng, CircuitClass.DSP, "parc",
            GeneratorConfig(max_modules=4, max_modes=3),
        )
        capacity = budget_for(design)
        tracer = RecordingTracer()
        opts = PartitionerOptions(
            allocation=AllocationOptions(parallel_restarts=2)
        )
        partition(design, capacity, opts, tracer)
        assert tracer.counters.get("merge.parallel_shards", 0) > 0
        assert "merge.parallel_duplicate_states" in tracer.counters


PARITY_KWARGS = [
    {"prune": True},
    {"beam_width": 1},
    {"beam_width": 4},
    {"beam_width": 16},
    {"beam_width": 4, "prune": True},
]


class TestPruneBeamParity:
    """The expanded gate for the bounded-search knobs.

    With pruning and beams *off* every engine mode must stay on the
    bit-identical contract above.  With them *on*, the admissible bound
    guarantees the best cost is never worse than the reference -- and in
    the unweighted case the bound is exact, so the search-level results
    (groups, cost, state counters) still match bit-for-bit; only the
    shared-cache population may shrink.
    """

    @staticmethod
    def _result_part(fingerprint):
        """Per-candidate-set results, without the trailing cache-key list."""
        return fingerprint[:-1]

    def test_pruned_and_beamed_never_worse(self):
        for k in range(DIFF_DESIGNS):
            rng = np.random.default_rng(7000 + k)
            design = generate_design(
                rng, CIRCUIT_CLASSES[k % len(CIRCUIT_CLASSES)], f"pb{k}",
                GeneratorConfig(max_modules=5, max_modes=3),
            )
            capacity = budget_for(design)
            for policy in TransitionPolicy:
                ref = search_fingerprint(design, capacity, "reference", policy)
                for kwargs in PARITY_KWARGS:
                    got = search_fingerprint(
                        design, capacity, "incremental", policy,
                        alloc_kwargs=kwargs,
                    )
                    for (_, rc, _, _), (_, gc, _, _) in zip(
                        ref[:-1], got[:-1]
                    ):
                        if rc is None:
                            assert gc is None, f"design {k} {kwargs}"
                        else:
                            assert gc is not None and gc <= rc, (
                                f"design {k} {policy} {kwargs}: "
                                f"{gc} > {rc}"
                            )

    @staticmethod
    def _normalised(fingerprint):
        """Results with group members order-normalised.

        Unweighted bounds are exact, so the beamed/pruned search applies
        the same merge at every step -- but it materialises fewer pairs
        into the shared cache, and a later candidate set that misses the
        cache rebuilds the same merged group with a different member
        concatenation order.  Costs, state signatures (sorted) and
        counters are unaffected; only the cosmetic member order inside a
        region can differ, so that is the one thing we normalise here.
        """
        out = []
        for groups, cost, states, feasible in fingerprint[:-1]:
            if groups is not None:
                groups = tuple(tuple(sorted(g)) for g in groups)
            out.append((groups, cost, states, feasible))
        return out

    def test_unweighted_prune_and_beam_bit_identical(self):
        """Exact bounds keep the unweighted search on the full contract."""
        for k in range(DIFF_DESIGNS):
            rng = np.random.default_rng(7100 + k)
            design = generate_design(
                rng, CIRCUIT_CLASSES[k % len(CIRCUIT_CLASSES)], f"pbe{k}",
                GeneratorConfig(max_modules=4, max_modes=3),
            )
            capacity = budget_for(design)
            for policy in TransitionPolicy:
                ref = search_fingerprint(design, capacity, "reference", policy)
                for kwargs in PARITY_KWARGS:
                    got = search_fingerprint(
                        design, capacity, "incremental", policy,
                        alloc_kwargs=kwargs,
                    )
                    assert self._normalised(got) == self._normalised(ref), (
                        f"design {k} {policy} {kwargs}"
                    )

    @SETTINGS
    @given(synthetic_designs(), st.sampled_from(list(TransitionPolicy)),
           st.booleans())
    def test_hypothesis_weighted_never_worse(self, design, policy, weighted):
        capacity = budget_for(design)
        weights = weight_matrix(design) if weighted else None
        ref = search_fingerprint(design, capacity, "reference", policy,
                                 weights)
        got = search_fingerprint(
            design, capacity, "incremental", policy, weights,
            alloc_kwargs={"beam_width": 4, "prune": True},
        )
        for (_, rc, _, _), (_, gc, _, _) in zip(ref[:-1], got[:-1]):
            if rc is None:
                assert gc is None
            else:
                assert gc is not None and gc <= rc

    def test_defaults_unchanged_by_new_knobs(self):
        """prune=False/beam=None must be the pre-existing search exactly."""
        design = casestudy_design()
        capacity = CASESTUDY_BUDGET
        base = search_fingerprint(
            design, capacity, "incremental", TransitionPolicy.LENIENT
        )
        explicit = search_fingerprint(
            design, capacity, "incremental", TransitionPolicy.LENIENT,
            alloc_kwargs={"beam_width": None, "prune": False},
        )
        assert base == explicit


class TestPortfolio:
    def test_portfolio_never_worse_than_reference(self):
        for k in range(max(3, DIFF_DESIGNS // 2)):
            rng = np.random.default_rng(7300 + k)
            design = generate_design(
                rng, CIRCUIT_CLASSES[k % len(CIRCUIT_CLASSES)], f"pf{k}",
                GeneratorConfig(max_modules=4, max_modes=3),
            )
            capacity = budget_for(design)
            for policy in TransitionPolicy:
                ref = search_fingerprint(design, capacity, "reference", policy)
                got = search_fingerprint(design, capacity, "portfolio", policy)
                for (_, rc, _, _), (_, gc, _, _) in zip(ref[:-1], got[:-1]):
                    if rc is None:
                        assert gc is None, f"design {k}"
                    else:
                        assert gc is not None and gc <= rc, f"design {k}"

    def test_portfolio_deterministic(self):
        rng = np.random.default_rng(7400)
        design = generate_design(
            rng, CircuitClass.LOGIC, "pfd",
            GeneratorConfig(max_modules=4, max_modes=3),
        )
        capacity = budget_for(design)
        first = search_fingerprint(
            design, capacity, "portfolio", TransitionPolicy.LENIENT
        )
        second = search_fingerprint(
            design, capacity, "portfolio", TransitionPolicy.LENIENT
        )
        assert first == second

    def test_portfolio_counters_emitted(self):
        design = casestudy_design()
        opts = PartitionerOptions(
            allocation=AllocationOptions(engine="portfolio")
        )
        tracer = RecordingTracer()
        partition(design, CASESTUDY_BUDGET, opts, tracer)
        assert tracer.counters.get("merge.portfolio_backends", 0) >= 2
        assert tracer.counters.get("search.nodes_expanded", 0) > 0
