"""Probability-weighted objective tests (the paper's Sec. V extension,
wired through the search)."""

from __future__ import annotations

import pytest

from repro.arch.resources import ResourceVector
from repro.core.cost import weighted_total_frames
from repro.core.partitioner import PartitionerOptions, partition
from repro.eval.casestudy import CASESTUDY_BUDGET, casestudy_design
from repro.runtime.adaptive import uniform_markov
from repro.runtime.manager import replay

from ..conftest import make_design


@pytest.fixture
def design():
    return casestudy_design()


class TestWeightMatrix:
    def test_symmetric_and_summed(self, paper_example):
        opts = PartitionerOptions(
            pair_probabilities={
                ("Conf.1", "Conf.2"): 0.4,
                ("Conf.2", "Conf.1"): 0.1,
            }
        )
        W = opts.weight_matrix(paper_example)
        assert W[0, 1] == pytest.approx(0.5)
        assert W[1, 0] == pytest.approx(0.5)
        assert W.sum() == pytest.approx(1.0)

    def test_unknown_configuration_rejected(self, paper_example):
        opts = PartitionerOptions(pair_probabilities={("ghost", "Conf.1"): 1.0})
        with pytest.raises(KeyError):
            opts.weight_matrix(paper_example)

    def test_negative_weight_rejected(self, paper_example):
        opts = PartitionerOptions(
            pair_probabilities={("Conf.1", "Conf.2"): -0.5}
        )
        with pytest.raises(ValueError):
            opts.weight_matrix(paper_example)

    def test_none_passthrough(self, paper_example):
        assert PartitionerOptions().weight_matrix(paper_example) is None


class TestWeightedSearch:
    def test_uniform_weights_match_unweighted(self, design):
        """Equal pair weights must select a scheme with the same Eq. 7
        total as the unweighted run (the objective is proportional)."""
        names = [c.name for c in design.configurations]
        uniform = {
            (a, b): 1.0
            for i, a in enumerate(names)
            for b in names[i + 1 :]
        }
        weighted = partition(
            design,
            CASESTUDY_BUDGET,
            PartitionerOptions(pair_probabilities=uniform),
        )
        unweighted = partition(design, CASESTUDY_BUDGET)
        assert weighted.total_frames == unweighted.total_frames
        assert weighted.objective == pytest.approx(float(weighted.total_frames))

    def test_objective_matches_weighted_cost_of_scheme(self, design):
        env = uniform_markov(design)
        probs = env.pair_probabilities()
        result = partition(
            design,
            CASESTUDY_BUDGET,
            PartitionerOptions(pair_probabilities=probs),
        )
        assert result.objective == pytest.approx(
            weighted_total_frames(result.scheme, probs)
        )

    def test_skewed_weights_steer_the_solution(self):
        """A design where one transition dominates: the weighted search
        must keep the hot pair's modules apart (zero-cost hot switch)
        even at the price of a worse unweighted total."""
        design = make_design(
            {
                # Hot modules: tiny, switch constantly between c1 and c2.
                "H": {"h1": (40, 0, 0), "h2": (40, 0, 0)},
                # Cold module: huge alternatives, switches only to c3.
                "K": {"k1": (900, 0, 0), "k2": (880, 0, 0)},
            },
            [
                ("h1", "k1"),  # Conf.1
                ("h2", "k1"),  # Conf.2
                ("h1", "k2"),  # Conf.3
            ],
        )
        budget = ResourceVector(1060, 0, 0)
        hot = {("Conf.1", "Conf.2"): 0.98, ("Conf.1", "Conf.3"): 0.02}
        weighted = partition(
            design, budget, PartitionerOptions(pair_probabilities=hot)
        )
        # The hot h1<->h2 switch must be cheap: their shared region (if
        # any) is small, so the weighted objective stays far below the
        # single-region alternative where every switch costs everything.
        assert weighted.objective <= 0.98 * 2 * 36 + 0.02 * (900 // 20 + 1) * 36 * 2

    def test_weighted_never_worse_than_single_region(self, design):
        env = uniform_markov(design)
        probs = env.pair_probabilities()
        from repro.core.baselines import single_region_scheme

        result = partition(
            design,
            CASESTUDY_BUDGET,
            PartitionerOptions(pair_probabilities=probs),
        )
        assert result.objective <= weighted_total_frames(
            single_region_scheme(design), probs
        ) + 1e-9


class TestWeightedVsTrace:
    def test_weighted_scheme_wins_on_matching_trace(self, design):
        """Optimising for the chain's statistics must not lose on the
        chain's own traces (vs the unweighted optimum)."""
        env = uniform_markov(design)
        probs = env.pair_probabilities()
        weighted_scheme = partition(
            design,
            CASESTUDY_BUDGET,
            PartitionerOptions(pair_probabilities=probs),
        ).scheme
        unweighted_scheme = partition(design, CASESTUDY_BUDGET).scheme
        trace = env.trace(3000, seed=5)
        w = replay(weighted_scheme, trace).total_frames
        u = replay(unweighted_scheme, trace).total_frames
        assert w <= u * 1.05  # within noise; usually equal or better
