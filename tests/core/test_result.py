"""Region/PartitioningScheme structural tests."""

from __future__ import annotations

import pytest

from repro.arch.resources import ResourceVector
from repro.core.baselines import one_module_per_region_scheme, single_region_scheme
from repro.core.clustering import enumerate_base_partitions, partitions_by_label
from repro.core.result import (
    PartitioningScheme,
    Region,
    SchemeError,
    merge_regions,
    regions_from_partitions,
    scheme_frames_by_region,
)


@pytest.fixture
def bps(paper_example):
    return partitions_by_label(enumerate_base_partitions(paper_example))


def scheme_from(design, region_groups, cover, **kw):
    return PartitioningScheme(
        design=design,
        regions=regions_from_partitions(region_groups),
        cover=cover,
        **kw,
    )


@pytest.fixture
def singleton_cover(paper_example):
    return {
        c.name: tuple("{" + m + "}" for m in sorted(c.modes))
        for c in paper_example.configurations
    }


@pytest.fixture
def singleton_scheme(paper_example, bps, singleton_cover):
    groups = [[bps["{" + m.name + "}"]] for m in paper_example.active_modes]
    return scheme_from(paper_example, groups, singleton_cover)


class TestRegion:
    def test_requires_partitions(self):
        with pytest.raises(SchemeError):
            Region(name="r", partitions=())

    def test_rejects_duplicates(self, bps):
        with pytest.raises(SchemeError):
            Region(name="r", partitions=(bps["{A1}"], bps["{A1}"]))

    def test_requirement_is_envelope(self, bps, paper_example):
        r = Region(name="r", partitions=(bps["{A1}"], bps["{A2}"]))
        a1 = paper_example.mode("A1").resources
        a2 = paper_example.mode("A2").resources
        assert r.requirement == (a1 | a2)

    def test_frames_quantised(self, bps):
        r = Region(name="r", partitions=(bps["{A2}"],))
        # A2 = (120, 1, 2): 6 CLB tiles + 1 BRAM tile + 1 DSP tile.
        assert r.frames == 6 * 36 + 30 + 28

    def test_footprint_dominates_requirement(self, bps):
        r = Region(name="r", partitions=(bps["{A2}"],))
        assert r.requirement.fits_in(r.footprint)

    def test_mode_names_union(self, bps):
        r = Region(name="r", partitions=(bps["{A1, B2}"], bps["{C1}"]))
        assert r.mode_names == {"A1", "B2", "C1"}

    def test_partition_for(self, bps):
        r = Region(name="r", partitions=(bps["{A1}"],))
        assert r.partition_for("{A1}") is bps["{A1}"]
        with pytest.raises(KeyError):
            r.partition_for("{B1}")

    def test_merge_regions(self, bps):
        a = Region(name="a", partitions=(bps["{A1}"],))
        b = Region(name="b", partitions=(bps["{A2}"],))
        merged = merge_regions(a, b, "ab")
        assert merged.labels == ("{A1}", "{A2}")


class TestSchemeValidation:
    def test_singleton_scheme_valid(self, singleton_scheme):
        assert singleton_scheme.region_count == 8

    def test_partition_in_two_regions_rejected(
        self, paper_example, bps, singleton_cover
    ):
        groups = [[bps["{A1}"]], [bps["{A1}"]]]
        with pytest.raises(SchemeError, match="assigned to both"):
            scheme_from(paper_example, groups, {"Conf.1": ()})

    def test_cover_referencing_unhosted_partition(self, paper_example, bps):
        groups = [[bps["{A1}"]]]
        cover = {c.name: () for c in paper_example.configurations}
        cover["Conf.1"] = ("{B2}",)  # {B2} is hosted by no region
        with pytest.raises(SchemeError, match="hosted by no region"):
            scheme_from(paper_example, groups, cover)

    def test_uncovered_configuration_rejected(self, paper_example, bps):
        groups = [[bps["{A1}"]]]
        cover = {c.name: () for c in paper_example.configurations}
        with pytest.raises(SchemeError, match="not implementable"):
            scheme_from(paper_example, groups, cover)

    def test_two_partitions_of_one_region_needed_together(
        self, paper_example, bps, singleton_cover
    ):
        # A1 and B1 co-occur in Conf.2; putting them in one region makes
        # Conf.2 unimplementable.
        groups = [[bps["{A1}"], bps["{B1}"]]] + [
            [bps["{" + m.name + "}"]]
            for m in paper_example.active_modes
            if m.name not in ("A1", "B1")
        ]
        with pytest.raises(SchemeError, match="needs both"):
            scheme_from(paper_example, groups, singleton_cover)

    def test_cover_not_subset_rejected(self, paper_example, bps):
        groups = [[bps["{" + m.name + "}"]] for m in paper_example.active_modes]
        cover = {
            c.name: tuple("{" + m + "}" for m in sorted(c.modes))
            for c in paper_example.configurations
        }
        cover["Conf.1"] = cover["Conf.1"] + ("{A1}",)  # A1 not in Conf.1
        with pytest.raises(SchemeError, match="not a subset"):
            scheme_from(paper_example, groups, cover)

    def test_unknown_static_mode_rejected(self, paper_example, bps, singleton_cover):
        groups = [[bps["{" + m.name + "}"]] for m in paper_example.active_modes]
        with pytest.raises(SchemeError, match="not in the design"):
            scheme_from(
                paper_example,
                groups,
                singleton_cover,
                static_modes=frozenset({"Z9"}),
            )

    def test_static_modes_cover_without_regions(self, paper_example):
        scheme = PartitioningScheme(
            design=paper_example,
            regions=(),
            cover={c.name: () for c in paper_example.configurations},
            static_modes=frozenset(m.name for m in paper_example.all_modes),
        )
        assert scheme.region_count == 0


class TestActivity:
    def test_activity_matches_cover(self, singleton_scheme, paper_example):
        act = singleton_scheme.activity("Conf.1")  # A3, B2, C3 active
        active_labels = {a for a in act if a is not None}
        assert active_labels == {"{A3}", "{B2}", "{C3}"}

    def test_unknown_configuration(self, singleton_scheme):
        with pytest.raises(KeyError):
            singleton_scheme.activity("Conf.99")

    def test_region_activity(self, singleton_scheme, paper_example):
        # Find the region hosting {B2}: active in Conf.1, 3, 4, 5.
        idx = next(
            i
            for i, r in enumerate(singleton_scheme.regions)
            if r.labels == ("{B2}",)
        )
        activity = singleton_scheme.region_activity(idx)
        active_in = {k for k, v in activity.items() if v is not None}
        assert active_in == {"Conf.1", "Conf.3", "Conf.4", "Conf.5"}


class TestDerived:
    def test_resource_usage_sums_quantised_regions(self, singleton_scheme):
        expected = ResourceVector.sum(r.footprint for r in singleton_scheme.regions)
        assert singleton_scheme.resource_usage() == expected

    def test_fits(self, singleton_scheme):
        usage = singleton_scheme.resource_usage()
        assert singleton_scheme.fits(usage)
        assert not singleton_scheme.fits(usage - ResourceVector(1, 0, 0))

    def test_effectively_static_regions_for_single_activity(self, paper_example, bps):
        # Region hosting only {A2} is active only in Conf.5 -> static.
        groups = [[bps["{" + m.name + "}"]] for m in paper_example.active_modes]
        cover = {
            c.name: tuple("{" + m + "}" for m in sorted(c.modes))
            for c in paper_example.configurations
        }
        scheme = scheme_from(paper_example, groups, cover)
        static_names = {r.name for r in scheme.effectively_static_regions()}
        # Every singleton region never changes content -> all static.
        assert len(static_names) == scheme.region_count
        assert scheme.reconfigurable_regions() == ()

    def test_multi_partition_region_not_static(self, paper_example, bps):
        groups = [[bps["{A1}"], bps["{A2}"]]] + [
            [bps["{" + m.name + "}"]]
            for m in paper_example.active_modes
            if m.name not in ("A1", "A2")
        ]
        cover = {
            c.name: tuple("{" + m + "}" for m in sorted(c.modes))
            for c in paper_example.configurations
        }
        scheme = scheme_from(paper_example, groups, cover)
        non_static = scheme.reconfigurable_regions()
        assert len(non_static) == 1
        assert set(non_static[0].labels) == {"{A1}", "{A2}"}

    def test_total_region_frames(self, singleton_scheme):
        assert singleton_scheme.total_region_frames == sum(
            r.frames for r in singleton_scheme.regions
        )

    def test_describe_mentions_regions_and_usage(self, singleton_scheme):
        text = singleton_scheme.describe()
        assert "PRR1" in text and "usage" in text

    def test_scheme_frames_by_region(self, singleton_scheme):
        frames = scheme_frames_by_region(singleton_scheme)
        assert set(frames) == {r.name for r in singleton_scheme.regions}


class TestBaselineSchemesAreValid:
    """Baselines exercise the same validation machinery."""

    def test_modular_case_study(self, receiver):
        scheme = one_module_per_region_scheme(receiver)
        assert scheme.region_count == 5

    def test_single_region_case_study(self, receiver):
        scheme = single_region_scheme(receiver)
        assert scheme.region_count == 1
        assert len(scheme.regions[0].partitions) == 8
