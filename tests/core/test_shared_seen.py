"""Property tests for the cross-shard shared seen-state filter.

The filter is a pure de-duplication device: shards publish the
fingerprints of states they have fully expanded and skip states another
shard already covered.  It must therefore never change the best scheme a
fan-out returns -- only how much duplicate work the shards burn finding
it.  These tests pin that equivalence across worker counts and seeds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.allocation import AllocationOptions
from repro.core.fingerprint import state_fingerprint
from repro.core.partitioner import PartitionerOptions, partition
from repro.obs import RecordingTracer
from repro.synth.generator import GeneratorConfig, generate_design
from repro.synth.profiles import CIRCUIT_CLASSES

from .test_engine_differential import budget_for


def run_partition(design, capacity, parallel, shared, tracer=None):
    alloc = AllocationOptions(
        parallel_restarts=parallel,
        shared_seen_filter=shared,
    )
    result = partition(
        design, capacity, PartitionerOptions(allocation=alloc), tracer
    )
    return (
        tuple((r.name, r.labels, r.frames) for r in result.scheme.regions),
        result.objective,
        result.total_frames,
        result.worst_frames,
    )


class TestSharedSeenEquivalence:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_same_best_scheme_as_private_seen(self, workers):
        for k in range(4):
            rng = np.random.default_rng(8200 + k)
            design = generate_design(
                rng, CIRCUIT_CLASSES[k % len(CIRCUIT_CLASSES)], f"ss{k}",
                GeneratorConfig(max_modules=4, max_modes=3),
            )
            capacity = budget_for(design)
            private = run_partition(design, capacity, workers, False)
            shared = run_partition(design, capacity, workers, shared=True)
            assert shared == private, f"design {k} workers {workers}"

    def test_deterministic_across_runs(self):
        rng = np.random.default_rng(8300)
        design = generate_design(
            rng, CIRCUIT_CLASSES[0], "ssd",
            GeneratorConfig(max_modules=4, max_modes=3),
        )
        capacity = budget_for(design)
        first = run_partition(design, capacity, 2, shared=True)
        second = run_partition(design, capacity, 2, shared=True)
        assert first == second

    def test_single_worker_matches_serial(self):
        """parallel_restarts=1 (no filter possible) equals the serial run."""
        rng = np.random.default_rng(8400)
        design = generate_design(
            rng, CIRCUIT_CLASSES[1], "ss1",
            GeneratorConfig(max_modules=4, max_modes=3),
        )
        capacity = budget_for(design)
        serial = run_partition(design, capacity, None, False)
        one = run_partition(design, capacity, 1, False)
        assert one == serial

    def test_filter_counters_still_emitted(self):
        rng = np.random.default_rng(8500)
        design = generate_design(
            rng, CIRCUIT_CLASSES[2], "ssc",
            GeneratorConfig(max_modules=4, max_modes=3),
        )
        capacity = budget_for(design)
        tracer = RecordingTracer()
        run_partition(design, capacity, 2, shared=True, tracer=tracer)
        assert tracer.counters.get("merge.parallel_shards", 0) > 0
        assert tracer.counters.get("search.nodes_expanded", 0) > 0


class TestStateFingerprint:
    def test_stable_and_order_invariant(self):
        sig = (("a", "b"), ("c",))
        assert state_fingerprint(sig) == state_fingerprint(sig)
        # The signature itself is canonically sorted by the search; the
        # fingerprint re-sorts defensively, so permutations collide.
        assert state_fingerprint((("b", "a"), ("c",))) == state_fingerprint(
            (("c",), ("a", "b"))
        )

    def test_distinct_signatures_distinct(self):
        a = state_fingerprint((("a", "b"), ("c",)))
        b = state_fingerprint((("a",), ("b", "c")))
        c = state_fingerprint((("a", "b", "c"),))
        assert len({a, b, c}) == 3

    def test_is_compact_int(self):
        fp = state_fingerprint((("x",),))
        assert isinstance(fp, int)
        assert 0 <= fp < 2**128
