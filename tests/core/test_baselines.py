"""Baseline-scheme tests against the paper's Sec. IV-A narrative."""

from __future__ import annotations

import pytest

from repro.arch.resources import ResourceVector
from repro.core.baselines import (
    baseline_schemes,
    one_module_per_region_scheme,
    single_region_scheme,
    static_scheme,
)
from repro.core.cost import (
    TransitionPolicy,
    total_reconfiguration_frames,
    worst_case_frames,
)

from ..conftest import make_design


class TestStatic:
    def test_zero_cost_max_area(self, paper_example):
        scheme = static_scheme(paper_example)
        assert scheme.region_count == 0
        assert total_reconfiguration_frames(scheme) == 0
        assert scheme.resource_usage() == paper_example.static_requirement()

    def test_includes_unused_modes(self):
        d = make_design(
            {"A": {"a1": (10, 0, 0), "ghost": (7, 0, 0)}},
            [("a1",)],
        )
        scheme = static_scheme(d)
        assert scheme.resource_usage().clb == 17

    def test_case_study_exceeds_budget(self, receiver, budget):
        # Paper: the static implementation "exceeds the capacity of the
        # target device".
        assert not static_scheme(receiver).fits(budget)


class TestModular:
    def test_one_region_per_module(self, receiver):
        scheme = one_module_per_region_scheme(receiver)
        assert scheme.region_count == len(receiver.modules)
        for region in scheme.regions:
            modules = {p.modules for p in region.partitions}
            assert all(len(m) == 1 for m in modules)

    def test_region_sized_by_envelope(self, receiver):
        scheme = one_module_per_region_scheme(receiver)
        v_region = next(r for r in scheme.regions if r.name == "R_VideoDecoder")
        assert v_region.requirement == ResourceVector(4700, 40, 65)

    def test_skips_fully_unused_modules(self):
        d = make_design(
            {
                "A": {"a1": (10, 0, 0)},
                "B": {"b1": (10, 0, 0)},
                "GHOST": {"g1": (10, 0, 0)},
            },
            [("a1", "b1"), ("a1",)],
        )
        scheme = one_module_per_region_scheme(d)
        assert {r.name for r in scheme.regions} == {"R_A", "R_B"}

    def test_unused_mode_not_in_region(self):
        d = make_design(
            {"A": {"a1": (10, 0, 0), "ghost": (999, 0, 0)}, "B": {"b1": (5, 0, 0)}},
            [("a1", "b1")],
        )
        scheme = one_module_per_region_scheme(d)
        region_a = next(r for r in scheme.regions if r.name == "R_A")
        assert region_a.requirement.clb == 10

    def test_worst_case_is_all_modules_switching(self, tiny_design):
        # Conf.1 (A1+B1) -> Conf.2 (A2+B2) switches both regions.
        scheme = one_module_per_region_scheme(tiny_design)
        frames_a = next(r for r in scheme.regions if r.name == "R_A").frames
        frames_b = next(r for r in scheme.regions if r.name == "R_B").frames
        assert worst_case_frames(scheme) == frames_a + frames_b


class TestSingleRegion:
    def test_sized_for_largest_configuration(self, tiny_design):
        scheme = single_region_scheme(tiny_design)
        # Largest config: A1+B1 = 260 CLB -> 13 tiles.
        assert scheme.regions[0].requirement == ResourceVector(260, 0, 0)

    def test_minimum_area_property(self, receiver):
        # Sec. IV-A: single region gives the lowest resource requirement.
        single = single_region_scheme(receiver)
        modular = one_module_per_region_scheme(receiver)
        assert single.resource_usage().fits_in(modular.resource_usage())

    def test_every_transition_rewrites_everything(self, tiny_design):
        scheme = single_region_scheme(tiny_design)
        frames = scheme.regions[0].frames
        n = tiny_design.configuration_count
        assert total_reconfiguration_frames(scheme) == frames * n * (n - 1) // 2

    def test_duplicate_configurations_collapse(self):
        d = make_design(
            {"A": {"a1": (10, 0, 0), "a2": (20, 0, 0)}},
            [("a1",), ("a2",), ("a1",)],
        )
        scheme = single_region_scheme(d)
        assert len(scheme.regions[0].partitions) == 2
        # Transitions between the two identical configurations are free.
        assert (
            total_reconfiguration_frames(scheme, TransitionPolicy.STRICT)
            == 2 * scheme.regions[0].frames
        )

    def test_worst_case_constant(self, receiver):
        # Paper Fig. 8 discussion: single-region worst case equals the
        # (single) region size for every transition.
        scheme = single_region_scheme(receiver)
        assert worst_case_frames(scheme) == scheme.regions[0].frames


class TestBaselineBundle:
    def test_all_three_present(self, paper_example):
        schemes = baseline_schemes(paper_example)
        assert set(schemes) == {"static", "modular", "single-region"}
        assert schemes["static"].strategy == "static"
        assert schemes["modular"].strategy == "modular"
        assert schemes["single-region"].strategy == "single-region"

    def test_area_ordering_holds(self, receiver):
        # Sec. IV-A: static >= modular >= single-region in area.
        schemes = baseline_schemes(receiver)
        static = schemes["static"].resource_usage()
        modular = schemes["modular"].resource_usage()
        single = schemes["single-region"].resource_usage()
        assert single.fits_in(modular)
        assert modular.fits_in(static) or modular.clb <= static.clb

    def test_time_ordering_holds(self, receiver):
        # static (0) <= modular <= single-region in total time for the
        # case study (Table IV shape).
        schemes = baseline_schemes(receiver)
        t_static = total_reconfiguration_frames(schemes["static"])
        t_modular = total_reconfiguration_frames(schemes["modular"])
        t_single = total_reconfiguration_frames(schemes["single-region"])
        assert t_static == 0
        assert t_modular < t_single
