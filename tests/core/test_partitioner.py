"""Top-level partitioner tests: Fig. 6 loop and device selection."""

from __future__ import annotations

import pytest

from repro.arch.library import virtex5_ladder
from repro.arch.resources import ResourceVector
from repro.core.baselines import (
    one_module_per_region_scheme,
    single_region_scheme,
)
from repro.core.cost import (
    TransitionPolicy,
    total_reconfiguration_frames,
    worst_case_frames,
)
from repro.core.partitioner import (
    InfeasibleError,
    PartitionerOptions,
    minimum_footprint,
    partition,
    partition_with_device_selection,
    select_device,
    smallest_device_for_scheme,
)

from ..conftest import make_design


class TestPartition:
    def test_infeasible_budget_raises(self, paper_example):
        with pytest.raises(InfeasibleError):
            partition(paper_example, ResourceVector(10, 0, 0))

    def test_result_scheme_is_valid_and_fits(self, paper_example):
        budget = ResourceVector(2000, 50, 50)
        result = partition(paper_example, budget)
        assert result.scheme.fits(budget)
        assert result.total_frames == total_reconfiguration_frames(result.scheme)
        assert result.worst_frames == worst_case_frames(result.scheme)

    def test_never_worse_than_single_region(self, paper_example):
        budget = ResourceVector(2000, 50, 50)
        result = partition(paper_example, budget)
        single = single_region_scheme(paper_example)
        assert result.total_frames <= total_reconfiguration_frames(single)

    def test_single_region_fallback_when_budget_is_minimum(self, tiny_design):
        # Budget exactly the largest configuration: only the single
        # region arrangement fits.
        budget = ResourceVector(260, 0, 0)
        result = partition(tiny_design, budget)
        assert result.scheme.strategy == "single-region"
        assert result.only_single_region_feasible

    def test_generous_budget_zero_cost(self, paper_example):
        budget = ResourceVector(10**6, 10**4, 10**4)
        result = partition(paper_example, budget)
        assert result.total_frames == 0
        assert not result.only_single_region_feasible

    def test_exploration_counters(self, paper_example):
        result = partition(paper_example, ResourceVector(2000, 50, 50))
        assert result.candidate_sets_explored >= 1
        assert result.states_explored >= result.feasible_states >= 1

    def test_max_candidate_sets(self, paper_example):
        budget = ResourceVector(2000, 50, 50)
        opts = PartitionerOptions(max_candidate_sets=1)
        capped = partition(paper_example, budget, opts)
        full = partition(paper_example, budget)
        assert capped.candidate_sets_explored == 1
        assert full.total_frames <= capped.total_frames

    def test_policy_propagates_to_allocation(self, paper_example):
        budget = ResourceVector(2000, 50, 50)
        opts = PartitionerOptions(policy=TransitionPolicy.STRICT)
        result = partition(paper_example, budget, opts)
        assert result.total_frames == total_reconfiguration_frames(
            result.scheme, TransitionPolicy.STRICT
        )

    def test_disable_single_region_fallback(self, tiny_design):
        budget = ResourceVector(260, 0, 0)
        opts = PartitionerOptions(include_single_region=False)
        result = partition(tiny_design, budget, opts)
        # The fallback is still surfaced so device escalation can occur.
        assert result.scheme.strategy == "single-region"
        assert result.only_single_region_feasible

    def test_usage_property(self, paper_example):
        result = partition(paper_example, ResourceVector(2000, 50, 50))
        assert result.usage == result.scheme.resource_usage()


class TestCaseStudyShape:
    """The Sec. V narrative, as structural assertions."""

    def test_proposed_beats_modular_original(self, receiver, budget):
        result = partition(receiver, budget)
        modular = one_module_per_region_scheme(receiver)
        assert result.total_frames < total_reconfiguration_frames(modular)

    def test_proposed_beats_modular_modified(self, receiver_modified, budget):
        result = partition(receiver_modified, budget)
        modular = one_module_per_region_scheme(receiver_modified)
        assert result.total_frames < total_reconfiguration_frames(modular)

    def test_modified_configs_have_effectively_static_region(
        self, receiver_modified, budget
    ):
        # Table V: M1 moves to static (its region never reconfigures).
        result = partition(receiver_modified, budget)
        static_modes = set()
        for region in result.scheme.effectively_static_regions():
            static_modes |= set(region.mode_names)
        assert "M1" in static_modes

    def test_video_modes_share_a_region(self, receiver, budget):
        # Table III PRR5: V1, V2, V3 always end up together (they are the
        # dominant area and mutually exclusive).
        result = partition(receiver, budget)
        v_regions = {
            region.name
            for region in result.scheme.regions
            for label in region.labels
            if "V" in label
        }
        assert len(v_regions) == 1


class TestDeviceSelection:
    def test_minimum_footprint_includes_static(self):
        d = make_design(
            {"A": {"a": (100, 0, 0)}}, [("a",)], static=(90, 8, 0)
        )
        assert minimum_footprint(d) == single_region_scheme(d).resource_usage() + ResourceVector(90, 8, 0)

    def test_select_device_smallest_fit(self, ladder):
        d = make_design({"A": {"a": (100, 0, 0)}}, [("a",)])
        assert select_device(d, ladder).name == "LX20T"

    def test_select_device_raises_when_too_big(self, ladder):
        d = make_design({"A": {"a": (100_000, 0, 0)}}, [("a",)])
        with pytest.raises(InfeasibleError):
            select_device(d, ladder)

    def test_partition_with_device_selection(self, ladder, paper_example):
        dres = partition_with_device_selection(paper_example, ladder)
        assert dres.device.name == dres.initial_device.name or dres.escalated
        assert dres.scheme.fits(
            dres.device.usable_capacity(paper_example.static_resources)
        )

    def test_escalation_when_smallest_device_is_tight(self, ladder):
        # A design whose single-region footprint just fits LX20T (3120
        # CLBs) but where every multi-region arrangement exceeds it:
        # {a1,a2}+{b1,b2} needs 2900+300 = 3200 CLBs.
        d = make_design(
            {
                "A": {"a1": (2900, 0, 0), "a2": (2800, 0, 0)},
                "B": {"b1": (100, 0, 0), "b2": (300, 0, 0)},
            },
            [("a1", "b1"), ("a2", "b2")],
        )
        dres = partition_with_device_selection(d, ladder)
        assert dres.initial_device.name == "LX20T"
        assert dres.escalated
        assert not dres.result.only_single_region_feasible

    def test_max_escalations_cap(self, ladder):
        d = make_design(
            {
                "A": {"a1": (2900, 0, 0), "a2": (2800, 0, 0)},
                "B": {"b1": (100, 0, 0), "b2": (300, 0, 0)},
            },
            [("a1", "b1"), ("a2", "b2")],
        )
        dres = partition_with_device_selection(d, ladder, max_escalations=0)
        assert dres.device.name == "LX20T"
        assert dres.result.only_single_region_feasible

    def test_top_of_ladder_stops(self, ladder):
        # Single-region fits only the largest device; nothing else does.
        d = make_design(
            {
                "A": {"a1": (15000, 0, 0), "a2": (14000, 0, 0)},
                "B": {"b1": (8000, 0, 0), "b2": (9000, 0, 0)},
            },
            [("a1", "b1"), ("a2", "b2")],
        )
        dres = partition_with_device_selection(d, ladder)
        assert dres.device.name == "FX200T"

    def test_smallest_device_for_scheme(self, ladder, paper_example):
        single = single_region_scheme(paper_example)
        device = smallest_device_for_scheme(single, ladder)
        assert device is not None
        assert single.resource_usage().fits_in(device.capacity)
