"""Vectorized cost kernels vs the scalar reference loops."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.core.allocation import _switch_pair_counts, _weighted_switch_sums
from repro.core.kernels import (
    NONE_ID,
    encode_activity,
    merge_encoded,
    merged_switch_bounds,
    pairwise_frames_matrix,
    switch_pair_counts_encoded,
    weighted_switch_sums_encoded,
)


def _random_activity(rng, n, labels=("a", "b", "c", "d")):
    pool = list(labels) + [None]
    return tuple(pool[rng.integers(len(pool))] for _ in range(n))


class TestEncodeActivity:
    def test_none_maps_to_sentinel(self):
        codec: dict[str, int] = {}
        ids = encode_activity(("x", None, "y", "x"), codec)
        assert ids.tolist() == [0, NONE_ID, 1, 0]
        assert codec == {"x": 0, "y": 1}

    def test_codec_grows_and_is_stable(self):
        codec: dict[str, int] = {}
        first = encode_activity(("p", "q"), codec)
        second = encode_activity(("q", "r", "p"), codec)
        assert first.tolist() == [0, 1]
        assert second.tolist() == [1, 2, 0]

    def test_shared_codec_makes_vectors_comparable(self):
        codec: dict[str, int] = {}
        a = encode_activity(("m", None, "n"), codec)
        b = encode_activity(("m", "n", None), codec)
        assert (a == b).tolist() == [True, False, False]


class TestMergeEncoded:
    def test_overlay_prefers_active_side(self):
        codec: dict[str, int] = {}
        a = encode_activity(("x", None, None, "y"), codec)
        b = encode_activity((None, "z", None, None), codec)
        merged = merge_encoded(a, b)
        assert merged.tolist() == [codec["x"], codec["z"], NONE_ID, codec["y"]]

    def test_symmetric_for_disjoint_vectors(self):
        codec: dict[str, int] = {}
        a = encode_activity(("x", None), codec)
        b = encode_activity((None, "y"), codec)
        assert (merge_encoded(a, b) == merge_encoded(b, a)).all()


class TestSwitchPairCounts:
    @pytest.mark.parametrize("seed", range(30))
    def test_matches_scalar_reference(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(0, 20))
        activity = _random_activity(rng, n)
        codec: dict[str, int] = {}
        ids = encode_activity(activity, codec)
        assert switch_pair_counts_encoded(ids) == _switch_pair_counts(activity)

    def test_exact_ints(self):
        codec: dict[str, int] = {}
        ids = encode_activity(("a", "b", None, "a", None, "c"), codec)
        strict, lenient = switch_pair_counts_encoded(ids)
        assert isinstance(strict, int) and isinstance(lenient, int)


class TestWeightedSwitchSums:
    @pytest.mark.parametrize("seed", range(20))
    def test_matches_scalar_reference(self, seed):
        rng = np.random.default_rng(100 + seed)
        n = int(rng.integers(2, 16))
        activity = _random_activity(rng, n)
        W = rng.random((n, n))
        W = W + W.T
        codec: dict[str, int] = {}
        ids = encode_activity(activity, codec)
        vec = weighted_switch_sums_encoded(ids, W)
        ref = _weighted_switch_sums(activity, W)
        assert vec[0] == pytest.approx(ref[0], rel=1e-12)
        assert vec[1] == pytest.approx(ref[1], rel=1e-12)

    def test_empty_vector(self):
        assert weighted_switch_sums_encoded(
            np.empty(0, dtype=np.int32), np.zeros((0, 0))
        ) == (0.0, 0.0)


class TestPairwiseFramesMatrix:
    def _brute(self, table, frames, lenient):
        C = len(table)
        out = np.zeros((C, C), dtype=np.int64)
        for i, j in itertools.combinations(range(C), 2):
            cost = 0
            for r, f in enumerate(frames):
                a, b = table[i][r], table[j][r]
                if lenient:
                    pays = a is not None and b is not None and a != b
                else:
                    pays = a != b
                if pays:
                    cost += f
            out[i, j] = out[j, i] = cost
        return out

    @pytest.mark.parametrize("seed", range(15))
    @pytest.mark.parametrize("lenient", [True, False])
    def test_matches_brute_force(self, seed, lenient):
        rng = np.random.default_rng(200 + seed)
        C = int(rng.integers(1, 8))
        R = int(rng.integers(1, 6))
        table = [_random_activity(rng, R) for _ in range(C)]
        frames = [int(rng.integers(10, 500)) for _ in range(R)]
        codec: dict[str, int] = {}
        ids = np.stack([encode_activity(row, codec) for row in table])
        got = pairwise_frames_matrix(
            ids, np.array(frames, dtype=np.int64), lenient
        )
        assert (got == self._brute(table, frames, lenient)).all()

    def test_zero_configurations(self):
        got = pairwise_frames_matrix(
            np.empty((0, 3), dtype=np.int32),
            np.array([1, 2, 3], dtype=np.int64),
            lenient=True,
        )
        assert got.shape == (0, 0)


class TestMergedSwitchBounds:
    """Admissibility (and unweighted exactness) of the merge bound."""

    @staticmethod
    def _compatible_pair(rng, n):
        """Two activity vectors active on disjoint positions with
        disjoint label sets (the search's compatibility relation)."""
        a = [None] * n
        b = [None] * n
        for i in range(n):
            side = rng.integers(3)
            if side == 0:
                a[i] = f"a{rng.integers(3)}"
            elif side == 1:
                b[i] = f"b{rng.integers(3)}"
        return tuple(a), tuple(b)

    @staticmethod
    def _overlay(a, b):
        return tuple(x if x is not None else y for x, y in zip(a, b))

    @pytest.mark.parametrize("seed", range(25))
    def test_unweighted_identity_is_exact(self, seed):
        rng = np.random.default_rng(400 + seed)
        n = int(rng.integers(2, 12))
        a, b = self._compatible_pair(rng, n)
        sa, la = _switch_pair_counts(a)
        sb, lb = _switch_pair_counts(b)
        s_lb, l_lb = merged_switch_bounds(
            sa, la, sum(x is not None for x in a),
            sb, lb, sum(x is not None for x in b),
            weighted=False,
        )
        s_true, l_true = _switch_pair_counts(self._overlay(a, b))
        assert (s_lb, l_lb) == (s_true, l_true)

    @pytest.mark.parametrize("seed", range(25))
    def test_weighted_bound_is_admissible(self, seed):
        rng = np.random.default_rng(500 + seed)
        n = int(rng.integers(2, 12))
        a, b = self._compatible_pair(rng, n)
        # Integer-valued weights keep every float sum exact, so the
        # <= comparisons below are free of rounding questions.
        W = rng.integers(0, 100, size=(n, n)).astype(float)
        W = W + W.T
        sa, la = _weighted_switch_sums(a, W)
        sb, lb = _weighted_switch_sums(b, W)
        s_lb, l_lb = merged_switch_bounds(
            sa, la, sum(x is not None for x in a),
            sb, lb, sum(x is not None for x in b),
            weighted=True,
        )
        s_true, l_true = _weighted_switch_sums(self._overlay(a, b), W)
        assert s_lb <= s_true
        assert l_lb <= l_true

    def test_all_none_vectors(self):
        assert merged_switch_bounds(0, 0, 0, 0, 0, 0, weighted=False) == (0, 0)
        assert merged_switch_bounds(
            0.0, 0.0, 0, 0.0, 0.0, 0, weighted=True
        ) == (0.0, 0.0)
