"""Connectivity-matrix tests, anchored to the paper's Sec. IV-C example."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.matrix import ConnectivityMatrix, connectivity_matrix, zero_row_after_cover
from repro.eval.example_design import EXPECTED_MATRIX, EXPECTED_MODE_ORDER

from ..conftest import make_design


@pytest.fixture
def cm(paper_example):
    return ConnectivityMatrix.from_design(paper_example)


class TestPaperExample:
    def test_exact_matrix(self, cm):
        assert cm.mode_names == EXPECTED_MODE_ORDER
        assert (cm.matrix == np.array(EXPECTED_MATRIX, dtype=np.int8)).all()

    def test_shape(self, cm):
        assert cm.n_configurations == 5
        assert cm.n_modes == 8

    def test_node_weights_from_paper(self, cm):
        weights = cm.node_weights()
        # Paper: node weight of A1 is 2, of B2 is 4.
        assert weights["A1"] == 2
        assert weights["B2"] == 4
        assert cm.node_weight("A2") == 1

    def test_edge_weights_from_paper(self, cm):
        # Paper: W(A1, B1) = 1 and W(B2, C3) = 2.
        assert cm.edge_weight("A1", "B1") == 1
        assert cm.edge_weight("B2", "C3") == 2
        assert cm.edge_weight("A1", "A2") == 0  # same module, never co-occur

    def test_edges_only_positive(self, cm):
        edges = cm.edges()
        assert frozenset(("B2", "C3")) in edges
        assert frozenset(("A1", "A2")) not in edges
        assert all(w > 0 for w in edges.values())
        assert len(edges) == 13  # the 13 pairs of Table I

    def test_edge_weight_matrix_diagonal_is_node_weight(self, cm):
        W = cm.edge_weight_matrix()
        for j, name in enumerate(cm.mode_names):
            assert W[j, j] == cm.node_weight(name)

    def test_edge_weight_matrix_symmetric(self, cm):
        W = cm.edge_weight_matrix()
        assert (W == W.T).all()


class TestQueries:
    def test_group_weight(self, cm):
        assert cm.group_weight(["A3", "B2", "C3"]) == 1
        assert cm.group_weight(["B2", "C3"]) == 2
        assert cm.group_weight(["A1", "B2", "C1"]) == 0  # pairwise only
        assert cm.group_weight([]) == 0

    def test_configurations_containing(self, cm):
        assert cm.configurations_containing(["B2", "C3"]) == ("Conf.1", "Conf.5")
        assert cm.configurations_containing([]) == ()

    def test_co_occur(self, cm):
        assert cm.co_occur("A3", "B2")
        assert not cm.co_occur("A1", "A3")

    def test_self_edge_rejected(self, cm):
        with pytest.raises(ValueError):
            cm.edge_weight("A1", "A1")

    def test_unknown_mode(self, cm):
        with pytest.raises(KeyError):
            cm.column("Z9")
        with pytest.raises(KeyError):
            cm.row("Conf.77")

    def test_row_and_column(self, cm):
        assert cm.row("Conf.3") == 2
        assert cm.column("B2") == 4


class TestConstruction:
    def test_matrix_readonly(self, cm):
        with pytest.raises(ValueError):
            cm.matrix[0, 0] = 1

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ConnectivityMatrix(
                mode_names=("a",),
                configuration_names=("c",),
                matrix=np.zeros((2, 1), dtype=np.int8),
            )

    def test_unused_modes_get_no_column(self):
        d = make_design(
            {"A": {"a1": (1, 0, 0), "ghost": (1, 0, 0)}, "B": {"b1": (1, 0, 0)}},
            [("a1", "b1")],
        )
        cm = connectivity_matrix(d)
        assert "ghost" not in cm.mode_names
        assert cm.n_modes == 2

    def test_render_contains_all_labels(self, cm):
        text = cm.render()
        for label in EXPECTED_MODE_ORDER:
            assert label in text
        assert "Conf.1" in text


class TestZeroRowHelper:
    def test_zeroes_only_requested(self, cm):
        out = zero_row_after_cover(cm.matrix, 0, [2, 4])
        assert out[0, 2] == 0 and out[0, 4] == 0
        # Row 0 column 7 (C3) untouched; other rows untouched.
        assert out[0, 7] == 1
        assert (out[1:] == cm.matrix[1:]).all()

    def test_original_not_mutated(self, cm):
        zero_row_after_cover(cm.matrix, 0, [2])
        assert cm.matrix[0, 2] == 1
