"""Covering-algorithm tests: candidate partition sets and the outer loop."""

from __future__ import annotations

import pytest

from repro.core.clustering import enumerate_base_partitions
from repro.core.covering import (
    CandidatePartitionSet,
    CoveringError,
    candidate_partition_sets,
    cover,
)
from repro.core.matrix import ConnectivityMatrix


@pytest.fixture
def setup(paper_example):
    cm = ConnectivityMatrix.from_design(paper_example)
    bps = enumerate_base_partitions(paper_example, cm)
    return paper_example, cm, bps


class TestFirstCover:
    def test_first_cps_is_all_singletons(self, setup):
        # Paper: "the first candidate partition set is {{A2}, {B1}, {C2},
        # {A1}, {C1}, {C3}, {A3}, and {B2}} ... actually all the modes".
        design, cm, bps = setup
        cps = cover(bps, cm)
        assert cps is not None
        assert set(cps.labels) == {
            "{A1}", "{A2}", "{A3}", "{B1}", "{B2}", "{C1}", "{C2}", "{C3}"
        }

    def test_cover_assignment_valid(self, setup):
        design, cm, bps = setup
        cps = cover(bps, cm)
        cps.validate(design)

    def test_cover_assignment_per_configuration(self, setup):
        design, cm, bps = setup
        cps = cover(bps, cm)
        # Conf.1 = A3, B2, C3 covered by those three singletons.
        assert set(cps.cover["Conf.1"]) == {"{A3}", "{B2}", "{C3}"}

    def test_useless_partition_skipped(self, setup):
        design, cm, bps = setup
        cps = cover(bps, cm)
        # After all singletons, larger partitions cover nothing new.
        assert all(lbl.count(",") == 0 for lbl in cps.labels)


class TestCoverFailure:
    def test_returns_none_when_matrix_not_reducible(self, setup):
        design, cm, bps = setup
        # Remove every partition containing B2: Conf.1 can't be covered.
        pruned = [bp for bp in bps if "B2" not in bp.modes]
        assert cover(pruned, cm) is None

    def test_empty_list(self, setup):
        design, cm, bps = setup
        assert cover([], cm) is None


class TestOuterLoop:
    def test_head_removal_produces_new_sets(self, setup):
        design, cm, bps = setup
        sets = list(candidate_partition_sets(bps, cm))
        assert len(sets) >= 2
        # First set is the all-singleton one.
        assert all(lbl.count(",") == 0 for lbl in sets[0].labels)
        # Later sets use at least one multi-mode partition (paper: after
        # removing {A2}, "{A2, B2} is added to the new candidate set").
        multi = [s for s in sets[1:] if any("," in lbl for lbl in s.labels)]
        assert multi

    def test_a2_removal_introduces_a2_b2(self, setup):
        design, cm, bps = setup
        sets = list(candidate_partition_sets(bps, cm))
        # The head of the covering list is {A2} (size 1, weight 1, area
        # min among weight-1 singletons depends on resources); find the
        # first set lacking singleton {A2}: it must cover A2 via a pair.
        for cps in sets:
            if "{A2}" not in cps.labels:
                assert any(
                    "A2" in lbl and "," in lbl for lbl in cps.labels
                )
                break
        else:
            pytest.fail("head removal never dropped {A2}")

    def test_all_sets_valid(self, setup):
        design, cm, bps = setup
        for cps in candidate_partition_sets(bps, cm):
            cps.validate(design)

    def test_max_sets_cap(self, setup):
        design, cm, bps = setup
        sets = list(candidate_partition_sets(bps, cm, max_sets=3))
        assert len(sets) == 3

    def test_terminates(self, setup):
        design, cm, bps = setup
        sets = list(candidate_partition_sets(bps, cm))
        assert len(sets) <= len(bps)

    def test_consecutive_duplicates_skipped(self, setup):
        design, cm, bps = setup
        sets = list(candidate_partition_sets(bps, cm))
        for a, b in zip(sets, sets[1:]):
            assert a.labels != b.labels


class TestCandidatePartitionSet:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CandidatePartitionSet(partitions=(), cover={})

    def test_partition_lookup(self, setup):
        design, cm, bps = setup
        cps = cover(bps, cm)
        assert cps.partition("{B2}").label == "{B2}"
        with pytest.raises(KeyError):
            cps.partition("{ZZ}")

    def test_covering_partitions(self, setup):
        design, cm, bps = setup
        cps = cover(bps, cm)
        covering = cps.covering_partitions("Conf.4")
        assert {p.label for p in covering} == {"{A1}", "{B2}", "{C2}"}

    def test_validate_detects_missing_configuration(self, setup):
        design, cm, bps = setup
        cps = cover(bps, cm)
        broken = CandidatePartitionSet(
            partitions=cps.partitions,
            cover={k: v for k, v in cps.cover.items() if k != "Conf.1"},
        )
        with pytest.raises(CoveringError, match="missing"):
            broken.validate(design)

    def test_validate_detects_incomplete_cover(self, setup):
        design, cm, bps = setup
        cps = cover(bps, cm)
        broken_cover = dict(cps.cover)
        broken_cover["Conf.1"] = tuple(
            lbl for lbl in broken_cover["Conf.1"] if lbl != "{B2}"
        )
        broken = CandidatePartitionSet(
            partitions=cps.partitions, cover=broken_cover
        )
        with pytest.raises(CoveringError, match="not fully covered"):
            broken.validate(design)

    def test_validate_detects_non_subset(self, setup):
        design, cm, bps = setup
        cps = cover(bps, cm)
        broken_cover = dict(cps.cover)
        # {A1} is not a subset of Conf.1 (= A3, B2, C3).
        broken_cover["Conf.1"] = broken_cover["Conf.1"] + ("{A1}",)
        broken = CandidatePartitionSet(
            partitions=cps.partitions, cover=broken_cover
        )
        with pytest.raises(CoveringError, match="not a"):
            broken.validate(design)


class TestSingleModeMixCovering:
    def test_covers_with_singletons(self, single_mode_mix):
        cm = ConnectivityMatrix.from_design(single_mode_mix)
        bps = enumerate_base_partitions(single_mode_mix, cm)
        cps = cover(bps, cm)
        assert cps is not None
        cps.validate(single_mode_mix)

    def test_eventually_covers_with_full_configs(self, single_mode_mix):
        cm = ConnectivityMatrix.from_design(single_mode_mix)
        bps = enumerate_base_partitions(single_mode_mix, cm)
        sets = list(candidate_partition_sets(bps, cm))
        # With all singletons removed, the pairs/triples must take over.
        last = sets[-1]
        assert any("," in lbl for lbl in last.labels)
