"""Pareto-front exploration tests."""

from __future__ import annotations

import pytest

from repro.arch.resources import ResourceVector
from repro.core.cost import total_reconfiguration_frames
from repro.core.pareto import ParetoPoint, pareto_front, render_front
from repro.core.partitioner import partition


@pytest.fixture
def front(tiny_design):
    return pareto_front(tiny_design, ResourceVector(600, 8, 8))


class TestFrontStructure:
    def test_non_empty(self, front):
        assert front

    def test_no_dominated_points(self, front):
        """Three-objective dominance: usage, total and worst case."""
        for i, a in enumerate(front):
            for j, b in enumerate(front):
                if i == j:
                    continue
                dominated = (
                    a.usage.fits_in(b.usage)
                    and a.total_frames <= b.total_frames
                    and a.worst_frames <= b.worst_frames
                    and (
                        a.usage != b.usage
                        or a.total_frames < b.total_frames
                        or a.worst_frames < b.worst_frames
                    )
                )
                assert not dominated, f"{i} dominates {j}"

    def test_sorted_by_clb(self, front):
        clbs = [p.usage.clb for p in front]
        assert clbs == sorted(clbs)

    def test_all_points_fit_budget(self, tiny_design):
        budget = ResourceVector(600, 8, 8)
        for p in pareto_front(tiny_design, budget):
            assert p.usage.fits_in(budget)

    def test_costs_consistent_with_schemes(self, front):
        for p in front:
            assert p.total_frames == total_reconfiguration_frames(p.scheme)
            assert p.usage == p.scheme.resource_usage()


class TestFrontContents:
    def test_contains_the_optimum(self, tiny_design):
        budget = ResourceVector(600, 8, 8)
        best = partition(tiny_design, budget)
        front = pareto_front(tiny_design, budget)
        assert min(p.total_frames for p in front) == best.total_frames

    def test_tighter_budget_never_extends_lower_times(self, tiny_design):
        loose = pareto_front(tiny_design, ResourceVector(600, 8, 8))
        tight = pareto_front(tiny_design, ResourceVector(340, 8, 8))
        assert min(p.total_frames for p in tight) >= min(
            p.total_frames for p in loose
        )

    def test_trade_off_exists_on_tiny_design(self, front):
        """With enough budget headroom the front shows a real trade:
        more area <-> less reconfiguration time."""
        if len(front) < 2:
            pytest.skip("front collapsed to a single point")
        assert front[0].total_frames >= front[-1].total_frames

    def test_single_region_present_when_it_fits(self, tiny_design):
        budget = ResourceVector(260, 0, 0)
        front = pareto_front(tiny_design, budget)
        assert any(p.scheme.strategy == "single-region" for p in front)


class TestRendering:
    def test_render_front(self, front):
        text = render_front(front)
        assert "Pareto" in text
        assert str(front[0].usage.clb) in text

    def test_max_points_cap(self, receiver, budget):
        front = pareto_front(
            receiver, budget, max_candidate_sets=2, max_points=5
        )
        assert len(front) <= 5


class TestBestByWorstCase:
    def test_minimises_worst(self, tiny_design):
        from repro.core.pareto import best_by_worst_case, pareto_front
        from repro.arch.resources import ResourceVector

        budget = ResourceVector(600, 8, 8)
        best = best_by_worst_case(tiny_design, budget)
        front = pareto_front(tiny_design, budget)
        assert best.worst_frames == min(p.worst_frames for p in front)

    def test_never_worse_than_total_optimum_on_worst(self, receiver, budget):
        from repro.core.pareto import best_by_worst_case
        from repro.core.partitioner import partition

        by_worst = best_by_worst_case(receiver, budget, max_candidate_sets=3)
        by_total = partition(receiver, budget)
        assert by_worst.worst_frames <= by_total.worst_frames

    def test_infeasible_raises(self, tiny_design):
        from repro.core.pareto import best_by_worst_case
        from repro.arch.resources import ResourceVector

        import pytest as _pytest
        with _pytest.raises(ValueError):
            best_by_worst_case(tiny_design, ResourceVector(10, 0, 0))
