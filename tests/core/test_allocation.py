"""Merge-search tests: internal counts, cache, and end-to-end optimality."""

from __future__ import annotations

import itertools

import pytest

from repro.arch.resources import ResourceVector
from repro.core.allocation import (
    AllocationOptions,
    _MergeCache,
    _initial_groups,
    _mergeable,
    _quantise,
    _switch_pair_counts,
    groups_to_scheme,
    search_candidate_set,
)
from repro.core.clustering import enumerate_base_partitions
from repro.core.cost import (
    TransitionPolicy,
    total_reconfiguration_frames,
)
from repro.core.covering import cover
from repro.core.matrix import ConnectivityMatrix
from repro.core.result import PartitioningScheme, regions_from_partitions

from ..conftest import make_design


def first_cps(design):
    cm = ConnectivityMatrix.from_design(design)
    return cover(enumerate_base_partitions(design, cm), cm)


class TestSwitchPairCounts:
    def brute(self, activity):
        strict = lenient = 0
        for a, b in itertools.combinations(activity, 2):
            if a != b:
                strict += 1
                if a is not None and b is not None:
                    lenient += 1
        return strict, lenient

    @pytest.mark.parametrize(
        "activity",
        [
            (),
            ("x",),
            (None, None),
            ("x", "x", "x"),
            ("x", "y", None),
            ("x", None, "x", "y", None, "y", "z"),
            (None,) * 5 + ("a",) * 3 + ("b",) * 2,
        ],
    )
    def test_matches_brute_force(self, activity):
        assert _switch_pair_counts(activity) == self.brute(activity)


class TestQuantise:
    def test_matches_tiles_module(self):
        from repro.arch.tiles import frames_for, quantised_footprint

        for req in [(0, 0, 0), (1, 1, 1), (818, 0, 28), (4700, 40, 65)]:
            footprint, frames = _quantise(req)
            v = ResourceVector(*req)
            assert footprint == quantised_footprint(v).as_tuple()
            assert frames == frames_for(v)


class TestInitialGroups:
    def test_one_group_per_partition(self, paper_example):
        cps = first_cps(paper_example)
        groups = _initial_groups(paper_example, cps)
        assert len(groups) == len(cps.partitions)

    def test_activity_matches_cover(self, paper_example):
        cps = first_cps(paper_example)
        groups = _initial_groups(paper_example, cps)
        names = [c.name for c in paper_example.configurations]
        for bp, group in zip(cps.partitions, groups):
            for cname, active in zip(names, group.activity):
                assert (active == bp.label) == (bp.label in cps.cover[cname])

    def test_usage_mask(self, paper_example):
        cps = first_cps(paper_example)
        groups = _initial_groups(paper_example, cps)
        b2 = next(g for g in groups if g.signature == frozenset({"{B2}"}))
        # B2 occurs in Conf.1, 3, 4, 5 -> bits 0, 2, 3, 4.
        assert b2.usage == 0b11101

    def test_mergeable_iff_disjoint_usage(self, paper_example):
        cps = first_cps(paper_example)
        groups = _initial_groups(paper_example, cps)
        by_sig = {next(iter(g.signature)): g for g in groups}
        assert _mergeable(by_sig["{A1}"], by_sig["{A2}"])
        assert not _mergeable(by_sig["{A1}"], by_sig["{B1}"])


class TestMergeCache:
    def test_same_object_returned(self, paper_example):
        cps = first_cps(paper_example)
        groups = _initial_groups(paper_example, cps)
        cache = _MergeCache()
        a, b = groups[0], groups[1]
        if not _mergeable(a, b):
            a, b = next(
                (x, y)
                for x, y in itertools.combinations(groups, 2)
                if _mergeable(x, y)
            )
        m1 = cache.merge(a, b)
        m2 = cache.merge(b, a)
        assert m1 is m2

    def test_merged_activity_combines(self, paper_example):
        cps = first_cps(paper_example)
        groups = _initial_groups(paper_example, cps)
        a, b = next(
            (x, y)
            for x, y in itertools.combinations(groups, 2)
            if _mergeable(x, y)
        )
        merged = _MergeCache().merge(a, b)
        for x, y, z in zip(a.activity, b.activity, merged.activity):
            assert z == (x if x is not None else y)
        assert merged.usage == a.usage | b.usage

    def test_merged_frames_is_envelope_quantised(self, paper_example):
        cps = first_cps(paper_example)
        groups = _initial_groups(paper_example, cps)
        a, b = next(
            (x, y)
            for x, y in itertools.combinations(groups, 2)
            if _mergeable(x, y)
        )
        merged = _MergeCache().merge(a, b)
        req = tuple(max(x, y) for x, y in zip(a.requirement, b.requirement))
        assert merged.requirement == req
        assert merged.frames == _quantise(req)[1]


class TestSearch:
    def test_search_result_cost_matches_scheme_cost(self, paper_example):
        cps = first_cps(paper_example)
        capacity = ResourceVector(10_000, 100, 100)
        outcome = search_candidate_set(paper_example, cps, capacity)
        assert outcome.found
        scheme = groups_to_scheme(paper_example, cps, outcome.best_groups)
        assert outcome.best_cost == total_reconfiguration_frames(scheme)

    def test_unconstrained_budget_keeps_everything_separate(self, paper_example):
        # With infinite area the all-separate start (cost 0 under LENIENT:
        # every singleton region has a single activity value) is optimal.
        cps = first_cps(paper_example)
        capacity = ResourceVector(10**6, 10**4, 10**4)
        outcome = search_candidate_set(paper_example, cps, capacity)
        assert outcome.best_cost == 0
        assert len(outcome.best_groups) == len(cps.partitions)

    def test_infeasible_budget_returns_nothing(self, paper_example):
        cps = first_cps(paper_example)
        outcome = search_candidate_set(
            paper_example, cps, ResourceVector(1, 0, 0)
        )
        assert not outcome.found
        assert outcome.feasible_states == 0

    def test_tight_budget_forces_merging(self, tiny_design):
        cps = first_cps(tiny_design)
        # all-separate: A1(40->2 tiles) + A2(200->10) + B1(220->11) +
        # B2(50->3) = 26 tiles = 520 CLBs.  The only compatible merges are
        # {A2,B1}, {A2,A1} and {B1,B2} (A1/B2 co-occur with the others),
        # so the smallest reachable footprint is {A2,B1}+{A1}+{B2} =
        # 220+40+60 = 320 CLBs.
        outcome = search_candidate_set(
            tiny_design, cps, ResourceVector(340, 0, 0)
        )
        assert outcome.found
        assert len(outcome.best_groups) < len(cps.partitions)

    def test_matches_brute_force_on_tiny_design(self, tiny_design):
        """Exhaustive check over all compatible group partitions."""
        cps = first_cps(tiny_design)
        capacity = ResourceVector(340, 0, 0)
        groups = _initial_groups(tiny_design, cps)

        best = None

        def partitions_of(items):
            if not items:
                yield []
                return
            head, *rest = items
            for sub in partitions_of(rest):
                # head alone
                yield [[head]] + sub
                # head joined to an existing block
                for i in range(len(sub)):
                    yield sub[:i] + [sub[i] + [head]] + sub[i + 1 :]

        cache = _MergeCache()
        for blocks in partitions_of(list(range(len(groups)))):
            merged = []
            ok = True
            for block in blocks:
                g = groups[block[0]]
                for idx in block[1:]:
                    if not _mergeable(g, groups[idx]):
                        ok = False
                        break
                    g = cache.merge(g, groups[idx])
                if not ok:
                    break
                merged.append(g)
            if not ok:
                continue
            usage = [sum(g.footprint[i] for g in merged) for i in range(3)]
            if usage[0] > capacity.clb:
                continue
            cost = sum(
                g.frames * g.switch_pairs_lenient for g in merged
            )
            if best is None or cost < best:
                best = cost

        outcome = search_candidate_set(tiny_design, cps, capacity)
        assert outcome.found
        assert outcome.best_cost == best

    def test_max_initial_pairs_cap(self, paper_example):
        cps = first_cps(paper_example)
        capacity = ResourceVector(10_000, 100, 100)
        capped = search_candidate_set(
            paper_example,
            cps,
            capacity,
            AllocationOptions(max_initial_pairs=1),
        )
        full = search_candidate_set(paper_example, cps, capacity)
        assert capped.states_explored <= full.states_explored

    def test_policy_option_respected(self, tiny_design):
        cps = first_cps(tiny_design)
        capacity = ResourceVector(340, 0, 0)
        strict = search_candidate_set(
            tiny_design,
            cps,
            capacity,
            AllocationOptions(policy=TransitionPolicy.STRICT),
        )
        lenient = search_candidate_set(tiny_design, cps, capacity)
        assert strict.found and lenient.found
        assert lenient.best_cost <= strict.best_cost

    def test_options_validation(self):
        with pytest.raises(ValueError):
            AllocationOptions(max_initial_pairs=0)
        with pytest.raises(ValueError):
            AllocationOptions(max_descent_steps=0)

    def test_engine_validation(self):
        with pytest.raises(ValueError):
            AllocationOptions(engine="quantum")
        with pytest.raises(ValueError):
            AllocationOptions(parallel_restarts=0)
        with pytest.raises(ValueError):
            AllocationOptions(engine="reference", parallel_restarts=2)
        # Both engines and the sharded incremental engine are accepted.
        AllocationOptions(engine="reference")
        AllocationOptions(engine="incremental", parallel_restarts=2)

    def test_bounded_search_validation(self):
        with pytest.raises(ValueError, match="beam_width"):
            AllocationOptions(beam_width=0)
        with pytest.raises(ValueError, match="beam_width"):
            AllocationOptions(beam_width=-3)
        # The reference engine is the untouched differential oracle: it
        # accepts none of the bounded-search knobs.
        with pytest.raises(ValueError, match="reference"):
            AllocationOptions(engine="reference", beam_width=4)
        with pytest.raises(ValueError, match="reference"):
            AllocationOptions(engine="reference", prune=True)
        # The portfolio occupies the batch pool itself.
        with pytest.raises(ValueError, match="portfolio|parallel"):
            AllocationOptions(engine="portfolio", parallel_restarts=2)
        # Shared seen filter is only meaningful across >= 2 shards.
        with pytest.raises(ValueError, match="shared_seen_filter"):
            AllocationOptions(shared_seen_filter=True)
        with pytest.raises(ValueError, match="shared_seen_filter"):
            AllocationOptions(shared_seen_filter=True, parallel_restarts=1)
        # Valid combinations construct cleanly.
        AllocationOptions(beam_width=1)
        AllocationOptions(beam_width=16, prune=True)
        AllocationOptions(engine="portfolio")
        AllocationOptions(parallel_restarts=2, shared_seen_filter=True)

    def test_search_counters_emitted(self, tiny_design):
        from repro.obs import RecordingTracer

        cps = first_cps(tiny_design)
        tracer = RecordingTracer()
        # A tight budget forces descent through merge candidates so the
        # frontier counters actually accumulate.
        search_candidate_set(
            tiny_design,
            cps,
            ResourceVector(340, 0, 0),
            AllocationOptions(beam_width=4, prune=True),
            tracer=tracer,
        )
        assert tracer.counters["search.nodes_expanded"] > 0
        assert "search.nodes_pruned" in tracer.counters

    def test_reference_engine_emits_no_search_counters(self, paper_example):
        from repro.obs import RecordingTracer

        cps = first_cps(paper_example)
        tracer = RecordingTracer()
        search_candidate_set(
            paper_example,
            cps,
            ResourceVector(10_000, 100, 100),
            AllocationOptions(engine="reference"),
            tracer=tracer,
        )
        assert "search.nodes_expanded" not in tracer.counters
        assert "search.nodes_pruned" not in tracer.counters

    def test_heap_counters_emitted(self, paper_example):
        from repro.obs import RecordingTracer

        cps = first_cps(paper_example)
        capacity = ResourceVector(10_000, 100, 100)
        tracer = RecordingTracer()
        search_candidate_set(
            paper_example, cps, capacity, tracer=tracer
        )
        assert tracer.counters["merge.heap_pushes"] > 0
        assert tracer.counters["merge.heap_pops"] > 0
        assert "merge.heap_stale_drops" in tracer.counters
        assert "merge.heap_rebuilds" in tracer.counters

    def test_reference_engine_emits_no_heap_counters(self, paper_example):
        from repro.obs import RecordingTracer

        cps = first_cps(paper_example)
        tracer = RecordingTracer()
        search_candidate_set(
            paper_example,
            cps,
            ResourceVector(10_000, 100, 100),
            AllocationOptions(engine="reference"),
            tracer=tracer,
        )
        assert "merge.heap_pushes" not in tracer.counters


class TestGroupsToScheme:
    def test_materialised_scheme_valid_and_deterministic(self, paper_example):
        cps = first_cps(paper_example)
        capacity = ResourceVector(10_000, 100, 100)
        outcome = search_candidate_set(paper_example, cps, capacity)
        s1 = groups_to_scheme(paper_example, cps, outcome.best_groups)
        s2 = groups_to_scheme(paper_example, cps, outcome.best_groups)
        assert isinstance(s1, PartitioningScheme)
        assert [r.labels for r in s1.regions] == [r.labels for r in s2.regions]

    def test_strategy_tag(self, paper_example):
        cps = first_cps(paper_example)
        outcome = search_candidate_set(
            paper_example, cps, ResourceVector(10_000, 100, 100)
        )
        scheme = groups_to_scheme(
            paper_example, cps, outcome.best_groups, strategy="custom"
        )
        assert scheme.strategy == "custom"
