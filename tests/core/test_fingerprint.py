"""Canonical problem keys: stability, order-independence, sensitivity."""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.arch.resources import ResourceVector
from repro.core.fingerprint import canonical_problem, problem_key
from repro.core.model import PRDesign
from repro.core.partitioner import PartitionerOptions
from repro.synth.generator import GeneratorConfig, generate_design
from repro.synth.profiles import CircuitClass

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

CAPACITY = ResourceVector(5000, 64, 64)


@st.composite
def synthetic_designs(draw):
    seed = draw(st.integers(0, 2**32 - 1))
    cls = draw(st.sampled_from(list(CircuitClass)))
    rng = np.random.default_rng(seed)
    cfg = GeneratorConfig(max_modules=4, max_modes=3)
    return generate_design(rng, cls, name=f"fp-{seed}", config=cfg)


def shuffled_copy(design: PRDesign, name: str | None = None) -> PRDesign:
    """The same design with every declaration order reversed."""
    return PRDesign(
        name=name or design.name,
        modules=tuple(reversed(design.modules)),
        configurations=tuple(reversed(design.configurations)),
        static_resources=design.static_resources,
    )


class TestKeyStability:
    @SETTINGS
    @given(synthetic_designs())
    def test_identical_problems_identical_keys(self, design):
        assert problem_key(design, CAPACITY) == problem_key(design, CAPACITY)

    @SETTINGS
    @given(synthetic_designs())
    def test_declaration_order_is_canonicalised(self, design):
        assert problem_key(design, CAPACITY) == problem_key(
            shuffled_copy(design), CAPACITY
        )

    @SETTINGS
    @given(synthetic_designs())
    def test_design_display_name_is_excluded(self, design):
        renamed = shuffled_copy(design, name=design.name + "-renamed")
        assert problem_key(design, CAPACITY) == problem_key(renamed, CAPACITY)

    def test_key_is_sha256_hex(self, tiny_design):
        key = problem_key(tiny_design, CAPACITY)
        assert len(key) == 64
        int(key, 16)  # hex


class TestKeySensitivity:
    @SETTINGS
    @given(synthetic_designs(), st.integers(1, 1000))
    def test_capacity_changes_key(self, design, delta):
        bumped = CAPACITY + ResourceVector(delta, 0, 0)
        assert problem_key(design, CAPACITY) != problem_key(design, bumped)

    def test_mode_footprint_changes_key(self, tiny_design):
        modules = list(tiny_design.modules)
        first = modules[0]
        bumped_mode = type(first.modes[0])(
            name=first.modes[0].name,
            module=first.modes[0].module,
            resources=first.modes[0].resources + ResourceVector(1, 0, 0),
        )
        modules[0] = type(first)(
            name=first.name, modes=(bumped_mode,) + first.modes[1:]
        )
        changed = PRDesign(
            name=tiny_design.name,
            modules=tuple(modules),
            configurations=tiny_design.configurations,
        )
        assert problem_key(tiny_design, CAPACITY) != problem_key(changed, CAPACITY)

    def test_options_change_key(self, tiny_design):
        base = problem_key(tiny_design, CAPACITY, PartitionerOptions())
        capped = problem_key(
            tiny_design, CAPACITY, PartitionerOptions(max_candidate_sets=2)
        )
        assert base != capped

    def test_pair_probabilities_symmetrised(self, tiny_design):
        a = PartitionerOptions(
            pair_probabilities={("Conf.1", "Conf.2"): 0.5}
        )
        b = PartitionerOptions(
            pair_probabilities={("Conf.2", "Conf.1"): 0.5}
        )
        assert problem_key(tiny_design, CAPACITY, a) == problem_key(
            tiny_design, CAPACITY, b
        )

    def test_extra_changes_key(self, tiny_design):
        assert problem_key(tiny_design, extra={"device": "LX30"}) != problem_key(
            tiny_design, extra={"device": "LX50"}
        )


class TestCanonicalForm:
    def test_json_serialisable_and_versioned(self, tiny_design):
        import json

        doc = canonical_problem(tiny_design, CAPACITY, PartitionerOptions())
        text = json.dumps(doc, sort_keys=True)
        assert "repro-problem" in text
        assert doc["version"] == 1

    def test_modules_sorted(self, tiny_design):
        doc = canonical_problem(shuffled_copy(tiny_design))
        names = [m["name"] for m in doc["design"]["modules"]]
        assert names == sorted(names)


class TestSearchOptionsKey:
    """The conditional "search" sub-dict in the canonical options."""

    @staticmethod
    def _key(design, **alloc):
        from repro.core.allocation import AllocationOptions

        return problem_key(
            design,
            CAPACITY,
            PartitionerOptions(allocation=AllocationOptions(**alloc)),
        )

    def test_default_options_omit_search_dict(self, tiny_design):
        """Default runs must keep their pre-existing keys (cache compat)."""
        doc = canonical_problem(
            tiny_design, CAPACITY, PartitionerOptions()
        )
        assert "search" not in doc["options"]
        # And the no-options key equals the explicit-defaults key.
        assert problem_key(tiny_design, CAPACITY, PartitionerOptions()) == (
            self._key(tiny_design)
        )

    def test_bounded_search_knobs_change_key(self, tiny_design):
        base = self._key(tiny_design)
        distinct = {
            base,
            self._key(tiny_design, prune=True),
            self._key(tiny_design, beam_width=4),
            self._key(tiny_design, beam_width=16),
            self._key(tiny_design, engine="portfolio"),
            self._key(tiny_design, parallel_restarts=2),
        }
        assert len(distinct) == 6

    def test_shared_seen_filter_excluded_from_key(self, tiny_design):
        """The filter changes work distribution, never results."""
        plain = self._key(tiny_design, parallel_restarts=2)
        filtered = self._key(
            tiny_design, parallel_restarts=2, shared_seen_filter=True
        )
        assert plain == filtered
