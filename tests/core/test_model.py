"""Design-model validation and lookup tests."""

from __future__ import annotations

import pytest

from repro.arch.resources import ResourceVector
from repro.core.model import (
    Configuration,
    DesignError,
    Mode,
    Module,
    PRDesign,
    design_from_tables,
)

from ..conftest import make_design


def _mode(name, module="M", clb=10):
    return Mode(name=name, module=module, resources=ResourceVector(clb, 0, 0))


class TestMode:
    def test_requires_name_and_module(self):
        with pytest.raises(DesignError):
            Mode(name="", module="M", resources=ResourceVector.zero())
        with pytest.raises(DesignError):
            Mode(name="a", module="", resources=ResourceVector.zero())

    def test_str(self):
        assert str(_mode("A1")) == "A1"


class TestModule:
    def test_requires_modes(self):
        with pytest.raises(DesignError):
            Module(name="M", modes=())

    def test_rejects_foreign_mode(self):
        with pytest.raises(DesignError):
            Module(name="M", modes=(_mode("a", module="other"),))

    def test_rejects_duplicate_mode_names(self):
        with pytest.raises(DesignError):
            Module(name="M", modes=(_mode("a"), _mode("a")))

    def test_mode_lookup(self):
        m = Module(name="M", modes=(_mode("a"), _mode("b")))
        assert m.mode("a").name == "a"
        with pytest.raises(KeyError):
            m.mode("c")

    def test_envelope(self):
        m = Module.build(
            "M",
            {"a": ResourceVector(10, 5, 0), "b": ResourceVector(20, 1, 3)},
        )
        assert m.envelope() == ResourceVector(20, 5, 3)

    def test_largest_mode_by_clb(self):
        m = Module.build(
            "M", {"a": ResourceVector(10, 9, 9), "b": ResourceVector(20, 0, 0)}
        )
        assert m.largest_mode.name == "b"

    def test_mode_names(self):
        m = Module(name="M", modes=(_mode("a"), _mode("b")))
        assert m.mode_names == ("a", "b")


class TestConfiguration:
    def test_of(self):
        c = Configuration.of("c1", ["x", "y"])
        assert "x" in c and "z" not in c
        assert len(c) == 2
        assert list(c) == ["x", "y"]

    def test_requires_name(self):
        with pytest.raises(DesignError):
            Configuration.of("", ["x"])


class TestPRDesignValidation:
    def test_needs_modules_and_configs(self):
        mod = Module(name="M", modes=(_mode("a"),))
        with pytest.raises(DesignError):
            PRDesign(name="d", modules=(), configurations=(Configuration.of("c", ["a"]),))
        with pytest.raises(DesignError):
            PRDesign(name="d", modules=(mod,), configurations=())

    def test_duplicate_module_names(self):
        m1 = Module(name="M", modes=(_mode("a"),))
        m2 = Module(name="M", modes=(_mode("b"),))
        with pytest.raises(DesignError, match="duplicate module"):
            PRDesign(
                name="d",
                modules=(m1, m2),
                configurations=(Configuration.of("c", ["a"]),),
            )

    def test_mode_name_shared_across_modules(self):
        m1 = Module(name="M1", modes=(Mode("x", "M1", ResourceVector(1, 0, 0)),))
        m2 = Module(name="M2", modes=(Mode("x", "M2", ResourceVector(1, 0, 0)),))
        with pytest.raises(DesignError, match="used by both"):
            PRDesign(
                name="d",
                modules=(m1, m2),
                configurations=(Configuration.of("c", ["x"]),),
            )

    def test_config_with_unknown_mode(self):
        m = Module(name="M", modes=(_mode("a"),))
        with pytest.raises(DesignError, match="unknown mode"):
            PRDesign(
                name="d",
                modules=(m,),
                configurations=(Configuration.of("c", ["zz"]),),
            )

    def test_config_with_two_modes_of_one_module(self):
        m = Module(name="M", modes=(_mode("a"), _mode("b")))
        with pytest.raises(DesignError, match="two modes"):
            PRDesign(
                name="d",
                modules=(m,),
                configurations=(Configuration.of("c", ["a", "b"]),),
            )

    def test_empty_configuration(self):
        m = Module(name="M", modes=(_mode("a"),))
        with pytest.raises(DesignError, match="empty"):
            PRDesign(
                name="d",
                modules=(m,),
                configurations=(Configuration.of("c", []),),
            )

    def test_duplicate_configuration_names(self):
        m = Module(name="M", modes=(_mode("a"),))
        with pytest.raises(DesignError, match="duplicate configuration"):
            PRDesign(
                name="d",
                modules=(m,),
                configurations=(
                    Configuration.of("c", ["a"]),
                    Configuration.of("c", ["a"]),
                ),
            )


class TestPRDesignQueries:
    def test_lookups(self, paper_example):
        assert paper_example.module("A").name == "A"
        assert paper_example.mode("B2").module == "B"
        assert paper_example.module_of("C3").name == "C"
        with pytest.raises(KeyError):
            paper_example.module("Z")
        with pytest.raises(KeyError):
            paper_example.mode("Z9")
        with pytest.raises(KeyError):
            paper_example.module_of("Z9")
        with pytest.raises(KeyError):
            paper_example.configuration("Conf.99")

    def test_all_modes_order(self, paper_example):
        names = [m.name for m in paper_example.all_modes]
        assert names == ["A1", "A2", "A3", "B1", "B2", "C1", "C2", "C3"]

    def test_counts(self, paper_example):
        assert paper_example.mode_count == 8
        assert paper_example.configuration_count == 5

    def test_active_vs_unused_modes(self):
        d = make_design(
            {"A": {"a1": (10, 0, 0), "a2": (20, 0, 0), "ghost": (5, 0, 0)}},
            [("a1",), ("a2",)],
        )
        assert [m.name for m in d.active_modes] == ["a1", "a2"]
        assert [m.name for m in d.unused_modes] == ["ghost"]

    def test_configuration_resources(self, tiny_design):
        c = tiny_design.configuration("Conf.1")  # A1 + B1
        assert tiny_design.configuration_resources(c) == ResourceVector(260, 0, 0)

    def test_largest_configuration_envelope(self, tiny_design):
        # configs: A1+B1 = 260, A2+B2 = 250, A1+B2 = 90 -> envelope 260.
        witness, envelope = tiny_design.largest_configuration()
        assert envelope == ResourceVector(260, 0, 0)
        assert witness.name == "Conf.1"

    def test_largest_configuration_is_componentwise(self):
        d = make_design(
            {
                "A": {"a1": (100, 0, 0), "a2": (10, 9, 0)},
            },
            [("a1",), ("a2",)],
        )
        _, envelope = d.largest_configuration()
        # CLB max from a1, BRAM max from a2: the envelope mixes configs.
        assert envelope == ResourceVector(100, 9, 0)

    def test_static_requirement_sums_everything(self, tiny_design):
        assert tiny_design.static_requirement() == ResourceVector(510, 0, 0)

    def test_summary_mentions_counts(self, paper_example):
        s = paper_example.summary()
        assert "3 modules" in s and "8 modes" in s and "5 configurations" in s

    def test_summary_mentions_static(self):
        d = make_design(
            {"A": {"a": (10, 0, 0)}}, [("a",)], static=(90, 8, 0)
        )
        assert "static reservation" in d.summary()


class TestDesignFromTables:
    def test_auto_config_names(self, tiny_design):
        assert [c.name for c in tiny_design.configurations] == [
            "Conf.1",
            "Conf.2",
            "Conf.3",
        ]

    def test_mapping_config_names(self):
        d = design_from_tables(
            "t",
            {"A": {"a": (1, 0, 0)}},
            {"boot": ["a"]},
        )
        assert d.configurations[0].name == "boot"
