"""Compatibility-relation tests anchored to the paper's examples."""

from __future__ import annotations

import pytest

from repro.core.clustering import enumerate_base_partitions, partitions_by_label
from repro.core.compatibility import (
    CompatibilityIndex,
    are_compatible,
    compatibility_table,
)


@pytest.fixture
def bps(paper_example):
    return partitions_by_label(enumerate_base_partitions(paper_example))


class TestPaperExamples:
    def test_a1_a2_compatible(self, paper_example, bps):
        # Paper: "{A1} and {A2} are compatible partitions since they do
        # not co-exist in any of the possible configurations".
        assert are_compatible(bps["{A1}"], bps["{A2}"], paper_example)

    def test_a1_b1_incompatible(self, paper_example, bps):
        # Paper: "{A1} and {B1} are not compatible, since there is a
        # configuration S -> A1 -> B1 -> C1".
        assert not are_compatible(bps["{A1}"], bps["{B1}"], paper_example)

    def test_overlapping_partitions_incompatible(self, paper_example, bps):
        assert not are_compatible(bps["{A1}"], bps["{A1, B1}"], paper_example)

    def test_symmetric(self, paper_example, bps):
        for a in ("{A1}", "{B2}", "{A3, B2}"):
            for b in ("{A2}", "{C1}", "{B1, C1}"):
                assert are_compatible(bps[a], bps[b], paper_example) == are_compatible(
                    bps[b], bps[a], paper_example
                )

    def test_full_configs_incompatible_via_shared_third_config(
        self, paper_example, bps
    ):
        # {A1, B1, C1} (Conf.2) vs {A2, B2, C3} (Conf.5): A1 also occurs
        # in Conf.4 together with B2, so the partitions' modes co-occur
        # there -- incompatible even though their home configurations
        # differ.
        assert not are_compatible(
            bps["{A1, B1, C1}"], bps["{A2, B2, C3}"], paper_example
        )

    def test_disjoint_usage_partitions_compatible(self, paper_example, bps):
        # {A2} lives only in Conf.5; {A1, C2} lives only in Conf.4 --
        # usages are disjoint, so they may share a region.
        assert are_compatible(bps["{A2}"], bps["{A1, C2}"], paper_example)


class TestCompatibilityIndex:
    def test_matches_direct_relation(self, paper_example, bps):
        partitions = list(bps.values())
        index = CompatibilityIndex(paper_example, partitions)
        for i, a in enumerate(partitions):
            for b in partitions[i + 1 :]:
                assert index.compatible(a, b) == are_compatible(
                    a, b, paper_example
                )

    def test_add_remove(self, paper_example, bps):
        index = CompatibilityIndex(paper_example)
        assert len(index) == 0
        index.add(bps["{A1}"])
        assert bps["{A1}"] in index
        index.remove(bps["{A1}"])
        assert bps["{A1}"] not in index
        index.remove(bps["{A1}"])  # idempotent

    def test_query_without_registration(self, paper_example, bps):
        index = CompatibilityIndex(paper_example)
        # Unregistered partitions are computed on the fly.
        assert index.compatible(bps["{A1}"], bps["{A2}"])

    def test_compatible_pairs(self, paper_example, bps):
        partitions = [bps["{A1}"], bps["{A2}"], bps["{B1}"]]
        index = CompatibilityIndex(paper_example, partitions)
        pairs = index.compatible_pairs(partitions)
        # A1-A2 compatible; A1-B1 not (Conf.2); A2-B1: A2 only in Conf.5
        # which has B2, so compatible.
        assert (0, 1) in pairs
        assert (0, 2) not in pairs
        assert (1, 2) in pairs

    def test_compatible_set(self, paper_example, bps):
        partitions = [bps["{A1}"], bps["{A2}"], bps["{B1}"], bps["{B2}"]]
        index = CompatibilityIndex(paper_example, partitions)
        comp = index.compatible_set(bps["{A1}"], partitions)
        labels = {p.label for p in comp}
        assert labels == {"{A2}"}  # B1 co-occurs in Conf.2, B2 in Conf.4


class TestCompatibilityTable:
    def test_keys_sorted_and_complete(self, paper_example, bps):
        partitions = [bps["{A1}"], bps["{A2}"], bps["{B1}"]]
        table = compatibility_table(paper_example, partitions)
        assert len(table) == 3
        for a, b in table:
            assert a < b

    def test_values_match_relation(self, paper_example, bps):
        partitions = [bps["{A1}"], bps["{A2}"], bps["{B1}"]]
        table = compatibility_table(paper_example, partitions)
        assert table[("{A1}", "{A2}")] is True
        assert table[("{A1}", "{B1}")] is False
