"""The SLO gate: TOML loading (tomllib and the fallback subset
parser), metric resolution, evaluation, and ``repro obs check``."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

import repro.obs.slo as slo_mod
from repro.cli import main
from repro.flow.xmlio import save_design
from repro.obs import (
    SloError,
    SloRule,
    evaluate_slo,
    load_slo,
    render_slo_result,
    resolve_metric,
)
from repro.obs.metrics import Histogram

#: The committed CI thresholds, resolved repo-relative so the suite
#: passes regardless of pytest's working directory.
CI_SLO = str(Path(__file__).resolve().parent.parent / "ci" / "slo.toml")

GOOD_TOML = '''\
# A comment.
[[slo]]
metric = "failure_rate"
max = 0.0

[[slo]]
# (the subset parser takes whole-line comments only, like this one)
metric = "job_wall_s.p95"
max = 120.5

[[slo]]
metric = "cache_hit_rate"
min = 0.25
max = 1

[[slo]]
metric = "worker_peak_rss_mb"
max = 2048.0
allow_missing = true
'''


def _write(tmp_path, text, name="slo.toml"):
    path = tmp_path / name
    path.write_text(text, encoding="utf-8")
    return path


def _hist(values):
    histogram = Histogram()
    histogram.observe_many(values)
    return histogram.to_dict()


class TestLoadSlo:
    def test_loads_rules(self, tmp_path):
        rules = load_slo(_write(tmp_path, GOOD_TOML))
        assert [r.metric for r in rules] == [
            "failure_rate", "job_wall_s.p95", "cache_hit_rate",
            "worker_peak_rss_mb",
        ]
        assert rules[0].max == 0.0 and rules[0].min is None
        assert rules[2].min == 0.25 and rules[2].max == 1.0
        assert rules[3].allow_missing is True

    def test_committed_ci_file_loads(self):
        rules = load_slo(CI_SLO)
        assert any(r.metric == "events_dropped" for r in rules)
        assert all(r.min is not None or r.max is not None for r in rules)

    def test_missing_file(self, tmp_path):
        with pytest.raises(SloError, match="cannot read"):
            load_slo(tmp_path / "absent.toml")

    def test_no_rules(self, tmp_path):
        with pytest.raises(SloError, match="no \\[\\[slo\\]\\] rules"):
            load_slo(_write(tmp_path, "# empty\n"))

    def test_unknown_key_rejected(self, tmp_path):
        text = '[[slo]]\nmetric = "x"\nmax = 1\nthreshold = 2\n'
        with pytest.raises(SloError, match="unknown keys"):
            load_slo(_write(tmp_path, text))

    def test_rule_needs_bound(self, tmp_path):
        with pytest.raises(SloError, match="needs a min or a max"):
            load_slo(_write(tmp_path, '[[slo]]\nmetric = "x"\n'))

    def test_rule_needs_metric(self, tmp_path):
        with pytest.raises(SloError, match="needs a string 'metric'"):
            load_slo(_write(tmp_path, "[[slo]]\nmax = 1\n"))

    def test_non_numeric_bound(self, tmp_path):
        text = '[[slo]]\nmetric = "x"\nmax = "big"\n'
        with pytest.raises(SloError, match="must be a number"):
            load_slo(_write(tmp_path, text))

    def test_non_bool_allow_missing(self, tmp_path):
        text = '[[slo]]\nmetric = "x"\nmax = 1\nallow_missing = 1\n'
        with pytest.raises(SloError, match="must be a bool"):
            load_slo(_write(tmp_path, text))


class TestSubsetParserParity:
    """The 3.10 fallback must agree with tomllib on SLO files."""

    @pytest.fixture
    def force_fallback(self, monkeypatch):
        monkeypatch.setattr(slo_mod, "_tomllib", None)

    def test_parity_on_good_file(self, force_fallback):
        import tomllib  # the container runs >= 3.11

        assert slo_mod._parse_toml_subset(GOOD_TOML, "mem") == tomllib.loads(
            GOOD_TOML
        )

    def test_parity_on_ci_file(self, force_fallback):
        import tomllib

        text = Path(CI_SLO).read_text(encoding="utf-8")
        assert slo_mod._parse_toml_subset(text, "ci") == tomllib.loads(text)
        assert [r.metric for r in load_slo(CI_SLO)]

    def test_subset_rejects_what_it_cannot_parse(self, force_fallback):
        for text in (
            "[[slo]]\nmetric = [1, 2]\n",     # arrays are out of subset
            "top = 1\n",                       # top-level key
            "[[bad name]]\n",                  # invalid table name
            "[[slo]]\nnot a pair\n",           # no '='
            '[[slo]]\n"weird key" = 1\n',      # quoted keys unsupported
        ):
            with pytest.raises(SloError):
                slo_mod._parse_toml_subset(text, "mem")

    def test_fallback_load_slo_end_to_end(self, tmp_path, force_fallback):
        rules = load_slo(_write(tmp_path, GOOD_TOML))
        assert rules[3] == SloRule(
            metric="worker_peak_rss_mb", max=2048.0, allow_missing=True
        )


class TestResolveMetric:
    DOC = {
        "failure_rate": 0.5,
        "cache_hit_rate": None,
        "done": 7,
        "counters": {"obs.events_dropped": 3, "service.jobs_done": 7},
        "sink": {"segments": 2, "bytes": 512},
        "histograms": {
            "service.job_wall_s": _hist([float(i) for i in range(1, 101)]),
            "replay.cells": _hist([10.0]),
        },
    }

    def test_top_level_field(self):
        assert resolve_metric(self.DOC, "failure_rate") == 0.5

    def test_nested_walk(self):
        assert resolve_metric(self.DOC, "sink.segments") == 2.0

    def test_dotted_literal_key_inside_counters(self):
        assert resolve_metric(self.DOC, "counters.obs.events_dropped") == 3.0

    def test_missing_is_none(self):
        assert resolve_metric(self.DOC, "no.such.metric") is None

    def test_null_value_is_missing(self):
        assert resolve_metric(self.DOC, "cache_hit_rate") is None

    def test_exact_histogram_percentile(self):
        value = resolve_metric(self.DOC, "service.job_wall_s.p50")
        assert value is not None and 40.0 <= value <= 60.0

    def test_suffix_histogram_percentile(self):
        value = resolve_metric(self.DOC, "job_wall_s.p95")
        assert value is not None and 90.0 <= value <= 100.0

    def test_ambiguous_suffix_raises(self):
        doc = dict(self.DOC)
        doc["histograms"] = {
            "a.wall_s": _hist([1.0]),
            "b.wall_s": _hist([2.0]),
        }
        with pytest.raises(SloError, match="ambiguous"):
            resolve_metric(doc, "wall_s.p50")

    def test_non_numeric_raises(self):
        with pytest.raises(SloError, match="not numeric"):
            resolve_metric({"name": "tiny"}, "name")

    def test_bool_is_not_numeric(self):
        with pytest.raises(SloError, match="not numeric"):
            resolve_metric({"ok": True}, "ok")


class TestEvaluate:
    DOC = {"failure_rate": 0.0, "done": 10, "cache_hit_rate": 0.5}

    def test_all_ok(self):
        result = evaluate_slo(self.DOC, [
            SloRule(metric="failure_rate", max=0.0),
            SloRule(metric="done", min=1),
            SloRule(metric="cache_hit_rate", min=0.1, max=0.9),
        ])
        assert result.ok and not result.breaches
        assert all(v.reason == "ok" for v in result.verdicts)

    def test_max_breach(self):
        result = evaluate_slo(self.DOC, [SloRule(metric="done", max=5)])
        (verdict,) = result.breaches
        assert verdict.value == 10.0 and "> max 5" in verdict.reason

    def test_min_breach(self):
        result = evaluate_slo(
            self.DOC, [SloRule(metric="cache_hit_rate", min=0.9)]
        )
        assert not result.ok
        assert "< min 0.9" in result.breaches[0].reason

    def test_missing_breaches_by_default(self):
        result = evaluate_slo(self.DOC, [SloRule(metric="ghost", max=1)])
        assert not result.ok
        assert "missing" in result.breaches[0].reason

    def test_allow_missing_tolerates(self):
        result = evaluate_slo(
            self.DOC, [SloRule(metric="ghost", max=1, allow_missing=True)]
        )
        assert result.ok
        assert result.verdicts[0].value is None

    def test_render_mentions_breach_count(self):
        result = evaluate_slo(self.DOC, [
            SloRule(metric="done", max=5),
            SloRule(metric="failure_rate", max=0.0),
        ])
        text = render_slo_result(result)
        assert "1 breach(es) of 2 rule(s)" in text
        assert "BREACH" in text and "slo:" in text

    def test_result_to_dict(self):
        result = evaluate_slo(self.DOC, [SloRule(metric="done", min=1)])
        doc = result.to_dict()
        assert doc["ok"] is True and doc["rules"] == 1
        assert doc["verdicts"][0]["metric"] == "done"


@pytest.fixture
def telemetry_dir(tmp_path, tiny_design, capsys):
    """A telemetry directory produced by a real single-worker batch run."""
    design = tmp_path / "design.xml"
    save_design(tiny_design, design)
    queue = str(tmp_path / "queue")
    tele = str(tmp_path / "tele")
    main(["batch", "submit", "--queue", queue, str(design),
          "--device", "LX30"])
    assert main(["batch", "run", "--queue", queue, "--workers", "1",
                 "--telemetry-dir", tele]) == 0
    capsys.readouterr()
    return tele


class TestObsCheckCli:
    def test_ok_exits_zero(self, telemetry_dir, capsys):
        code = main(["obs", "check", telemetry_dir, "--slo", CI_SLO])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 breach(es)" in out

    def test_seeded_breach_exits_three(self, telemetry_dir, tmp_path, capsys):
        breach = _write(
            tmp_path,
            '[[slo]]\nmetric = "cache_hit_rate"\nmin = 0.99\n'
            '[[slo]]\nmetric = "jobs_done"\nmin = 1\n',
        )
        code = main(["obs", "check", telemetry_dir, "--slo", str(breach)])
        out = capsys.readouterr().out
        assert code == 3
        assert "BREACH" in out and "1 breach(es) of 2 rule(s)" in out

    def test_json_output(self, telemetry_dir, tmp_path, capsys):
        rules = _write(tmp_path, '[[slo]]\nmetric = "failure_rate"\nmax = 0\n')
        code = main(
            ["obs", "check", telemetry_dir, "--slo", str(rules), "--json"]
        )
        doc = json.loads(capsys.readouterr().out)
        assert code == 0 and doc["ok"] is True
        assert doc["verdicts"][0]["metric"] == "failure_rate"

    def test_bad_slo_file_exits_one(self, telemetry_dir, tmp_path, capsys):
        bad = _write(tmp_path, "not toml [ at all\n")
        assert main(["obs", "check", telemetry_dir, "--slo", str(bad)]) == 1
        assert "error" in capsys.readouterr().err

    def test_missing_telemetry_exits_one(self, tmp_path, capsys):
        rules = _write(tmp_path, '[[slo]]\nmetric = "done"\nmin = 1\n')
        code = main(
            ["obs", "check", str(tmp_path / "ghost"), "--slo", str(rules)]
        )
        assert code == 1
        assert "error" in capsys.readouterr().err
