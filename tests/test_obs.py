"""Observability layer: spans, metrics, progress events, JSON traces.

Covers the tracer primitives in isolation (with a fake clock, so timing
assertions are exact), the no-op guarantees of the default tracer, the
JSON schema round-trip, and the integration contract: a traced
``partition()`` on the paper example must produce the stage spans and
counters documented in docs/OBSERVABILITY.md.  The final class shells
out to ``python -m repro example --trace --trace-json`` as the CI smoke
check.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro import NULL_TRACER, RecordingTracer, ResourceVector
from repro.core.partitioner import partition, partition_with_device_selection
from repro.obs import (
    ProgressEvent,
    Trace,
    TraceError,
    Tracer,
    render_trace_summary,
    stage_summary_rows,
    trace_from_dict,
    trace_from_json,
)


class FakeClock:
    """Deterministic clock: each call advances by ``step`` seconds."""

    def __init__(self, step: float = 1.0):
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        t = self.now
        self.now += self.step
        return t

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestNullTracer:
    def test_is_disabled(self):
        assert NULL_TRACER.enabled is False
        assert Tracer().enabled is False

    def test_all_operations_are_noops(self):
        seen = []
        NULL_TRACER.on_progress(seen.append)
        with NULL_TRACER.span("stage", depth=3) as span:
            span.annotate(extra=1)
            NULL_TRACER.count("metric", 5)
            NULL_TRACER.gauge("level", 2.5)
            NULL_TRACER.progress("tick", i=0)
        assert seen == []

    def test_shared_instance_accumulates_no_state(self):
        before = dict(vars(type(NULL_TRACER)))
        NULL_TRACER.count("x")
        NULL_TRACER.gauge("y", 1)
        # the no-op tracer has no instance dict growth at all
        assert vars(NULL_TRACER) == {}
        assert dict(vars(type(NULL_TRACER))).keys() == before.keys()


class TestSpans:
    def test_nesting_and_timing(self):
        clock = FakeClock(step=0.0)
        t = RecordingTracer(clock=clock)
        with t.span("outer", design="d"):
            clock.advance(2.0)
            with t.span("inner"):
                clock.advance(1.0)
            clock.advance(0.5)
        (outer,) = t.spans
        assert outer.name == "outer"
        assert outer.attrs == {"design": "d"}
        assert outer.duration_s == pytest.approx(3.5)
        (inner,) = outer.children
        assert inner.name == "inner"
        assert inner.start_s == pytest.approx(2.0)
        assert inner.duration_s == pytest.approx(1.0)

    def test_siblings_share_parent(self):
        t = RecordingTracer(clock=FakeClock(step=0.0))
        with t.span("root"):
            with t.span("a"):
                pass
            with t.span("b"):
                pass
        (root,) = t.spans
        assert [c.name for c in root.children] == ["a", "b"]

    def test_multiple_roots(self):
        t = RecordingTracer(clock=FakeClock(step=0.0))
        with t.span("first"):
            pass
        with t.span("second"):
            pass
        assert [s.name for s in t.spans] == ["first", "second"]

    def test_current_span_tracks_stack(self):
        t = RecordingTracer(clock=FakeClock(step=0.0))
        assert t.current_span is None
        with t.span("outer"):
            assert t.current_span.name == "outer"
            with t.span("inner"):
                assert t.current_span.name == "inner"
            assert t.current_span.name == "outer"
        assert t.current_span is None

    def test_annotate_after_open(self):
        t = RecordingTracer(clock=FakeClock(step=0.0))
        with t.span("stage", fixed=1) as span:
            span.annotate(late="value")
        assert t.spans[0].attrs == {"fixed": 1, "late": "value"}

    def test_span_closed_on_exception(self):
        t = RecordingTracer(clock=FakeClock(step=0.0))
        with pytest.raises(RuntimeError):
            with t.span("doomed"):
                raise RuntimeError("boom")
        assert t.current_span is None
        assert t.spans[0].duration_s is not None

    def test_walk_and_find(self):
        t = RecordingTracer(clock=FakeClock(step=0.0))
        with t.span("root"):
            with t.span("leaf"):
                pass
            with t.span("leaf"):
                pass
        trace = t.trace()
        paths = [p for p, _ in trace.walk()]
        assert paths == [("root",), ("root", "leaf"), ("root", "leaf")]
        assert len(trace.find("leaf")) == 2
        assert trace.span_names() == {"root", "leaf"}


class TestMetrics:
    def test_counters_accumulate(self):
        t = RecordingTracer(clock=FakeClock(step=0.0))
        t.count("hits")
        t.count("hits", 4)
        assert t.counters == {"hits": 5}

    def test_gauges_keep_last_value(self):
        t = RecordingTracer(clock=FakeClock(step=0.0))
        t.gauge("level", 3)
        t.gauge("level", 7)
        assert t.gauges == {"level": 7}

    def test_metrics_land_on_innermost_span_and_trace(self):
        t = RecordingTracer(clock=FakeClock(step=0.0))
        with t.span("outer"):
            t.count("outer.work", 1)
            with t.span("inner"):
                t.count("inner.work", 2)
                t.gauge("inner.depth", 9)
        (outer,) = t.spans
        (inner,) = outer.children
        assert outer.counters == {"outer.work": 1}
        assert inner.counters == {"inner.work": 2}
        assert inner.gauges == {"inner.depth": 9}
        assert t.counters == {"outer.work": 1, "inner.work": 2}
        assert t.gauges == {"inner.depth": 9}


class TestProgress:
    def test_callbacks_receive_events(self):
        t = RecordingTracer(clock=FakeClock(step=0.0))
        seen: list[ProgressEvent] = []
        t.on_progress(seen.append)
        t.progress("tick", i=0)
        t.progress("tick", i=1)
        assert [e.payload["i"] for e in seen] == [0, 1]
        assert all(e.name == "tick" for e in seen)
        assert len(t.events) == 2

    def test_retention_cap_keeps_stream_flowing(self):
        t = RecordingTracer(clock=FakeClock(step=0.0), max_events=2)
        seen = []
        t.on_progress(seen.append)
        for i in range(5):
            t.progress("tick", i=i)
        assert len(t.events) == 2
        assert t.events_dropped == 3
        assert len(seen) == 5  # callbacks see everything
        assert t.trace().events == 5


class TestSerialisation:
    def _sample_tracer(self) -> RecordingTracer:
        t = RecordingTracer(clock=FakeClock(step=0.25))
        with t.span("root", design="x") as root:
            t.count("root.items", 3)
            with t.span("child"):
                t.gauge("child.depth", 2)
            root.annotate(outcome="ok")
        t.progress("done")
        return t

    def test_round_trip_preserves_everything(self):
        t = self._sample_tracer()
        trace = t.trace()
        rebuilt = trace_from_json(t.to_json())
        assert rebuilt.to_dict() == trace.to_dict()
        assert rebuilt.span_names() == {"root", "child"}
        assert rebuilt.counters == {"root.items": 3}
        assert rebuilt.gauges == {"child.depth": 2}
        assert rebuilt.events == 1

    def test_schema_header(self):
        doc = self._sample_tracer().trace().to_dict()
        assert doc["format"] == "repro-trace"
        assert doc["version"] == 2
        assert set(doc) == {
            "format", "version", "counters", "gauges", "events", "spans",
        }

    def test_histograms_block_appears_only_when_observed(self):
        tracer = self._sample_tracer()
        assert "histograms" not in tracer.trace().to_dict()
        tracer.observe("stage.latency_s", 0.25)
        doc = tracer.trace().to_dict()
        assert set(doc["histograms"]) == {"stage.latency_s"}

    def test_version_1_documents_still_load(self):
        doc = self._sample_tracer().trace().to_dict()
        doc["version"] = 1
        doc.pop("histograms", None)
        rebuilt = trace_from_dict(doc)
        assert rebuilt.histograms == {}
        assert rebuilt.span_names() == {"root", "child"}

    def test_json_is_plain_json(self):
        text = self._sample_tracer().to_json()
        doc = json.loads(text)
        assert doc["spans"][0]["children"][0]["name"] == "child"

    def test_rejects_wrong_format(self):
        with pytest.raises(TraceError):
            trace_from_dict({"format": "other", "version": 1})

    def test_rejects_wrong_version(self):
        with pytest.raises(TraceError):
            trace_from_dict({"format": "repro-trace", "version": 99})

    def test_rejects_invalid_json(self):
        with pytest.raises(TraceError):
            trace_from_json("{not json")

    def test_rejects_malformed_span(self):
        with pytest.raises(TraceError):
            trace_from_dict(
                {"format": "repro-trace", "version": 1, "spans": [{"no": 1}]}
            )


class TestRendering:
    def test_summary_rows_aggregate_by_path(self):
        t = RecordingTracer(clock=FakeClock(step=0.0))
        clock = t._clock
        with t.span("partition"):
            for _ in range(3):
                with t.span("covering"):
                    clock.advance(1.0)
        rows = stage_summary_rows(t.trace())
        stages = [r[0] for r in rows]
        assert stages == ["partition", "  covering"]
        assert rows[1][1] == 3  # three calls aggregated into one row

    def test_render_accepts_all_input_types(self):
        t = RecordingTracer(clock=FakeClock(step=0.0))
        with t.span("stage"):
            t.count("stage.n", 2)
        from repro.eval.report import render_trace_summary as eval_render

        for arg in (t, t.trace(), t.trace().to_dict(), t.to_json()):
            out = eval_render(arg)
            assert "stage" in out and "stage.n" in out

    def test_render_rejects_unknown_type(self):
        from repro.eval.report import render_trace_summary as eval_render

        with pytest.raises(TypeError):
            eval_render(42)

    def test_title_is_prepended(self):
        t = RecordingTracer(clock=FakeClock(step=0.0))
        with t.span("stage"):
            pass
        from repro.eval.report import render_trace_summary as eval_render

        assert eval_render(t, title="My trace").startswith("My trace\n")


class TestPipelineIntegration:
    BUDGET = ResourceVector(520, 16, 16)

    def test_partition_emits_documented_stages(self, paper_example):
        t = RecordingTracer()
        partition(paper_example, self.BUDGET, tracer=t)
        trace = t.trace()
        assert {
            "partition", "connectivity_matrix", "clustering",
            "covering", "merge_search",
        } <= trace.span_names()
        (root,) = trace.spans
        assert root.name == "partition"
        assert root.duration_s is not None and root.duration_s > 0
        for name in ("connectivity_matrix", "clustering", "merge_search"):
            spans = trace.find(name)
            assert spans, f"missing {name} span"
            assert all(s.duration_s is not None for s in spans)

    def test_partition_counters_and_gauges(self, paper_example):
        t = RecordingTracer()
        result = partition(paper_example, self.BUDGET, tracer=t)
        c, g = t.counters, t.gauges
        assert g["clustering.base_partitions"] == 26  # Sec. IV-C
        assert c["merge.states_explored"] > 0
        assert c["merge.cache_hits"] + c["merge.cache_misses"] > 0
        assert c["covering.sets_produced"] == c["partition.candidate_sets"]
        assert g["partition.total_frames"] == result.total_frames
        assert g["partition.regions"] == len(result.scheme.regions)

    def test_partition_progress_stream(self, paper_example):
        t = RecordingTracer()
        seen = []
        t.on_progress(seen.append)
        partition(paper_example, self.BUDGET, tracer=t)
        names = {e.name for e in seen}
        assert "covering.set_produced" in names
        assert "partition.candidate_set_searched" in names

    def test_device_selection_root_span(self, paper_example):
        from repro.arch import virtex5_full

        t = RecordingTracer()
        dres = partition_with_device_selection(
            paper_example, virtex5_full(), tracer=t
        )
        (root,) = t.trace().spans
        assert root.name == "device_selection"
        assert root.attrs["device"] == dres.device.name
        assert root.attrs["escalations"] == dres.escalations
        assert root.find("partition")

    def test_untraced_result_identical(self, paper_example):
        baseline = partition(paper_example, self.BUDGET)
        traced = partition(paper_example, self.BUDGET, tracer=RecordingTracer())
        assert traced.total_frames == baseline.total_frames
        assert traced.scheme.describe() == baseline.scheme.describe()

    def test_annealing_and_exact_traced(self, paper_example):
        from repro.core.annealing import partition_annealing
        from repro.core.exact import partition_exact

        t = RecordingTracer()
        partition_annealing(paper_example, self.BUDGET, tracer=t)
        assert "anneal" in t.trace().span_names()
        assert t.counters["anneal.steps"] > 0

        t = RecordingTracer()
        partition_exact(paper_example, self.BUDGET, tracer=t)
        assert "exact_search" in t.trace().span_names()
        assert t.counters["exact.states_enumerated"] > 0


class TestCliSmoke:
    """CI smoke check: the traced CLI run must exit 0 with a valid trace."""

    def _run(self, *argv: str, tmp_path: Path):
        env = dict(os.environ)
        root = Path(__file__).resolve().parents[1]
        env["PYTHONPATH"] = str(root / "src")
        return subprocess.run(
            [sys.executable, "-m", "repro", *argv],
            capture_output=True,
            text=True,
            env=env,
            cwd=tmp_path,
            timeout=120,
        )

    def test_example_trace_json(self, tmp_path):
        out = tmp_path / "trace.json"
        proc = self._run(
            "example", "--trace", "--trace-json", str(out), tmp_path=tmp_path
        )
        assert proc.returncode == 0, proc.stderr
        assert "Pipeline trace" in proc.stdout
        trace = trace_from_json(out.read_text(encoding="utf-8"))
        assert isinstance(trace, Trace)
        assert {"partition", "clustering", "covering", "merge_search"} <= (
            trace.span_names()
        )
        root = trace.spans[0]
        assert root.duration_s is not None and root.duration_s > 0
        assert trace.counters["merge.states_explored"] > 0
        assert trace.gauges["clustering.base_partitions"] == 26

    def test_trace_json_to_stdout(self, tmp_path):
        proc = self._run("example", "--trace-json", "-", tmp_path=tmp_path)
        assert proc.returncode == 0, proc.stderr
        start = proc.stdout.index('{\n "format"')
        trace = trace_from_json(proc.stdout[start:])
        assert trace.counters["partition.candidate_sets"] > 0
