"""Synthesis-estimator tests (XST substitute)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.flow.synthesis import (
    BRAM_BITS,
    ModeSpec,
    ModuleSpec,
    estimate_mode,
    synthesise,
    synthesise_module,
)


class TestModeSpecValidation:
    def test_negative_counts(self):
        with pytest.raises(ValueError):
            ModeSpec(name="m", luts=-1)

    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            ModeSpec(name="m", dist_ram_fraction=1.5)

    def test_bad_multiplier(self):
        with pytest.raises(ValueError):
            ModeSpec(name="m", mult_ops=((0, 8),))


class TestEstimates:
    def test_pure_logic(self):
        r = estimate_mode(ModeSpec(name="m", luts=400, ffs=100))
        assert r.resources.clb == 100  # 400 LUTs / 4 per CLB
        assert r.resources.bram == 0 and r.resources.dsp == 0

    def test_ff_bound(self):
        r = estimate_mode(ModeSpec(name="m", luts=4, ffs=400))
        assert r.resources.clb == 100  # FF-bound

    def test_multiplier_18x18_is_one_dsp(self):
        r = estimate_mode(ModeSpec(name="m", mult_ops=((18, 18),)))
        assert r.resources.dsp == 1

    def test_wide_multiplier_cascades(self):
        r = estimate_mode(ModeSpec(name="m", mult_ops=((32, 32),)))
        assert r.resources.dsp == 4  # 2x2 DSP48E tiles

    def test_memory_split(self):
        bits = 4 * BRAM_BITS
        r = estimate_mode(
            ModeSpec(name="m", memory_bits=bits, dist_ram_fraction=0.0)
        )
        assert r.resources.bram == 4
        assert r.ram_luts == 0

    def test_distributed_memory_uses_luts(self):
        r = estimate_mode(
            ModeSpec(name="m", memory_bits=6400, dist_ram_fraction=1.0)
        )
        assert r.resources.bram == 0
        assert r.ram_luts == 100

    def test_fsm_adds_logic(self):
        base = estimate_mode(ModeSpec(name="m", luts=40))
        with_fsm = estimate_mode(ModeSpec(name="m", luts=40, fsm_states=16))
        assert with_fsm.resources.clb > base.resources.clb

    def test_single_state_fsm_free(self):
        base = estimate_mode(ModeSpec(name="m", luts=40))
        one = estimate_mode(ModeSpec(name="m", luts=40, fsm_states=1))
        assert one.resources == base.resources

    def test_report_fields(self):
        r = estimate_mode(
            ModeSpec(name="m", luts=10, mult_ops=((18, 18),), memory_bits=BRAM_BITS,
                     dist_ram_fraction=0.0)
        )
        assert r.mode == "m"
        assert r.dsp_blocks == 1
        assert r.bram_blocks == 1


class TestMonotonicity:
    @given(
        luts=st.integers(0, 5000),
        extra=st.integers(1, 5000),
        memory=st.integers(0, 10 * BRAM_BITS),
    )
    def test_more_luts_never_shrinks(self, luts, extra, memory):
        a = estimate_mode(ModeSpec(name="m", luts=luts, memory_bits=memory))
        b = estimate_mode(ModeSpec(name="m", luts=luts + extra, memory_bits=memory))
        assert a.resources.fits_in(b.resources)

    @given(states=st.integers(0, 64), more=st.integers(1, 64))
    def test_more_states_never_shrinks(self, states, more):
        a = estimate_mode(ModeSpec(name="m", fsm_states=states))
        b = estimate_mode(ModeSpec(name="m", fsm_states=states + more))
        assert a.resources.fits_in(b.resources)


class TestModuleLevel:
    def test_synthesise_module(self):
        spec = ModuleSpec(
            name="M",
            modes=(ModeSpec(name="a", luts=40), ModeSpec(name="b", luts=80)),
        )
        reports = synthesise_module(spec)
        assert set(reports) == {"a", "b"}

    def test_duplicate_mode_rejected(self):
        spec = ModuleSpec(
            name="M",
            modes=(ModeSpec(name="a"), ModeSpec(name="a")),
        )
        with pytest.raises(ValueError):
            synthesise_module(spec)

    def test_empty_module_rejected(self):
        with pytest.raises(ValueError):
            ModuleSpec(name="M", modes=())

    def test_synthesise_many(self):
        specs = [
            ModuleSpec(name="M1", modes=(ModeSpec(name="a", luts=4),)),
            ModuleSpec(name="M2", modes=(ModeSpec(name="b", luts=4),)),
        ]
        out = synthesise(specs)
        assert set(out) == {"M1", "M2"}

    def test_duplicate_module_rejected(self):
        specs = [
            ModuleSpec(name="M", modes=(ModeSpec(name="a"),)),
            ModuleSpec(name="M", modes=(ModeSpec(name="b"),)),
        ]
        with pytest.raises(ValueError):
            synthesise(specs)
