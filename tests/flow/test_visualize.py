"""Floorplan-rendering tests."""

from __future__ import annotations

import pytest

from repro.core.baselines import one_module_per_region_scheme
from repro.flow.floorplan import floorplan
from repro.flow.visualize import occupancy, render_floorplan


@pytest.fixture
def plan(receiver, fx70t):
    return floorplan(one_module_per_region_scheme(receiver), fx70t)


class TestRenderFloorplan:
    def test_contains_legend_for_every_region(self, plan, receiver):
        text = render_floorplan(plan)
        for region in one_module_per_region_scheme(receiver).regions:
            assert region.name in text

    def test_grid_dimensions(self, plan, fx70t):
        text = render_floorplan(plan, max_width=10_000)
        rows = [l for l in text.splitlines() if l.startswith("r")]
        assert len(rows) == fx70t.rows
        # every grid row has the same width: "rN  " prefix + columns
        widths = {len(r) for r in rows}
        assert len(widths) == 1

    def test_row_zero_at_bottom(self, plan):
        text = render_floorplan(plan, max_width=10_000)
        rows = [l for l in text.splitlines() if l.startswith("r")]
        assert rows[-1].startswith("r0 ")

    def test_region_chars_present(self, plan):
        text = render_floorplan(plan)
        grid = "\n".join(l for l in text.splitlines() if l.startswith("r"))
        for char in "ABCDE":  # five regions
            assert char in grid

    def test_banding_splits_wide_devices(self, plan):
        text = render_floorplan(plan, max_width=20)
        assert "-- columns 20.." in text

    def test_free_tile_legend(self, plan):
        assert "free tiles" in render_floorplan(plan)


class TestOccupancy:
    def test_between_zero_and_one(self, plan):
        assert 0.0 < occupancy(plan) <= 1.0

    def test_matches_placed_rectangles(self, plan, fx70t):
        covered = sum(p.n_rows * p.n_cols for p in plan.placements)
        assert occupancy(plan) == pytest.approx(
            covered / (fx70t.rows * fx70t.column_count)
        )
