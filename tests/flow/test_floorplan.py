"""Floorplanner tests: legality, capacity, failure signalling."""

from __future__ import annotations

import pytest

from repro.arch.device import make_device
from repro.arch.library import get_device
from repro.arch.resources import ResourceVector
from repro.core.baselines import one_module_per_region_scheme, single_region_scheme
from repro.core.partitioner import partition
from repro.eval.casestudy import CASESTUDY_BUDGET
from repro.flow.floorplan import (
    Floorplan,
    FloorplanError,
    Placement,
    floorplan,
    placement_frames,
)


class TestPlacement:
    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            Placement("r", col_lo=3, col_hi=2, row_lo=0, row_hi=0)

    def test_overlaps(self):
        a = Placement("a", 0, 3, 0, 1)
        b = Placement("b", 2, 5, 1, 2)
        c = Placement("c", 4, 6, 1, 1)
        assert a.overlaps(b)
        assert not a.overlaps(c)  # disjoint columns
        assert b.overlaps(c)
        assert not Placement("d", 2, 5, 3, 4).overlaps(b)  # disjoint rows

    def test_tiles(self):
        p = Placement("p", 1, 2, 0, 1)
        assert set(p.tiles()) == {(0, 1), (0, 2), (1, 1), (1, 2)}

    def test_shape_properties(self):
        p = Placement("p", 1, 4, 2, 3)
        assert p.n_cols == 4 and p.n_rows == 2


class TestFloorplanCaseStudy:
    def test_modular_scheme_places_on_fx70t(self, receiver, fx70t):
        scheme = one_module_per_region_scheme(receiver)
        plan = floorplan(scheme, fx70t)
        assert len(plan.placements) == len(scheme.regions)
        plan.validate(scheme)

    def test_proposed_scheme_places_on_fx70t(self, receiver, fx70t):
        result = partition(receiver, CASESTUDY_BUDGET)
        plan = floorplan(result.scheme, fx70t)
        plan.validate(result.scheme)

    def test_no_overlaps(self, receiver, fx70t):
        scheme = one_module_per_region_scheme(receiver)
        plan = floorplan(scheme, fx70t)
        ps = plan.placements
        for i in range(len(ps)):
            for j in range(i + 1, len(ps)):
                assert not ps[i].overlaps(ps[j])

    def test_each_region_capacity_satisfied(self, receiver, fx70t):
        scheme = one_module_per_region_scheme(receiver)
        plan = floorplan(scheme, fx70t)
        # validate() already checks; assert placement_frames >= analytic.
        for region in scheme.regions:
            assert placement_frames(plan, region.name) >= region.frames

    def test_placement_lookup(self, receiver, fx70t):
        scheme = one_module_per_region_scheme(receiver)
        plan = floorplan(scheme, fx70t)
        assert plan.placement_of(scheme.regions[0].name).region_name == scheme.regions[0].name
        with pytest.raises(KeyError):
            plan.placement_of("nope")


class TestFloorplanFailure:
    def test_impossible_region_raises(self, receiver):
        tiny = make_device("tiny", clb=100, bram=4, dsp=8, rows=1)
        scheme = single_region_scheme(receiver)
        with pytest.raises(FloorplanError, match="cannot place"):
            floorplan(scheme, tiny)

    def test_validate_detects_overlap(self, receiver, fx70t):
        scheme = one_module_per_region_scheme(receiver)
        plan = floorplan(scheme, fx70t)
        first = plan.placements[0]
        clone = Placement(
            plan.placements[1].region_name,
            first.col_lo,
            first.col_hi,
            first.row_lo,
            first.row_hi,
        )
        bad = Floorplan(
            device=fx70t, placements=(first, clone) + plan.placements[2:]
        )
        with pytest.raises(FloorplanError, match="overlap"):
            bad.validate(scheme)

    def test_validate_detects_unknown_region(self, receiver, fx70t):
        scheme = one_module_per_region_scheme(receiver)
        plan = floorplan(scheme, fx70t)
        bad = Floorplan(
            device=fx70t,
            placements=(Placement("ghost", 0, 0, 0, 0),),
        )
        with pytest.raises(FloorplanError, match="unknown region"):
            bad.validate(scheme)

    def test_validate_detects_undersized_window(self, receiver, fx70t):
        scheme = one_module_per_region_scheme(receiver)
        plan = floorplan(scheme, fx70t)
        # Shrink the largest region's placement to a single tile.
        biggest = max(scheme.regions, key=lambda r: r.frames)
        shrunk = tuple(
            Placement(p.region_name, p.col_lo, p.col_lo, p.row_lo, p.row_lo)
            if p.region_name == biggest.name
            else p
            for p in plan.placements
        )
        bad = Floorplan(device=fx70t, placements=shrunk)
        with pytest.raises(FloorplanError, match="provides"):
            bad.validate(scheme)


class TestPackingBehaviour:
    def test_tight_device_still_packs_two_regions(self, tiny_design):
        # 2 regions of 13+11 CLB tiles on a 2x20-column device.
        from repro.core.baselines import one_module_per_region_scheme

        scheme = one_module_per_region_scheme(tiny_design)
        device = make_device("snug", clb=800, bram=0, dsp=0, rows=2)
        plan = floorplan(scheme, device)
        plan.validate(scheme)

    def test_placement_frames_counts_swept_columns(self, tiny_design, fx70t):
        scheme = one_module_per_region_scheme(tiny_design)
        plan = floorplan(scheme, fx70t)
        for region in scheme.regions:
            p = plan.placement_of(region.name)
            manual = sum(
                col.frames * p.n_rows
                for col in fx70t.columns[p.col_lo : p.col_hi + 1]
            )
            assert placement_frames(plan, region.name) == manual
