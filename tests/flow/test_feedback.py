"""Floorplan-feedback loop unit tests."""

from __future__ import annotations

import pytest

from repro.arch.device import make_device
from repro.arch.library import DeviceLibrary
from repro.core.partitioner import InfeasibleError
from repro.flow.feedback import PlacedPartition, partition_and_place

from ..conftest import make_design


@pytest.fixture
def small_library():
    return DeviceLibrary(
        [
            make_device("S", clb=400, bram=8, dsp=8, rows=2),
            make_device("M", clb=900, bram=16, dsp=16, rows=3),
            make_device("L", clb=2400, bram=32, dsp=32, rows=4),
        ]
    )


class TestValidation:
    def test_shrink_factor_bounds(self, tiny_design, small_library):
        with pytest.raises(ValueError):
            partition_and_place(tiny_design, small_library, shrink_factor=1.0)
        with pytest.raises(ValueError):
            partition_and_place(tiny_design, small_library, shrink_factor=0.0)

    def test_negative_shrinks(self, tiny_design, small_library):
        with pytest.raises(ValueError):
            partition_and_place(
                tiny_design, small_library, max_shrinks_per_device=-1
            )


class TestConvergence:
    def test_places_tiny_design(self, tiny_design, small_library):
        placed = partition_and_place(tiny_design, small_library)
        assert isinstance(placed, PlacedPartition)
        placed.plan.validate(placed.scheme)
        assert placed.device.name in {"S", "M", "L"}

    def test_reports_monotone_counters(self, tiny_design, small_library):
        placed = partition_and_place(tiny_design, small_library)
        assert placed.partition_attempts >= 1
        assert 0 <= placed.device_escalations < len(small_library)

    def test_raises_when_nothing_fits(self, small_library):
        design = make_design({"A": {"a": (50_000, 0, 0)}}, [("a",)])
        with pytest.raises(InfeasibleError):
            partition_and_place(design, small_library)

    def test_scheme_fits_final_device(self, paper_example, small_library):
        placed = partition_and_place(paper_example, small_library)
        assert placed.scheme.fits(
            placed.device.usable_capacity(paper_example.static_resources)
        )

    def test_zero_shrinks_still_escalates(self, paper_example, small_library):
        placed = partition_and_place(
            paper_example, small_library, max_shrinks_per_device=0
        )
        placed.plan.validate(placed.scheme)
