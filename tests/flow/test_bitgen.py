"""Bitstream writer/parser tests: structural framing and round-trips."""

from __future__ import annotations

import struct

import pytest

from repro.arch.tiles import WORDS_PER_FRAME
from repro.core.baselines import one_module_per_region_scheme
from repro.flow.bitgen import (
    DEFAULT_IDCODE,
    SYNC_WORD,
    BitstreamFormatError,
    BitstreamInfo,
    build_partial_bitstream,
    parse_bitstream,
    write_scheme_bitstreams,
)
from repro.flow.floorplan import floorplan


@pytest.fixture
def info():
    return BitstreamInfo(
        design="demo",
        region="PRR1",
        partition_label="{A1, B2}",
        frame_address=0x00002480,
        frames=4,
    )


class TestRoundTrip:
    def test_metadata_recovered(self, info):
        assert parse_bitstream(build_partial_bitstream(info)) == info

    def test_long_form_payload(self):
        # > 2047 words forces the Type-1+Type-2 FDRI form.
        info = BitstreamInfo(
            design="d", region="R", partition_label="{X}", frame_address=1,
            frames=60,
        )
        assert parse_bitstream(build_partial_bitstream(info)) == info

    def test_payload_word_count(self, info):
        data = build_partial_bitstream(info)
        recovered = parse_bitstream(data)
        assert recovered.payload_words == info.frames * WORDS_PER_FRAME

    def test_deterministic(self, info):
        assert build_partial_bitstream(info) == build_partial_bitstream(info)

    def test_different_regions_differ(self, info):
        other = BitstreamInfo(
            design=info.design,
            region="PRR2",
            partition_label=info.partition_label,
            frame_address=info.frame_address,
            frames=info.frames,
        )
        assert build_partial_bitstream(info) != build_partial_bitstream(other)


class TestFraming:
    def test_contains_sync_word(self, info):
        data = build_partial_bitstream(info)
        assert struct.pack(">I", SYNC_WORD) in data

    def test_corrupted_payload_fails_crc(self, info):
        data = bytearray(build_partial_bitstream(info))
        sync = data.index(struct.pack(">I", SYNC_WORD))
        data[sync + 60] ^= 0xFF  # flip a payload byte
        with pytest.raises(BitstreamFormatError, match="CRC"):
            parse_bitstream(bytes(data))

    def test_truncated_body(self, info):
        data = build_partial_bitstream(info)
        with pytest.raises(BitstreamFormatError):
            parse_bitstream(data[: len(data) // 2])

    def test_garbage_rejected(self):
        with pytest.raises(BitstreamFormatError):
            parse_bitstream(b"not a bitstream at all")

    def test_missing_sync(self, info):
        data = build_partial_bitstream(info)
        broken = data.replace(struct.pack(">I", SYNC_WORD), struct.pack(">I", 0))
        with pytest.raises(BitstreamFormatError, match="sync"):
            parse_bitstream(broken)


class TestSchemeEmission:
    def test_one_file_per_variant(self, receiver, fx70t, tmp_path):
        scheme = one_module_per_region_scheme(receiver)
        plan = floorplan(scheme, fx70t)
        paths = write_scheme_bitstreams(scheme, plan, tmp_path)
        expected = sum(len(r.partitions) for r in scheme.regions)
        assert len(paths) == expected
        assert all(p.suffix == ".bit" and p.exists() for p in paths)

    def test_files_parse_back_with_placement_far(self, receiver, fx70t, tmp_path):
        scheme = one_module_per_region_scheme(receiver)
        plan = floorplan(scheme, fx70t)
        paths = write_scheme_bitstreams(scheme, plan, tmp_path)
        regions = {r.name for r in scheme.regions}
        for path in paths:
            info = parse_bitstream(path.read_bytes())
            assert info.design == receiver.name
            assert info.region in regions
            assert info.idcode == DEFAULT_IDCODE
            assert info.frames > 0

    def test_sizes_match_placed_frames(self, receiver, fx70t, tmp_path):
        from repro.flow.floorplan import placement_frames

        scheme = one_module_per_region_scheme(receiver)
        plan = floorplan(scheme, fx70t)
        paths = write_scheme_bitstreams(scheme, plan, tmp_path)
        for path in paths:
            info = parse_bitstream(path.read_bytes())
            assert info.frames == placement_frames(plan, info.region)
