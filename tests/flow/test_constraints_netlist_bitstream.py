"""UCF emission, netlist/wrapper generation, bitstream sizing."""

from __future__ import annotations

import pytest

from repro.arch.tiles import WORDS_PER_FRAME
from repro.core.baselines import one_module_per_region_scheme
from repro.flow.bitstream import (
    FULL_OVERHEAD_WORDS,
    PARTIAL_OVERHEAD_WORDS,
    generate_bitstreams,
)
from repro.flow.constraints import TimingConstraint, emit_ucf, parse_ranges
from repro.flow.floorplan import floorplan
from repro.flow.netlist import (
    STREAM_PORTS,
    build_netlists,
    emit_wrapper_hdl,
    variant_count,
)


@pytest.fixture
def placed(receiver, fx70t):
    scheme = one_module_per_region_scheme(receiver)
    plan = floorplan(scheme, fx70t)
    return scheme, plan, fx70t


class TestUcf:
    def test_area_group_per_region(self, placed):
        scheme, plan, _ = placed
        ucf = emit_ucf(scheme, plan)
        for region in scheme.regions:
            assert f'AREA_GROUP "pblock_{region.name}"' in ucf
            assert f'INST "{region.name}_wrapper"' in ucf

    def test_reconfig_mode_flag(self, placed):
        scheme, plan, _ = placed
        ucf = emit_ucf(scheme, plan)
        assert ucf.count("MODE = RECONFIG") == len(scheme.regions)

    def test_ranges_parse_back(self, placed):
        scheme, plan, _ = placed
        groups = parse_ranges(emit_ucf(scheme, plan))
        assert set(groups) == {f"pblock_{r.name}" for r in scheme.regions}
        for ranges in groups.values():
            assert ranges, "every region needs at least one RANGE"
            for rng in ranges:
                assert rng.startswith(("SLICE", "RAMB36", "DSP48"))

    def test_slice_range_format(self, placed):
        scheme, plan, _ = placed
        groups = parse_ranges(emit_ucf(scheme, plan))
        some_range = next(iter(groups.values()))[0]
        # e.g. SLICE_X0Y0:SLICE_X4Y39
        lo, hi = some_range.split(":")
        assert "_X" in lo and "Y" in lo and "_X" in hi

    def test_timing_constraints_rendered(self, placed):
        scheme, plan, _ = placed
        ucf = emit_ucf(
            scheme, plan, timing=[TimingConstraint(clock="clk100", period_ns=10.0)]
        )
        assert 'PERIOD "clk100" 10.0 ns' in ucf
        assert 'TNM_NET = "clk100"' in ucf

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            TimingConstraint(clock="clk", period_ns=0)


class TestNetlist:
    def test_one_netlist_per_region(self, placed):
        scheme, _, _ = placed
        netlists = build_netlists(scheme)
        assert set(netlists) == {r.name for r in scheme.regions}

    def test_one_variant_per_partition(self, placed):
        scheme, _, _ = placed
        netlists = build_netlists(scheme)
        assert variant_count(netlists) == sum(
            len(r.partitions) for r in scheme.regions
        )

    def test_variant_lookup(self, placed):
        scheme, _, _ = placed
        netlists = build_netlists(scheme)
        region = scheme.regions[0]
        nl = netlists[region.name]
        v = nl.variant_for(region.partitions[0].label)
        assert v.region == region.name
        with pytest.raises(KeyError):
            nl.variant_for("{nonexistent}")

    def test_wrapper_hdl_well_formed(self, placed):
        scheme, _, _ = placed
        netlists = build_netlists(scheme)
        hdl = emit_wrapper_hdl(next(iter(netlists.values())))
        assert hdl.startswith("//")
        assert "module " in hdl and "endmodule" in hdl
        for name, _, _ in STREAM_PORTS:
            assert name in hdl

    def test_variant_identifier_hdl_safe(self, placed):
        scheme, _, _ = placed
        netlists = build_netlists(scheme)
        for nl in netlists.values():
            for v in nl.variants:
                assert "." not in v.identifier
                assert "{" not in v.identifier


class TestBitstreams:
    def test_partial_per_variant(self, placed):
        scheme, plan, device = placed
        bits = generate_bitstreams(scheme, device, plan)
        assert len(bits.partials) == sum(
            len(r.partitions) for r in scheme.regions
        )

    def test_full_matches_device(self, placed):
        scheme, plan, device = placed
        bits = generate_bitstreams(scheme, device, plan)
        assert bits.full_frames == device.total_frames()
        assert bits.full_words == device.total_frames() * WORDS_PER_FRAME + FULL_OVERHEAD_WORDS

    def test_analytic_vs_placed_frames(self, placed):
        scheme, plan, device = placed
        analytic = generate_bitstreams(scheme, device, plan=None)
        placed_bits = generate_bitstreams(scheme, device, plan)
        for region in scheme.regions:
            a = analytic.by_region()[region.name][0].frames
            p = placed_bits.by_region()[region.name][0].frames
            assert a == region.frames
            assert p >= a  # placed rectangles can sweep extra columns

    def test_partial_sizes(self, placed):
        scheme, plan, device = placed
        bits = generate_bitstreams(scheme, device, plan)
        p = bits.partials[0]
        assert p.total_words == p.frames * WORDS_PER_FRAME + PARTIAL_OVERHEAD_WORDS
        assert p.total_bytes == p.total_words * 4

    def test_lookup(self, placed):
        scheme, plan, device = placed
        bits = generate_bitstreams(scheme, device, plan)
        region = scheme.regions[0]
        label = region.partitions[0].label
        assert bits.partial(region.name, label).region == region.name
        with pytest.raises(KeyError):
            bits.partial("nope", label)

    def test_total_storage(self, placed):
        scheme, plan, device = placed
        bits = generate_bitstreams(scheme, device, plan)
        assert bits.total_storage_bytes == bits.full_bytes + sum(
            p.total_bytes for p in bits.partials
        )
