"""XML front-end tests: parsing, validation, round-tripping."""

from __future__ import annotations

import pytest

from repro.arch.resources import ResourceVector
from repro.flow.xmlio import (
    DesignXMLError,
    design_to_xml,
    load_design,
    parse_design,
    save_design,
)

GOOD = """
<prdesign name="demo" device="FX70T">
  <static clb="90" bram="8"/>
  <module name="A">
    <mode name="A1" clb="40" bram="0" dsp="0"/>
    <mode name="A2" clb="200" bram="2" dsp="4"/>
  </module>
  <module name="B">
    <mode name="B1" clb="220"/>
  </module>
  <configuration name="c1">
    <use mode="A1"/><use mode="B1"/>
  </configuration>
  <configuration>
    <use mode="A2"/>
  </configuration>
  <constraints>
    <budget clb="1000" bram="16" dsp="8"/>
  </constraints>
</prdesign>
"""


class TestParse:
    def test_good_document(self):
        doc = parse_design(GOOD)
        d = doc.design
        assert d.name == "demo"
        assert doc.device_name == "FX70T"
        assert doc.budget == ResourceVector(1000, 16, 8)
        assert d.static_resources == ResourceVector(90, 8, 0)
        assert d.mode("A2").resources == ResourceVector(200, 2, 4)
        assert d.mode("B1").resources == ResourceVector(220, 0, 0)

    def test_auto_configuration_names(self):
        doc = parse_design(GOOD)
        assert [c.name for c in doc.design.configurations] == ["c1", "Conf.2"]

    def test_synthesis_spec_mode(self):
        doc = parse_design(
            """
            <prdesign name="d">
              <module name="M">
                <mode name="m1" luts="400" ffs="100">
                  <mult a="18" b="18"/>
                </mode>
              </module>
              <configuration><use mode="m1"/></configuration>
            </prdesign>
            """
        )
        r = doc.design.mode("m1").resources
        assert r.clb == 100 and r.dsp == 1

    def test_invalid_xml(self):
        with pytest.raises(DesignXMLError, match="invalid XML"):
            parse_design("<prdesign")

    def test_wrong_root(self):
        with pytest.raises(DesignXMLError, match="expected <prdesign>"):
            parse_design("<design name='x'/>")

    def test_missing_design_name(self):
        with pytest.raises(DesignXMLError, match="must carry a name"):
            parse_design("<prdesign/>")

    def test_module_without_name(self):
        with pytest.raises(DesignXMLError, match="missing a name"):
            parse_design(
                "<prdesign name='d'><module><mode name='m' clb='1'/></module>"
                "<configuration><use mode='m'/></configuration></prdesign>"
            )

    def test_module_without_modes(self):
        with pytest.raises(DesignXMLError, match="declares no modes"):
            parse_design(
                "<prdesign name='d'><module name='M'/>"
                "<configuration><use mode='m'/></configuration></prdesign>"
            )

    def test_non_integer_attribute(self):
        with pytest.raises(DesignXMLError, match="not an integer"):
            parse_design(
                "<prdesign name='d'><module name='M'>"
                "<mode name='m' clb='many'/></module>"
                "<configuration><use mode='m'/></configuration></prdesign>"
            )

    def test_use_without_mode(self):
        with pytest.raises(DesignXMLError, match="without mode"):
            parse_design(
                "<prdesign name='d'><module name='M'>"
                "<mode name='m' clb='1'/></module>"
                "<configuration><use/></configuration></prdesign>"
            )

    def test_budget_requires_all_axes(self):
        with pytest.raises(DesignXMLError, match="missing attribute"):
            parse_design(
                "<prdesign name='d'><module name='M'>"
                "<mode name='m' clb='1'/></module>"
                "<configuration><use mode='m'/></configuration>"
                "<constraints><budget clb='10'/></constraints></prdesign>"
            )

    def test_design_validation_propagates(self):
        # Two modes of one module in one configuration -> DesignError.
        from repro.core.model import DesignError

        with pytest.raises(DesignError):
            parse_design(
                "<prdesign name='d'><module name='M'>"
                "<mode name='m1' clb='1'/><mode name='m2' clb='1'/></module>"
                "<configuration><use mode='m1'/><use mode='m2'/></configuration>"
                "</prdesign>"
            )


class TestRoundTrip:
    def test_serialise_and_reparse(self, receiver):
        text = design_to_xml(
            receiver, device_name="FX70T", budget=ResourceVector(6800, 64, 150)
        )
        doc = parse_design(text)
        d = doc.design
        assert d.name == receiver.name
        assert doc.device_name == "FX70T"
        assert doc.budget == ResourceVector(6800, 64, 150)
        assert {m.name for m in d.all_modes} == {
            m.name for m in receiver.all_modes
        }
        for mode in receiver.all_modes:
            assert d.mode(mode.name).resources == mode.resources
        assert {frozenset(c.modes) for c in d.configurations} == {
            frozenset(c.modes) for c in receiver.configurations
        }

    def test_static_omitted_when_zero(self, paper_example):
        text = design_to_xml(paper_example)
        assert "<static" not in text

    def test_file_round_trip(self, tmp_path, paper_example):
        path = tmp_path / "design.xml"
        save_design(paper_example, path, device_name="LX30")
        doc = load_design(path)
        assert doc.design.name == paper_example.name
        assert doc.device_name == "LX30"
