"""Public-API integrity: every __all__ export must resolve.

Guards against drift between ``__init__`` re-export lists and the
modules they pull from -- the kind of breakage only an import of the
specific name reveals.
"""

from __future__ import annotations

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.arch",
    "repro.core",
    "repro.flow",
    "repro.runtime",
    "repro.synth",
    "repro.eval",
    "repro.obs",
    "repro.render",
    "repro.service",
    "repro.util",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    mod = importlib.import_module(package)
    exported = getattr(mod, "__all__", None)
    assert exported, f"{package} must declare __all__"
    missing = [name for name in exported if not hasattr(mod, name)]
    assert not missing, f"{package} exports unresolved names: {missing}"


@pytest.mark.parametrize("package", PACKAGES)
def test_all_is_sorted_and_unique(package):
    mod = importlib.import_module(package)
    exported = list(getattr(mod, "__all__", []))
    assert len(exported) == len(set(exported)), f"{package} has duplicate exports"


def test_version():
    import repro

    assert repro.__version__ == "1.0.0"


def test_cli_entry_point_importable():
    from repro.cli import main  # noqa: F401

    from repro import __main__  # noqa: F401
