"""Docs-as-tests: every runnable example in the docs must execute green.

Convention (docs/REPORTING.md): a fenced code block whose info string is
``bash run`` or ``python run`` is a *runnable* example.  This module
extracts every such block from README.md and docs/*.md and executes it
in a scratch directory:

* ``bash run`` blocks run under ``sh`` with a ``repro-pr`` shim on PATH
  (so examples read exactly like the installed CLI) and PYTHONPATH set
  to the checkout's ``src``;
* ``python run`` blocks run under the current interpreter the same way.

Blocks must be self-contained -- create the files they read, work in
the current directory, exit 0.  Plain ```` ```bash ```` blocks without
``run`` are illustrative and not executed, so docs stay free to show
output snippets or destructive commands.
"""

from __future__ import annotations

import os
import re
import stat
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[1]
DOC_FILES = sorted(
    [REPO / "README.md"] + list((REPO / "docs").glob("*.md"))
)

_FENCE = re.compile(
    r"^```(?P<lang>bash|python) run\s*\n(?P<body>.*?)^```\s*$",
    re.MULTILINE | re.DOTALL,
)


def _extract(path: Path) -> list[tuple[str, str, str]]:
    """(id, lang, code) for every runnable block of one doc file."""
    out = []
    text = path.read_text(encoding="utf-8")
    for i, match in enumerate(_FENCE.finditer(text), start=1):
        rel = path.relative_to(REPO)
        out.append((f"{rel}#{i}", match.group("lang"), match.group("body")))
    return out


EXAMPLES = [ex for path in DOC_FILES if path.exists() for ex in _extract(path)]


def test_docs_declare_runnable_examples():
    """The docs overhaul ships runnable examples; losing all of them
    (e.g. a mass find-and-replace of the fence info strings) should
    fail loudly rather than silently skipping the whole module."""
    assert len(EXAMPLES) >= 5


@pytest.fixture
def doc_env(tmp_path):
    """A scratch cwd with a ``repro-pr`` shim and src on PYTHONPATH."""
    shim_dir = tmp_path / ".bin"
    shim_dir.mkdir()
    shim = shim_dir / "repro-pr"
    shim.write_text(
        f'#!/bin/sh\nexec "{sys.executable}" -m repro "$@"\n',
        encoding="utf-8",
    )
    shim.chmod(shim.stat().st_mode | stat.S_IEXEC)
    env = dict(os.environ)
    env["PATH"] = f"{shim_dir}{os.pathsep}" + env.get("PATH", "")
    env["PYTHONPATH"] = str(REPO / "src")
    return tmp_path, env


@pytest.mark.parametrize(
    "example_id,lang,code",
    EXAMPLES,
    ids=[e[0] for e in EXAMPLES],
)
def test_docs_example_runs(example_id, lang, code, doc_env):
    cwd, env = doc_env
    if lang == "bash":
        argv = ["sh", "-e", "-c", code]
    else:
        argv = [sys.executable, "-c", code]
    proc = subprocess.run(
        argv, cwd=cwd, env=env, capture_output=True, text=True, timeout=300
    )
    assert proc.returncode == 0, (
        f"{example_id} exited {proc.returncode}\n"
        f"--- stdout ---\n{proc.stdout}\n--- stderr ---\n{proc.stderr}"
    )
