"""Sweep persistence tests: JSON round trips and CSV exports."""

from __future__ import annotations

import csv

import pytest

from repro.eval import experiments as E
from repro.eval.persistence import (
    PersistenceError,
    export_histograms_csv,
    export_series_csv,
    load_sweep,
    save_sweep,
    sweep_from_json,
    sweep_to_json,
)


@pytest.fixture(scope="module")
def sweep():
    return E.run_sweep(count=8, seed=21)


class TestJsonRoundTrip:
    def test_identity(self, sweep):
        back = sweep_from_json(sweep_to_json(sweep))
        assert back == sweep

    def test_file_round_trip(self, sweep, tmp_path):
        path = tmp_path / "sweep.json"
        save_sweep(sweep, path)
        assert load_sweep(path) == sweep

    def test_figures_identical_after_reload(self, sweep):
        back = sweep_from_json(sweep_to_json(sweep))
        assert back.total_time_series() == sweep.total_time_series()
        assert back.headline_counts() == sweep.headline_counts()

    def test_rejects_garbage(self):
        with pytest.raises(PersistenceError):
            sweep_from_json("not json at all")
        with pytest.raises(PersistenceError):
            sweep_from_json('{"format": "something-else"}')

    def test_rejects_wrong_version(self, sweep):
        import json

        doc = json.loads(sweep_to_json(sweep))
        doc["version"] = 999
        with pytest.raises(PersistenceError, match="version"):
            sweep_from_json(json.dumps(doc))

    def test_rejects_schema_drift(self, sweep):
        import json

        doc = json.loads(sweep_to_json(sweep))
        doc["records"][0]["surprise_field"] = 1
        with pytest.raises(PersistenceError, match="schema"):
            sweep_from_json(json.dumps(doc))


class TestCsvExports:
    def test_series_csv(self, sweep, tmp_path):
        path = tmp_path / "series.csv"
        export_series_csv(sweep, path)
        with open(path, newline="") as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == sweep.n
        ordered = sweep.sorted_by_device()
        assert int(rows[0]["proposed_total"]) == ordered[0].proposed_total
        assert rows[0]["device"] == ordered[0].device_name

    def test_histograms_csv(self, sweep, tmp_path):
        path = tmp_path / "hist.csv"
        export_histograms_csv(sweep, path)
        with open(path, newline="") as fh:
            rows = list(csv.DictReader(fh))
        panels = {r["panel"] for r in rows}
        assert panels == {"a", "b", "c", "d"}
        # 11 bins per panel.
        assert len(rows) == 4 * 11
        # Counts per panel sum to the profile size.
        total_a = sum(int(r["count"]) for r in rows if r["panel"] == "a")
        assert total_a == sweep.profiles()["a"].n


class TestMalformedInput:
    """Truncated or non-JSON input must fail as PersistenceError.

    Regression guard: these used to escape as bare ``KeyError`` /
    ``json.JSONDecodeError`` from deep inside the decoder.
    """

    def test_truncated_json_raises_persistence_error(self, sweep, tmp_path):
        path = tmp_path / "sweep.json"
        save_sweep(sweep, path)
        text = path.read_text(encoding="utf-8")
        path.write_text(text[: len(text) // 2], encoding="utf-8")
        with pytest.raises(PersistenceError, match="invalid JSON"):
            load_sweep(path)

    def test_non_object_document_rejected(self):
        with pytest.raises(PersistenceError, match="JSON object"):
            sweep_from_json("[1, 2, 3]")
        with pytest.raises(PersistenceError, match="JSON object"):
            sweep_from_json('"just a string"')

    def test_non_object_record_rejected(self, sweep):
        import json

        doc = json.loads(sweep_to_json(sweep))
        doc["records"][0] = "not-a-record"
        with pytest.raises(PersistenceError, match="record"):
            sweep_from_json(json.dumps(doc))

    def test_bad_metadata_types_rejected(self, sweep):
        import json

        doc = json.loads(sweep_to_json(sweep))
        doc["seed"] = "not-an-int"
        with pytest.raises(PersistenceError, match="metadata"):
            sweep_from_json(json.dumps(doc))

    def test_missing_records_key_rejected(self, sweep):
        import json

        doc = json.loads(sweep_to_json(sweep))
        del doc["records"]
        with pytest.raises(PersistenceError, match="records"):
            sweep_from_json(json.dumps(doc))


class TestSchemeRoundTrip:
    def test_result_round_trips_through_dicts(self, tiny_design):
        from repro.arch import ResourceVector
        from repro.core import partition
        from repro.eval.persistence import result_from_dict, result_to_dict

        result = partition(tiny_design, ResourceVector(500, 8, 8))
        doc = result_to_dict(result)
        back = result_from_dict(doc, tiny_design)
        assert back.total_frames == result.total_frames
        assert len(back.scheme.regions) == len(result.scheme.regions)
        assert [r.name for r in back.scheme.regions] == [
            r.name for r in result.scheme.regions
        ]

    def test_scheme_from_dict_rejects_unknown_modes(self, tiny_design):
        from repro.arch import ResourceVector
        from repro.core import partition
        from repro.eval.persistence import scheme_from_dict, scheme_to_dict

        result = partition(tiny_design, ResourceVector(500, 8, 8))
        doc = scheme_to_dict(result.scheme)
        doc["regions"][0]["partitions"][0]["modes"] = ["NoSuchMode"]
        with pytest.raises(PersistenceError):
            scheme_from_dict(doc, tiny_design)

    def test_scheme_from_dict_rejects_non_object(self, tiny_design):
        from repro.eval.persistence import scheme_from_dict

        with pytest.raises(PersistenceError):
            scheme_from_dict("nope", tiny_design)
