"""Experiment-driver tests: every paper artefact regenerates and holds
its qualitative shape."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval import experiments as E
from repro.eval.casestudy import TABLE4_PAPER
from repro.eval.example_design import EXPECTED_MATRIX, TABLE1_EXPECTED


class TestExampleArtefacts:
    def test_connectivity_matrix(self):
        cm = E.exp_connectivity_matrix()
        assert (cm.matrix == np.array(EXPECTED_MATRIX)).all()

    def test_table1_exact(self):
        assert E.exp_table1() == TABLE1_EXPECTED

    def test_render_table1(self):
        text = E.render_table1()
        assert "{A3, B2, C3}" in text and "Freq wt" in text


@pytest.fixture(scope="module")
def t3():
    return E.exp_table3()


@pytest.fixture(scope="module")
def t5():
    return E.exp_table5()


class TestCaseStudyTables:
    def test_table4_shape(self, t3):
        """The Table IV ordering: static 0 < proposed < modular < single."""
        assert t3.totals["static"] == 0
        assert t3.totals["proposed"] < t3.totals["modular"]
        assert t3.totals["modular"] < t3.totals["single-region"]

    def test_table4_magnitudes_near_paper(self, t3):
        """Absolute totals within 10% of the paper's Table IV."""
        assert t3.totals["modular"] == pytest.approx(
            TABLE4_PAPER["modular"][3], rel=0.10
        )
        assert t3.totals["proposed"] == pytest.approx(
            TABLE4_PAPER["proposed"][3], rel=0.10
        )

    def test_table4_static_infeasible(self, t3):
        from repro.eval.casestudy import CASESTUDY_BUDGET

        assert not t3.schemes["static"].fits(CASESTUDY_BUDGET)

    def test_table3_structure(self, t3):
        """Structural features of the paper's Table III solution."""
        regions = t3.proposed.regions
        # V modes together in one region.
        v_hosts = {
            r.name for r in regions for lbl in r.labels if "V" in lbl
        }
        assert len(v_hosts) == 1
        # F1 and F2 share a region.
        f_hosts = {
            r.name for r in regions for lbl in r.labels if "F" in lbl
        }
        assert len(f_hosts) == 1

    def test_table5_improvement(self, t5):
        """Modified configurations: proposed beats modular (paper: 6%)."""
        assert t5.totals["proposed"] < t5.totals["modular"]
        improvement = 100 * (
            1 - t5.totals["proposed"] / t5.totals["modular"]
        )
        assert 1.0 < improvement < 20.0

    def test_table5_magnitude_near_paper(self, t5):
        # Paper: 92120 frames.
        assert t5.totals["proposed"] == pytest.approx(92_120, rel=0.10)

    def test_table5_static_m1(self, t5):
        """Table V: M1 ends up effectively static."""
        static_modes = set()
        for region in t5.proposed.effectively_static_regions():
            static_modes |= region.mode_names
        assert "M1" in static_modes

    def test_renderers_mention_paper_numbers(self, t3, t5):
        assert "244872" in E.render_table4(t3)
        assert "92120" in E.render_table5(t5)
        assert "Region" in E.render_table3(t3)


@pytest.fixture(scope="module")
def sweep():
    return E.run_sweep(count=32, seed=77)


class TestSweep:
    def test_records_complete(self, sweep):
        assert sweep.n + sweep.skipped == 32
        for r in sweep.records:
            assert r.proposed_total <= r.single_total
            assert r.device_index >= 0

    def test_sorted_by_device(self, sweep):
        ordered = sweep.sorted_by_device()
        indices = [r.device_index for r in ordered]
        assert indices == sorted(indices)

    def test_series_lengths_match(self, sweep):
        total = sweep.total_time_series()
        worst = sweep.worst_time_series()
        for series in (total, worst):
            assert set(series) == {"proposed", "modular", "single-region"}
            assert len({len(v) for v in series.values()}) == 1

    def test_fig7_shape_single_region_dominates(self, sweep):
        """Fig. 7: the single-region curve sits above the others for
        total time in the aggregate."""
        s = sweep.total_time_series()
        assert sum(s["single-region"]) > sum(s["proposed"])
        assert sum(s["modular"]) >= sum(s["proposed"])

    def test_fig8_shape(self, sweep):
        """Fig. 8: proposed worst-case beats modular in the aggregate."""
        s = sweep.worst_time_series()
        assert sum(s["modular"]) >= sum(s["proposed"])

    def test_profiles_keys(self, sweep):
        assert set(sweep.profiles()) == {"a", "b", "c", "d"}

    def test_fig9b_all_better_or_equal(self, sweep):
        """Paper: proposed beats single-region on total time everywhere."""
        profile = sweep.profiles()["b"]
        assert profile.fraction_better_or_equal == 1.0

    def test_fig9a_majority_better(self, sweep):
        profile = sweep.profiles()["a"]
        assert profile.fraction_better > 0.5

    def test_headline_counts(self, sweep):
        counts = sweep.headline_counts()
        assert counts["designs"] == sweep.n
        assert 0 <= counts["escalated_pct"] <= 100
        assert counts["total_better_than_single_pct"] >= 90

    def test_device_boundaries_monotone(self, sweep):
        bounds = sweep.device_boundaries()
        starts = list(bounds.values())
        assert starts == sorted(starts)

    def test_renderers_run(self, sweep):
        assert "Fig. 7" in E.render_fig7(sweep)
        assert "Fig. 8" in E.render_fig8(sweep)
        assert "Fig. 9(a)" in E.render_fig9(sweep)
        assert "headline" in E.render_headlines(sweep)

    def test_deterministic(self):
        a = E.run_sweep(count=6, seed=3)
        b = E.run_sweep(count=6, seed=3)
        assert [r.proposed_total for r in a.records] == [
            r.proposed_total for r in b.records
        ]
