"""Sweep-analysis tests."""

from __future__ import annotations

import pytest

from repro.eval import experiments as E
from repro.eval.analysis import (
    by_circuit_class,
    correlation_with_structure,
    render_analysis,
    render_class_breakdown,
    worst_case_trade,
)


@pytest.fixture(scope="module")
def sweep():
    return E.run_sweep(count=24, seed=11)


class TestClassBreakdown:
    def test_all_classes_present(self, sweep):
        breakdown = by_circuit_class(sweep)
        assert {b.circuit_class for b in breakdown} == {
            "logic", "memory", "dsp", "dsp-memory",
        }

    def test_counts_sum(self, sweep):
        breakdown = by_circuit_class(sweep)
        assert sum(b.n for b in breakdown) == sweep.n

    def test_sorted_by_class(self, sweep):
        names = [b.circuit_class for b in by_circuit_class(sweep)]
        assert names == sorted(names)

    def test_render(self, sweep):
        text = render_class_breakdown(sweep)
        assert "dsp-memory" in text and "%" in text


class TestCorrelations:
    def test_keys_and_range(self, sweep):
        corr = correlation_with_structure(sweep)
        assert set(corr) == {"modes", "configurations", "device_index"}
        for v in corr.values():
            assert -1.0 <= v <= 1.0

    def test_too_few_records(self):
        small = E.run_sweep(count=2, seed=1)
        assert correlation_with_structure(small) in ({}, correlation_with_structure(small))


class TestWorstCaseTrade:
    def test_fields(self, sweep):
        trade = worst_case_trade(sweep)
        assert set(trade) == {
            "designs", "mean_total_gain_pct", "mean_worst_loss_pct",
        }
        assert trade["designs"] >= 0

    def test_gain_positive_when_designs_exist(self, sweep):
        trade = worst_case_trade(sweep)
        if trade["designs"]:
            # Sacrificing the worst case must buy total time (that is
            # why the optimiser made the trade).
            assert trade["mean_total_gain_pct"] > 0


class TestRenderAnalysis:
    def test_contains_all_blocks(self, sweep):
        text = render_analysis(sweep)
        assert "per-circuit-class" in text
        assert "structure correlations" in text
        assert "Fig. 8 trade" in text
