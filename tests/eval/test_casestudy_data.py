"""Case-study data integrity tests: Table II encoded verbatim."""

from __future__ import annotations

import pytest

from repro.arch.resources import ResourceVector
from repro.eval.casestudy import (
    CASESTUDY_BUDGET,
    CASESTUDY_BUDGET_PAPER,
    CASESTUDY_CONFIGURATIONS,
    CASESTUDY_CONFIGURATIONS_MODIFIED,
    TABLE2_RESOURCES,
    casestudy_design,
    casestudy_design_modified,
)


class TestTable2:
    """Spot checks against the printed Table II."""

    @pytest.mark.parametrize(
        "module,mode,expected",
        [
            ("MatchedFilter", "F1", (818, 0, 28)),
            ("MatchedFilter", "F2", (500, 0, 34)),
            ("Recovery", "R1", (318, 1, 13)),
            ("Recovery", "R4", (0, 0, 0)),
            ("Demodulator", "M1", (50, 0, 2)),
            ("Decoder", "D2", (748, 15, 4)),
            ("VideoDecoder", "V1", (4700, 40, 65)),
            ("VideoDecoder", "V3", (2780, 6, 9)),
        ],
    )
    def test_entries(self, module, mode, expected):
        assert TABLE2_RESOURCES[module][mode] == expected

    def test_module_count(self):
        assert len(TABLE2_RESOURCES) == 5

    def test_mode_count(self):
        assert sum(len(m) for m in TABLE2_RESOURCES.values()) == 14

    def test_static_implementation_totals(self):
        """Raw sums of Table II: 15751 CLBs / 83 BR / 204 DSP (the paper
        prints 15053/68/202; see EXPERIMENTS.md for the audit)."""
        total = ResourceVector.sum(
            ResourceVector(*r)
            for modes in TABLE2_RESOURCES.values()
            for r in modes.values()
        )
        assert total == ResourceVector(15751, 83, 204)


class TestConfigurations:
    def test_original_count(self):
        assert len(CASESTUDY_CONFIGURATIONS) == 8

    def test_modified_count(self):
        assert len(CASESTUDY_CONFIGURATIONS_MODIFIED) == 5

    def test_every_config_has_five_modules(self):
        for config in CASESTUDY_CONFIGURATIONS + CASESTUDY_CONFIGURATIONS_MODIFIED:
            assert len(config) == 5
            prefixes = {m[0] for m in config}
            assert prefixes == {"F", "R", "M", "D", "V"}

    def test_original_set_uses_d2(self):
        assert any("D2" in c for c in CASESTUDY_CONFIGURATIONS)

    def test_modified_set_never_uses_d2(self):
        assert not any("D2" in c for c in CASESTUDY_CONFIGURATIONS_MODIFIED)


class TestDesignBuilders:
    def test_original_keeps_d2(self):
        d = casestudy_design()
        assert "D2" in {m.name for m in d.all_modes}
        # R4 ("None", zero footprint) is unused in both sets and dropped.
        assert "R4" not in {m.name for m in d.all_modes}

    def test_modified_keeps_unused_d2_out_of_matrix(self):
        d = casestudy_design_modified()
        assert "D2" in {m.name for m in d.all_modes}
        assert "D2" in {m.name for m in d.unused_modes}

    def test_budgets(self):
        assert CASESTUDY_BUDGET_PAPER == ResourceVector(6800, 50, 150)
        assert CASESTUDY_BUDGET == ResourceVector(6800, 64, 150)
        # The adjusted budget differs only on the BRAM axis.
        assert CASESTUDY_BUDGET.clb == CASESTUDY_BUDGET_PAPER.clb
        assert CASESTUDY_BUDGET.dsp == CASESTUDY_BUDGET_PAPER.dsp
