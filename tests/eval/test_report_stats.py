"""Report-rendering and Fig. 9 statistics tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.report import (
    format_percent,
    kv_block,
    render_histogram,
    render_series,
    render_table,
)
from repro.eval.stats import (
    FIG9_BIN_EDGES,
    improvement_profile,
    summarise_profiles,
)


class TestRenderTable:
    def test_alignment_and_borders(self):
        text = render_table(("a", "bb"), [(1, 2), (33, 4)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        widths = {len(l) for l in lines[1:]}
        assert len(widths) == 1  # all rows equal width

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            render_table(("a", "b"), [(1,)])

    def test_cells_stringified(self):
        text = render_table(("x",), [(None,)])
        assert "None" in text


class TestRenderSeries:
    def test_contains_legend_and_axes(self):
        text = render_series(
            {"s1": [1, 2, 3], "s2": [3, 2, 1]}, x_label="xx", y_label="yy"
        )
        assert "legend" in text and "s1" in text and "s2" in text
        assert "xx" in text and "yy" in text

    def test_empty(self):
        assert "empty" in render_series({})

    def test_handles_single_point(self):
        text = render_series({"s": [5.0]})
        assert "max 5" in text


class TestRenderHistogram:
    def test_bars_scale(self):
        text = render_histogram([0, 10, 20], [1, 5], title="H")
        lines = text.splitlines()
        assert lines[0] == "H"
        assert lines[2].count("#") > lines[1].count("#")

    def test_count_mismatch(self):
        with pytest.raises(ValueError):
            render_histogram([0, 10], [1, 2])

    def test_zero_counts(self):
        text = render_histogram([0, 10], [0])
        assert "#" not in text


class TestSmallHelpers:
    def test_format_percent(self):
        assert format_percent(12.345) == "12.3%"

    def test_kv_block_aligned(self):
        text = kv_block({"a": 1, "long-key": 2}, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].index(":") == lines[2].index(":")


class TestImprovementProfile:
    def test_basic_changes(self):
        p = improvement_profile("x", [100, 200, 100], [50, 200, 110])
        assert p.changes == (50.0, 0.0, -10.0)
        assert p.fraction_better == pytest.approx(1 / 3)
        assert p.fraction_better_or_equal == pytest.approx(2 / 3)
        assert p.fraction_worse == pytest.approx(1 / 3)

    def test_zero_baseline_zero_proposal_is_zero_change(self):
        p = improvement_profile("x", [0], [0])
        assert p.changes == (0.0,)

    def test_zero_baseline_positive_proposal_skipped(self):
        p = improvement_profile("x", [0, 100], [5, 50])
        assert p.changes == (50.0,)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            improvement_profile("x", [1], [1, 2])

    def test_mean_median(self):
        p = improvement_profile("x", [100, 100], [90, 50])
        assert p.mean == pytest.approx(30.0)
        assert p.median == pytest.approx(30.0)

    def test_empty_profile(self):
        p = improvement_profile("x", [], [])
        assert p.fraction_better == 0.0
        assert p.mean == 0.0


class TestHistogramBinning:
    def test_paper_bin_edges(self):
        assert FIG9_BIN_EDGES[0] == -10.0
        assert FIG9_BIN_EDGES[-1] == 100.0
        assert len(FIG9_BIN_EDGES) == 12

    def test_counts_sum_to_n(self):
        p = improvement_profile(
            "x", [100] * 6, [110, 95, 50, 10, 0, 1]
        )
        counts, edges = p.histogram()
        assert counts.sum() == p.n

    def test_out_of_range_clipped(self):
        p = improvement_profile("x", [100, 100], [400, 0])
        counts, edges = p.histogram()
        # -300% clipped into the first bin; +100% into the last.
        assert counts[0] == 1
        assert counts[-1] == 1

    def test_summary_keys(self):
        p = improvement_profile("total vs modular", [100], [50])
        s = summarise_profiles([p])
        assert set(s) == {"total vs modular"}
        assert s["total vs modular"]["better"] == 100.0
