"""Configuration-manager simulator tests."""

from __future__ import annotations

import itertools

import pytest

from repro.core.baselines import (
    one_module_per_region_scheme,
    single_region_scheme,
    static_scheme,
)
from repro.core.cost import transition_frames
from repro.core.partitioner import partition
from repro.eval.casestudy import CASESTUDY_BUDGET
from repro.runtime.icap import CUSTOM_DMA_CONTROLLER, IcapModel
from repro.runtime.manager import (
    ConfigurationManager,
    TraceError,
    compare_schemes_on_trace,
    replay,
)


@pytest.fixture
def modular(receiver):
    return one_module_per_region_scheme(receiver)


class TestBasics:
    def test_initial_load_not_charged(self, modular):
        mgr = ConfigurationManager(modular)
        rec = mgr.goto("Conf.1")
        assert rec.frames > 0 or rec.regions_rewritten == ()
        assert mgr.stats.transitions == 0
        assert mgr.current_configuration == "Conf.1"

    def test_initial_load_charged_when_requested(self, modular):
        mgr = ConfigurationManager(modular, charge_initial=True)
        mgr.goto("Conf.1")
        assert mgr.stats.transitions == 1

    def test_unknown_configuration(self, modular):
        mgr = ConfigurationManager(modular)
        with pytest.raises(TraceError):
            mgr.goto("Conf.99")

    def test_self_transition_free(self, modular):
        mgr = ConfigurationManager(modular)
        mgr.goto("Conf.1")
        rec = mgr.goto("Conf.1")
        assert rec.frames == 0
        assert rec.regions_rewritten == ()

    def test_loaded_contents_tracked(self, modular):
        mgr = ConfigurationManager(modular)
        mgr.goto("Conf.1")
        loaded = {x for x in mgr.loaded_contents if x is not None}
        assert loaded == {
            lbl for lbl in modular.activity("Conf.1") if lbl is not None
        }


class TestSemantics:
    def test_transition_matches_analytic_cost(self, modular):
        """A fresh A->B transition costs exactly Eq. 8 under LENIENT."""
        names = [c.name for c in modular.design.configurations]
        for a, b in itertools.combinations(names, 2):
            mgr = ConfigurationManager(modular)
            mgr.goto(a)
            rec = mgr.goto(b)
            assert rec.frames == transition_frames(modular, a, b)

    def test_stale_content_reused(self, modular):
        """Leaving and returning to a configuration whose region content
        survived costs nothing for that region (the LENIENT rationale)."""
        # Conf.1 and Conf.2 differ only in V (V1 vs V2) for the receiver.
        mgr = ConfigurationManager(modular)
        mgr.goto("Conf.1")
        first = mgr.goto("Conf.2").frames
        back = mgr.goto("Conf.1").frames
        assert back == first  # only the V region swaps back

    def test_single_region_rewrites_everything_each_time(self, receiver):
        scheme = single_region_scheme(receiver)
        frames = scheme.regions[0].frames
        mgr = ConfigurationManager(scheme)
        mgr.goto("Conf.1")
        for target in ("Conf.2", "Conf.3", "Conf.4"):
            assert mgr.goto(target).frames == frames

    def test_static_scheme_never_reconfigures(self, receiver):
        scheme = static_scheme(receiver)
        stats = replay(scheme, ["Conf.1", "Conf.4", "Conf.2", "Conf.8"])
        assert stats.total_frames == 0

    def test_unused_region_keeps_stale_content(self, receiver_modified):
        result = partition(receiver_modified, CASESTUDY_BUDGET)
        scheme = result.scheme
        mgr = ConfigurationManager(scheme)
        # Walk every configuration twice; regions never rewritten for
        # configurations that do not use them.
        names = [c.name for c in scheme.design.configurations]
        for name in names + names:
            rec = mgr.goto(name)
            required = scheme.activity(name)
            touched = set(rec.regions_rewritten)
            for region, need in zip(scheme.regions, required):
                if need is None:
                    assert region.name not in touched


class TestStats:
    def test_totals_accumulate(self, modular):
        mgr = ConfigurationManager(modular)
        trace = ["Conf.1", "Conf.4", "Conf.1", "Conf.8"]
        per_step = []
        for t in trace:
            per_step.append(mgr.goto(t).frames)
        assert mgr.stats.total_frames == sum(per_step[1:])  # first is free
        assert mgr.stats.worst_frames == max(per_step[1:])
        assert mgr.stats.transitions == len(trace) - 1

    def test_rewrites_by_region(self, modular):
        stats = replay(modular, ["Conf.1", "Conf.4", "Conf.1"])
        assert all(v > 0 for v in stats.rewrites_by_region.values())

    def test_mean_frames(self, modular):
        stats = replay(modular, ["Conf.1", "Conf.4"])
        assert stats.mean_frames == stats.total_frames / stats.transitions

    def test_mean_frames_empty(self, modular):
        mgr = ConfigurationManager(modular)
        assert mgr.stats.mean_frames == 0.0

    def test_seconds_use_icap_model(self, modular):
        fast = replay(modular, ["Conf.1", "Conf.4"], icap=CUSTOM_DMA_CONTROLLER)
        slow = replay(
            modular,
            ["Conf.1", "Conf.4"],
            icap=IcapModel(name="slow", efficiency=0.01),
        )
        assert slow.total_seconds > fast.total_seconds
        assert fast.total_frames == slow.total_frames


class TestCompare:
    def test_compare_schemes_on_trace(self, receiver):
        schemes = [
            one_module_per_region_scheme(receiver),
            single_region_scheme(receiver),
        ]
        trace = ["Conf.1", "Conf.5", "Conf.2", "Conf.8", "Conf.3"]
        out = compare_schemes_on_trace(schemes, trace)
        assert set(out) == {"modular", "single-region"}
        # The single-region scheme rewrites everything every time; the
        # modular scheme only what changes.
        assert out["modular"].total_frames < out["single-region"].total_frames

    def test_history_records_everything(self, modular):
        mgr = ConfigurationManager(modular)
        mgr.goto("Conf.1")
        mgr.goto("Conf.2")
        assert len(mgr.history) == 2
        assert mgr.history[0].from_configuration is None
        assert mgr.history[1].from_configuration == "Conf.1"
        assert mgr.history[1].to_configuration == "Conf.2"
