"""ICAP timing-model tests."""

from __future__ import annotations

import pytest

from repro.runtime.icap import (
    CUSTOM_DMA_CONTROLLER,
    FLASH_STREAMING,
    ICAP_PEAK_BYTES_PER_S,
    PRESETS,
    VENDOR_HWICAP,
    IcapModel,
)


class TestValidation:
    def test_efficiency_bounds(self):
        with pytest.raises(ValueError):
            IcapModel(name="x", efficiency=0.0)
        with pytest.raises(ValueError):
            IcapModel(name="x", efficiency=1.5)

    def test_negative_latency(self):
        with pytest.raises(ValueError):
            IcapModel(name="x", efficiency=0.5, per_transfer_latency_s=-1)


class TestTiming:
    def test_peak_bandwidth(self):
        assert ICAP_PEAK_BYTES_PER_S == 400_000_000

    def test_zero_frames_free(self):
        assert CUSTOM_DMA_CONTROLLER.time_for_frames(0) == 0.0

    def test_latency_plus_payload(self):
        model = IcapModel(name="x", efficiency=1.0, per_transfer_latency_s=1e-3)
        # one frame = 41 words = 164 bytes at 400 MB/s = 410 ns
        t = model.time_for_frames(1)
        assert t == pytest.approx(1e-3 + 164 / 400e6)

    def test_negative_frames(self):
        with pytest.raises(ValueError):
            CUSTOM_DMA_CONTROLLER.time_for_frames(-1)

    def test_time_scales_linearly_in_payload(self):
        model = IcapModel(name="x", efficiency=1.0)
        assert model.time_for_frames(200) == pytest.approx(
            2 * model.time_for_frames(100)
        )

    def test_bytes_api(self):
        model = IcapModel(name="x", efficiency=1.0)
        assert model.time_for_bytes(400_000_000) == pytest.approx(1.0)
        assert model.time_for_bytes(0) == 0.0
        with pytest.raises(ValueError):
            model.time_for_bytes(-1)

    def test_preset_ordering(self):
        frames = 10_000
        fast = CUSTOM_DMA_CONTROLLER.time_for_frames(frames)
        mid = VENDOR_HWICAP.time_for_frames(frames)
        slow = FLASH_STREAMING.time_for_frames(frames)
        assert fast < mid < slow

    def test_presets_registry(self):
        assert set(PRESETS) == {"custom-dma", "vendor-hwicap", "flash"}

    def test_case_study_scale(self):
        """Sanity: the case-study total (~235k frames) takes ~0.1 s on
        the fast controller -- the magnitude the paper's motivation
        assumes for whole-system adaptation."""
        t = CUSTOM_DMA_CONTROLLER.time_for_frames(235_266)
        assert 0.05 < t < 0.5
