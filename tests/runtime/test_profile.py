"""Trace-profiling tests: trace -> statistics -> re-optimisation."""

from __future__ import annotations

import pytest

from repro.arch.resources import ResourceVector
from repro.eval.casestudy import CASESTUDY_BUDGET, casestudy_design
from repro.runtime.adaptive import MarkovEnvironment, uniform_markov
from repro.runtime.profile import (
    estimate_markov,
    pair_frequencies,
    reoptimise_from_trace,
    transition_counts,
)


class TestTransitionCounts:
    def test_ordered_counts(self):
        counts = transition_counts(["a", "b", "a", "b", "b"])
        assert counts == {("a", "b"): 2, ("b", "a"): 1, ("b", "b"): 1}

    def test_empty_and_singleton(self):
        assert transition_counts([]) == {}
        assert transition_counts(["a"]) == {}


class TestPairFrequencies:
    def test_unordered_and_normalised(self):
        freqs = pair_frequencies(["a", "b", "a", "c"])
        assert freqs[("a", "b")] == pytest.approx(2 / 3)
        assert freqs[("a", "c")] == pytest.approx(1 / 3)
        assert sum(freqs.values()) == pytest.approx(1.0)

    def test_self_transitions_excluded(self):
        assert pair_frequencies(["a", "a", "a"]) == {}

    def test_keys_sorted(self):
        freqs = pair_frequencies(["b", "a"])
        assert list(freqs) == [("a", "b")]


class TestEstimateMarkov:
    def test_rows_stochastic_and_complete(self, paper_example):
        env = uniform_markov(paper_example)
        trace = env.trace(500, seed=3)
        matrix = estimate_markov(paper_example, trace)
        names = {c.name for c in paper_example.configurations}
        assert set(matrix) == names
        for row in matrix.values():
            assert set(row) == names
            assert sum(row.values()) == pytest.approx(1.0)

    def test_fitted_matrix_accepted_by_environment(self, paper_example):
        env = uniform_markov(paper_example)
        trace = env.trace(400, seed=4)
        fitted = MarkovEnvironment(
            paper_example, estimate_markov(paper_example, trace)
        )
        assert len(fitted.trace(10, seed=0)) == 10

    def test_recovers_dominant_structure(self, paper_example):
        """A two-state ping-pong trace yields a matrix dominated by the
        observed transitions."""
        trace = ["Conf.1", "Conf.2"] * 100
        matrix = estimate_markov(paper_example, trace)
        assert matrix["Conf.1"]["Conf.2"] > 0.99
        assert matrix["Conf.2"]["Conf.1"] > 0.99

    def test_unknown_configuration_rejected(self, paper_example):
        with pytest.raises(ValueError, match="unknown"):
            estimate_markov(paper_example, ["ghost"])

    def test_negative_smoothing_rejected(self, paper_example):
        with pytest.raises(ValueError):
            estimate_markov(paper_example, ["Conf.1"], smoothing=-1)


class TestReoptimise:
    def test_weighted_objective_used(self):
        design = casestudy_design()
        env = uniform_markov(design)
        trace = env.trace(800, seed=9)
        result = reoptimise_from_trace(design, trace, CASESTUDY_BUDGET)
        # objective is the weighted value; frequencies sum to 1, so the
        # objective is a weighted average of transitions -- far below the
        # unweighted 28-pair sum.
        assert 0 < result.objective < result.total_frames

    def test_switchless_trace_falls_back_to_unweighted(self):
        design = casestudy_design()
        trace = ["Conf.1"] * 50
        result = reoptimise_from_trace(design, trace, CASESTUDY_BUDGET)
        assert result.objective == pytest.approx(float(result.total_frames))

    def test_hot_pair_gets_cheap_transition(self):
        """After observing a trace that ping-pongs between two
        configurations, the re-optimised scheme makes that transition
        cheap relative to the scheme's overall transition costs."""
        from repro.core.cost import transition_frames

        design = casestudy_design()
        trace = (["Conf.1", "Conf.2"] * 200) + ["Conf.4", "Conf.8"]
        result = reoptimise_from_trace(design, trace, CASESTUDY_BUDGET)
        hot = transition_frames(result.scheme, "Conf.1", "Conf.2")
        worst = result.worst_frames
        assert hot <= worst
