"""ICAP stream-consumption and prefetching-manager tests."""

from __future__ import annotations

import pytest

from repro.core.baselines import one_module_per_region_scheme
from repro.core.partitioner import partition
from repro.eval.casestudy import CASESTUDY_BUDGET, casestudy_design
from repro.flow.bitgen import (
    BitstreamFormatError,
    BitstreamInfo,
    build_partial_bitstream,
)
from repro.runtime.adaptive import MarkovEnvironment, uniform_markov
from repro.runtime.icap import CUSTOM_DMA_CONTROLLER, VENDOR_HWICAP, IcapModel
from repro.runtime.manager import replay
from repro.runtime.prefetch import (
    PrefetchingManager,
    markov_predictor,
    oracle_predictor,
    replay_with_prefetch,
)
from repro.runtime.stream import consume_bitstream, stream_scheme_bitstreams


def _bits(frames=4):
    return build_partial_bitstream(
        BitstreamInfo(
            design="d", region="R", partition_label="{X}",
            frame_address=0x40, frames=frames,
        )
    )


class TestStreamConsumer:
    def test_counts_payload_words(self):
        report = consume_bitstream(_bits(frames=4))
        assert report.words_payload == 4 * 41

    def test_cycles_at_least_words(self):
        report = consume_bitstream(_bits())
        assert report.cycles >= report.words_total - 4  # header absorbed

    def test_full_rate_controller_no_stalls(self):
        report = consume_bitstream(_bits(), IcapModel(name="x", efficiency=1.0))
        assert report.stall_cycles == 0
        assert report.efficiency <= 1.0

    def test_slow_controller_stalls(self):
        fast = consume_bitstream(_bits(), CUSTOM_DMA_CONTROLLER)
        slow = consume_bitstream(_bits(), VENDOR_HWICAP)
        assert slow.cycles > fast.cycles
        assert slow.stall_cycles > 0
        assert slow.seconds > fast.seconds

    def test_long_form_payload(self):
        report = consume_bitstream(_bits(frames=60))
        assert report.words_payload == 60 * 41

    def test_garbage_rejected(self):
        with pytest.raises(BitstreamFormatError):
            consume_bitstream(b"nonsense")

    def test_missing_desync_rejected(self):
        data = _bits()
        with pytest.raises(BitstreamFormatError):
            consume_bitstream(data[:-8])  # drop DESYNC tail

    def test_directory_helper(self, tmp_path, receiver, fx70t):
        from repro.flow.bitgen import write_scheme_bitstreams
        from repro.flow.floorplan import floorplan

        scheme = one_module_per_region_scheme(receiver)
        plan = floorplan(scheme, fx70t)
        paths = write_scheme_bitstreams(scheme, plan, tmp_path)
        reports = stream_scheme_bitstreams(paths)
        assert len(reports) == len(paths)
        assert all(r.words_payload > 0 for r in reports.values())


@pytest.fixture
def design():
    return casestudy_design()


@pytest.fixture
def scheme(design):
    return partition(design, CASESTUDY_BUDGET).scheme


class TestPrefetching:
    def test_oracle_predictor_hides_everything_hideable(self, design, scheme):
        """With a perfect predictor, every rewrite of a region idle in
        the previous configuration is hidden."""
        env = uniform_markov(design)
        trace = env.trace(400, seed=3)
        plain = replay(scheme, trace)
        oracle = replay_with_prefetch(scheme, trace, oracle_predictor(trace))
        assert oracle.total_frames <= plain.total_frames
        # Hidden work is real work: prefetched frames were loaded.
        assert oracle.prefetched_frames >= plain.total_frames - oracle.total_frames

    def test_markov_predictor_helps_on_skewed_chain(self, design, scheme):
        names = [c.name for c in design.configurations]
        matrix = {}
        for src in names:
            matrix[src] = {dst: 0.02 / (len(names) - 2) for dst in names if dst != src}
        # Strong Conf.4 <-> Conf.1 alternation.
        matrix["Conf.4"] = {"Conf.1": 0.98, **{n: 0.02 / 6 for n in names if n not in ("Conf.4", "Conf.1")}}
        matrix["Conf.1"] = {"Conf.4": 0.98, **{n: 0.02 / 6 for n in names if n not in ("Conf.1", "Conf.4")}}
        for src, row in matrix.items():
            total = sum(row.values())
            matrix[src] = {k: v / total for k, v in row.items()}
        env = MarkovEnvironment(design, matrix)
        trace = env.trace(600, seed=4)
        plain = replay(scheme, trace)
        fetched = replay_with_prefetch(
            scheme, trace, markov_predictor(matrix)
        )
        assert fetched.total_frames <= plain.total_frames
        assert fetched.prefetch_hits > 0

    def test_never_prefetches_active_region(self, design, scheme):
        """A region serving the current configuration must never be
        speculatively rewritten (that would corrupt the system)."""
        env = uniform_markov(design)
        trace = env.trace(200, seed=5)
        mgr = PrefetchingManager(
            scheme, markov_predictor(uniform_markov(design).matrix)
        )
        for name in trace:
            mgr.goto(name)
            needed = scheme.activity(name)
            for idx, need in enumerate(needed):
                if need is not None:
                    assert mgr._loaded[idx] == need

    def test_demand_correctness_unchanged(self, design, scheme):
        """Prefetching must not change which configuration is reachable:
        after goto(c), every region c needs holds the right content."""
        env = uniform_markov(design)
        trace = env.trace(300, seed=6)
        mgr = PrefetchingManager(scheme, oracle_predictor(trace))
        for name in trace:
            mgr.goto(name)
            for idx, need in enumerate(scheme.activity(name)):
                if need is not None:
                    assert mgr._loaded[idx] == need

    def test_bad_predictor_rejected(self, design, scheme):
        mgr = PrefetchingManager(scheme, lambda c: "ghost")
        from repro.runtime.manager import TraceError

        with pytest.raises(TraceError):
            mgr.goto("Conf.1")
            mgr.goto("Conf.2")

    def test_wasted_speculation_counted(self, design, scheme):
        """A predictor that always guesses wrong accumulates waste but
        never slows the demand path beyond the plain manager."""
        names = [c.name for c in design.configurations]

        def contrarian(current: str) -> str:
            return names[0] if current != names[0] else names[1]

        env = uniform_markov(design)
        trace = env.trace(300, seed=7)
        plain = replay(scheme, trace)
        wrong = replay_with_prefetch(scheme, trace, contrarian)
        assert wrong.total_frames <= plain.total_frames  # hits still possible
