"""Environment-model tests: trace validity and statistics."""

from __future__ import annotations

import pytest

from repro.runtime.adaptive import (
    AdaptiveEnvironmentError as EnvironmentError,
    BurstyEnvironment,
    MarkovEnvironment,
    UniformEnvironment,
    uniform_markov,
)


class TestDeprecatedAlias:
    """The old ``EnvironmentError`` name (which shadowed the builtin)
    must keep importing, raising and catching through the alias."""

    def test_alias_warns_and_resolves(self):
        import repro.runtime.adaptive as adaptive

        with pytest.warns(DeprecationWarning, match="AdaptiveEnvironmentError"):
            alias = getattr(adaptive, "EnvironmentError")
        assert alias is adaptive.AdaptiveEnvironmentError

    def test_package_alias_warns_and_resolves(self):
        import repro.runtime as runtime

        with pytest.warns(DeprecationWarning):
            alias = getattr(runtime, "EnvironmentError")
        assert alias is runtime.AdaptiveEnvironmentError

    def test_alias_still_raises_and_catches(self, paper_example):
        import repro.runtime.adaptive as adaptive

        with pytest.warns(DeprecationWarning):
            alias = getattr(adaptive, "EnvironmentError")
        # Raised as the new class, caught via the old name (same object).
        try:
            BurstyEnvironment(paper_example, dwell=2.0)
        except alias as exc:
            assert isinstance(exc, adaptive.AdaptiveEnvironmentError)
            assert isinstance(exc, ValueError)
        else:  # pragma: no cover - the constructor must reject dwell=2.0
            raise AssertionError("expected the alias to catch the raise")

    def test_unknown_attribute_still_raises(self):
        import repro.runtime.adaptive as adaptive

        with pytest.raises(AttributeError):
            adaptive.NoSuchThing


class TestUniform:
    def test_trace_length_and_validity(self, paper_example):
        env = UniformEnvironment(paper_example)
        trace = env.trace(100, seed=1)
        names = {c.name for c in paper_example.configurations}
        assert len(trace) == 100
        assert set(trace) <= names

    def test_never_repeats_consecutively(self, paper_example):
        trace = UniformEnvironment(paper_example).trace(200, seed=2)
        assert all(a != b for a, b in zip(trace, trace[1:]))

    def test_deterministic_per_seed(self, paper_example):
        env = UniformEnvironment(paper_example)
        assert env.trace(50, seed=3) == env.trace(50, seed=3)
        assert env.trace(50, seed=3) != env.trace(50, seed=4)

    def test_negative_length(self, paper_example):
        with pytest.raises(ValueError):
            UniformEnvironment(paper_example).trace(-1)

    def test_covers_all_configurations_eventually(self, paper_example):
        trace = UniformEnvironment(paper_example).trace(500, seed=5)
        assert set(trace) == {c.name for c in paper_example.configurations}


class TestMarkov:
    def _env(self, design):
        return uniform_markov(design)

    def test_row_sums_validated(self, paper_example):
        names = [c.name for c in paper_example.configurations]
        bad = {src: {names[0]: 0.5} for src in names}
        with pytest.raises(EnvironmentError, match="sums to"):
            MarkovEnvironment(paper_example, bad)

    def test_unknown_configuration_rejected(self, paper_example):
        with pytest.raises(EnvironmentError, match="unknown source"):
            MarkovEnvironment(paper_example, {"nope": {"Conf.1": 1.0}})

    def test_unknown_destination_rejected(self, paper_example):
        names = [c.name for c in paper_example.configurations]
        matrix = {src: {"ghost": 1.0} for src in names}
        with pytest.raises(EnvironmentError, match="unknown destination"):
            MarkovEnvironment(paper_example, matrix)

    def test_negative_probability_rejected(self, paper_example):
        names = [c.name for c in paper_example.configurations]
        matrix = {
            src: {names[0]: -1.0, names[1]: 2.0} for src in names
        }
        with pytest.raises(EnvironmentError, match="negative"):
            MarkovEnvironment(paper_example, matrix)

    def test_missing_rows_rejected(self, paper_example):
        with pytest.raises(EnvironmentError, match="missing rows"):
            MarkovEnvironment(paper_example, {"Conf.1": {"Conf.2": 1.0}})

    def test_trace_respects_support(self, paper_example):
        # A two-state cycle embedded in the five configurations.
        names = [c.name for c in paper_example.configurations]
        matrix = {src: {names[0]: 1.0} for src in names}
        matrix[names[0]] = {names[1]: 1.0}
        env = MarkovEnvironment(paper_example, matrix)
        trace = env.trace(20, seed=0, start=names[0])
        assert set(trace) == {names[0], names[1]}

    def test_trace_start_validation(self, paper_example):
        env = self._env(paper_example)
        with pytest.raises(EnvironmentError):
            env.trace(5, start="ghost")

    def test_pair_probabilities_sum_to_switch_rate(self, paper_example):
        env = self._env(paper_example)
        pairs = env.pair_probabilities()
        # Uniform chain never self-transitions: mass sums to 1.
        assert sum(pairs.values()) == pytest.approx(1.0)
        # Unordered keys.
        for a, b in pairs:
            assert a < b

    def test_uniform_markov_equivalence(self, paper_example):
        env = uniform_markov(paper_example)
        trace = env.trace(300, seed=7)
        assert all(a != b for a, b in zip(trace, trace[1:]))

    def test_uniform_markov_needs_two_configs(self):
        from ..conftest import make_design

        d = make_design({"A": {"a": (1, 0, 0)}}, [("a",)])
        with pytest.raises(EnvironmentError):
            uniform_markov(d)


class TestBursty:
    def test_dwell_bounds(self, paper_example):
        with pytest.raises(EnvironmentError):
            BurstyEnvironment(paper_example, dwell=1.0)
        with pytest.raises(EnvironmentError):
            BurstyEnvironment(paper_example, dwell=-0.1)

    def test_high_dwell_produces_runs(self, paper_example):
        trace = BurstyEnvironment(paper_example, dwell=0.95).trace(400, seed=1)
        switches = sum(1 for a, b in zip(trace, trace[1:]) if a != b)
        assert switches < 0.15 * len(trace)

    def test_zero_dwell_switches_every_step(self, paper_example):
        trace = BurstyEnvironment(paper_example, dwell=0.0).trace(50, seed=1)
        assert all(a != b for a, b in zip(trace, trace[1:]))

    def test_negative_length(self, paper_example):
        with pytest.raises(ValueError):
            BurstyEnvironment(paper_example).trace(-2)


class TestRuntimeIntegration:
    def test_uniform_trace_mean_approximates_pairwise_average(self, receiver):
        """Long uniform traces converge to the all-pairs average that the
        paper's Eq. 7 total is a proxy for."""
        from repro.core.baselines import one_module_per_region_scheme
        from repro.core.cost import total_reconfiguration_frames
        from repro.runtime.manager import replay

        scheme = one_module_per_region_scheme(receiver)
        n = receiver.configuration_count
        analytic_mean = total_reconfiguration_frames(scheme) / (n * (n - 1) / 2)
        trace = UniformEnvironment(receiver).trace(4000, seed=11)
        stats = replay(scheme, trace)
        # The trace mean differs from the analytic mean because stale
        # content persists across more than one hop; it must still land
        # within a factor of two for a scheme with per-module regions.
        assert 0.5 * analytic_mean < stats.mean_frames < 1.5 * analytic_mean
