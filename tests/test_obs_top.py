"""The fleet view behind ``repro obs top``: incremental folding of
sink records into operator state, and the rendered frame."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.obs import FleetView, render_top
from repro.obs.sink import SINK_VERSION


def rec(kind, ts=None, **fields):
    record = {"v": SINK_VERSION, "kind": kind, "ts": ts}
    record.update(fields)
    return record


@pytest.fixture
def busy_view():
    view = FleetView()
    for record in [
        rec("pool", ts=100.0, phase="start", pending=10, workers=2,
            in_flight=0, queue_depth=10),
        rec("event", ts=100.5, name="batch.job_started",
            payload={"job": "job-a"}),
        rec("event", ts=100.6, name="batch.job_started",
            payload={"job": "job-b"}),
        rec("pool", ts=100.6, in_flight=2, queue_depth=8),
        rec("resource", ts=101.0, pid=41, live=True, rss_peak_mb=80.0,
            cpu_user_s=50.0, cpu_sys_s=50.0, job="job-a"),
        rec("job", ts=102.0, job="job-a", status="done",
            replay={"traces": 4}),
        rec("resource", ts=102.0, pid=41, live=False, rss_peak_mb=90.0,
            cpu_user_s=1.5, cpu_sys_s=0.5, job="job-a"),
        rec("job", ts=103.0, job="job-b", status="cached"),
        rec("job", ts=104.0, job="job-c", status="failed", timeout=True),
        rec("job", ts=104.5, job="job-d", status="retried"),
        rec("mystery", ts=104.6),  # unknown kinds are counted only
    ]:
        view.fold(record)
    return view


class TestFolding:
    def test_pool_records(self, busy_view):
        assert busy_view.submitted == 10 and busy_view.workers == 2
        assert busy_view.in_flight == 2 and busy_view.queue_depth == 8

    def test_job_outcomes(self, busy_view):
        assert busy_view.done == 1 and busy_view.cached == 1
        assert busy_view.failed == 1 and busy_view.retried == 1
        assert busy_view.timeouts == 1
        assert busy_view.cells == 4  # micro-batched replay traces

    def test_in_flight_jobs_clear_on_outcome(self, busy_view):
        # job-a and job-b started and finished; nothing dangles.
        assert busy_view.in_flight_jobs == {}

    def test_in_flight_job_dangles_until_outcome(self):
        view = FleetView()
        view.fold(rec("event", ts=1.0, name="batch.job_started",
                      payload={"job": "slow"}))
        assert "slow" in view.in_flight_jobs
        view.fold(rec("job", ts=9.0, job="slow", status="done"))
        assert view.in_flight_jobs == {}

    def test_worker_views(self, busy_view):
        (worker,) = busy_view.worker_views.values()
        assert worker.pid == 41
        assert worker.rss_peak_mb == 90.0  # high-water across samples
        assert worker.cpu_s == 2.0  # job deltas only, never live counters
        assert worker.jobs == 1
        assert worker.last_job == "job-a"
        assert worker.live is False  # the job sample was the latest

    def test_record_count_includes_unknown_kinds(self, busy_view):
        assert busy_view.records == 11

    def test_derived_rates(self, busy_view):
        assert busy_view.drained == 3 and busy_view.remaining == 7
        assert busy_view.elapsed_s == pytest.approx(4.6)
        assert busy_view.cache_hit_rate == pytest.approx(1 / 3)
        assert busy_view.jobs_per_s == pytest.approx(3 / 4.6)
        assert busy_view.cells_per_s == pytest.approx(4 / 4.6)
        assert busy_view.eta_s == pytest.approx(7 / (3 / 4.6))

    def test_empty_view_has_no_rates(self):
        view = FleetView()
        assert view.jobs_per_s == 0.0 and view.eta_s is None
        assert view.cache_hit_rate == 0.0 and view.elapsed_s == 0.0


class TestRenderTop:
    def test_empty_frame(self):
        text = render_top(FleetView(), directory="tele")
        assert "fleet @ tele" in text
        assert "no telemetry records yet" in text

    def test_busy_frame(self, busy_view):
        text = render_top(busy_view, directory="tele")
        assert "3/10 drained" in text
        assert "1 computed + 1 cached + 1 failed" in text
        assert "retries 1" in text and "timeouts 1" in text
        assert "2 in-flight, queue 8, 2 worker(s)" in text
        assert "cells/s" in text and "eta ~" in text
        assert "pid 41" in text and "rss 90.0 MiB" in text

    def test_dangling_job_shows_age(self):
        view = FleetView()
        view.fold(rec("pool", ts=0.0, phase="start", pending=1, workers=1,
                      in_flight=1, queue_depth=0))
        view.fold(rec("event", ts=1.0, name="batch.job_started",
                      payload={"job": "slow-one"}))
        view.fold(rec("event", ts=11.0, name="tick", payload={}))
        text = render_top(view)
        assert "in-flight jobs:" in text
        assert "slow-one (10.0s)" in text


class TestObsTopCli:
    def test_once_renders_real_run(self, tmp_path, tiny_design, capsys):
        from repro.flow.xmlio import save_design

        design = tmp_path / "design.xml"
        save_design(tiny_design, design)
        queue = str(tmp_path / "queue")
        tele = str(tmp_path / "tele")
        main(["batch", "submit", "--queue", queue, str(design),
              "--device", "LX30"])
        assert main(["batch", "run", "--queue", queue,
                     "--telemetry-dir", tele]) == 0
        capsys.readouterr()
        assert main(["obs", "top", tele, "--once"]) == 0
        out = capsys.readouterr().out
        assert "fleet @" in out
        assert "1/1 drained" in out
        assert "runs finished: 1" in out

    def test_once_on_empty_directory(self, tmp_path, capsys):
        assert main(["obs", "top", str(tmp_path / "ghost"), "--once"]) == 0
        assert "no telemetry records yet" in capsys.readouterr().out
