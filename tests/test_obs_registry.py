"""The run registry: durable start/finish folding, crash honesty,
config digests, and the ``repro obs runs`` listing."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs import RegistryError, RunRegistry, config_digest


class FakeClock:
    def __init__(self, start: float = 1000.0, step: float = 10.0):
        self.now, self.step = start, step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


def make_registry(tmp_path, **kwargs):
    ids = iter(f"run-{i:03d}" for i in range(100))
    kwargs.setdefault("clock", FakeClock())
    kwargs.setdefault("id_factory", lambda: next(ids))
    return RunRegistry(tmp_path / "registry", **kwargs)


class TestConfigDigest:
    def test_stable_across_key_order(self):
        assert config_digest({"a": 1, "b": 2}) == config_digest({"b": 2, "a": 1})

    def test_distinct_configs_distinct_digests(self):
        assert config_digest({"workers": 1}) != config_digest({"workers": 2})

    def test_none_is_empty_config(self):
        assert config_digest(None) == config_digest({})


class TestStartFinish:
    def test_finish_folds_into_entry(self, tmp_path):
        registry = make_registry(tmp_path)
        run_id = registry.start(
            kinds=["replay", "partition"], jobs=7, workers=2,
            config={"workers": 2}, telemetry=tmp_path / "tele",
            meta={"command": "test"},
        )
        registry.finish(run_id, summary={"done": 7, "failed": 0})
        (entry,) = registry.entries()
        assert entry.run_id == run_id
        assert entry.status == "done"
        assert entry.kinds == ("partition", "replay")  # sorted, deduped
        assert entry.jobs == 7 and entry.workers == 2
        assert entry.config_digest == config_digest({"workers": 2})
        assert entry.telemetry == str(tmp_path / "tele")
        assert entry.summary == {"done": 7, "failed": 0}
        assert entry.meta == {"command": "test"}
        assert entry.duration_s == 10.0  # FakeClock step

    def test_crashed_run_lists_as_running(self, tmp_path):
        registry = make_registry(tmp_path)
        registry.start(jobs=3)
        (entry,) = registry.entries()
        assert entry.status == "running"
        assert entry.finished_ts is None and entry.duration_s is None

    def test_failed_status(self, tmp_path):
        registry = make_registry(tmp_path)
        run_id = registry.start()
        registry.finish(run_id, status="failed", summary={"failed": 1})
        assert registry.entries()[0].status == "failed"

    def test_invalid_finish_status_rejected(self, tmp_path):
        registry = make_registry(tmp_path)
        run_id = registry.start()
        with pytest.raises(RegistryError):
            registry.finish(run_id, status="exploded")

    def test_entries_ordered_by_start(self, tmp_path):
        registry = make_registry(tmp_path)
        first = registry.start()
        second = registry.start()
        registry.finish(second)
        ids = [e.run_id for e in registry.entries()]
        assert ids == [first, second]

    def test_get_by_id_and_unknown(self, tmp_path):
        registry = make_registry(tmp_path)
        run_id = registry.start()
        assert registry.get(run_id).run_id == run_id
        with pytest.raises(RegistryError, match="unknown run"):
            registry.get("nope")

    def test_default_ids_are_unique(self, tmp_path):
        registry = RunRegistry(tmp_path / "registry")
        ids = {registry.start() for _ in range(5)}
        assert len(ids) == 5


class TestCrashSafety:
    def test_torn_tail_is_dropped_on_read(self, tmp_path):
        registry = make_registry(tmp_path)
        run_id = registry.start(jobs=1)
        registry.finish(run_id)
        raw = registry.path.read_bytes()
        registry.path.write_bytes(raw[:-9])  # tear the finish record
        (entry,) = make_registry(tmp_path).entries()
        assert entry.status == "running"  # the finish never landed

    def test_reopen_heals_tail_before_append(self, tmp_path):
        registry = make_registry(tmp_path)
        registry.start(jobs=1)
        raw = registry.path.read_bytes()
        registry.path.write_bytes(raw + b'{"torn')
        healed = make_registry(tmp_path, id_factory=lambda: "run-healed")
        healed.start(jobs=2)
        assert len(healed.entries()) == 2

    def test_mid_file_corruption_raises(self, tmp_path):
        registry = make_registry(tmp_path)
        registry.path.write_text(
            'not json\n'
            '{"v": 1, "event": "start", "run": "r1", "ts": 1}\n',
            encoding="utf-8",
        )
        with pytest.raises(RegistryError):
            registry.entries()

    def test_unknown_event_raises(self, tmp_path):
        registry = make_registry(tmp_path)
        registry.path.write_text(
            '{"v": 1, "event": "mystery", "run": "r1", "ts": 1}\n',
            encoding="utf-8",
        )
        with pytest.raises(RegistryError, match="unknown registry event"):
            registry.entries()

    def test_wrong_version_raises(self, tmp_path):
        registry = make_registry(tmp_path)
        registry.path.write_text(
            '{"v": 99, "event": "start", "run": "r1", "ts": 1}\n',
            encoding="utf-8",
        )
        with pytest.raises(RegistryError, match="version"):
            registry.entries()


class TestRunBatchIntegration:
    def test_run_batch_registers_start_and_finish(self, tmp_path, tiny_design):
        from repro.flow.xmlio import design_to_xml
        from repro.service import JobStore, ResultCache, run_batch

        store = JobStore.open(tmp_path / "queue")
        cache = ResultCache(tmp_path / "cache")
        store.submit(
            name="one",
            design_xml=design_to_xml(tiny_design, device_name="LX30"),
            device="LX30",
        )
        registry = make_registry(tmp_path)
        report = run_batch(store, cache, registry=registry,
                           run_meta={"command": "test"})
        assert report.done == 1
        (entry,) = registry.entries()
        assert entry.status == "done"
        assert entry.kinds == ("partition",)
        assert entry.jobs == 1
        assert entry.summary["done"] == 1
        assert entry.meta == {"command": "test"}


class TestObsRunsCli:
    def _populate(self, tmp_path):
        registry = make_registry(tmp_path)
        run_id = registry.start(kinds=["replay"], jobs=4, workers=2,
                                config={"workers": 2})
        registry.finish(run_id, summary={
            "done": 4, "failed": 0, "cache_hit_rate": 0.25,
        })
        registry.start(kinds=["partition"], jobs=1)  # still running
        return str(tmp_path / "registry")

    def test_runs_lists_entries(self, tmp_path, capsys):
        directory = self._populate(tmp_path)
        assert main(["obs", "runs", directory]) == 0
        out = capsys.readouterr().out
        assert "run-000" in out and "run-001" in out
        assert "done" in out and "running" in out
        assert "hit=25%" in out

    def test_runs_json(self, tmp_path, capsys):
        directory = self._populate(tmp_path)
        assert main(["obs", "runs", directory, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert [e["status"] for e in doc] == ["done", "running"]

    def test_empty_registry(self, tmp_path, capsys):
        assert main(["obs", "runs", str(tmp_path / "fresh")]) == 0
        assert "no registered runs" in capsys.readouterr().out

    def test_corrupt_registry_errors(self, tmp_path, capsys):
        bad = tmp_path / "bad"
        bad.mkdir()
        (bad / "runs.jsonl").write_text(
            'junk\n{"v": 1, "event": "start", "run": "r", "ts": 1}\n',
            encoding="utf-8",
        )
        assert main(["obs", "runs", str(bad)]) == 1
        assert "error" in capsys.readouterr().err
