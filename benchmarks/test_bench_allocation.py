"""Merge-search engine benches: incremental vs reference, fan-out scaling.

Measures the speedup of the heap-driven ``"incremental"`` engine over
the ``"reference"`` rescan engine on large synthetic designs while
asserting the two agree bit-for-bit (the differential gate of
``tests/core/test_engine_differential.py``, run here at bench size),
and records per-worker-count timings of the parallel restart fan-out.

Sizes are environment-tunable so the CI smoke job can run a tiny
configuration:

* ``REPRO_BENCH_ALLOC_DESIGNS`` -- designs per bench (default 4);
* ``REPRO_BENCH_ALLOC_CONFIG``  -- ``large`` (default; the Sec. V upper
  band: 6-8 modules, 3-4 modes) or ``small``.

Results land in ``BENCH_allocation.json`` (see conftest); the committed
copy holds a full-size run quoted by docs/PERFORMANCE.md.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.arch.resources import ResourceVector
from repro.arch.tiles import quantised_footprint
from repro.core.allocation import AllocationOptions
from repro.core.partitioner import PartitionerOptions, partition
from repro.synth.generator import GeneratorConfig, generate_design
from repro.synth.profiles import CIRCUIT_CLASSES

DESIGNS = int(os.environ.get("REPRO_BENCH_ALLOC_DESIGNS", "4"))
CONFIG = os.environ.get("REPRO_BENCH_ALLOC_CONFIG", "large")

GENERATOR = (
    GeneratorConfig(min_modules=6, max_modules=8, min_modes=3, max_modes=4)
    if CONFIG == "large"
    else GeneratorConfig(max_modules=4, max_modes=3)
)


def _designs(count=None, seed0=7000):
    out = []
    for k in range(count or DESIGNS):
        rng = np.random.default_rng(seed0 + k)
        out.append(
            generate_design(
                rng,
                CIRCUIT_CLASSES[k % len(CIRCUIT_CLASSES)],
                f"bench{k}",
                GENERATOR,
            )
        )
    return out


def _capacity(design, scale=1.4):
    total = ResourceVector.sum(m.resources for m in design.all_modes)
    q = quantised_footprint(total)
    return ResourceVector(
        clb=int(q.clb * scale) + 20,
        bram=int(q.bram * scale) + 4,
        dsp=int(q.dsp * scale) + 8,
    )


def _run(design, engine, parallel=None):
    opts = PartitionerOptions(
        allocation=AllocationOptions(engine=engine, parallel_restarts=parallel)
    )
    t0 = time.perf_counter()
    result = partition(design, _capacity(design), opts)
    elapsed = time.perf_counter() - t0
    fingerprint = (
        tuple((r.name, r.labels, r.frames) for r in result.scheme.regions),
        result.total_frames,
        result.worst_frames,
        result.objective,
    )
    return elapsed, fingerprint


def test_engine_speedup(bench_record):
    """Reference vs incremental wall time; results must be bit-identical."""
    t_ref = t_inc = 0.0
    per_design = []
    for design in _designs():
        d_ref, fp_ref = _run(design, "reference")
        d_inc, fp_inc = _run(design, "incremental")
        assert fp_ref == fp_inc, f"engines disagree on {design.name}"
        t_ref += d_ref
        t_inc += d_inc
        per_design.append(
            {
                "design": design.name,
                "reference_s": round(d_ref, 3),
                "incremental_s": round(d_inc, 3),
            }
        )
    speedup = t_ref / max(t_inc, 1e-9)
    bench_record(
        config=CONFIG,
        designs=DESIGNS,
        reference_s=round(t_ref, 3),
        incremental_s=round(t_inc, 3),
        speedup=round(speedup, 2),
        per_design=per_design,
    )
    print(
        f"\nengine speedup ({DESIGNS} {CONFIG} designs): "
        f"reference {t_ref:.2f}s vs incremental {t_inc:.2f}s "
        f"-> {speedup:.2f}x"
    )
    # Tiny smoke designs are setup-dominated; the speedup claim is only
    # meaningful (and asserted) at the full bench size.
    if CONFIG == "large":
        assert speedup > 1.5


def test_parallel_fanout_scaling(bench_record):
    """Wall time per worker count; fan-out must stay deterministic.

    On a single-core host the extra processes cannot help (the committed
    run records that honestly); the assertion is determinism + quality,
    not speedup.
    """
    design = _designs(count=1, seed0=7100)[0]
    base_time, base_fp = _run(design, "incremental")
    rows = [{"workers": 1, "seconds": round(base_time, 3)}]
    for workers in (2, 4):
        elapsed, fp = _run(design, "incremental", parallel=workers)
        again, fp2 = _run(design, "incremental", parallel=workers)
        assert fp == fp2, f"fan-out with {workers} workers not deterministic"
        # Superset exploration: never worse than the sequential search.
        assert fp[3] <= base_fp[3]
        rows.append(
            {"workers": workers, "seconds": round(min(elapsed, again), 3)}
        )
    bench_record(parallel_scaling=rows, cpu_count=os.cpu_count())
    print(f"\nparallel fan-out scaling: {rows}")


def test_bounded_search_speedup(bench_record):
    """Unbounded vs pruned+beamed incremental search.

    The bound is exact for unweighted costs, so the bounded run must
    land on a cost no worse than the unbounded one.  Exact pair stats
    are memoised across restarts, so on re-visited pairs an evaluation
    is already a dict hit and the beam cannot beat the default heap on
    wall clock here; what it buys -- and what this bench records
    alongside the honest timings -- is the cut in exact evaluations and
    therefore in merge-cache materialisation (``search.nodes_expanded``,
    see docs/PERFORMANCE.md "Pruning, beams, and portfolio").
    """
    from repro.obs import RecordingTracer

    def _bounded_run(design, **alloc):
        opts = PartitionerOptions(allocation=AllocationOptions(**alloc))
        tracer = RecordingTracer()
        t0 = time.perf_counter()
        result = partition(design, _capacity(design), opts, tracer)
        elapsed = time.perf_counter() - t0
        return elapsed, result.objective, tracer.counters

    t_plain = t_bounded = 0.0
    eval_plain = eval_bounded = 0
    per_design = []
    for design in _designs(seed0=7200):
        d_plain, cost_plain, c_plain = _bounded_run(design)
        d_bounded, cost_bounded, c_bounded = _bounded_run(
            design, beam_width=8, prune=True
        )
        assert cost_bounded <= cost_plain, (
            f"bounded search worse on {design.name}: "
            f"{cost_bounded} > {cost_plain}"
        )
        assert (
            c_bounded["search.nodes_expanded"]
            <= c_plain["search.nodes_expanded"]
        )
        t_plain += d_plain
        t_bounded += d_bounded
        eval_plain += int(c_plain["search.nodes_expanded"])
        eval_bounded += int(c_bounded["search.nodes_expanded"])
        per_design.append(
            {
                "design": design.name,
                "unbounded_s": round(d_plain, 3),
                "bounded_s": round(d_bounded, 3),
            }
        )
    speedup = t_plain / max(t_bounded, 1e-9)
    bench_record(
        bounded_search={
            "beam_width": 8,
            "prune": True,
            "unbounded_s": round(t_plain, 3),
            "bounded_s": round(t_bounded, 3),
            "speedup": round(speedup, 2),
            "exact_evaluations_unbounded": eval_plain,
            "exact_evaluations_bounded": eval_bounded,
            "per_design": per_design,
        }
    )
    print(
        f"\nbounded search ({DESIGNS} {CONFIG} designs): "
        f"unbounded {t_plain:.2f}s vs beam=8+prune {t_bounded:.2f}s "
        f"-> {speedup:.2f}x wall, "
        f"{eval_plain} -> {eval_bounded} exact evaluations"
    )


def test_partition_incremental(benchmark):
    """pytest-benchmark stats for the default engine on one bench design."""
    design = _designs(count=1)[0]
    capacity = _capacity(design)
    result = benchmark.pedantic(
        partition, args=(design, capacity), rounds=1, iterations=1
    )
    assert result.total_frames > 0
