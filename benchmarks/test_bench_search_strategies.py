"""Search-strategy comparison: the paper's restarted greedy vs
simulated annealing (ref. [7]'s strategy) vs the exhaustive optimum.

Not a paper figure -- this bench substantiates the paper's Sec. II claim
that its approach suits adaptive systems better than SA-based prior work
by racing both on the same objective and state space.
"""

from __future__ import annotations

import time

import pytest

from repro.arch.resources import ResourceVector
from repro.core.annealing import AnnealingOptions, partition_annealing
from repro.core.cost import total_reconfiguration_frames
from repro.core.exact import partition_exact
from repro.core.partitioner import partition
from repro.eval.casestudy import CASESTUDY_BUDGET, casestudy_design
from repro.eval.example_design import example_design
from repro.eval.report import render_table


def test_greedy_vs_annealing_vs_exact(benchmark):
    """Running example: all three strategies, quality and runtime."""
    design = example_design()
    budget = ResourceVector(520, 16, 16)

    rows = []

    t0 = time.perf_counter()
    greedy = partition(design, budget)
    rows.append(("restarted greedy (paper)", greedy.total_frames,
                 f"{(time.perf_counter() - t0) * 1e3:.0f} ms"))

    t0 = time.perf_counter()
    sa_best = min(
        total_reconfiguration_frames(
            partition_annealing(
                design, budget, options=AnnealingOptions(steps=4000, seed=s)
            )
        )
        for s in (0, 1, 2)
    )
    rows.append(("simulated annealing (3 seeds)", sa_best,
                 f"{(time.perf_counter() - t0) * 1e3:.0f} ms"))

    t0 = time.perf_counter()
    exact = total_reconfiguration_frames(partition_exact(design, budget))
    rows.append(("exhaustive optimum", exact,
                 f"{(time.perf_counter() - t0) * 1e3:.0f} ms"))

    benchmark(partition, design, budget)
    print()
    print(render_table(
        ("strategy", "total frames", "runtime"),
        rows,
        title="search strategies on the running example",
    ))
    assert greedy.total_frames == exact
    assert sa_best >= exact


def test_casestudy_strategy_race(benchmark):
    """Case study: greedy vs SA at the paper's budget."""
    design = casestudy_design()
    greedy = partition(design, CASESTUDY_BUDGET)
    sa = partition_annealing(
        design,
        CASESTUDY_BUDGET,
        options=AnnealingOptions(steps=6000, seed=0),
        max_candidate_sets=2,
    )
    sa_total = total_reconfiguration_frames(sa)
    benchmark(
        partition_annealing,
        design,
        CASESTUDY_BUDGET,
        options=AnnealingOptions(steps=2000, seed=0),
        max_candidate_sets=1,
    )
    print()
    print(
        f"greedy: {greedy.total_frames} frames; "
        f"SA (6000 steps): {sa_total} frames "
        f"({100 * (sa_total - greedy.total_frames) / greedy.total_frames:+.1f}%)"
    )
    # The paper-faithful greedy must not lose to SA at comparable effort.
    assert greedy.total_frames <= sa_total
