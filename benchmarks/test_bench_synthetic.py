"""Benches for the synthetic evaluation: Figs. 7, 8, 9 and the Sec. V
prose counts.

The session-scoped ``sweep`` fixture evaluates the population once
(``REPRO_SWEEP_DESIGNS`` designs, default 200; the paper used 1000 --
pass ``--sweep-designs 1000`` for the full run).  The benches here time
representative single-design work and print the regenerated figures.
"""

from __future__ import annotations

import pytest

from repro.arch.library import virtex5_ladder
from repro.core.partitioner import partition_with_device_selection
from repro.eval import experiments as E
from repro.synth.generator import generate_population


@pytest.fixture(scope="module")
def one_design():
    (pair,) = list(generate_population(1, seed=E.DEFAULT_SWEEP_SEED))
    return pair[1]


def test_fig7_total_reconfiguration_time(benchmark, sweep, one_design):
    """Fig. 7: total reconfiguration time, three schemes, sorted by
    device.  The bench times one full device-selected partitioning."""
    library = virtex5_ladder()
    benchmark(partition_with_device_selection, one_design, library)

    series = sweep.total_time_series()
    n = sweep.n
    print()
    print(E.render_fig7(sweep))
    # Shape assertions from the paper's Fig. 7 discussion:
    assert sum(series["single-region"]) > sum(series["proposed"])
    assert sum(series["modular"]) >= sum(series["proposed"])
    assert n == len(series["proposed"])


def test_fig8_worst_reconfiguration_time(benchmark, sweep):
    """Fig. 8: worst-case reconfiguration time, same axes."""
    series = benchmark(sweep.worst_time_series)
    print()
    print(E.render_fig8(sweep))
    # Paper: proposed almost always beats modular on worst case; the
    # single-region scheme sometimes has the lowest worst case.
    assert sum(series["modular"]) >= sum(series["proposed"])


def test_fig9_improvement_histograms(benchmark, sweep):
    """Fig. 9(a-d): percentage-improvement histograms."""
    profiles = benchmark(sweep.profiles)
    print()
    print(E.render_fig9(sweep))
    # (a) total vs modular: majority better (paper 73%).
    assert profiles["a"].fraction_better > 0.5
    # (b) total vs single-region: never worse (paper: all cases).
    assert profiles["b"].fraction_better_or_equal == 1.0
    # (c) worst vs modular: majority better (paper 70%).
    assert profiles["c"].fraction_better > 0.5
    # (d) worst vs single-region: mixed, as in the paper (87.5%).
    assert profiles["d"].fraction_better_or_equal > 0.5


def test_device_escalation_counts(benchmark, sweep):
    """Sec. V: 201/1000 designs escalate; 13/1000 fit a smaller device
    than the modular scheme needs."""
    counts = benchmark(sweep.headline_counts)
    print()
    print(E.render_headlines(sweep))
    assert counts["skipped"] == 0
    # Escalations occur but remain the minority (paper: 20.1%).
    assert 0 < counts["escalated_pct"] < 60
    # Some designs fit a smaller device than modular requires (paper: 13).
    assert counts["smaller_than_modular"] >= 1


def test_partitioner_runtime_envelope(benchmark, sweep):
    """Paper: "between a few seconds and one minute" per design (2013
    hardware).  Our per-design mean must stay well inside that."""
    counts = benchmark(sweep.headline_counts)
    assert counts["mean_runtime_s"] < 10.0


def test_sweep_analysis(benchmark, sweep):
    """Beyond the paper: per-class, structural and trade-off analysis of
    the same sweep (see repro.eval.analysis)."""
    from repro.eval.analysis import by_circuit_class, render_analysis

    breakdown = benchmark(by_circuit_class, sweep)
    assert sum(b.n for b in breakdown) == sweep.n
    print()
    print(render_analysis(sweep))
