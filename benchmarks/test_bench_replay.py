"""Replay-subsystem benches: engine throughput and the fleet sweep.

Two quantities the docs quote (docs/REPLAY.md "Measured numbers"):

* engine throughput -- events/second of the pure replay loop on a
  10k-event bursty trace over the case-study scheme, per policy;
* the fleet sweep -- ``REPRO_BENCH_REPLAY_TRACES`` synthesized traces
  (default 1000, the paper's population scale) x 3 policies through
  ``run_batch``, cold vs. fully cached.

The warm-sweep assertion is architectural and must always hold: a
second submission of the same suite serves every feasible cell from
the replay store in phase 1 of the batch runner, so only the designs
the device library cannot fit (the synthetic generator intentionally
overshoots sometimes) re-enter a worker.  Those infeasible designs
fail identically on both runs -- they are counted, recorded, and
excluded from the cache-hit accounting.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core.partitioner import partition
from repro.eval.casestudy import CASESTUDY_BUDGET, casestudy_design
from repro.eval.report import render_table
from repro.replay import (
    TraceSpec,
    WorkloadSuite,
    iter_trace,
    replay_store_for,
    replay_trace,
    submit_replay_suite,
)
from repro.replay.trace import config_names
from repro.service import JobStore, ResultCache, run_batch

#: Fleet size knob: total synthesized traces in the sweep (CI smoke
#: sets a tiny value; the committed record uses the default).
REPLAY_TRACES = int(os.environ.get("REPRO_BENCH_REPLAY_TRACES", "1000"))
TRACES_PER_DESIGN = 3
DESIGNS = max((REPLAY_TRACES + TRACES_PER_DESIGN - 1) // TRACES_PER_DESIGN, 1)
POLICIES = ("no-prefetch", "prefetch-oracle", "evict-lru")
#: Events per synthesized trace; short on purpose -- the sweep bench
#: measures the service path, the throughput bench measures the engine.
SWEEP_LENGTH = 64
MAX_SETS = 3
SEED = 2013
ENGINE_EVENTS = 10_000


@pytest.fixture(scope="module")
def casestudy_scheme():
    return partition(casestudy_design(), CASESTUDY_BUDGET).scheme


def test_engine_throughput(benchmark, bench_record, casestudy_scheme):
    """Events/second of the replay loop, per policy, on one long trace."""
    names = config_names(casestudy_scheme.design)
    spec = TraceSpec(environment="bursty", length=ENGINE_EVENTS, seed=7)
    # Pre-materialise so the bench times the engine, not the rng stream.
    trace = list(iter_trace(names, spec))

    result = benchmark(replay_trace, casestudy_scheme, trace)
    assert result.events == ENGINE_EVENTS
    assert result.switches > 0

    rows = []
    rates = {}
    for policy in POLICIES:
        t0 = time.perf_counter()
        replay_trace(casestudy_scheme, trace, policy)
        wall = time.perf_counter() - t0
        rates[policy] = ENGINE_EVENTS / wall
        rows.append((policy, f"{rates[policy]:,.0f}"))
    print()
    print(render_table(("policy", "events/s"), rows,
                       title=f"replay engine, {ENGINE_EVENTS}-event trace"))
    bench_record(
        engine_events=ENGINE_EVENTS,
        engine_events_per_s={k: round(v) for k, v in rates.items()},
    )


def _submit(tmp_path, tag, suite):
    store = JobStore(tmp_path / f"queue-{tag}")
    jobs = submit_replay_suite(
        store, suite, POLICIES, max_candidate_sets=MAX_SETS, max_attempts=1
    )
    return store, jobs


def test_fleet_sweep_cold_vs_cached(tmp_path, bench_record):
    """The acceptance-scale sweep: cold compute, then a 100% cached re-run."""
    suite = WorkloadSuite(
        designs=DESIGNS,
        traces_per_design=TRACES_PER_DESIGN,
        length=SWEEP_LENGTH,
        seed=SEED,
    )
    workers = os.cpu_count() or 1
    cache = ResultCache(tmp_path / "cache")

    cold_store, jobs = _submit(tmp_path, "cold", suite)
    t0 = time.perf_counter()
    cold = run_batch(cold_store, cache, workers=workers)
    cold_wall = time.perf_counter() - t0
    assert cold.done + cold.failed == len(jobs)
    assert cold.cache_hits == 0
    assert len(replay_store_for(cache)) == cold.done

    warm_store, _ = _submit(tmp_path, "warm", suite)
    t0 = time.perf_counter()
    warm = run_batch(warm_store, cache, workers=workers)
    warm_wall = time.perf_counter() - t0
    # Every feasible cell is served from the replay store in phase 1;
    # only the infeasible designs fail again (identically).
    assert warm.cache_hits == cold.done
    assert warm.done == cold.done
    assert warm.failed == cold.failed

    rows = [
        ("cold", f"{cold_wall:.2f}", f"{cold.done / cold_wall:,.1f}"),
        ("cached", f"{warm_wall:.2f}", f"{warm.done / warm_wall:,.1f}"),
    ]
    print()
    print(render_table(
        ("run", "wall s", "jobs/s"),
        rows,
        title=(
            f"replay sweep: {suite.trace_count} traces x "
            f"{len(POLICIES)} policies, {workers} workers"
        ),
    ))
    bench_record(
        sweep_traces=suite.trace_count,
        sweep_policies=len(POLICIES),
        sweep_jobs=len(jobs),
        sweep_infeasible=cold.failed,
        sweep_cold_s=round(cold_wall, 3),
        sweep_cached_s=round(warm_wall, 3),
        sweep_cached_hits=warm.cache_hits,
        sweep_speedup=round(cold_wall / warm_wall, 2) if warm_wall else None,
        sweep_workers=workers,
    )
    # The architectural claim: serving a fleet from the replay store is
    # never slower than recomputing it.
    assert warm_wall <= cold_wall
