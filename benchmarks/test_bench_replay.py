"""Replay-subsystem benches: engine throughput and the fleet sweep.

Two quantities the docs quote (docs/REPLAY.md "Measured numbers" and
docs/PERFORMANCE.md "Replay throughput"):

* engine throughput -- events/second of the pure replay loop on a
  10k-event bursty trace over the case-study scheme, per policy, plus
  the vectorized kernel vs the reference loop on the same trace;
* the fleet sweep -- ``REPRO_BENCH_REPLAY_TRACES`` synthesized traces
  (default 1000, the paper's population scale) x 3 policies through
  ``run_batch``, cold vs. fully cached, micro-batched
  ``REPRO_BENCH_REPLAY_BATCH`` traces per job.

The sweep's shape is tunable: ``REPRO_BENCH_REPLAY_TPD`` traces per
design (default 24) sets how much each resolved scheme is reused, and
``REPRO_BENCH_REPLAY_BATCH`` (default: one design's traces per job) how
many cells ride in one job.  CI smoke shrinks all of these; the
committed record uses the defaults.

The warm-sweep assertion is architectural and must always hold: a
second submission of the same suite serves every feasible cell from
the replay store in phase 1 of the batch runner, so only the designs
the device library cannot fit (the synthetic generator intentionally
overshoots sometimes) re-enter a worker.  Those infeasible designs
fail identically on both runs -- they are counted, recorded, and
excluded from the cache-hit accounting.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core.partitioner import partition
from repro.eval.casestudy import CASESTUDY_BUDGET, casestudy_design
from repro.eval.report import render_table
from repro.replay import (
    TraceSpec,
    WorkloadSuite,
    iter_trace,
    replay_store_for,
    replay_trace,
    submit_replay_suite,
)
from repro.replay.trace import config_names
from repro.service import JobStore, ResultCache, run_batch

#: Fleet size knob: total synthesized traces in the sweep (CI smoke
#: sets a tiny value; the committed record uses the default).
REPLAY_TRACES = int(os.environ.get("REPRO_BENCH_REPLAY_TRACES", "1000"))
#: Traces per synthesized design: how often one resolved scheme is
#: reused across cells.  High reuse is the fleet-replay shape -- many
#: environment/seed cells against one deployed partitioning.
TRACES_PER_DESIGN = int(os.environ.get("REPRO_BENCH_REPLAY_TPD", "96"))
#: Traces per replay job.  Defaults to a whole design's worth, so one
#: job resolves the scheme once and replays every trace against it.
BATCH_SIZE = int(
    os.environ.get("REPRO_BENCH_REPLAY_BATCH", str(TRACES_PER_DESIGN))
)
DESIGNS = max((REPLAY_TRACES + TRACES_PER_DESIGN - 1) // TRACES_PER_DESIGN, 1)
POLICIES = ("no-prefetch", "prefetch-oracle", "evict-lru")
#: Events per synthesized trace; short on purpose -- the sweep bench
#: measures the service path, the throughput bench measures the engine.
SWEEP_LENGTH = 64
MAX_SETS = 3
SEED = 2013
ENGINE_EVENTS = 10_000


@pytest.fixture(scope="module")
def casestudy_scheme():
    return partition(casestudy_design(), CASESTUDY_BUDGET).scheme


def test_engine_throughput(benchmark, bench_record, casestudy_scheme):
    """Events/second of the replay loop, per policy, on one long trace."""
    names = config_names(casestudy_scheme.design)
    spec = TraceSpec(environment="bursty", length=ENGINE_EVENTS, seed=7)
    # Pre-materialise so the bench times the engine, not the rng stream.
    trace = list(iter_trace(names, spec))

    result = benchmark(replay_trace, casestudy_scheme, trace)
    assert result.events == ENGINE_EVENTS
    assert result.switches > 0

    rows = []
    rates = {}
    for policy in POLICIES:
        t0 = time.perf_counter()
        replay_trace(casestudy_scheme, trace, policy)
        wall = time.perf_counter() - t0
        rates[policy] = ENGINE_EVENTS / wall
        rows.append((policy, f"{rates[policy]:,.0f}"))
    # The vectorized kernel vs the reference loop, same policy/trace.
    engine_rates = {}
    for engine in ("vector", "reference"):
        t0 = time.perf_counter()
        replay_trace(casestudy_scheme, trace, "no-prefetch", engine=engine)
        wall = time.perf_counter() - t0
        engine_rates[engine] = ENGINE_EVENTS / wall
        rows.append((f"no-prefetch [{engine}]", f"{engine_rates[engine]:,.0f}"))
    print()
    print(render_table(("policy", "events/s"), rows,
                       title=f"replay engine, {ENGINE_EVENTS}-event trace"))
    bench_record(
        engine_events=ENGINE_EVENTS,
        engine_events_per_s={k: round(v) for k, v in rates.items()},
        engine_events_per_s_vector=round(engine_rates["vector"]),
        engine_events_per_s_reference=round(engine_rates["reference"]),
    )


def _submit(tmp_path, tag, suite):
    store = JobStore(tmp_path / f"queue-{tag}")
    jobs = submit_replay_suite(
        store, suite, POLICIES, max_candidate_sets=MAX_SETS, max_attempts=1,
        batch_size=BATCH_SIZE,
    )
    return store, jobs


def _cells(job):
    """Replay cells (trace x policy points) carried by one job."""
    return len(job.replay["traces"]) if job.kind == "replay-batch" else 1


def test_fleet_sweep_cold_vs_cached(tmp_path, bench_record):
    """The acceptance-scale sweep: cold compute, then a 100% cached re-run."""
    suite = WorkloadSuite(
        designs=DESIGNS,
        traces_per_design=TRACES_PER_DESIGN,
        length=SWEEP_LENGTH,
        seed=SEED,
    )
    workers = os.cpu_count() or 1
    cache = ResultCache(tmp_path / "cache")

    cold_store, jobs = _submit(tmp_path, "cold", suite)
    total_cells = sum(_cells(j) for j in jobs)
    assert total_cells == suite.trace_count * len(POLICIES)
    t0 = time.perf_counter()
    cold = run_batch(cold_store, cache, workers=workers)
    cold_wall = time.perf_counter() - t0
    assert cold.done + cold.failed == len(jobs)
    assert cold.cache_hits == 0
    failed_ids = set(cold.failed_ids)
    done_cells = sum(_cells(j) for j in jobs if j.id not in failed_ids)
    assert len(replay_store_for(cache)) == done_cells

    warm_store, _ = _submit(tmp_path, "warm", suite)
    t0 = time.perf_counter()
    warm = run_batch(warm_store, cache, workers=workers)
    warm_wall = time.perf_counter() - t0
    # Every feasible cell is served from the replay store in phase 1;
    # only the infeasible designs fail again (identically).
    assert warm.cache_hits == cold.done
    assert warm.done == cold.done
    assert warm.failed == cold.failed

    rows = [
        ("cold", f"{cold_wall:.2f}", f"{done_cells / cold_wall:,.1f}"),
        ("cached", f"{warm_wall:.2f}", f"{done_cells / warm_wall:,.1f}"),
    ]
    print()
    print(render_table(
        ("run", "wall s", "cells/s"),
        rows,
        title=(
            f"replay sweep: {suite.trace_count} traces x "
            f"{len(POLICIES)} policies, {workers} workers, "
            f"batch size {BATCH_SIZE}"
        ),
    ))
    bench_record(
        sweep_traces=suite.trace_count,
        sweep_policies=len(POLICIES),
        sweep_jobs=len(jobs),
        sweep_cells=total_cells,
        sweep_done_cells=done_cells,
        sweep_batch_size=BATCH_SIZE,
        sweep_traces_per_design=TRACES_PER_DESIGN,
        sweep_infeasible=cold.failed,
        sweep_cold_s=round(cold_wall, 3),
        sweep_cached_s=round(warm_wall, 3),
        sweep_cells_per_s_cold=round(done_cells / cold_wall, 1),
        sweep_cells_per_s_cached=round(done_cells / warm_wall, 1),
        sweep_cached_hits=warm.cache_hits,
        sweep_speedup=round(cold_wall / warm_wall, 2) if warm_wall else None,
        sweep_workers=workers,
    )
    # The architectural claim: serving a fleet from the replay store is
    # never slower than recomputing it.
    assert warm_wall <= cold_wall
