"""Instrumentation-overhead benches for the observability layer.

Two questions, per docs/OBSERVABILITY.md:

* how much does the *no-op* tracer cost over the pre-instrumentation
  baseline (the instrumented call sites always run, so this is the tax
  every user pays -- acceptance: < 2 % on the synthetic sweep);
* how much does a *recording* tracer cost when you opt in with
  ``--trace`` (allowed to be visible; the trace is the product).

The recorded run also prints its stage-summary table, so benchmark logs
double as a sample of the ``--trace`` output.
"""

from __future__ import annotations

import pytest

from repro.arch.library import virtex5_ladder
from repro.core.partitioner import partition_with_device_selection
from repro.eval import experiments as E
from repro.obs import NULL_TRACER, RecordingTracer, render_trace_summary
from repro.synth.generator import generate_population

OVERHEAD_DESIGNS = 30


@pytest.fixture(scope="module")
def overhead_population():
    pairs = list(
        generate_population(OVERHEAD_DESIGNS, seed=E.DEFAULT_SWEEP_SEED)
    )
    return [design for _, design in pairs]


def _partition_all(designs, library, tracer):
    for design in designs:
        partition_with_device_selection(design, library, tracer=tracer)


def test_sweep_noop_tracer(benchmark, overhead_population):
    """Baseline: the default NULL_TRACER (what every untraced run pays)."""
    library = virtex5_ladder()
    benchmark(_partition_all, overhead_population, library, NULL_TRACER)


def test_sweep_recording_tracer(benchmark, overhead_population):
    """Opt-in recording: full spans + metrics + progress retention."""
    library = virtex5_ladder()

    def traced():
        tracer = RecordingTracer()
        _partition_all(overhead_population, library, tracer)
        return tracer

    tracer = benchmark(traced)
    trace = tracer.trace()
    assert trace.counters["merge.states_explored"] > 0
    assert len(trace.spans) == OVERHEAD_DESIGNS
    print()
    print(render_trace_summary(trace))


def test_single_design_trace_summary(benchmark):
    """One traced device-selected partitioning, summary printed."""
    (pair,) = list(generate_population(1, seed=E.DEFAULT_SWEEP_SEED))
    design = pair[1]
    library = virtex5_ladder()

    def traced():
        tracer = RecordingTracer()
        partition_with_device_selection(design, library, tracer=tracer)
        return tracer

    tracer = benchmark(traced)
    print()
    print(render_trace_summary(tracer.trace()))


def test_resource_sampling_pair(benchmark):
    """The per-job cost of resource telemetry: one pre-job snapshot plus
    one end-of-job delta (exactly what ``execute_job_payload`` adds).

    The acceptance story (EXPERIMENTS.md, "Resource-sampling overhead")
    is that two ``getrusage`` calls are microseconds against jobs that
    take milliseconds to minutes -- this bench keeps that claim honest.
    """
    from repro.obs.resources import RUSAGE_AVAILABLE, job_resources, sample_self

    if not RUSAGE_AVAILABLE:
        pytest.skip("resource.getrusage unavailable")

    def sample_pair():
        start = sample_self()
        return job_resources(start)

    delta = benchmark(sample_pair)
    assert delta is not None and delta["rss_peak_mb"] > 0
