"""Benches for the Sec. IV example artefacts: connectivity matrix and
Table I.  Each bench times the pipeline stage and prints the regenerated
artefact next to the paper's values."""

from __future__ import annotations

from repro.core.clustering import enumerate_base_partitions
from repro.core.matrix import ConnectivityMatrix
from repro.eval import experiments as E
from repro.eval.example_design import (
    EXPECTED_MATRIX,
    TABLE1_EXPECTED,
    example_design,
)


def test_connectivity_matrix(benchmark):
    """Sec. IV-C connectivity matrix (5 configurations x 8 modes)."""
    design = example_design()
    cm = benchmark(ConnectivityMatrix.from_design, design)
    import numpy as np

    assert (cm.matrix == np.array(EXPECTED_MATRIX)).all()
    print()
    print("Connectivity matrix (matches the paper exactly):")
    print(cm.render())


def test_table1_base_partitions(benchmark):
    """Table I: 26 base partitions with frequency weights."""
    design = example_design()
    partitions = benchmark(enumerate_base_partitions, design)
    got = {bp.label: bp.frequency_weight for bp in partitions}
    assert got == TABLE1_EXPECTED
    print()
    print(E.render_table1())
    print("(all 26 entries match the paper's Table I)")
