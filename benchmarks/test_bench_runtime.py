"""Runtime-substrate benches: trace replay and wall-clock projection.

Extends the paper's frame-count evaluation with the seconds the frames
imply through the ICAP model -- the quantity the motivating applications
(cognitive radio, real-time systems) actually care about.
"""

from __future__ import annotations

import pytest

from repro.core.baselines import one_module_per_region_scheme, single_region_scheme
from repro.core.partitioner import partition
from repro.eval.casestudy import CASESTUDY_BUDGET, casestudy_design
from repro.eval.report import render_table
from repro.runtime.adaptive import BurstyEnvironment, UniformEnvironment
from repro.runtime.icap import PRESETS
from repro.runtime.manager import replay


@pytest.fixture(scope="module")
def schemes():
    design = casestudy_design()
    return design, {
        "proposed": partition(design, CASESTUDY_BUDGET).scheme,
        "modular": one_module_per_region_scheme(design),
        "single-region": single_region_scheme(design),
    }


def test_uniform_trace_replay(benchmark, schemes):
    """1000-step uniform adaptation trace over the three schemes."""
    design, by_name = schemes
    trace = UniformEnvironment(design).trace(1000, seed=7)
    stats = benchmark(replay, by_name["proposed"], trace)

    rows = []
    for name, scheme in by_name.items():
        s = replay(scheme, trace)
        rows.append((name, s.total_frames, s.worst_frames, f"{s.total_seconds * 1e3:.1f}"))
    print()
    print(
        render_table(
            ("scheme", "total frames", "worst frames", "total ms (custom-dma)"),
            rows,
            title="uniform 1000-step adaptation trace",
        )
    )
    totals = {name: replay(s, trace).total_frames for name, s in by_name.items()}
    assert totals["proposed"] <= totals["single-region"]
    assert stats.transitions == 999


def test_bursty_trace_replay(benchmark, schemes):
    """Bursty environments reward schemes with static-like regions."""
    design, by_name = schemes
    trace = BurstyEnvironment(design, dwell=0.9).trace(1000, seed=7)
    benchmark(replay, by_name["proposed"], trace)
    totals = {name: replay(s, trace).total_frames for name, s in by_name.items()}
    print()
    print(f"bursty trace totals: {totals}")
    assert totals["proposed"] <= totals["single-region"]


def test_icap_controller_projection(benchmark, schemes):
    """Seconds per average transition under the three ICAP presets."""
    design, by_name = schemes
    trace = UniformEnvironment(design).trace(400, seed=11)
    rows = []
    for preset_name, model in PRESETS.items():
        stats = replay(by_name["proposed"], trace, icap=model)
        rows.append(
            (
                preset_name,
                f"{model.bytes_per_second / 1e6:.0f} MB/s",
                f"{stats.total_seconds / stats.transitions * 1e3:.2f} ms",
            )
        )
    benchmark(replay, by_name["proposed"], trace)
    print()
    print(
        render_table(
            ("controller", "throughput", "mean transition latency"),
            rows,
            title="ICAP-controller projection (proposed scheme)",
        )
    )


def test_prefetch_latency_hiding(benchmark, schemes):
    """Speculative prefetch (the ref. [4] idea under probabilistic
    prediction): how much demand latency a Markov predictor hides."""
    from repro.eval.report import render_table
    from repro.runtime.adaptive import MarkovEnvironment
    from repro.runtime.prefetch import (
        markov_predictor,
        oracle_predictor,
        replay_with_prefetch,
    )

    design, by_name = schemes
    scheme = by_name["proposed"]
    names = [c.name for c in design.configurations]
    # Sticky chain: mostly alternate within the good-channel regime.
    matrix = {}
    for i, src in enumerate(names):
        nxt = names[(i + 1) % len(names)]
        rest = [n for n in names if n not in (src, nxt)]
        matrix[src] = {nxt: 0.9, **{n: 0.1 / len(rest) for n in rest}}
    env = MarkovEnvironment(design, matrix)
    trace = env.trace(1500, seed=3)

    plain = replay(scheme, trace)
    markov = replay_with_prefetch(scheme, trace, markov_predictor(matrix))
    oracle = replay_with_prefetch(scheme, trace, oracle_predictor(trace))
    benchmark(replay_with_prefetch, scheme, trace, markov_predictor(matrix))

    rows = [
        ("no prefetch", plain.total_frames, "-", "-"),
        (
            "markov predictor",
            markov.total_frames,
            markov.prefetch_hits,
            markov.prefetched_frames,
        ),
        (
            "oracle predictor",
            oracle.total_frames,
            oracle.prefetch_hits,
            oracle.prefetched_frames,
        ),
    ]
    print()
    print(
        render_table(
            ("policy", "demand frames", "hits", "prefetched frames"),
            rows,
            title="latency hiding by speculative prefetch (1500-step trace)",
        )
    )
    assert oracle.total_frames <= markov.total_frames <= plain.total_frames


def test_bitstream_stream_consumption(benchmark, schemes, tmp_path):
    """Cycle-level ICAP feed of real generated bitstream bytes."""
    from repro.arch.library import get_device
    from repro.flow.bitgen import write_scheme_bitstreams
    from repro.flow.floorplan import floorplan
    from repro.runtime.icap import CUSTOM_DMA_CONTROLLER, VENDOR_HWICAP
    from repro.runtime.stream import consume_bitstream, stream_scheme_bitstreams

    design, by_name = schemes
    scheme = by_name["modular"]
    device = get_device("FX70T")
    plan = floorplan(scheme, device)
    paths = write_scheme_bitstreams(scheme, plan, tmp_path)
    data = paths[0].read_bytes()
    report = benchmark(consume_bitstream, data, CUSTOM_DMA_CONTROLLER)
    slow = consume_bitstream(data, VENDOR_HWICAP)
    print()
    print(
        f"{paths[0].name}: {report.words_payload} payload words, "
        f"{report.cycles} cycles ({report.seconds * 1e3:.3f} ms) on the "
        f"custom controller; {slow.seconds * 1e3:.2f} ms on vendor HWICAP"
    )
    assert slow.cycles > report.cycles
