"""Benchmark fixtures: shared sweep result so Figs. 7/8/9 reuse one run.

The synthetic sweep drives Figs. 7-9 and the Sec. V counts; it is
computed once per session at the configured population size
(``REPRO_SWEEP_DESIGNS``, default 200; the paper used 1000).
"""

from __future__ import annotations

import pytest

from repro.eval import experiments as E


def pytest_addoption(parser):
    parser.addoption(
        "--sweep-designs",
        action="store",
        type=int,
        default=None,
        help="synthetic population size for Fig. 7/8/9 benches "
        "(default: REPRO_SWEEP_DESIGNS or 200; paper used 1000)",
    )


@pytest.fixture(scope="session")
def sweep(request):
    count = request.config.getoption("--sweep-designs") or E.DEFAULT_SWEEP_DESIGNS
    return E.run_sweep(count=count)


@pytest.fixture(scope="session")
def casestudy_original():
    return E.exp_table3()


@pytest.fixture(scope="session")
def casestudy_modified():
    return E.exp_table5()
