"""Benchmark fixtures: shared sweep result so Figs. 7/8/9 reuse one run.

The synthetic sweep drives Figs. 7-9 and the Sec. V counts; it is
computed once per session at the configured population size
(``REPRO_SWEEP_DESIGNS``, default 200; the paper used 1000).

Every bench file additionally gets a machine-readable result artifact:
``BENCH_<name>.json`` (for ``test_bench_<name>.py``) collecting the
pytest-benchmark stats of its tests plus any custom records emitted via
the :func:`bench_record` fixture.  Artifacts land next to the bench
files so a committed run (see ``BENCH_allocation.json``) documents the
measured numbers the docs quote.
"""

from __future__ import annotations

import json
import platform
from pathlib import Path

import pytest

from repro.eval import experiments as E

_BENCH_DIR = Path(__file__).parent
_CUSTOM_RECORDS: dict[str, dict] = {}


def _group_of(path: str) -> str:
    """BENCH group name of a bench file: test_bench_foo.py -> foo."""
    stem = Path(path).stem
    prefix = "test_bench_"
    return stem[len(prefix):] if stem.startswith(prefix) else stem


@pytest.fixture
def bench_record(request):
    """Record custom key/value results into this file's BENCH json.

    Usage: ``bench_record(speedup=3.2, designs=8)``.  Values must be
    JSON-serialisable; repeated calls merge (later wins per key).
    """
    group = _group_of(str(request.node.fspath))

    def record(**fields):
        _CUSTOM_RECORDS.setdefault(group, {}).update(fields)

    return record


def _benchmark_docs(config) -> dict[str, list[dict]]:
    """pytest-benchmark stats grouped by bench file, defensively read."""
    session = getattr(config, "_benchmarksession", None)
    out: dict[str, list[dict]] = {}
    if session is None:
        return out
    for bench in getattr(session, "benchmarks", []):
        fullname = getattr(bench, "fullname", "") or ""
        fspath = getattr(bench, "fspath", None) or fullname.split("::")[0]
        group = _group_of(str(fspath))
        doc = {"name": getattr(bench, "name", "?")}
        stats = getattr(bench, "stats", None)
        if stats is not None:
            for key in ("min", "max", "mean", "stddev", "median", "rounds"):
                value = getattr(stats, key, None)
                if value is not None:
                    doc[key] = value
        out.setdefault(group, []).append(doc)
    return out


def pytest_sessionfinish(session, exitstatus):
    if session.config.getoption("collectonly", default=False):
        return
    groups = _benchmark_docs(session.config)
    for group, records in _CUSTOM_RECORDS.items():
        groups.setdefault(group, [])
    for group, benches in groups.items():
        doc = {
            "suite": f"test_bench_{group}.py",
            "python": platform.python_version(),
            "machine": platform.machine(),
        }
        if benches:
            doc["benchmarks"] = benches
        if group in _CUSTOM_RECORDS:
            doc["records"] = _CUSTOM_RECORDS[group]
        try:
            (_BENCH_DIR / f"BENCH_{group}.json").write_text(
                json.dumps(doc, indent=2, default=str) + "\n",
                encoding="utf-8",
            )
        except OSError:  # read-only checkout: benches still report to stdout
            pass


def pytest_addoption(parser):
    parser.addoption(
        "--sweep-designs",
        action="store",
        type=int,
        default=None,
        help="synthetic population size for Fig. 7/8/9 benches "
        "(default: REPRO_SWEEP_DESIGNS or 200; paper used 1000)",
    )


@pytest.fixture(scope="session")
def sweep(request):
    count = request.config.getoption("--sweep-designs") or E.DEFAULT_SWEEP_DESIGNS
    return E.run_sweep(count=count)


@pytest.fixture(scope="session")
def casestudy_original():
    return E.exp_table3()


@pytest.fixture(scope="session")
def casestudy_modified():
    return E.exp_table5()
