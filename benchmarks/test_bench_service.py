"""Batch-service throughput: worker scaling and cold vs. warm cache.

Numbers land in EXPERIMENTS.md ("Batch service throughput").  Two
caveats the assertions encode:

* the warm-cache win is architectural and must always hold -- a second
  run of the same population serves 100% from the content-addressed
  cache and never re-enters the merge search, so its throughput is
  orders of magnitude above the cold run;
* the multi-worker win is *hardware-conditional*: process fan-out can
  only beat one worker when the host has more than one core, so the
  scaling assertion is gated on ``os.cpu_count()`` (single-core CI
  still exercises the pool path and checks result parity).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.eval.report import render_table
from repro.service import JobStore, ResultCache, run_batch
from repro.synth.generator import generate_population

#: Population size for the throughput benches (ISSUE floor: >= 20).
N_DESIGNS = 20
SEED = 7
#: Bound the search so a 20-design cold run stays in benchmark budget.
MAX_SETS = 3


@pytest.fixture(scope="module")
def population():
    return [d for _cls, d in generate_population(N_DESIGNS, seed=SEED)]


def submit_all(store: JobStore, population) -> None:
    for design in population:
        store.submit_design(design, max_candidate_sets=MAX_SETS)


def timed_run(tmp_path, tag, population, workers, cache=None):
    store = JobStore.open(tmp_path / f"queue-{tag}")
    submit_all(store, population)
    cache = cache or ResultCache(tmp_path / f"cache-{tag}")
    started = time.perf_counter()
    report = run_batch(store, cache, workers=workers)
    wall = time.perf_counter() - started
    return report, wall, cache


def test_cold_vs_warm_cache(benchmark, tmp_path, population):
    """Second submission of the same population: 100% cache, no search."""
    cold, cold_wall, cache = timed_run(tmp_path, "cold", population, workers=1)
    assert cold.done == N_DESIGNS
    assert cold.cache_hits == 0

    def warm_run():
        store = JobStore.open(
            tmp_path / f"queue-warm-{warm_run.calls}"
        )
        warm_run.calls += 1
        submit_all(store, population)
        return run_batch(store, cache, workers=1)

    warm_run.calls = 0
    warm = benchmark.pedantic(warm_run, rounds=3, iterations=1)
    assert warm.cache_hits == N_DESIGNS
    assert warm.cache_hit_rate == 1.0
    assert warm.computed == 0  # merge search never re-ran
    assert warm.busy_s == 0.0  # no worker was ever dispatched
    assert warm.jobs_per_s > 10 * cold.jobs_per_s

    print()
    print(render_table(
        ("run", "jobs", "done", "cache hits", "wall (s)", "jobs/s"),
        [
            ("cold, 1 worker", cold.total, cold.done, cold.cache_hits,
             f"{cold_wall:.2f}", f"{cold.jobs_per_s:.2f}"),
            ("warm, 1 worker", warm.total, warm.done, warm.cache_hits,
             f"{warm.duration_s:.2f}", f"{warm.jobs_per_s:.2f}"),
        ],
        title=f"Cold vs. warm cache ({N_DESIGNS} synthetic designs)",
    ))


def test_worker_scaling(benchmark, tmp_path, population):
    """1 vs. 4 workers on a cold cache: parity always, speedup per core."""
    solo, solo_wall, solo_cache = timed_run(
        tmp_path, "solo", population, workers=1
    )
    quad, quad_wall, quad_cache = timed_run(
        tmp_path, "quad", population, workers=4
    )

    # Parity: same problems, same keys, same schemes, regardless of pool.
    assert solo.done == quad.done == N_DESIGNS
    assert solo.failed == quad.failed == 0
    assert sorted(solo_cache.keys()) == sorted(quad_cache.keys())

    cores = os.cpu_count() or 1
    print()
    print(render_table(
        ("workers", "wall (s)", "jobs/s", "utilisation"),
        [
            (1, f"{solo_wall:.2f}", f"{solo.jobs_per_s:.2f}",
             f"{solo.worker_utilisation:.0%}"),
            (4, f"{quad_wall:.2f}", f"{quad.jobs_per_s:.2f}",
             f"{quad.worker_utilisation:.0%}"),
        ],
        title=f"Worker scaling, cold cache ({cores} host cores)",
    ))
    if cores >= 2:
        # On a real multi-core host the pool must beat one worker.
        assert quad_wall < solo_wall

    # Steady-state benchmark: the cheap end-to-end path (warm cache).
    def warm_status():
        store = JobStore.open(tmp_path / f"queue-bench-{warm_status.calls}")
        warm_status.calls += 1
        submit_all(store, population)
        return run_batch(store, solo_cache, workers=1)

    warm_status.calls = 0
    report = benchmark.pedantic(warm_status, rounds=3, iterations=1)
    assert report.cache_hit_rate == 1.0


def test_supervision_overhead(benchmark, tmp_path, population):
    """Supervised (heartbeats + deadlines) vs. inline execution, cold.

    Supervision forks one process per job and polls heartbeat files, so
    it costs real overhead on top of the inline path -- this bench pins
    the number quoted in EXPERIMENTS.md ("Timeout-path overhead").  The
    deadline is generous: nothing times out, so the delta is pure
    supervision machinery (fork + spool + poll), not kill/retry cost.
    """
    small = population[:6]
    inline, inline_wall, _ = timed_run(tmp_path, "inline", small, workers=1)
    assert inline.failed == 0

    store = JobStore.open(tmp_path / "queue-supervised")
    submit_all(store, small)
    cache = ResultCache(tmp_path / "cache-supervised")
    started = time.perf_counter()
    supervised = run_batch(
        store, cache, workers=1, job_timeout_s=300.0,
        heartbeat_interval_s=0.5, heartbeat_timeout_s=30.0,
    )
    supervised_wall = time.perf_counter() - started
    assert supervised.failed == 0
    assert supervised.timeouts == 0
    assert supervised.done == inline.done == len(small)

    overhead = supervised_wall / inline_wall - 1.0
    print()
    print(render_table(
        ("mode", "wall (s)", "jobs/s", "overhead"),
        [
            ("inline (no supervision)", f"{inline_wall:.2f}",
             f"{inline.jobs_per_s:.2f}", "--"),
            ("supervised (fork/beat/poll)", f"{supervised_wall:.2f}",
             f"{supervised.jobs_per_s:.2f}", f"{overhead:+.1%}"),
        ],
        title=f"Supervision overhead ({len(small)} cold synthetic designs)",
    ))

    # Steady-state benchmark of the supervised timeout path itself: a
    # warm rerun under supervision (all hits, no workers forked).
    def warm_supervised():
        s = JobStore.open(tmp_path / f"queue-sup-warm-{warm_supervised.calls}")
        warm_supervised.calls += 1
        submit_all(s, small)
        return run_batch(s, cache, workers=1, job_timeout_s=300.0)

    warm_supervised.calls = 0
    warm = benchmark.pedantic(warm_supervised, rounds=3, iterations=1)
    assert warm.cache_hit_rate == 1.0
