"""Benches for the implemented extensions (paper Sec. VI future work).

* heuristic-vs-exact optimality gap (search-quality certification);
* area/time Pareto front of the case study;
* probability-weighted objective vs unweighted, judged on Markov traces;
* end-to-end placed-bitstream inventory (feedback loop included).
"""

from __future__ import annotations

import pytest

from repro.arch.resources import ResourceVector
from repro.core.cost import total_reconfiguration_frames
from repro.core.exact import partition_exact
from repro.core.pareto import pareto_front, render_front
from repro.core.partitioner import PartitionerOptions, partition
from repro.eval.casestudy import CASESTUDY_BUDGET, casestudy_design
from repro.eval.example_design import example_design
from repro.eval.report import render_table
from repro.runtime.adaptive import MarkovEnvironment
from repro.runtime.manager import replay
from repro.runtime.profile import estimate_markov, pair_frequencies


def test_exact_gap(benchmark):
    """The heuristic matches the exhaustive optimum on the paper's
    running example across a budget sweep."""
    design = example_design()
    budgets = [ResourceVector(c, 16, 16) for c in (420, 480, 520, 560, 620)]
    rows = []
    for budget in budgets:
        exact_scheme = partition_exact(design, budget)
        heuristic = partition(design, budget)
        exact_total = total_reconfiguration_frames(exact_scheme)
        rows.append((budget.clb, exact_total, heuristic.total_frames))
        assert heuristic.total_frames == exact_total
    benchmark(partition_exact, design, budgets[2])
    print()
    print(
        render_table(
            ("CLB budget", "exact optimum", "heuristic"),
            rows,
            title="search-quality certification (running example)",
        )
    )


def test_pareto_front_casestudy(benchmark):
    """The case study's area/time trade-off curve."""
    design = casestudy_design()
    front = benchmark(
        pareto_front, design, CASESTUDY_BUDGET, max_candidate_sets=4
    )
    assert front
    # The frontier spans a genuine trade: min-time point uses more area
    # than the min-area point (or the front is a single point).
    by_time = min(front, key=lambda p: p.total_frames)
    by_area = min(front, key=lambda p: p.usage.clb)
    assert by_time.total_frames <= by_area.total_frames
    print()
    print(render_front(front))


def test_weighted_objective_on_trace(benchmark):
    """Optimising for observed statistics pays off on matching traces."""
    design = casestudy_design()
    # Sticky two-regime chain over the eight configurations.
    names = [c.name for c in design.configurations]
    trace_env = MarkovEnvironment(
        design,
        estimate_markov(design, (["Conf.1", "Conf.2", "Conf.3"] * 60) + names),
    )
    trace = trace_env.trace(3000, seed=1)
    weights = pair_frequencies(trace)

    weighted = partition(
        design, CASESTUDY_BUDGET, PartitionerOptions(pair_probabilities=weights)
    )
    unweighted = partition(design, CASESTUDY_BUDGET)
    w_frames = replay(weighted.scheme, trace).total_frames
    u_frames = replay(unweighted.scheme, trace).total_frames

    benchmark(
        partition,
        design,
        CASESTUDY_BUDGET,
        PartitionerOptions(pair_probabilities=weights),
    )
    print()
    print(
        render_table(
            ("objective", "trace frames (3000 steps)"),
            [("weighted (trace statistics)", w_frames), ("unweighted (Eq. 7)", u_frames)],
            title="probability-weighted objective on a matching trace",
        )
    )
    assert w_frames <= u_frames * 1.05


def test_feedback_placed_bitstreams(benchmark, tmp_path):
    """Fig. 2 end to end with the floorplan feedback loop: a placed
    scheme whose partial bitstreams are written and re-parsed."""
    from repro.arch.library import virtex5_full
    from repro.flow.bitgen import parse_bitstream, write_scheme_bitstreams
    from repro.flow.feedback import partition_and_place

    design = casestudy_design()
    library = virtex5_full()
    placed = benchmark(partition_and_place, design, library)
    paths = write_scheme_bitstreams(placed.scheme, placed.plan, tmp_path)
    total_bytes = 0
    for path in paths:
        info = parse_bitstream(path.read_bytes())
        assert info.design == design.name
        total_bytes += path.stat().st_size
    print()
    print(
        f"placed on {placed.device.name} "
        f"({placed.partition_attempts} attempts, "
        f"{placed.device_escalations} escalations); "
        f"{len(paths)} partial bitstreams, {total_bytes / 1e6:.2f} MB total"
    )
    assert len(paths) == sum(len(r.partitions) for r in placed.scheme.regions)
