"""Benches for the case-study tables (Sec. V, Tables II-V).

Each bench runs the full partitioner on the wireless video receiver and
prints measured-vs-paper rows.  Absolute usage differs slightly from the
paper (see EXPERIMENTS.md: the paper's own numbers are not reproducible
from its Table II under any tile accounting), but the ordering --
static > modular > proposed in reconfiguration terms -- must hold.
"""

from __future__ import annotations

from repro.core.partitioner import partition
from repro.eval import experiments as E
from repro.eval.casestudy import (
    CASESTUDY_BUDGET,
    TABLE2_RESOURCES,
    TABLE4_PAPER,
    casestudy_design,
    casestudy_design_modified,
)
from repro.eval.report import render_table


def test_table2_input_data(benchmark):
    """Table II is input data; bench the design construction and echo it."""
    design = benchmark(casestudy_design)
    rows = [
        (module, mode, *resources)
        for module, modes in TABLE2_RESOURCES.items()
        for mode, resources in modes.items()
    ]
    print()
    print(
        render_table(
            ("Module", "Mode", "Slices", "BR", "DSP"),
            rows,
            title="Table II -- resource utilisation (input, verbatim)",
        )
    )
    assert design.mode_count in (13, 14)  # R4 ("None") dropped when unused


def test_table3_proposed_partitions(benchmark, casestudy_original):
    """Table III: the proposed region allocation (original configs)."""
    design = casestudy_design()
    result = benchmark(partition, design, CASESTUDY_BUDGET)
    assert result.total_frames == casestudy_original.totals["proposed"]
    print()
    print(E.render_table3(casestudy_original))
    print(
        "paper Table III: PRR1={M2, {M1,D2}} PRR2={D3,R2,R3} "
        "PRR3={D1,R1} PRR4={F1,F2} PRR5={V1,V2,V3}"
    )


def test_table4_scheme_properties(benchmark, casestudy_original):
    """Table IV: usage + total reconfiguration time per scheme."""
    r = casestudy_original

    def orderings():
        return (
            r.totals["static"],
            r.totals["proposed"],
            r.totals["modular"],
            r.totals["single-region"],
        )

    static, proposed, modular, single = benchmark(orderings)
    assert static == 0
    assert proposed < modular < single
    # Within 10% of the paper's absolute frame counts.
    assert abs(modular - TABLE4_PAPER["modular"][3]) / TABLE4_PAPER["modular"][3] < 0.10
    assert (
        abs(proposed - TABLE4_PAPER["proposed"][3]) / TABLE4_PAPER["proposed"][3]
        < 0.10
    )
    print()
    print(E.render_table4(r))
    improvement = 100 * (1 - proposed / modular)
    print(f"proposed vs modular: {improvement:.1f}% better (paper: 4%)")


def test_table5_modified_configurations(benchmark, casestudy_modified):
    """Table V: partitioning for the modified configuration set."""
    design = casestudy_design_modified()
    result = benchmark(partition, design, CASESTUDY_BUDGET)
    r = casestudy_modified
    assert result.total_frames == r.totals["proposed"]
    assert r.totals["proposed"] < r.totals["modular"]
    # Paper: 92120 frames, 6% better than modular.
    assert abs(r.totals["proposed"] - 92_120) / 92_120 < 0.10
    print()
    print(E.render_table5(r))
    improvement = 100 * (1 - r.totals["proposed"] / r.totals["modular"])
    print(f"proposed vs modular: {improvement:.1f}% better (paper: 6%)")
