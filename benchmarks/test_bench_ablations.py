"""Ablation benches for the design choices DESIGN.md calls out.

Not paper figures -- these quantify the interpretation decisions:

* transition policy (LENIENT vs STRICT ``d_ij``);
* restart breadth (``max_initial_pairs``);
* outer-loop depth (``max_candidate_sets``);
* the joint-occurrence clique filter (Table I reproduction choice).
"""

from __future__ import annotations

import pytest

from repro.core.allocation import AllocationOptions
from repro.core.clustering import enumerate_base_partitions
from repro.core.cost import TransitionPolicy, total_reconfiguration_frames
from repro.core.partitioner import PartitionerOptions, partition
from repro.eval.casestudy import CASESTUDY_BUDGET, casestudy_design
from repro.eval.report import render_table


@pytest.fixture(scope="module")
def design():
    return casestudy_design()


def test_ablation_transition_policy(benchmark, design):
    """LENIENT admits static-region behaviour; STRICT charges vacating
    transitions.  Both must beat the modular baseline evaluated under
    the same policy."""
    from repro.core.baselines import one_module_per_region_scheme

    rows = []
    for policy in TransitionPolicy:
        opts = PartitionerOptions(policy=policy)
        result = partition(design, CASESTUDY_BUDGET, opts)
        modular = total_reconfiguration_frames(
            one_module_per_region_scheme(design), policy
        )
        rows.append((policy.value, result.total_frames, modular))
        assert result.total_frames <= modular

    benchmark(
        partition,
        design,
        CASESTUDY_BUDGET,
        PartitionerOptions(policy=TransitionPolicy.STRICT),
    )
    print()
    print(
        render_table(
            ("policy", "proposed total", "modular total"),
            rows,
            title="Ablation: transition policy (d_ij semantics)",
        )
    )


def test_ablation_restart_breadth(benchmark, design):
    """The paper restarts the descent from every initial pair; capping
    restarts trades quality for speed.  Quality must degrade
    monotonically (more restarts never hurt)."""
    caps = [1, 4, 16, None]
    rows = []
    totals = []
    for cap in caps:
        opts = PartitionerOptions(
            allocation=AllocationOptions(max_initial_pairs=cap)
        )
        result = partition(design, CASESTUDY_BUDGET, opts)
        totals.append(result.total_frames)
        rows.append((cap if cap is not None else "all (paper)", result.total_frames))
    # More restarts never worsen the result.
    for wide, narrow in zip(totals[1:], totals[:-1]):
        assert wide <= narrow

    benchmark(
        partition,
        design,
        CASESTUDY_BUDGET,
        PartitionerOptions(allocation=AllocationOptions(max_initial_pairs=1)),
    )
    print()
    print(
        render_table(
            ("max initial pairs", "proposed total"),
            rows,
            title="Ablation: merge-search restart breadth",
        )
    )


def test_ablation_candidate_set_depth(benchmark, design):
    """The outer covering loop contributes beyond the first CPS."""
    rows = []
    totals = []
    for depth in (1, 4, 16, None):
        opts = PartitionerOptions(max_candidate_sets=depth)
        result = partition(design, CASESTUDY_BUDGET, opts)
        totals.append(result.total_frames)
        rows.append(
            (
                depth if depth is not None else "until covering fails (paper)",
                result.total_frames,
                result.candidate_sets_explored,
            )
        )
    for deep, shallow in zip(totals[1:], totals[:-1]):
        assert deep <= shallow

    benchmark(
        partition, design, CASESTUDY_BUDGET, PartitionerOptions(max_candidate_sets=1)
    )
    print()
    print(
        render_table(
            ("max candidate sets", "proposed total", "sets explored"),
            rows,
            title="Ablation: outer covering-loop depth",
        )
    )


def test_ablation_joint_occurrence_filter(benchmark, design):
    """Keeping pairwise-only cliques (the literal clustering narrative)
    enlarges the base-partition pool without breaking covering."""
    filtered = benchmark(enumerate_base_partitions, design)
    unfiltered = enumerate_base_partitions(
        design, include_non_joint_cliques=True
    )
    assert len(unfiltered) >= len(filtered)
    print()
    print(
        f"base partitions: {len(filtered)} with the joint-occurrence "
        f"filter (paper Table I), {len(unfiltered)} without "
        f"({len(unfiltered) - len(filtered)} pairwise-only cliques dropped)"
    )
