"""Rendering-layer benches: how cheap is a deterministic artifact?

The renderers (docs/REPORTING.md) are pure string builders, so they
should be noise next to the partitioning they visualise -- these benches
pin that claim with numbers, and record the artifact sizes so a layout
change that balloons the output shows up in the BENCH diff.
"""

from __future__ import annotations

import pytest

from repro.arch import ResourceVector
from repro.arch.library import get_device, virtex5_ladder
from repro.core.partitioner import partition
from repro.eval.casestudy import CASESTUDY_BUDGET, casestudy_design
from repro.eval.example_design import example_design
from repro.flow import floorplan, plan_on_smallest_device
from repro.render import (
    render_bench_trend_html,
    render_floorplan_svg,
    render_scheme_svg,
)


@pytest.fixture(scope="module")
def example_result():
    return partition(example_design(), ResourceVector(520, 16, 16))


@pytest.fixture(scope="module")
def casestudy_result():
    return partition(casestudy_design(), CASESTUDY_BUDGET)


def test_render_scheme_casestudy(benchmark, casestudy_result, bench_record):
    svg = benchmark(render_scheme_svg, casestudy_result)
    assert svg == render_scheme_svg(casestudy_result)  # deterministic
    bench_record(scheme_svg_bytes=len(svg.encode("utf-8")))


def test_render_floorplan_casestudy(benchmark, casestudy_result, bench_record):
    plan = floorplan(casestudy_result.scheme, get_device("FX70T"))
    svg = benchmark(render_floorplan_svg, plan)
    assert svg == render_floorplan_svg(plan)
    bench_record(floorplan_svg_bytes=len(svg.encode("utf-8")))


def test_render_end_to_end_example(benchmark, example_result):
    """Partition-to-both-diagrams, the `repro-pr render` hot path."""

    def both():
        plan = plan_on_smallest_device(
            example_result.scheme, virtex5_ladder()
        )
        return render_scheme_svg(example_result) + render_floorplan_svg(plan)

    text = benchmark(both)
    assert "repro.render/scheme v" in text
    assert "repro.render/floorplan v" in text


def test_render_bench_trend_scaling(benchmark, bench_record):
    """A 50-document history (a year of weekly CI records) renders fast."""
    history = [
        (
            f"BENCH_{i:03d}.json",
            {
                "suite": "synthetic",
                "benchmarks": [
                    {"name": name, "mean": 0.5 + 0.001 * i * (j + 1)}
                    for j, name in enumerate(
                        ("partition", "floorplan", "sweep", "cover")
                    )
                ],
            },
        )
        for i in range(50)
    ]
    page = benchmark(render_bench_trend_html, history)
    assert page == render_bench_trend_html(history)
    bench_record(trend_history_docs=len(history))
