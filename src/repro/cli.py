"""Command-line interface: ``repro-pr`` / ``python -m repro``.

Subcommands mirror the deliverables:

* ``partition <design.xml>`` -- run the full algorithm on an XML design
  description (optionally with device auto-selection) and print the
  resulting scheme, UCF and bitstream inventory;
* ``casestudy`` -- regenerate Tables III/IV/V;
* ``example`` -- regenerate the Sec. IV artefacts (matrix, Table I);
* ``sweep`` -- regenerate Figs. 7/8/9 and the Sec. V headline counts;
* ``pareto`` -- explore the area/time trade-off curve of a design;
* ``devices`` -- print the reconstructed Virtex-5 library;
* ``batch submit|run|status`` -- the batch partitioning service
  (job queue + worker pool + content-addressed result cache,
  docs/SERVICE.md);
* ``replay run|sweep|compare`` -- trace-driven workload replay:
  measured reconfiguration latency under load, per serving policy
  (docs/REPLAY.md);
* ``obs report|tail|top|runs|check|export-prom|bench-diff`` -- the
  telemetry toolchain over durable sink directories, the live
  follower/fleet view, the run registry, the declarative SLO gate and
  BENCH artifacts (docs/OBSERVABILITY.md);
* ``render scheme|floorplan|report|bench`` -- the deterministic
  SVG/HTML rendering layer over the same inputs, with ``--check``
  drift detection and a content-addressed artifact cache
  (docs/REPORTING.md).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .arch.library import virtex5_ladder
from .core.partitioner import (
    InfeasibleError,
    partition,
    partition_with_device_selection,
)
from .eval import experiments as E
from .eval.report import render_table, render_trace_summary
from .flow.bitstream import generate_bitstreams
from .flow.constraints import emit_ucf
from .flow.floorplan import FloorplanError, floorplan
from .obs import NULL_TRACER, RecordingTracer, Tracer
from .service.problem import resolve_problem


def _make_tracer(args: argparse.Namespace) -> Tracer:
    """A recording tracer when --trace/--trace-json was given, else no-op."""
    if getattr(args, "trace", False) or getattr(args, "trace_json", None):
        return RecordingTracer()
    return NULL_TRACER


def _emit_trace(tracer: Tracer, args: argparse.Namespace) -> None:
    """Print the stage summary and/or write the JSON trace file."""
    if not isinstance(tracer, RecordingTracer):
        return
    if args.trace:
        print()
        print(render_trace_summary(tracer, title="Pipeline trace"))
    if args.trace_json:
        if args.trace_json == "-":
            print(tracer.to_json())
        else:
            from pathlib import Path

            try:
                Path(args.trace_json).write_text(
                    tracer.to_json(), encoding="utf-8"
                )
            except OSError as exc:
                print(f"error: cannot write trace: {exc}", file=sys.stderr)
                raise SystemExit(1)
            print(f"wrote trace to {args.trace_json}", file=sys.stderr)


def _add_trace_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        action="store_true",
        help="print a per-stage timing/metric summary of the pipeline",
    )
    parser.add_argument(
        "--trace-json",
        metavar="FILE",
        help="write the machine-readable JSON trace to FILE ('-' for stdout)",
    )


def _partitioner_options(args: argparse.Namespace) -> "PartitionerOptions | None":
    """PartitionerOptions from the search-strategy flags (None = defaults)."""
    engine = getattr(args, "engine", None)
    parallel = getattr(args, "parallel_restarts", None)
    beam = getattr(args, "beam_width", None)
    prune = bool(getattr(args, "prune", False))
    shared_seen = bool(getattr(args, "shared_seen_filter", False))
    if (
        engine is None
        and parallel is None
        and beam is None
        and not prune
        and not shared_seen
    ):
        return None
    from .core.allocation import AllocationOptions
    from .core.partitioner import PartitionerOptions

    return PartitionerOptions(
        allocation=AllocationOptions(
            engine=engine or "incremental",
            parallel_restarts=parallel,
            beam_width=beam,
            prune=prune,
            shared_seen_filter=shared_seen,
        )
    )


def _cmd_partition(args: argparse.Namespace) -> int:
    problem = resolve_problem(args.design, args.device)
    design = problem.design
    tracer = _make_tracer(args)
    try:
        options = _partitioner_options(args)
    except ValueError as exc:
        # Invalid flag combination (e.g. --beam-width with the reference
        # engine) -- AllocationOptions carries the explanation.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(design.summary())

    if problem.device is not None:
        device = problem.device
        try:
            result = partition(
                design, problem.capacity, options, tracer=tracer
            )
        except InfeasibleError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    else:
        try:
            dres = partition_with_device_selection(
                design, problem.library, options, tracer=tracer
            )
        except InfeasibleError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        device, result = dres.device, dres.result
        print(f"selected device: {device.name} (escalations: {dres.escalations})")

    scheme = result.scheme
    print(scheme.describe())
    print(
        f"total reconfiguration: {result.total_frames} frames; "
        f"worst case: {result.worst_frames} frames"
    )
    _emit_trace(tracer, args)

    if args.floorplan:
        try:
            plan = floorplan(scheme, device)
        except FloorplanError as exc:
            print(f"floorplanning failed: {exc}", file=sys.stderr)
            return 2
        from .flow.visualize import render_floorplan

        print(render_floorplan(plan))
        if args.ucf:
            print(emit_ucf(scheme, plan))
        bits = generate_bitstreams(scheme, device, plan)
        print(
            f"bitstreams: full {bits.full_bytes} B + "
            f"{len(bits.partials)} partials, total {bits.total_storage_bytes} B"
        )
        if args.out:
            from .flow.bitgen import write_scheme_bitstreams
            from .flow.netlist import build_netlists, emit_wrapper_hdl
            from pathlib import Path

            out = Path(args.out)
            out.mkdir(parents=True, exist_ok=True)
            (out / "system.ucf").write_text(emit_ucf(scheme, plan))
            for name, netlist in build_netlists(scheme).items():
                (out / f"{name}_wrapper.v").write_text(emit_wrapper_hdl(netlist))
            written = write_scheme_bitstreams(scheme, plan, out)
            print(f"wrote UCF, wrappers and {len(written)} bitstreams to {out}/")
    return 0


def _cmd_pareto(args: argparse.Namespace) -> int:
    from .core.pareto import pareto_front, render_front

    problem = resolve_problem(args.design, args.device).with_selected_device()
    design, capacity = problem.design, problem.capacity
    print(f"{design.summary()}; budget {capacity} on {problem.device.name}")
    front = pareto_front(
        design, capacity, max_candidate_sets=args.candidate_sets
    )
    print(render_front(front))
    return 0


def _cmd_casestudy(_args: argparse.Namespace) -> int:
    r3 = E.exp_table3()
    print(E.render_table3(r3))
    print()
    print(E.render_table4(r3))
    print()
    print(E.render_table5())
    return 0


def _cmd_example(args: argparse.Namespace) -> int:
    print("Connectivity matrix (Sec. IV-C):")
    print(E.exp_connectivity_matrix().render())
    print()
    print(E.render_table1())
    tracer = _make_tracer(args)
    if isinstance(tracer, RecordingTracer):
        # Traced run of the running example under the docs/ALGORITHM.md
        # budget -- the smoke path for `python -m repro example --trace`.
        from .arch.resources import ResourceVector
        from .eval.example_design import example_design

        result = partition(
            example_design(), ResourceVector(520, 16, 16), tracer=tracer
        )
        print()
        print(result.scheme.describe())
        _emit_trace(tracer, args)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    def progress(i: int, n: int) -> None:
        if args.progress and i % 25 == 0:
            print(f"... {i}/{n}", file=sys.stderr)

    sweep = E.run_sweep(count=args.designs, seed=args.seed, progress=progress)
    print(E.render_fig7(sweep))
    print()
    print(E.render_fig8(sweep))
    print()
    print(E.render_fig9(sweep))
    print()
    print(E.render_headlines(sweep))
    if args.analysis:
        from .eval.analysis import render_analysis

        print()
        print(render_analysis(sweep))
    return 0


def _queue_stores(args: argparse.Namespace):
    """(JobStore, ResultCache) for the --queue/--cache directories."""
    from pathlib import Path

    from .service import JobStore, ResultCache

    queue = Path(args.queue)
    cache_dir = Path(args.cache) if args.cache else queue / "cache"
    return JobStore.open(queue), ResultCache(cache_dir)


def _run_registry(args: argparse.Namespace):
    """The :class:`RunRegistry` for ``--registry`` (``none`` disables).

    Defaults to ``<queue>/registry`` so every batch/sweep run lands in
    the queue's own ledger without extra flags.
    """
    from pathlib import Path

    spec = getattr(args, "registry", None)
    if spec and spec.lower() == "none":
        return None
    from .obs import RunRegistry

    return RunRegistry(Path(spec) if spec else Path(args.queue) / "registry")


def _cmd_batch_submit(args: argparse.Namespace) -> int:
    from .flow.xmlio import design_to_xml
    from .synth.generator import generate_population

    store, _ = _queue_stores(args)
    submitted = []
    for path in args.designs:
        problem = resolve_problem(path, args.device)
        submitted.append(
            store.submit(
                name=problem.design.name,
                design_xml=design_to_xml(
                    problem.design,
                    device_name=args.device or problem.doc.device_name,
                    budget=problem.doc.budget,
                ),
                device=args.device,
                max_candidate_sets=args.max_candidate_sets,
                dedupe=not args.no_dedupe,
                priority=args.priority,
                submitter=args.submitter,
            )
        )
    if args.synthetic:
        for _cls, design in generate_population(args.synthetic, seed=args.seed):
            submitted.append(
                store.submit_design(
                    design,
                    device=args.device,
                    max_candidate_sets=args.max_candidate_sets,
                    dedupe=not args.no_dedupe,
                    priority=args.priority,
                    submitter=args.submitter,
                )
            )
    if not submitted:
        print("error: nothing to submit (give design files or --synthetic N)",
              file=sys.stderr)
        return 1
    for job in submitted:
        print(f"{job.id}  {job.state:8s}  {job.name}")
    counts = store.counts()
    print(f"queue: {counts['pending']} pending / {len(store.jobs())} total")
    return 0


def _cmd_batch_run(args: argparse.Namespace) -> int:
    from .eval.report import render_batch_report
    from .service import FaultError, FaultPlan, run_batch

    store, cache = _queue_stores(args)
    tracer = _make_tracer(args)
    if args.telemetry_dir and not isinstance(tracer, RecordingTracer):
        # Durable telemetry wants the full picture: a recording tracer
        # gives the run record counters/gauges/histograms, not just the
        # per-job outcome lines.
        tracer = RecordingTracer()
    if args.progress and not isinstance(tracer, RecordingTracer):
        tracer = RecordingTracer()
    if isinstance(tracer, RecordingTracer) and args.progress:
        tracer.on_progress(
            lambda e: print(f"... {e.name} {dict(e.payload)}", file=sys.stderr)
        )
    sink = None
    if args.telemetry_dir:
        from .obs import TelemetrySink

        sink = TelemetrySink(args.telemetry_dir)
    faults = None
    if args.inject_fault:
        try:
            faults = FaultPlan.parse(args.inject_fault)
        except FaultError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    from .service import ServiceError

    try:
        report = run_batch(
            store,
            cache,
            workers=args.workers,
            tracer=tracer,
            job_timeout_s=args.job_timeout,
            heartbeat_interval_s=args.heartbeat_interval,
            heartbeat_timeout_s=args.heartbeat_timeout,
            faults=faults,
            sink=sink,
            registry=_run_registry(args),
            run_meta={"command": "batch run"},
        )
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(render_batch_report(report))
    if sink is not None:
        print(
            f"telemetry: {sink.records_written} records in {sink.directory}",
            file=sys.stderr,
        )
    if report.failed:
        print(f"failed jobs: {', '.join(report.failed_ids)}", file=sys.stderr)
    _emit_trace(tracer, args)
    return 0 if report.failed == 0 else 3


def _cmd_replay_run(args: argparse.Namespace) -> int:
    from .replay import (
        PolicyComparison,
        PolicyLatency,
        TraceSpec,
        generator_matrix,
        iter_trace,
        render_policy_comparison,
        replay_record,
        replay_trace,
        resolve_policy,
    )
    from .replay.policies import PolicyError
    from .replay.trace import TraceSpecError, config_names

    try:
        design, capacity, _device = _render_problem(args.design, args.device)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    try:
        result = partition(design, capacity)
    except InfeasibleError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    names = config_names(design)
    try:
        spec = TraceSpec(
            environment=args.environment,
            length=args.length,
            seed=args.seed,
            dwell=args.dwell,
        )
        policies = [resolve_policy(p) for p in args.policy or ["no-prefetch"]]
    except (TraceSpecError, PolicyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    matrix = generator_matrix(names, spec)
    print(
        f"{design.name}: {len(names)} configurations, "
        f"{args.environment} trace of {args.length} events (seed {args.seed})"
    )
    aggregates = {}
    for policy in policies:
        replayed = replay_trace(
            result.scheme, iter_trace(names, spec), policy, matrix=matrix
        )
        agg = aggregates.setdefault(policy.name, PolicyLatency(policy=policy.name))
        agg.fold(replay_record(replayed))
    comparison = PolicyComparison(
        policies=tuple(aggregates[name] for name in sorted(aggregates)),
        keys=(),
    )
    print(render_policy_comparison(comparison), end="")
    return 0


def _cmd_replay_sweep(args: argparse.Namespace) -> int:
    from .eval.report import render_batch_report
    from .replay import (
        ENVIRONMENTS,
        ReplayError,
        WorkloadSuite,
        submit_replay_suite,
    )
    from .replay.policies import PolicyError
    from .replay.trace import TraceSpecError
    from .service import ServiceError, run_batch

    store, cache = _queue_stores(args)
    try:
        suite = WorkloadSuite(
            designs=args.designs,
            traces_per_design=args.traces_per_design,
            length=args.length,
            seed=args.seed,
            environments=(
                tuple(args.environment) if args.environment else ENVIRONMENTS
            ),
        )
        policies = args.policy or [
            "no-prefetch", "prefetch-markov", "prefetch-oracle"
        ]
        jobs = submit_replay_suite(
            store,
            suite,
            policies,
            device=args.device,
            max_candidate_sets=args.max_candidate_sets,
            batch_size=args.batch_size,
        )
    except (TraceSpecError, PolicyError, ReplayError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    cells = suite.trace_count * len(policies)
    batched = f", batch size {args.batch_size}" if args.batch_size > 1 else ""
    print(
        f"submitted {len(jobs)} replay jobs covering {cells} cells "
        f"({suite.designs} designs x {suite.traces_per_design} traces x "
        f"{len(policies)} policies{batched})"
    )
    tracer = _make_tracer(args)
    sink = None
    if args.telemetry_dir:
        from .obs import TelemetrySink

        if not isinstance(tracer, RecordingTracer):
            tracer = RecordingTracer()
        sink = TelemetrySink(args.telemetry_dir)
    try:
        report = run_batch(
            store, cache, workers=args.workers, tracer=tracer, sink=sink,
            registry=_run_registry(args),
            run_meta={
                "command": "replay sweep",
                "designs": suite.designs,
                "traces_per_design": suite.traces_per_design,
                "policies": sorted(policies),
                "batch_size": args.batch_size,
            },
        )
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(render_batch_report(report))
    if sink is not None:
        print(
            f"telemetry: {sink.records_written} records in {sink.directory}",
            file=sys.stderr,
        )
    if report.failed:
        # Group the failures by their terminal error line so a 1000-job
        # sweep reports "63 x InfeasibleError: ..." instead of 63 ids.
        reasons: dict[str, int] = {}
        for job_id in report.failed_ids:
            error = (store.get(job_id).error or "").strip()
            line = error.splitlines()[-1] if error else "unknown error"
            reasons[line] = reasons.get(line, 0) + 1
        print(
            f"failed jobs: {report.failed}/{report.total}", file=sys.stderr
        )
        for line, count in sorted(
            reasons.items(), key=lambda item: (-item[1], item[0])
        ):
            print(f"  {count} x {line}", file=sys.stderr)
    _emit_trace(tracer, args)
    if report.failed == 0:
        return 0
    # Every job failing means the sweep produced nothing at all --
    # distinct exit code so callers can tell "some infeasible designs"
    # (3) from "nothing ran" (4).
    return 4 if report.failed == report.total else 3


def _cmd_replay_compare(args: argparse.Namespace) -> int:
    from .replay import (
        ReplayError,
        collect_policy_comparison,
        comparison_key,
        render_policy_comparison,
        replay_store_for,
    )
    from .service import ResultCache

    cache = ResultCache(args.cache)
    try:
        comparison = collect_policy_comparison(replay_store_for(cache))
    except ReplayError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if not args.out:
        if getattr(args, "check", False):
            print("error: --check needs --out", file=sys.stderr)
            return 1
        print(render_policy_comparison(comparison), end="")
        return 0
    from .render import artifact_key, render_replay_html

    key = artifact_key(comparison_key(comparison.keys), "replay")

    def compute() -> str:
        return render_replay_html(comparison)

    if args.artifact_cache:
        from .service import ArtifactStore

        astore = ArtifactStore(args.artifact_cache)
        text = astore.get(key)
        if text is None:
            text = compute()
            astore.put(key, text)
            print(f"artifact cache miss: stored {key[:12]}", file=sys.stderr)
        else:
            print(f"artifact cache hit: {key[:12]}", file=sys.stderr)
    else:
        text = compute()
    return _finish_render(args, text)


def _cmd_obs_report(args: argparse.Namespace) -> int:
    from .obs import SinkError, aggregate_run, render_run_report

    try:
        report = aggregate_run(args.telemetry_dir)
    except SinkError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        # Machine mode: the document and nothing else, so
        # `repro obs report --json DIR | jq ...` needs no scraping.
        import json as _json

        print(_json.dumps(report.to_dict(), indent=1))
        return 0
    print(render_run_report(report))
    return 0


def _cmd_obs_tail(args: argparse.Namespace) -> int:
    import json as _json
    import time as _time
    from pathlib import Path

    from .obs import FollowCursor, SinkError, TelemetryFollower

    cursor = None
    cursor_file = Path(args.cursor_file) if args.cursor_file else None
    if cursor_file is not None and cursor_file.exists():
        try:
            cursor = FollowCursor.from_dict(
                _json.loads(cursor_file.read_text(encoding="utf-8"))
            )
        except (OSError, ValueError) as exc:
            print(f"error: bad cursor file: {exc}", file=sys.stderr)
            return 1
    directory = Path(args.telemetry_dir)
    if not directory.is_dir() and not args.follow:
        print(f"error: not a telemetry directory: {directory}",
              file=sys.stderr)
        return 1
    kinds = set(args.kind or [])
    follower = TelemetryFollower(directory, cursor)

    def emit(record: dict) -> None:
        if not kinds or record["kind"] in kinds:
            # The sink's own on-disk serialisation, so tail output is
            # byte-identical to the segments it came from.
            print(_json.dumps(record, sort_keys=True), flush=True)

    status = 0
    try:
        if not args.follow:
            for record in follower.poll():
                emit(record)
        else:
            last_news = _time.monotonic()
            while True:
                got = False
                for record in follower.poll():
                    emit(record)
                    got = True
                now = _time.monotonic()
                if got:
                    last_news = now
                elif (
                    args.idle_timeout is not None
                    and now - last_news >= args.idle_timeout
                ):
                    break
                _time.sleep(args.poll)
    except KeyboardInterrupt:
        pass
    except SinkError as exc:
        print(f"error: {exc}", file=sys.stderr)
        status = 1
    if cursor_file is not None:
        try:
            cursor_file.write_text(
                _json.dumps(follower.cursor.to_dict()) + "\n",
                encoding="utf-8",
            )
        except OSError as exc:
            print(f"error: cannot write cursor file: {exc}", file=sys.stderr)
            return 1
    return status


def _cmd_obs_top(args: argparse.Namespace) -> int:
    import time as _time

    from .obs import FleetView, SinkError, TelemetryFollower, render_top

    follower = TelemetryFollower(args.telemetry_dir)
    view = FleetView()

    def refresh() -> str:
        for record in follower.poll():
            view.fold(record)
        return render_top(view, directory=str(args.telemetry_dir))

    try:
        if args.once:
            print(refresh())
            return 0
        iteration = 0
        while True:
            frame = refresh()
            # ANSI clear + home keeps the frame in place like top(1).
            print(f"\x1b[2J\x1b[H{frame}", flush=True)
            iteration += 1
            if args.iterations and iteration >= args.iterations:
                return 0
            _time.sleep(args.refresh)
    except KeyboardInterrupt:
        return 0
    except SinkError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _cmd_obs_runs(args: argparse.Namespace) -> int:
    import json as _json
    import time as _time

    from .obs import RegistryError, RunRegistry

    try:
        entries = RunRegistry(args.registry_dir).entries()
    except RegistryError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(_json.dumps([e.to_dict() for e in entries], indent=1))
        return 0
    if not entries:
        print("(no registered runs)")
        return 0
    for entry in entries:
        started = (
            _time.strftime(
                "%Y-%m-%d %H:%M:%S", _time.gmtime(entry.started_ts)
            )
            if entry.started_ts is not None else "-"
        )
        duration = (
            f"{entry.duration_s:.1f}s" if entry.duration_s is not None
            else "-"
        )
        kinds = ",".join(entry.kinds) or "-"
        summary = entry.summary
        tail = ""
        if summary:
            tail = (
                f"  done={summary.get('done', '-')}"
                f" failed={summary.get('failed', '-')}"
                f" hit={100.0 * float(summary.get('cache_hit_rate') or 0):.0f}%"
            )
        print(
            f"{entry.run_id}  {entry.status:8s}  {started}  {duration:>8s}  "
            f"{entry.jobs:4d} job(s)  {kinds}  "
            f"cfg {entry.config_digest[:12]}{tail}"
        )
    return 0


def _cmd_obs_check(args: argparse.Namespace) -> int:
    import json as _json

    from .obs import (
        SinkError,
        SloError,
        aggregate_run,
        evaluate_slo,
        load_slo,
        render_slo_result,
    )

    try:
        rules = load_slo(args.slo)
        report = aggregate_run(args.telemetry_dir)
        result = evaluate_slo(report.to_dict(), rules)
    except (SinkError, SloError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(_json.dumps(result.to_dict(), indent=1))
    else:
        print(render_slo_result(result))
    return 0 if result.ok else 3


def _cmd_obs_export_prom(args: argparse.Namespace) -> int:
    from .obs import SinkError, export_prometheus_dir

    try:
        text = export_prometheus_dir(args.telemetry_dir, prefix=args.prefix)
    except SinkError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.out:
        from pathlib import Path

        try:
            Path(args.out).write_text(text, encoding="utf-8")
        except OSError as exc:
            print(f"error: cannot write {args.out}: {exc}", file=sys.stderr)
            return 1
        print(f"wrote exposition to {args.out}", file=sys.stderr)
    else:
        print(text, end="")
    return 0


def _cmd_obs_bench_diff(args: argparse.Namespace) -> int:
    from .obs import BenchDiffError, bench_diff, load_bench, render_bench_diff

    try:
        diff = bench_diff(
            load_bench(args.old), load_bench(args.new), threshold=args.threshold
        )
    except BenchDiffError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(render_bench_diff(diff))
    return 3 if diff.regressions else 0


#: Builtin design names `repro render scheme|floorplan` accept in place
#: of an XML path -- the paper's two worked problems, so the gallery and
#: the golden tests need no design files checked in.
RENDER_BUILTINS = ("example", "casestudy")


def _render_problem(design_arg: str, device_name: str | None):
    """(design, capacity, device | None) for a render target.

    ``design_arg`` is a builtin name (:data:`RENDER_BUILTINS`) or a
    path to a design XML file.  ``device`` stays ``None`` when nothing
    names one -- the floorplan renderer then picks the smallest ladder
    device that places the scheme (:func:`plan_on_smallest_device`),
    keeping the output deterministic without a device argument.
    """
    from .arch.library import get_device

    if design_arg == "example":
        from .arch.resources import ResourceVector
        from .eval.example_design import example_design

        # The docs/ALGORITHM.md walkthrough budget for the Sec. IV design.
        device = get_device(device_name) if device_name else None
        return example_design(), ResourceVector(520, 16, 16), device
    if design_arg == "casestudy":
        from .eval.casestudy import CASESTUDY_BUDGET, casestudy_design

        # Sec. V pins the case study to the FX70T; honour an override.
        device = get_device(device_name or "FX70T")
        return casestudy_design(), CASESTUDY_BUDGET, device
    problem = resolve_problem(design_arg, device_name).with_selected_device()
    return problem.design, problem.capacity, problem.device


def _cached_render(args: argparse.Namespace, key: str, compute) -> str:
    """``compute()`` through the artifact cache when --cache was given."""
    if not getattr(args, "cache", None):
        return compute()
    from .service import ArtifactStore

    store = ArtifactStore(args.cache)
    text = store.get(key)
    if text is None:
        text = compute()
        store.put(key, text)
        print(f"artifact cache miss: stored {key[:12]}", file=sys.stderr)
    else:
        print(f"artifact cache hit: {key[:12]}", file=sys.stderr)
    return text


def _finish_render(args: argparse.Namespace, text: str) -> int:
    """Write or check a rendered artifact against --out.

    ``--check`` never writes: it byte-compares a fresh render against
    the file and exits 3 on drift (mirroring ``obs bench-diff``), which
    is how CI keeps committed goldens and the README gallery honest.
    """
    from pathlib import Path

    if getattr(args, "check", False):
        if args.out == "-":
            print("error: --check needs a file --out, not '-'", file=sys.stderr)
            return 1
        try:
            existing = Path(args.out).read_text(encoding="utf-8")
        except OSError as exc:
            print(f"error: cannot read {args.out}: {exc}", file=sys.stderr)
            return 1
        if existing != text:
            print(
                f"render drift: {args.out} ({len(existing)} bytes) differs "
                f"from a fresh render ({len(text)} bytes); re-run without "
                "--check to refresh it",
                file=sys.stderr,
            )
            return 3
        print(f"{args.out}: up to date ({len(text)} bytes)", file=sys.stderr)
        return 0
    if args.out == "-":
        print(text, end="")
        return 0
    try:
        Path(args.out).write_text(text, encoding="utf-8")
    except OSError as exc:
        print(f"error: cannot write {args.out}: {exc}", file=sys.stderr)
        return 1
    print(f"wrote {args.out} ({len(text)} bytes)", file=sys.stderr)
    return 0


def _cmd_render_scheme(args: argparse.Namespace) -> int:
    from .core import problem_key
    from .render import artifact_key, render_scheme_svg

    try:
        design, capacity, _device = _render_problem(args.design, args.device)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    key = artifact_key(problem_key(design, capacity), "scheme")

    def compute() -> str:
        return render_scheme_svg(partition(design, capacity))

    try:
        text = _cached_render(args, key, compute)
    except InfeasibleError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return _finish_render(args, text)


def _cmd_render_floorplan(args: argparse.Namespace) -> int:
    from .core import problem_key
    from .flow.floorplan import plan_on_smallest_device
    from .render import artifact_key, render_floorplan_svg

    try:
        design, capacity, device = _render_problem(args.design, args.device)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    key = artifact_key(
        problem_key(
            design,
            capacity,
            extra={"device": device.name if device else "auto"},
        ),
        "floorplan",
    )

    def compute() -> str:
        result = partition(design, capacity)
        if device is not None:
            plan = floorplan(result.scheme, device)
        else:
            plan = plan_on_smallest_device(result.scheme, virtex5_ladder())
        return render_floorplan_svg(plan)

    try:
        text = _cached_render(args, key, compute)
    except InfeasibleError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FloorplanError as exc:
        print(f"floorplanning failed: {exc}", file=sys.stderr)
        return 2
    return _finish_render(args, text)


def _cmd_render_report(args: argparse.Namespace) -> int:
    from .obs import SinkError, aggregate_run
    from .render import render_report_html

    try:
        report = aggregate_run(args.telemetry_dir)
    except SinkError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return _finish_render(args, render_report_html(report))


def _cmd_render_bench(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .obs import BenchDiffError, load_bench
    from .render import render_bench_trend_html

    paths: list[Path] = []
    for raw in args.artifacts:
        p = Path(raw)
        if p.is_dir():
            paths.extend(sorted(p.glob("BENCH_*.json")))
        else:
            paths.append(p)
    history = []
    try:
        for p in paths:
            history.append((p.name, load_bench(p)))
    except BenchDiffError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    text = render_bench_trend_html(history, threshold=args.threshold)
    return _finish_render(args, text)


def _cmd_batch_status(args: argparse.Namespace) -> int:
    store, cache = _queue_stores(args)
    rows = []
    for job in store.jobs():
        rows.append(
            (
                job.id,
                job.name,
                job.state,
                job.priority,
                job.submitter,
                job.attempts,
                "hit" if job.cache_hit else ("miss" if job.state == "done" else ""),
                (job.result_key or "")[:12],
            )
        )
    print(render_table(
        ("job", "design", "state", "prio", "submitter", "attempts", "cache",
         "result key"),
        rows,
        title=f"Queue {store.directory}",
    ))
    counts = store.counts()
    summary = ", ".join(f"{v} {k}" for k, v in counts.items())
    print(f"jobs: {summary}; cache entries: {len(cache)}")
    if args.errors:
        for job in store.jobs():
            if job.error:
                print(f"\n--- {job.id} ({job.state}) ---\n{job.error}")
    return 0


def _cmd_devices(_args: argparse.Namespace) -> int:
    rows = [
        (
            d.name,
            d.capacity.clb,
            d.capacity.bram,
            d.capacity.dsp,
            d.rows,
            d.column_count,
            d.total_frames(),
        )
        for d in virtex5_ladder()
    ]
    print(render_table(
        ("Device", "CLBs", "BRAMs", "DSPs", "rows", "columns", "frames"),
        rows,
        title="Reconstructed Virtex-5 ladder (Fig. 7/8 axis)",
    ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-pr",
        description=(
            "Automated partitioning for partial-reconfiguration design "
            "(reproduction of Vipin & Fahmy, IPDPSW 2013)"
        ),
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run the command under cProfile and print the hottest "
        "functions (cumulative time) to stderr",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("partition", help="partition an XML design description")
    p.add_argument("design", help="path to the design XML file")
    p.add_argument("--device", help="target device name (else auto-select)")
    p.add_argument(
        "--floorplan", action="store_true", help="also floorplan the result"
    )
    p.add_argument("--ucf", action="store_true", help="print the generated UCF")
    p.add_argument(
        "--out", help="directory for UCF/wrappers/partial bitstreams "
        "(requires --floorplan)"
    )
    p.add_argument(
        "--engine", choices=("incremental", "reference", "portfolio"),
        help="merge-search engine (default: incremental, bit-identical "
        "to reference; portfolio races incremental/annealing/exact -- "
        "docs/PERFORMANCE.md)",
    )
    p.add_argument(
        "--parallel-restarts", type=int, metavar="N",
        help="shard the search restarts over N worker processes",
    )
    p.add_argument(
        "--beam-width", type=int, metavar="K",
        help="evaluate only the K most promising merges per step "
        "(bound-ranked; default: no beam)",
    )
    p.add_argument(
        "--prune", action="store_true",
        help="branch-and-bound pruning of merge candidates via "
        "admissible lower bounds",
    )
    p.add_argument(
        "--shared-seen-filter", action="store_true",
        help="with --parallel-restarts N>1: exchange seen-state "
        "fingerprints between shards so no state is descended twice",
    )
    _add_trace_flags(p)
    p.set_defaults(func=_cmd_partition)

    p = sub.add_parser(
        "pareto", help="area/time Pareto front of an XML design"
    )
    p.add_argument("design", help="path to the design XML file")
    p.add_argument("--device", help="target device name (else auto-select)")
    p.add_argument("--candidate-sets", type=int, default=6)
    p.set_defaults(func=_cmd_pareto)

    p = sub.add_parser("casestudy", help="regenerate Tables III/IV/V")
    p.set_defaults(func=_cmd_casestudy)

    p = sub.add_parser("example", help="regenerate the Sec. IV example artefacts")
    _add_trace_flags(p)
    p.set_defaults(func=_cmd_example)

    p = sub.add_parser("sweep", help="regenerate Figs. 7/8/9")
    p.add_argument("--designs", type=int, default=E.DEFAULT_SWEEP_DESIGNS)
    p.add_argument("--seed", type=int, default=E.DEFAULT_SWEEP_SEED)
    p.add_argument("--progress", action="store_true")
    p.add_argument(
        "--analysis",
        action="store_true",
        help="also print per-class / structural analysis",
    )
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser("devices", help="print the device library")
    p.set_defaults(func=_cmd_devices)

    batch = sub.add_parser(
        "batch", help="batch partitioning service (docs/SERVICE.md)"
    )
    batch_sub = batch.add_subparsers(dest="batch_command", required=True)

    def _add_queue_flags(parser: argparse.ArgumentParser) -> None:
        parser.add_argument(
            "--queue", required=True, metavar="DIR",
            help="queue directory (holds jobs.jsonl; created if missing)",
        )
        parser.add_argument(
            "--cache", metavar="DIR",
            help="result cache directory (default: <queue>/cache)",
        )

    p = batch_sub.add_parser(
        "submit", help="enqueue design XML files or synthetic designs"
    )
    _add_queue_flags(p)
    p.add_argument("designs", nargs="*", help="design XML files to enqueue")
    p.add_argument("--device", help="target device name (else auto-select)")
    p.add_argument(
        "--synthetic", type=int, metavar="N",
        help="also enqueue N Sec. V synthetic designs",
    )
    p.add_argument("--seed", type=int, default=E.DEFAULT_SWEEP_SEED)
    p.add_argument(
        "--max-candidate-sets", type=int,
        help="cap the covering loop per job (part of the cache key)",
    )
    p.add_argument(
        "--no-dedupe", action="store_true",
        help="enqueue even if an identical spec is already queued",
    )
    p.add_argument(
        "--priority", type=int, default=0,
        help="scheduling priority (higher drains first; default 0)",
    )
    p.add_argument(
        "--submitter", default="",
        help="submitter label for fair round-robin scheduling",
    )
    p.set_defaults(func=_cmd_batch_submit)

    p = batch_sub.add_parser("run", help="drain pending jobs with a worker pool")
    _add_queue_flags(p)
    p.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (1 runs jobs inline unless supervised)",
    )
    p.add_argument(
        "--progress", action="store_true",
        help="stream per-job progress events to stderr (needs --trace)",
    )
    p.add_argument(
        "--job-timeout", type=float, metavar="S",
        help="per-job wall deadline in seconds; kills and re-queues "
        "overrunning workers (engages supervised execution)",
    )
    p.add_argument(
        "--heartbeat-interval", type=float, default=0.5, metavar="S",
        help="worker heartbeat period under supervision (default 0.5s)",
    )
    p.add_argument(
        "--heartbeat-timeout", type=float, metavar="S",
        help="kill a worker whose heartbeat is older than S seconds "
        "(hung-worker detection; engages supervised execution)",
    )
    p.add_argument(
        "--inject-fault", action="append", metavar="KIND[:GLOB[:SECONDS]]",
        help="(testing only) inject a deterministic fault into matching "
        "jobs: hang, crash, slow or fail-once -- see repro.service.faults",
    )
    p.add_argument(
        "--telemetry-dir", metavar="DIR",
        help="persist the run's telemetry (events, per-job outcomes, "
        "run summary) to a durable sink directory for `repro obs`",
    )
    p.add_argument(
        "--registry", metavar="DIR",
        help="run registry directory (default <queue>/registry; "
        "'none' disables registration) -- see `repro obs runs`",
    )
    _add_trace_flags(p)
    p.set_defaults(func=_cmd_batch_run)

    p = batch_sub.add_parser("status", help="show queue and cache state")
    _add_queue_flags(p)
    p.add_argument(
        "--errors", action="store_true",
        help="also print recorded failure tracebacks",
    )
    p.set_defaults(func=_cmd_batch_status)

    replay = sub.add_parser(
        "replay",
        help="trace-driven workload replay: measured latency under load "
        "(docs/REPLAY.md)",
    )
    replay_sub = replay.add_subparsers(dest="replay_command", required=True)

    p = replay_sub.add_parser(
        "run", help="replay one synthesized trace against one design"
    )
    p.add_argument(
        "design",
        help="design XML file, or a builtin problem: 'example' (Sec. IV) "
        "| 'casestudy' (Sec. V)",
    )
    p.add_argument("--device", help="target device name")
    p.add_argument(
        "--environment", choices=("uniform", "markov", "bursty"),
        default="bursty", help="traffic model (default: bursty)",
    )
    p.add_argument("--length", type=int, default=256,
                   help="trace length in events (default 256)")
    p.add_argument("--seed", type=int, default=2013)
    p.add_argument(
        "--dwell", type=float, default=0.9,
        help="bursty dwell probability (default 0.9)",
    )
    p.add_argument(
        "--policy", action="append", metavar="NAME",
        help="serving policy preset; repeatable (default: no-prefetch; "
        "presets: no-prefetch, prefetch-markov, prefetch-oracle, "
        "evict-lru, evict-static, evict-activity)",
    )
    p.set_defaults(func=_cmd_replay_run)

    p = replay_sub.add_parser(
        "sweep",
        help="fan a workload suite x policy matrix out as batch replay jobs",
    )
    p.add_argument(
        "--queue", required=True, metavar="DIR",
        help="queue directory (holds jobs.jsonl; created if missing)",
    )
    p.add_argument(
        "--cache", metavar="DIR",
        help="result cache directory (default: <queue>/cache; replay "
        "records land in <cache>/replay)",
    )
    p.add_argument("--designs", type=int, default=4,
                   help="synthetic designs in the suite (default 4)")
    p.add_argument(
        "--traces-per-design", type=int, default=3,
        help="traces per design, round-robining environments (default 3)",
    )
    p.add_argument("--length", type=int, default=256,
                   help="events per trace (default 256)")
    p.add_argument("--seed", type=int, default=2013)
    p.add_argument(
        "--environment", action="append",
        choices=("uniform", "markov", "bursty"),
        help="restrict the suite to these environments; repeatable",
    )
    p.add_argument(
        "--policy", action="append", metavar="NAME",
        help="serving policy preset; repeatable (default: no-prefetch, "
        "prefetch-markov, prefetch-oracle)",
    )
    p.add_argument("--device", help="target device name (else auto-select)")
    p.add_argument(
        "--max-candidate-sets", type=int,
        help="cap the covering loop per job (part of the cache key)",
    )
    p.add_argument("--workers", type=int, default=1)
    p.add_argument(
        "--batch-size", type=int, default=1, metavar="N",
        help="traces per replay job (default 1: one job per trace, the "
        "legacy layout; N>1 micro-batches each design's traces into "
        "replay-batch jobs, amortising dispatch/scheme/store overhead "
        "N x while keeping per-trace records byte-identical)",
    )
    p.add_argument(
        "--telemetry-dir", metavar="DIR",
        help="persist the run's telemetry (including per-job replay "
        "summaries) for `repro obs report`",
    )
    p.add_argument(
        "--registry", metavar="DIR",
        help="run registry directory (default <queue>/registry; "
        "'none' disables registration) -- see `repro obs runs`",
    )
    _add_trace_flags(p)
    p.set_defaults(func=_cmd_replay_sweep)

    p = replay_sub.add_parser(
        "compare",
        help="per-policy latency comparison over stored replay records",
    )
    p.add_argument(
        "--cache", required=True, metavar="DIR",
        help="result cache directory of the sweep (records are read "
        "from <cache>/replay)",
    )
    p.add_argument(
        "--out", metavar="FILE",
        help="render the HTML latency dashboard to FILE ('-' for stdout) "
        "instead of the text table",
    )
    p.add_argument(
        "--check", action="store_true",
        help="don't write: re-render and byte-compare against --out; "
        "exit 3 on drift (CI mode)",
    )
    p.add_argument(
        "--artifact-cache", metavar="DIR",
        help="content-addressed artifact cache for the rendered dashboard",
    )
    p.set_defaults(func=_cmd_replay_compare)

    obs = sub.add_parser(
        "obs", help="telemetry toolchain (docs/OBSERVABILITY.md)"
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)

    p = obs_sub.add_parser(
        "report", help="aggregate a telemetry directory into a run report"
    )
    p.add_argument("telemetry_dir", metavar="DIR",
                   help="telemetry sink directory (from --telemetry-dir)")
    p.add_argument("--json", action="store_true",
                   help="print only the machine-readable report document "
                   "(RunReport.to_dict) for scripting / the SLO gate")
    p.set_defaults(func=_cmd_obs_report)

    p = obs_sub.add_parser(
        "tail",
        help="stream telemetry records as JSON lines, live or post-hoc",
    )
    p.add_argument("telemetry_dir", metavar="DIR",
                   help="telemetry sink directory (from --telemetry-dir)")
    p.add_argument("--follow", "-f", action="store_true",
                   help="keep polling for new records (tail -f style)")
    p.add_argument("--kind", action="append", metavar="KIND",
                   help="only emit records of this kind; repeatable "
                   "(event, job, run, pool, resource)")
    p.add_argument("--cursor-file", metavar="FILE",
                   help="resume from (and persist) a follow cursor, so "
                   "repeat invocations never re-emit records")
    p.add_argument("--poll", type=float, default=0.2, metavar="S",
                   help="poll period while following (default 0.2s)")
    p.add_argument("--idle-timeout", type=float, default=None, metavar="S",
                   help="stop following after S seconds with no new "
                   "records (default: follow until interrupted)")
    p.set_defaults(func=_cmd_obs_tail)

    p = obs_sub.add_parser(
        "top",
        help="refreshing fleet view (workers, in-flight jobs, rates, ETA)",
    )
    p.add_argument("telemetry_dir", metavar="DIR",
                   help="telemetry sink directory (from --telemetry-dir)")
    p.add_argument("--refresh", type=float, default=1.0, metavar="S",
                   help="refresh period (default 1s)")
    p.add_argument("--once", action="store_true",
                   help="render a single frame and exit (no screen clear)")
    p.add_argument("--iterations", type=int, default=0, metavar="N",
                   help="stop after N refreshes (default: until Ctrl-C)")
    p.set_defaults(func=_cmd_obs_top)

    p = obs_sub.add_parser(
        "runs", help="list the runs registered in a run-registry directory"
    )
    p.add_argument("registry_dir", metavar="DIR",
                   help="run registry directory (default <queue>/registry "
                   "for batch run / replay sweep)")
    p.add_argument("--json", action="store_true",
                   help="print the folded entries as a JSON array")
    p.set_defaults(func=_cmd_obs_runs)

    p = obs_sub.add_parser(
        "check",
        help="evaluate declarative SLO rules against a telemetry directory",
    )
    p.add_argument("telemetry_dir", metavar="DIR",
                   help="telemetry sink directory (from --telemetry-dir)")
    p.add_argument("--slo", required=True, metavar="FILE",
                   help="TOML rules file ([[slo]] tables -- see "
                   "docs/OBSERVABILITY.md and ci/slo.toml)")
    p.add_argument("--json", action="store_true",
                   help="print the verdicts as a JSON document")
    p.set_defaults(func=_cmd_obs_check)

    p = obs_sub.add_parser(
        "export-prom",
        help="export a telemetry directory as Prometheus text exposition",
    )
    p.add_argument("telemetry_dir", metavar="DIR",
                   help="telemetry sink directory (from --telemetry-dir)")
    p.add_argument("--prefix", default=None,
                   help="metric name prefix (default: repro_)")
    p.add_argument("--out", metavar="FILE",
                   help="write to FILE (a node_exporter textfile) "
                   "instead of stdout")
    p.set_defaults(func=_cmd_obs_export_prom)

    p = obs_sub.add_parser(
        "bench-diff",
        help="compare two BENCH_*.json artifacts for perf regressions",
    )
    p.add_argument("old", help="baseline BENCH_*.json (e.g. committed)")
    p.add_argument("new", help="candidate BENCH_*.json (e.g. fresh run)")
    p.add_argument(
        "--threshold", type=float, default=0.25, metavar="FRAC",
        help="relative regression threshold (default 0.25 = 25%%); "
        "exit code 3 when any benchmark regresses past it",
    )
    p.set_defaults(func=_cmd_obs_bench_diff)

    render = sub.add_parser(
        "render",
        help="deterministic SVG/HTML rendering layer (docs/REPORTING.md)",
    )
    render_sub = render.add_subparsers(dest="render_command", required=True)

    def _add_render_out_flags(parser: argparse.ArgumentParser) -> None:
        parser.add_argument(
            "--out", required=True, metavar="FILE",
            help="output file ('-' for stdout)",
        )
        parser.add_argument(
            "--check", action="store_true",
            help="don't write: re-render and byte-compare against FILE; "
            "exit 3 on drift (CI mode for committed artifacts)",
        )

    def _add_render_cache_flag(parser: argparse.ArgumentParser) -> None:
        parser.add_argument(
            "--cache", metavar="DIR",
            help="content-addressed artifact cache directory (keyed by "
            "problem key + renderer version)",
        )

    p = render_sub.add_parser(
        "scheme", help="partitioning-scheme diagram (SVG)"
    )
    p.add_argument(
        "design",
        help="design XML file, or a builtin problem: 'example' (Sec. IV) "
        "| 'casestudy' (Sec. V)",
    )
    p.add_argument("--device", help="target device name")
    _add_render_cache_flag(p)
    _add_render_out_flags(p)
    p.set_defaults(func=_cmd_render_scheme)

    p = render_sub.add_parser(
        "floorplan", help="placed-floorplan diagram (SVG)"
    )
    p.add_argument(
        "design",
        help="design XML file, or a builtin problem: 'example' | 'casestudy'",
    )
    p.add_argument(
        "--device",
        help="target device name (else the smallest ladder device that "
        "places the scheme)",
    )
    _add_render_cache_flag(p)
    _add_render_out_flags(p)
    p.set_defaults(func=_cmd_render_floorplan)

    p = render_sub.add_parser(
        "report", help="run dashboard (HTML) over a telemetry directory"
    )
    p.add_argument("telemetry_dir", metavar="DIR",
                   help="telemetry sink directory (from --telemetry-dir)")
    _add_render_out_flags(p)
    p.set_defaults(func=_cmd_render_report)

    p = render_sub.add_parser(
        "bench", help="benchmark trend page (HTML) over BENCH_*.json files"
    )
    p.add_argument(
        "artifacts", nargs="+", metavar="PATH",
        help="BENCH_*.json files in order, or a directory to scan "
        "(sorted by file name)",
    )
    p.add_argument(
        "--threshold", type=float, default=0.25, metavar="FRAC",
        help="relative change flagged as regression/improvement "
        "(default 0.25 = 25%%, matching obs bench-diff)",
    )
    _add_render_out_flags(p)
    p.set_defaults(func=_cmd_render_bench)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.profile:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        try:
            rc = profiler.runcall(args.func, args)
        finally:
            stats = pstats.Stats(profiler, stream=sys.stderr)
            stats.sort_stats("cumulative")
            print("\n--- profile (top 25 by cumulative time) ---",
                  file=sys.stderr)
            stats.print_stats(25)
        return rc
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
