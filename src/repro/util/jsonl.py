"""Crash-tolerant JSON-lines replay, shared by every append-only log.

The batch service's job store and the telemetry sink both persist as
append-only ``*.jsonl`` files written one ``json.dumps(...) + "\\n"`` at
a time.  A crash mid-append can leave exactly two kinds of damage, both
confined to the *end* of the file:

* a **torn final line** -- the record was cut mid-JSON.  The fragment is
  dropped (and, with ``repair=True``, truncated off the file so the next
  append starts on a fresh line instead of concatenating onto garbage);
* a **missing terminator** -- the record is complete JSON but the
  trailing newline never made it to disk.  The record stands; with
  ``repair=True`` the newline is restored so the next append cannot fuse
  two records into one.

Anything malformed *before* the final line is real corruption and raises
:class:`JsonlError` -- silent data loss in the middle of a log is never
acceptable recovery.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any


class JsonlError(ValueError):
    """Raised for corruption that torn-tail recovery cannot explain."""


def replay_jsonl(path: str | Path, repair: bool = True) -> list[Any]:
    """Parsed records of an append-only JSONL log, recovering the tail.

    Returns the decoded objects in file order.  A torn final line is
    dropped; every other malformed line raises :class:`JsonlError` with
    a ``path:line`` prefix.  With ``repair=True`` (the default) the file
    itself is healed in place: the torn fragment is truncated away and a
    missing final newline is restored -- the job-store recovery
    discipline, available to any log.  A missing file is an empty log.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        return []
    terminated = text.endswith("\n")
    lines = text.split("\n")
    if lines and not lines[-1]:
        lines.pop()
    records: list[Any] = []
    for i, line in enumerate(lines):
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            if i == len(lines) - 1:
                if repair:
                    _truncate_to(path, lines[:i])
                return records
            raise JsonlError(
                f"{path}:{i + 1}: corrupt record: {exc}"
            ) from exc
    if repair and lines and not terminated:
        with path.open("a", encoding="utf-8") as fh:
            fh.write("\n")
    return records


def _truncate_to(path: Path, good_lines: list[str]) -> None:
    """Cut the log back to its valid prefix (newline-terminated)."""
    good = "".join(line + "\n" for line in good_lines)
    with path.open("rb+") as fh:
        fh.truncate(len(good.encode("utf-8")))
