"""Small shared utilities."""

from .ordering import argsort_by, stable_unique
from .validation import require, require_positive

__all__ = ["argsort_by", "require", "require_positive", "stable_unique"]
