"""Small shared utilities."""

from .jsonl import JsonlError, replay_jsonl
from .ordering import argsort_by, stable_unique
from .validation import require, require_positive

__all__ = [
    "JsonlError",
    "argsort_by",
    "replay_jsonl",
    "require",
    "require_positive",
    "stable_unique",
]
