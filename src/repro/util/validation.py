"""Tiny argument-validation helpers with consistent error messages."""

from __future__ import annotations

from typing import TypeVar

T = TypeVar("T")


def require(condition: bool, message: str) -> None:
    """Raise ``ValueError(message)`` when the condition fails."""
    if not condition:
        raise ValueError(message)


def require_positive(value: int | float, name: str) -> None:
    """Raise when ``value`` is not strictly positive."""
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
