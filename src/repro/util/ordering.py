"""Ordering helpers used by reports and deterministic tie-breaking."""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, Sequence, TypeVar

T = TypeVar("T")


def argsort_by(items: Sequence[T], key: Callable[[T], object]) -> list[int]:
    """Indices that sort ``items`` by ``key`` (stable)."""
    return sorted(range(len(items)), key=lambda i: key(items[i]))  # type: ignore[arg-type]


def stable_unique(items: Iterable[T]) -> list[T]:
    """Deduplicate preserving first-seen order (items must be hashable)."""
    seen: set[Hashable] = set()
    out: list[T] = []
    for item in items:
        if item not in seen:
            seen.add(item)  # type: ignore[arg-type]
            out.append(item)
    return out
