"""Fold stored replay records into a per-policy latency comparison.

One replay record answers "how did this scheme serve this trace under
this policy"; the question a sweep asks is "which *policy* should a
deployment run".  :func:`collect_policy_comparison` groups a set of
replay records by policy name and merges their latency histograms
(identical bounds by construction -- every replay uses
:data:`~repro.replay.engine.REPLAY_LATENCY_BOUNDS`), yielding fleet-wide
p50/p95/p99 delivered switch latency, stall rates and ICAP utilisation
per policy.

Everything here is deterministic: records are consumed in sorted-key
order, the comparison has a content address (:func:`comparison_key`)
for artifact caching, and both renderings -- the text table and the
HTML dashboard (:func:`repro.render.render_replay_html`) -- are pure
functions of the comparison.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from ..obs.metrics import Histogram
from .engine import REPLAY_LATENCY_BOUNDS, REPLAY_VERSION, ReplayError
from .store import ReplayResultStore


@dataclass
class PolicyLatency:
    """Fleet-wide aggregates for one policy across many replays."""

    policy: str
    traces: int = 0
    events: int = 0
    switches: int = 0
    rewrites: int = 0
    total_frames: int = 0
    total_seconds: float = 0.0
    stall_events: int = 0
    slot_budget_s: float = 0.0
    prefetch_hits: int = 0
    store_misses: int = 0
    latency: Histogram = field(
        default_factory=lambda: Histogram(bounds=REPLAY_LATENCY_BOUNDS)
    )

    @property
    def icap_utilisation(self) -> float:
        """Reconfiguration seconds over the fleet's total slot budget."""
        if self.slot_budget_s <= 0:
            return 0.0
        return self.total_seconds / self.slot_budget_s

    @property
    def stall_rate(self) -> float:
        return self.stall_events / self.events if self.events else 0.0

    def percentile(self, pct: float) -> float | None:
        return self.latency.percentile(pct)

    def fold(self, record: Mapping[str, Any]) -> None:
        """Merge one canonical replay record into this aggregate."""
        try:
            self.traces += 1
            self.events += int(record["events"])
            self.switches += int(record["switches"])
            self.rewrites += int(record["rewrites"])
            self.total_frames += int(record["total_frames"])
            self.total_seconds += float(record["total_seconds"])
            self.stall_events += int(record["stall_events"])
            self.slot_budget_s += int(record["events"]) * float(record["dwell_s"])
            prefetch = record.get("prefetch")
            if prefetch:
                self.prefetch_hits += int(prefetch.get("hits", 0))
            store = record.get("store")
            if store:
                self.store_misses += int(store.get("misses", 0))
            self.latency.merge(Histogram.from_dict(record["latency"]))
        except (KeyError, TypeError, ValueError) as exc:
            raise ReplayError(f"malformed replay record: {exc}") from exc

    def to_dict(self) -> dict[str, Any]:
        return {
            "policy": self.policy,
            "traces": self.traces,
            "events": self.events,
            "switches": self.switches,
            "rewrites": self.rewrites,
            "total_frames": self.total_frames,
            "total_seconds": self.total_seconds,
            "stall_events": self.stall_events,
            "stall_rate": self.stall_rate,
            "icap_utilisation": self.icap_utilisation,
            "prefetch_hits": self.prefetch_hits,
            "store_misses": self.store_misses,
            "p50_s": self.percentile(50),
            "p95_s": self.percentile(95),
            "p99_s": self.percentile(99),
            "latency": self.latency.to_dict(),
        }


@dataclass(frozen=True)
class PolicyComparison:
    """Per-policy latency aggregates over one set of replay records."""

    policies: tuple[PolicyLatency, ...]
    keys: tuple[str, ...]

    @property
    def traces(self) -> int:
        return sum(p.traces for p in self.policies)

    def best_by(self, pct: float = 95) -> PolicyLatency | None:
        """The policy with the lowest pct-th latency (ties by name)."""
        ranked = [
            (p.percentile(pct), p.policy, p)
            for p in self.policies
            if p.percentile(pct) is not None
        ]
        if not ranked:
            return None
        return min(ranked, key=lambda item: (item[0], item[1]))[2]

    def to_dict(self) -> dict[str, Any]:
        return {
            "key": comparison_key(self.keys),
            "traces": self.traces,
            "policies": [p.to_dict() for p in self.policies],
        }


def comparison_key(keys: Iterable[str]) -> str:
    """Content address of a comparison: the sorted result-key set."""
    payload = json.dumps(
        {
            "format": "repro-replay-compare",
            "version": REPLAY_VERSION,
            "keys": sorted(set(keys)),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def collect_policy_comparison(
    store: ReplayResultStore, keys: Iterable[str] | None = None
) -> PolicyComparison:
    """Group the store's records by policy and merge their latency.

    ``keys`` restricts the comparison to a subset (e.g. one sweep's
    result keys); by default every record in the store participates.
    Records are folded in sorted-key order, so the comparison -- and
    everything rendered from it -- is independent of filesystem
    enumeration order.
    """
    selected = sorted(store.keys() if keys is None else set(keys))
    by_policy: dict[str, PolicyLatency] = {}
    used: list[str] = []
    for key in selected:
        record = store.get_record(key)
        if record is None:
            raise ReplayError(f"no replay record for key {key}")
        policy = record.get("policy")
        name = str(policy.get("name", "?")) if isinstance(policy, Mapping) else "?"
        by_policy.setdefault(name, PolicyLatency(policy=name)).fold(record)
        used.append(key)
    ordered = tuple(by_policy[name] for name in sorted(by_policy))
    return PolicyComparison(policies=ordered, keys=tuple(used))


def _fmt_seconds(value: float | None) -> str:
    if value is None:
        return "-"
    if value < 1e-3:
        return f"{value * 1e6:.1f}us"
    if value < 1.0:
        return f"{value * 1e3:.2f}ms"
    return f"{value:.3f}s"


def render_policy_comparison(comparison: PolicyComparison) -> str:
    """A deterministic text table of the comparison (CLI output)."""
    headers = (
        "policy", "traces", "switches", "p50", "p95", "p99",
        "stalls", "icap-util",
    )
    rows = [
        (
            p.policy,
            str(p.traces),
            str(p.switches),
            _fmt_seconds(p.percentile(50)),
            _fmt_seconds(p.percentile(95)),
            _fmt_seconds(p.percentile(99)),
            f"{p.stall_events} ({p.stall_rate * 100:.1f}%)",
            f"{p.icap_utilisation * 100:.2f}%",
        )
        for p in comparison.policies
    ]
    if not rows:
        return "no replay records\n"
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows))
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip(),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append(
            "  ".join(c.ljust(widths[i]) for i, c in enumerate(row)).rstrip()
        )
    best = comparison.best_by(95)
    if best is not None:
        lines.append("")
        lines.append(
            f"best p95: {best.policy} "
            f"({_fmt_seconds(best.percentile(95))} over {best.traces} traces)"
        )
    return "\n".join(lines) + "\n"
