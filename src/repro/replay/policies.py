"""The replay policy matrix: managers, predictors, bitstream eviction.

A :class:`PolicySpec` names one runtime serving policy as pure data, so
it can live inside job payloads and cache keys:

* ``manager`` -- ``plain`` (the paper's configuration manager, Sec.
  III-A) or ``prefetch`` (speculative preloading of idle regions,
  :mod:`repro.runtime.prefetch`);
* ``predictor`` -- ``none``, ``markov`` (argmax of the environment's
  true transition matrix) or ``oracle`` (one-step lookahead into the
  trace, the upper bound on what any predictor can hide);
* ``eviction`` -- ``none`` (all partial bitstreams resident in fast
  memory, the paper's deployment assumption), or a finite
  :class:`BitstreamStore` in front of slow backing storage with
  ``lru`` / ``static`` (pinned by expected use) / ``activity``
  (least-used evicted first) replacement, after the reconfigurable-
  region management policies of arXiv 1803.03331;
* ``icap`` / ``slow_icap`` -- the fast-path and miss-path controller
  models (:data:`repro.runtime.icap.PRESETS` names);
* ``dwell_s`` -- the per-event slot budget: a switch whose latency
  exceeds it is a *stall*, and utilisation is reconfiguration time over
  the trace's total slot time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..core.result import PartitioningScheme
from ..runtime.icap import PRESETS, IcapModel

#: Manager / predictor / eviction vocabularies.
MANAGERS = ("plain", "prefetch")
PREDICTORS = ("none", "markov", "oracle")
EVICTION_POLICIES = ("none", "lru", "static", "activity")


class PolicyError(ValueError):
    """Raised for malformed policy specifications."""


@dataclass(frozen=True)
class PolicySpec:
    """One serving policy as canonical, hashable data."""

    name: str
    manager: str = "plain"
    predictor: str = "none"
    eviction: str = "none"
    store_capacity_frames: int | None = None
    icap: str = "custom-dma"
    slow_icap: str = "flash"
    dwell_s: float = 0.01

    def __post_init__(self) -> None:
        if not self.name:
            raise PolicyError("a policy needs a name")
        if self.manager not in MANAGERS:
            raise PolicyError(f"unknown manager {self.manager!r}")
        if self.predictor not in PREDICTORS:
            raise PolicyError(f"unknown predictor {self.predictor!r}")
        if self.eviction not in EVICTION_POLICIES:
            raise PolicyError(f"unknown eviction policy {self.eviction!r}")
        if self.manager == "plain" and self.predictor != "none":
            raise PolicyError("a plain manager cannot use a predictor")
        if self.manager == "prefetch" and self.predictor == "none":
            raise PolicyError("a prefetching manager needs a predictor")
        if self.manager == "prefetch" and self.eviction != "none":
            raise PolicyError(
                "prefetching assumes resident bitstreams; combine an "
                "eviction policy with the plain manager instead"
            )
        if self.icap not in PRESETS:
            raise PolicyError(f"unknown ICAP preset {self.icap!r}")
        if self.slow_icap not in PRESETS:
            raise PolicyError(f"unknown ICAP preset {self.slow_icap!r}")
        if self.store_capacity_frames is not None:
            if self.eviction == "none":
                raise PolicyError(
                    "store capacity only applies with an eviction policy"
                )
            if self.store_capacity_frames < 1:
                raise PolicyError("store capacity must be positive")
        if self.dwell_s <= 0:
            raise PolicyError("dwell_s must be positive")

    @property
    def icap_model(self) -> IcapModel:
        return PRESETS[self.icap]

    @property
    def slow_icap_model(self) -> IcapModel:
        return PRESETS[self.slow_icap]

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "manager": self.manager,
            "predictor": self.predictor,
            "eviction": self.eviction,
            "store_capacity_frames": self.store_capacity_frames,
            "icap": self.icap,
            "slow_icap": self.slow_icap,
            "dwell_s": self.dwell_s,
        }

    @classmethod
    def from_dict(cls, doc: Mapping) -> "PolicySpec":
        try:
            return cls(
                name=str(doc["name"]),
                manager=str(doc.get("manager", "plain")),
                predictor=str(doc.get("predictor", "none")),
                eviction=str(doc.get("eviction", "none")),
                store_capacity_frames=(
                    None
                    if doc.get("store_capacity_frames") is None
                    else int(doc["store_capacity_frames"])
                ),
                icap=str(doc.get("icap", "custom-dma")),
                slow_icap=str(doc.get("slow_icap", "flash")),
                dwell_s=float(doc.get("dwell_s", 0.01)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise PolicyError(f"malformed policy spec: {exc}") from exc


#: Named preset policies for the CLI and sweeps.
POLICY_PRESETS: dict[str, PolicySpec] = {
    p.name: p
    for p in (
        PolicySpec(name="no-prefetch"),
        PolicySpec(name="prefetch-markov", manager="prefetch",
                   predictor="markov"),
        PolicySpec(name="prefetch-oracle", manager="prefetch",
                   predictor="oracle"),
        PolicySpec(name="evict-lru", eviction="lru"),
        PolicySpec(name="evict-static", eviction="static"),
        PolicySpec(name="evict-activity", eviction="activity"),
    )
}


def resolve_policy(policy: "PolicySpec | str | Mapping") -> PolicySpec:
    """A :class:`PolicySpec` from a preset name, spec dict or spec."""
    if isinstance(policy, PolicySpec):
        return policy
    if isinstance(policy, str):
        try:
            return POLICY_PRESETS[policy]
        except KeyError:
            raise PolicyError(
                f"unknown policy preset {policy!r}; "
                f"expected one of {sorted(POLICY_PRESETS)}"
            ) from None
    return PolicySpec.from_dict(policy)


def default_store_capacity(scheme: PartitioningScheme) -> int:
    """Derived bitstream-store capacity: half the total partial footprint.

    Small enough that eviction actually happens on multi-partition
    schemes, large enough that every single partial fits (the maximum
    per-region frame count is always admissible).
    """
    total = sum(r.frames * len(r.partitions) for r in scheme.regions)
    largest = max((r.frames for r in scheme.regions), default=1)
    return max(total // 2, largest, 1)


class BitstreamStore:
    """Finite fast bitstream memory in front of slow backing storage.

    The paper assumes every partial bitstream is resident in DDR behind
    the custom DMA controller; real deployments bound that memory.  The
    store models it: entries are (region, partition label) bitstreams
    costing their region's frame span.  A *hit* streams through the
    fast controller; a *miss* streams from the slow one (fetch path)
    and then becomes resident, evicting under the configured policy:

    * ``lru`` -- least recently used entry goes first;
    * ``static`` -- a fixed pinned set chosen up front by expected use
      (scheme activity counts); anything else always misses;
    * ``activity`` -- least-hit entry goes first (ties fall back to
      LRU order).

    Deterministic by construction: no clocks, no randomness -- ordering
    derives from insertion/hit sequence and sorted names only.
    """

    def __init__(
        self,
        scheme: PartitioningScheme,
        policy: PolicySpec,
        capacity_frames: int | None = None,
    ):
        if policy.eviction == "none":
            raise PolicyError("BitstreamStore needs an eviction policy")
        self.policy = policy.eviction
        self._fast = policy.icap_model
        self._slow = policy.slow_icap_model
        self.capacity = (
            capacity_frames
            if capacity_frames is not None
            else policy.store_capacity_frames
            if policy.store_capacity_frames is not None
            else default_store_capacity(scheme)
        )
        if self.capacity < 1:
            raise PolicyError("store capacity must be positive")
        self._frames: dict[tuple[str, str], int] = {
            (region.name, p.label): region.frames
            for region in scheme.regions
            for p in region.partitions
        }
        #: Resident entries in LRU order (first = coldest).
        self._resident: dict[tuple[str, str], int] = {}
        self._hit_counts: dict[tuple[str, str], int] = {}
        self._used = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._pinned: frozenset[tuple[str, str]] = frozenset()
        if self.policy == "static":
            self._pin_static(scheme)

    def _pin_static(self, scheme: PartitioningScheme) -> None:
        """Pin the most-used bitstreams (by scheme activity counts)."""
        use: dict[tuple[str, str], int] = {key: 0 for key in self._frames}
        for config in scheme.design.configurations:
            for region, label in zip(
                scheme.regions, scheme.activity(config.name)
            ):
                if label is not None:
                    use[(region.name, label)] += 1
        pinned = []
        for key in sorted(use, key=lambda k: (-use[k], k)):
            frames = self._frames[key]
            if self._used + frames > self.capacity:
                continue
            pinned.append(key)
            self._resident[key] = frames
            self._used += frames
        self._pinned = frozenset(pinned)

    @property
    def resident_keys(self) -> tuple[tuple[str, str], ...]:
        return tuple(self._resident)

    def _evict_until(self, needed: int) -> None:
        while self._used + needed > self.capacity and self._resident:
            if self.policy == "activity":
                victim = min(
                    self._resident,
                    key=lambda k: (
                        self._hit_counts.get(k, 0),
                        list(self._resident).index(k),
                    ),
                )
            else:  # lru
                victim = next(iter(self._resident))
            self._used -= self._resident.pop(victim)
            self.evictions += 1

    def fetch(self, region_name: str, label: str) -> tuple[float, bool]:
        """Stream one bitstream; returns (seconds, was_resident).

        The caller charges the returned seconds as the rewrite latency
        of that region (replacing the flat fast-path estimate).
        """
        key = (region_name, label)
        try:
            frames = self._frames[key]
        except KeyError:
            raise PolicyError(
                f"unknown bitstream {label!r} for region {region_name!r}"
            ) from None
        if key in self._resident:
            self.hits += 1
            self._hit_counts[key] = self._hit_counts.get(key, 0) + 1
            if self.policy != "static":
                # Refresh recency: move to the hot end.
                self._resident[key] = self._resident.pop(key)
            return self._fast.time_for_frames(frames), True
        self.misses += 1
        seconds = self._slow.time_for_frames(frames)
        if self.policy != "static" and frames <= self.capacity:
            self._evict_until(frames)
            self._resident[key] = frames
            self._used += frames
        return seconds, False

    def preload(self, region_name: str, label: str) -> None:
        """Make one bitstream resident without charging a fetch.

        Models the power-up state: the initial configuration's partials
        are already in fast memory.  Static stores ignore it -- their
        resident set is fixed at construction.
        """
        key = (region_name, label)
        frames = self._frames.get(key)
        if frames is None:
            raise PolicyError(
                f"unknown bitstream {label!r} for region {region_name!r}"
            )
        if self.policy == "static" or key in self._resident:
            return
        if frames > self.capacity:
            return
        self._evict_until(frames)
        self._resident[key] = frames
        self._used += frames

    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "capacity_frames": self.capacity,
            "resident_frames": self._used,
        }
