"""Replay jobs: the batch service's second workload class.

A replay job is a partition job plus a workload: its ``replay`` spec
carries a :class:`~repro.replay.trace.TraceSpec` document and a
:class:`~repro.replay.policies.PolicySpec` document, both canonical
dicts, so they survive the job log and the worker pickle boundary
unchanged.  Execution is two cache layers deep:

1. the *partition* result is looked up in the
   :class:`~repro.service.cache.ResultCache` under the ordinary
   partition problem key and computed (and cached) on a miss -- so a
   sweep of 30 policies x traces over one design runs the expensive
   search once;
2. the *replay* result is keyed by
   :func:`~repro.replay.engine.replay_result_key` (problem x trace x
   policy x version) and stored in the :class:`ReplayResultStore`
   under ``<cache_root>/replay`` -- a re-run of the whole sweep
   completes in phase 1 of :func:`repro.service.run_batch` without
   dispatching a single worker.

:func:`submit_replay_suite` is the fan-out entry: it crosses a
:class:`~repro.replay.trace.WorkloadSuite` (synthesized designs x
environments x seeds) with a policy list and enqueues one replay job
per cell -- or, with ``batch_size > 1``, one ``replay-batch`` job per
N cells sharing a (design, policy), which amortises dispatch, scheme
resolution and store IO N x while keeping every member record under
its individual :func:`~repro.replay.engine.replay_result_key` (batched
and single-trace sweeps fill the same store).

Workers stay *warm*: resolved partition results are kept in a
module-level LRU keyed by partition problem key, so a persistent
worker process replaying many traces of one design deserialises the
scheme once, not once per job (``pool.warm_hits`` counts the reuses).
"""

from __future__ import annotations

import hashlib
import time
from collections import OrderedDict
from pathlib import Path
from typing import Any, Iterable, Mapping

from ..arch.library import DeviceLibrary
from ..core.partitioner import (
    PartitionerOptions,
    PartitionResult,
    partition,
    partition_with_device_selection,
)
from ..flow.xmlio import design_to_xml
from ..obs import NULL_TRACER, Tracer
from ..service.cache import ResultCache
from ..service.jobs import Job, JobStore
from ..service.problem import resolve_problem_text
from .engine import (
    ReplayError,
    ReplayResult,
    replay_batch_key,
    replay_record,
    replay_result_key,
    replay_trace,
)
from .policies import PolicySpec, resolve_policy
from .store import ReplayResultStore
from .trace import TraceSpec, WorkloadSuite, config_names, generator_matrix, iter_trace, trace_key

#: Subdirectory of the result-cache root holding replay records; kept
#: out of the cache's own shard tree so ``ResultCache.keys()`` never
#: sees a replay entry.
REPLAY_STORE_DIRNAME = "replay"

#: Cap of the per-process warm scheme cache (resolved partition results
#: keyed by partition problem key).  Schemes are small relative to the
#: traces replayed against them; the cap only bounds pathological
#: many-design single-process sweeps.
WARM_SCHEME_LIMIT = 64

#: partition key -> (PartitionResult, device name), most recent last.
_WARM_SCHEMES: "OrderedDict[str, tuple[PartitionResult, str | None]]" = (
    OrderedDict()
)

#: (xml sha256, device, max_candidate_sets) -> (partition key, config
#: names).  A sweep keys the same design once per policy in phase 1 and
#: once more in the worker; the memo collapses those repeat XML parses.
#: Only populated for the default library -- a caller-supplied library
#: changes the key of auto-select problems.
_KEY_MEMO_LIMIT = 256
_KEY_MEMO: "OrderedDict[tuple, tuple[str, tuple[str, ...]]]" = OrderedDict()


def _problem_key_names(
    design_xml: str,
    device: str | None,
    max_candidate_sets: int | None,
    library: DeviceLibrary | None,
) -> tuple[str, tuple[str, ...]]:
    """(partition problem key, configuration names) of one design spec."""
    from ..service.pool import partition_problem_key_resolved

    memo_key = None
    if library is None:
        digest = hashlib.sha256(design_xml.encode("utf-8")).hexdigest()
        memo_key = (digest, device, max_candidate_sets)
        hit = _KEY_MEMO.get(memo_key)
        if hit is not None:
            _KEY_MEMO.move_to_end(memo_key)
            return hit
    problem = resolve_problem_text(design_xml, device, library)
    out = (
        partition_problem_key_resolved(problem, max_candidate_sets),
        config_names(problem.design),
    )
    if memo_key is not None:
        _KEY_MEMO[memo_key] = out
        while len(_KEY_MEMO) > _KEY_MEMO_LIMIT:
            _KEY_MEMO.popitem(last=False)
    return out


def replay_store_for(cache: ResultCache) -> ReplayResultStore:
    """The replay record store co-located with a result cache."""
    return ReplayResultStore(Path(cache.root) / REPLAY_STORE_DIRNAME)


def _replay_docs(replay: Mapping[str, Any] | None) -> tuple[TraceSpec, PolicySpec]:
    if not isinstance(replay, Mapping):
        raise ReplayError("replay job carries no replay spec")
    try:
        trace_doc = replay["trace"]
        policy_doc = replay["policy"]
    except KeyError as exc:
        raise ReplayError(f"replay spec is missing {exc}") from exc
    return TraceSpec.from_dict(trace_doc), resolve_policy(policy_doc)


def _replay_batch_docs(
    replay: Mapping[str, Any] | None,
) -> tuple[list[TraceSpec], PolicySpec]:
    if not isinstance(replay, Mapping):
        raise ReplayError("replay-batch job carries no replay spec")
    try:
        trace_docs = replay["traces"]
        policy_doc = replay["policy"]
    except KeyError as exc:
        raise ReplayError(f"replay-batch spec is missing {exc}") from exc
    if not isinstance(trace_docs, (list, tuple)) or not trace_docs:
        raise ReplayError(
            "replay-batch spec needs a non-empty 'traces' sequence"
        )
    return (
        [TraceSpec.from_dict(doc) for doc in trace_docs],
        resolve_policy(policy_doc),
    )


def replay_job_key(job: Job, library: DeviceLibrary | None = None) -> str:
    """The content-address of one replay job: problem x trace x policy.

    The partition half is the ordinary
    :func:`~repro.service.pool.partition_problem_key`; the trace half
    hashes the configuration-name universe with the spec, so renaming a
    configuration (which changes the trace) changes the key even when
    the spec document does not.
    """
    key, _members = replay_probe_keys(job, library)
    return key


def replay_probe_keys(
    job: Job, library: DeviceLibrary | None = None
) -> tuple[str, list[str]]:
    """``(job key, member record keys)`` of a replay or replay-batch job.

    One XML parse covers both halves (the problem key and the trace
    keys).  For single-trace jobs the job key *is* the one member key;
    for batches the job key is :func:`~repro.replay.engine.replay_batch_key`
    while the members are the per-trace record keys -- phase 1 of the
    batch runner declares the job cached exactly when **every** member
    has a stored record.
    """
    partition_key, names = _problem_key_names(
        job.design_xml, job.device, job.max_candidate_sets, library
    )
    if job.kind == "replay-batch":
        specs, policy = _replay_batch_docs(job.replay)
        tkeys = [trace_key(names, spec) for spec in specs]
        members = [
            replay_result_key(partition_key, tk, policy) for tk in tkeys
        ]
        return replay_batch_key(partition_key, tkeys, policy), members
    spec, policy = _replay_docs(job.replay)
    key = replay_result_key(partition_key, trace_key(names, spec), policy)
    return key, [key]


def replay_summary(result: ReplayResult) -> dict[str, Any]:
    """The compact per-job summary shipped in worker outcomes.

    This is what lands in the telemetry sink's ``job`` records (and so
    in ``repro obs report``): enough to aggregate per-policy latency
    fleet-wide without re-reading the replay store.
    """
    return {
        "policy": str(result.policy.get("name", "?")),
        "events": result.events,
        "switches": result.switches,
        "stall_events": result.stall_events,
        "total_seconds": result.total_seconds,
        "icap_utilisation": result.icap_utilisation,
        "latency": result.latency.to_dict(),
    }


def _partition_for(
    payload: Mapping[str, Any],
    cache: ResultCache,
    t0: float,
    tracer: Tracer = NULL_TRACER,
) -> tuple[str, PartitionResult, str | None]:
    """Resolve the payload's partition half, warm-cache first.

    Three layers, cheapest first: the module-level warm LRU (a
    persistent worker re-serving a design it has seen skips even the
    cache-entry deserialisation -- counted as ``pool.warm_hits``), then
    the on-disk :class:`~repro.service.cache.ResultCache`, then the
    actual partitioning search (cached for everyone afterwards).  The
    warm path still guarantees the cache entry exists, so cross-process
    lookups never depend on which worker computed the scheme.
    """
    partition_key, _names = _problem_key_names(
        payload["design_xml"],
        payload["device"],
        payload["max_candidate_sets"],
        payload.get("library"),
    )
    warm = _WARM_SCHEMES.get(partition_key)
    if warm is not None:
        _WARM_SCHEMES.move_to_end(partition_key)
        result, device_name = warm
        tracer.count("pool.warm_hits", 1)
        if partition_key not in cache:
            cache.put(partition_key, result, device_name=device_name)
        return partition_key, result, device_name
    cached = cache.lookup(partition_key)
    if cached is not None:
        result, device_name = cached.result, cached.device_name
    else:
        problem = resolve_problem_text(
            payload["design_xml"], payload["device"], payload.get("library")
        )
        options = PartitionerOptions(
            max_candidate_sets=payload["max_candidate_sets"]
        )
        if problem.device is not None:
            assert problem.capacity is not None
            result = partition(
                problem.design, problem.capacity, options, tracer=tracer
            )
            device_name = problem.device.name
        else:
            selected = partition_with_device_selection(
                problem.design, problem.library, options, tracer=tracer
            )
            result, device_name = selected.result, selected.device.name
        cache.put(
            partition_key,
            result,
            device_name=device_name,
            compute_s=time.perf_counter() - t0,
        )
    _WARM_SCHEMES[partition_key] = (result, device_name)
    while len(_WARM_SCHEMES) > WARM_SCHEME_LIMIT:
        _WARM_SCHEMES.popitem(last=False)
    return partition_key, result, device_name


def run_replay_payload(
    payload: Mapping[str, Any],
    started: float | None = None,
    tracer: Tracer = NULL_TRACER,
) -> dict[str, Any]:
    """Worker body of one replay job (called from ``execute_job_payload``).

    Partition-result resolution is cache-first: a hit rebuilds the
    scheme from the stored entry, a miss runs the search and caches it
    under the partition key -- so the replay store and the result cache
    fill each other's future lookups.  Exceptions propagate; the
    caller's outcome envelope turns them into ``ok=False`` payloads.
    """
    t0 = time.perf_counter() if started is None else started
    spec, policy = _replay_docs(payload.get("replay"))
    cache = ResultCache(payload["cache_root"])
    store = replay_store_for(cache)
    partition_key, result, device_name = _partition_for(
        payload, cache, t0, tracer
    )

    scheme = result.scheme
    names = config_names(scheme.design)
    key = replay_result_key(partition_key, trace_key(names, spec), policy)
    with tracer.span("replay", policy=policy.name, environment=spec.environment):
        replayed = replay_trace(
            scheme,
            iter_trace(names, spec),
            policy,
            matrix=generator_matrix(names, spec),
            problem_key=partition_key,
            trace_key=trace_key(names, spec),
            tracer=tracer,
        )
    store.put_result(key, replayed)
    return {
        "job_id": payload["job_id"],
        "ok": True,
        "key": key,
        "device": device_name,
        "total_frames": result.total_frames,
        "compute_s": time.perf_counter() - t0,
        "replay": replay_summary(replayed),
    }


def run_replay_batch_payload(
    payload: Mapping[str, Any],
    started: float | None = None,
    tracer: Tracer = NULL_TRACER,
) -> dict[str, Any]:
    """Worker body of one micro-batched replay job.

    The scheme/policy are resolved **once** for all N member traces,
    each member replays under its individual record key, and the store
    write is ONE atomic segment append
    (:meth:`~repro.replay.store.ReplayResultStore.put_many`) -- the
    three per-trace overheads the batch amortises.  The outcome's
    ``replay`` summary is the fold of the members (``traces`` carries
    N, the latency histograms merge), and ``batch`` marks the outcome
    for the parent's ``replay.batch_jobs`` counter.
    """
    t0 = time.perf_counter() if started is None else started
    specs, policy = _replay_batch_docs(payload.get("replay"))
    cache = ResultCache(payload["cache_root"])
    store = replay_store_for(cache)
    partition_key, result, device_name = _partition_for(
        payload, cache, t0, tracer
    )

    scheme = result.scheme
    names = config_names(scheme.design)
    records: dict[str, dict[str, Any]] = {}
    tkeys: list[str] = []
    summary: dict[str, Any] | None = None
    with tracer.span("replay_batch", policy=policy.name, traces=len(specs)):
        for spec in specs:
            tk = trace_key(names, spec)
            tkeys.append(tk)
            replayed = replay_trace(
                scheme,
                iter_trace(names, spec),
                policy,
                matrix=generator_matrix(names, spec),
                problem_key=partition_key,
                trace_key=tk,
                tracer=tracer,
            )
            key = replay_result_key(partition_key, tk, policy)
            records[key] = replay_record(replayed)
            summary = _fold_summary(summary, replayed)
    store.put_many(records)
    assert summary is not None  # specs is validated non-empty
    return {
        "job_id": payload["job_id"],
        "ok": True,
        "key": replay_batch_key(partition_key, tkeys, policy),
        "device": device_name,
        "total_frames": result.total_frames,
        "compute_s": time.perf_counter() - t0,
        "replay": summary,
        "batch": len(specs),
        "record_keys": list(records),
    }


def _fold_summary(
    summary: dict[str, Any] | None, result: ReplayResult
) -> dict[str, Any]:
    """Fold one member result into a batch's aggregate replay summary.

    Counts sum, latency histograms merge, and utilisation is recomputed
    over the folded totals -- the same aggregation
    :class:`repro.obs.report.ReplayPolicyStats` applies across jobs,
    done once in-worker so a batch ships one summary, not N.
    """
    member = replay_summary(result)
    if summary is None:
        member["traces"] = 1
        return member
    from ..obs.metrics import Histogram

    summary["traces"] = int(summary.get("traces", 1)) + 1
    for field in ("events", "switches", "stall_events"):
        summary[field] += member[field]
    summary["total_seconds"] += member["total_seconds"]
    budget = summary["events"] * result.dwell_s
    summary["icap_utilisation"] = (
        summary["total_seconds"] / budget if budget > 0 else 0.0
    )
    merged = Histogram.from_dict(summary["latency"])
    merged.merge(result.latency)
    summary["latency"] = merged.to_dict()
    return summary


def submit_replay_suite(
    store: JobStore,
    suite: WorkloadSuite,
    policies: Iterable[PolicySpec | str | Mapping],
    device: str | None = None,
    max_candidate_sets: int | None = None,
    max_attempts: int | None = None,
    priority: int = 0,
    submitter: str = "",
    batch_size: int = 1,
) -> list[Job]:
    """Fan a workload suite x policy list out as replay jobs.

    With the default ``batch_size=1``, one job per (design, trace,
    policy) cell, named ``<design>/<environment>[<trace-seed>]/<policy>``
    -- byte-identical submissions to the pre-batching path.  With
    ``batch_size=N``, each design's traces are chunked N at a time into
    ``replay-batch`` jobs per policy (named
    ``<design>/batch<i>[<n>]/<policy>``); member records keep their
    single-trace keys, so batched and unbatched sweeps of the same
    suite serve each other's cached records.  Submission dedupes
    identical cells either way, so re-submitting a suite onto a queue
    that already holds it is a no-op.  Returns the jobs in submission
    order.
    """
    if batch_size < 1:
        raise ReplayError("batch_size must be at least 1")
    resolved = [resolve_policy(p) for p in policies]
    if not resolved:
        raise ReplayError("submit_replay_suite needs at least one policy")
    kwargs: dict[str, Any] = {}
    if max_attempts is not None:
        kwargs["max_attempts"] = max_attempts
    jobs: list[Job] = []

    def submit(design_xml: str, name: str, kind: str, replay: dict) -> None:
        jobs.append(
            store.submit(
                name=name,
                design_xml=design_xml,
                device=device,
                max_candidate_sets=max_candidate_sets,
                priority=priority,
                submitter=submitter,
                kind=kind,
                replay=replay,
                **kwargs,
            )
        )

    if batch_size == 1:
        for design, spec in suite.iter_workloads():
            design_xml = design_to_xml(design, device_name=device)
            for policy in resolved:
                submit(
                    design_xml,
                    f"{design.name}/{spec.environment}[{spec.seed}]/{policy.name}",
                    "replay",
                    {"trace": spec.to_dict(), "policy": policy.to_dict()},
                )
        return jobs

    # iter_workloads yields each design's specs consecutively; chunk
    # them per design so a batch never straddles two schemes.
    current: Any = None
    current_xml = ""
    pending_specs: list[TraceSpec] = []

    def flush() -> None:
        if current is None:
            return
        for policy in resolved:
            for i in range(0, len(pending_specs), batch_size):
                chunk = pending_specs[i : i + batch_size]
                submit(
                    current_xml,
                    f"{current.name}/batch{i // batch_size}"
                    f"[{len(chunk)}]/{policy.name}",
                    "replay-batch",
                    {
                        "traces": [s.to_dict() for s in chunk],
                        "policy": policy.to_dict(),
                    },
                )

    for design, spec in suite.iter_workloads():
        if design is not current:
            flush()
            current = design
            current_xml = design_to_xml(design, device_name=device)
            pending_specs = []
        pending_specs.append(spec)
    flush()
    return jobs
