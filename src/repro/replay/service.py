"""Replay jobs: the batch service's second workload class.

A replay job is a partition job plus a workload: its ``replay`` spec
carries a :class:`~repro.replay.trace.TraceSpec` document and a
:class:`~repro.replay.policies.PolicySpec` document, both canonical
dicts, so they survive the job log and the worker pickle boundary
unchanged.  Execution is two cache layers deep:

1. the *partition* result is looked up in the
   :class:`~repro.service.cache.ResultCache` under the ordinary
   partition problem key and computed (and cached) on a miss -- so a
   sweep of 30 policies x traces over one design runs the expensive
   search once;
2. the *replay* result is keyed by
   :func:`~repro.replay.engine.replay_result_key` (problem x trace x
   policy x version) and stored in the :class:`ReplayResultStore`
   under ``<cache_root>/replay`` -- a re-run of the whole sweep
   completes in phase 1 of :func:`repro.service.run_batch` without
   dispatching a single worker.

:func:`submit_replay_suite` is the fan-out entry: it crosses a
:class:`~repro.replay.trace.WorkloadSuite` (synthesized designs x
environments x seeds) with a policy list and enqueues one replay job
per cell.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any, Iterable, Mapping

from ..arch.library import DeviceLibrary
from ..core.partitioner import (
    PartitionerOptions,
    partition,
    partition_with_device_selection,
)
from ..flow.xmlio import design_to_xml
from ..obs import NULL_TRACER, Tracer
from ..service.cache import ResultCache
from ..service.jobs import Job, JobStore
from ..service.problem import resolve_problem_text
from .engine import ReplayError, ReplayResult, replay_result_key, replay_trace
from .policies import PolicySpec, resolve_policy
from .store import ReplayResultStore
from .trace import TraceSpec, WorkloadSuite, config_names, generator_matrix, iter_trace, trace_key

#: Subdirectory of the result-cache root holding replay records; kept
#: out of the cache's own shard tree so ``ResultCache.keys()`` never
#: sees a replay entry.
REPLAY_STORE_DIRNAME = "replay"


def replay_store_for(cache: ResultCache) -> ReplayResultStore:
    """The replay record store co-located with a result cache."""
    return ReplayResultStore(Path(cache.root) / REPLAY_STORE_DIRNAME)


def _replay_docs(replay: Mapping[str, Any] | None) -> tuple[TraceSpec, PolicySpec]:
    if not isinstance(replay, Mapping):
        raise ReplayError("replay job carries no replay spec")
    try:
        trace_doc = replay["trace"]
        policy_doc = replay["policy"]
    except KeyError as exc:
        raise ReplayError(f"replay spec is missing {exc}") from exc
    return TraceSpec.from_dict(trace_doc), resolve_policy(policy_doc)


def replay_job_key(job: Job, library: DeviceLibrary | None = None) -> str:
    """The content-address of one replay job: problem x trace x policy.

    The partition half is the ordinary
    :func:`~repro.service.pool.partition_problem_key`; the trace half
    hashes the configuration-name universe with the spec, so renaming a
    configuration (which changes the trace) changes the key even when
    the spec document does not.
    """
    from ..service.pool import partition_problem_key

    spec, policy = _replay_docs(job.replay)
    problem = resolve_problem_text(job.design_xml, job.device, library)
    names = config_names(problem.design)
    return replay_result_key(
        partition_problem_key(job, library), trace_key(names, spec), policy
    )


def replay_summary(result: ReplayResult) -> dict[str, Any]:
    """The compact per-job summary shipped in worker outcomes.

    This is what lands in the telemetry sink's ``job`` records (and so
    in ``repro obs report``): enough to aggregate per-policy latency
    fleet-wide without re-reading the replay store.
    """
    return {
        "policy": str(result.policy.get("name", "?")),
        "events": result.events,
        "switches": result.switches,
        "stall_events": result.stall_events,
        "total_seconds": result.total_seconds,
        "icap_utilisation": result.icap_utilisation,
        "latency": result.latency.to_dict(),
    }


def run_replay_payload(
    payload: Mapping[str, Any],
    started: float | None = None,
    tracer: Tracer = NULL_TRACER,
) -> dict[str, Any]:
    """Worker body of one replay job (called from ``execute_job_payload``).

    Partition-result resolution is cache-first: a hit rebuilds the
    scheme from the stored entry, a miss runs the search and caches it
    under the partition key -- so the replay store and the result cache
    fill each other's future lookups.  Exceptions propagate; the
    caller's outcome envelope turns them into ``ok=False`` payloads.
    """
    t0 = time.perf_counter() if started is None else started
    from ..service.pool import partition_problem_key_text

    spec, policy = _replay_docs(payload.get("replay"))
    cache = ResultCache(payload["cache_root"])
    store = replay_store_for(cache)
    partition_key = partition_problem_key_text(
        payload["design_xml"],
        payload["device"],
        payload["max_candidate_sets"],
        payload.get("library"),
    )
    cached = cache.lookup(partition_key)
    if cached is not None:
        result, device_name = cached.result, cached.device_name
    else:
        problem = resolve_problem_text(
            payload["design_xml"], payload["device"], payload.get("library")
        )
        options = PartitionerOptions(
            max_candidate_sets=payload["max_candidate_sets"]
        )
        if problem.device is not None:
            assert problem.capacity is not None
            result = partition(
                problem.design, problem.capacity, options, tracer=tracer
            )
            device_name = problem.device.name
        else:
            selected = partition_with_device_selection(
                problem.design, problem.library, options, tracer=tracer
            )
            result, device_name = selected.result, selected.device.name
        cache.put(
            partition_key,
            result,
            device_name=device_name,
            compute_s=time.perf_counter() - t0,
        )

    scheme = result.scheme
    names = config_names(scheme.design)
    key = replay_result_key(partition_key, trace_key(names, spec), policy)
    with tracer.span("replay", policy=policy.name, environment=spec.environment):
        replayed = replay_trace(
            scheme,
            iter_trace(names, spec),
            policy,
            matrix=generator_matrix(names, spec),
            problem_key=partition_key,
            trace_key=trace_key(names, spec),
        )
    store.put_result(key, replayed)
    return {
        "job_id": payload["job_id"],
        "ok": True,
        "key": key,
        "device": device_name,
        "total_frames": result.total_frames,
        "compute_s": time.perf_counter() - t0,
        "replay": replay_summary(replayed),
    }


def submit_replay_suite(
    store: JobStore,
    suite: WorkloadSuite,
    policies: Iterable[PolicySpec | str | Mapping],
    device: str | None = None,
    max_candidate_sets: int | None = None,
    max_attempts: int | None = None,
    priority: int = 0,
    submitter: str = "",
) -> list[Job]:
    """Fan a workload suite x policy list out as replay jobs.

    One job per (design, trace, policy) cell, named
    ``<design>/<environment>[<trace-seed>]/<policy>``; submission
    dedupes identical cells, so re-submitting a suite onto a queue that
    already holds it is a no-op.  Returns the jobs in submission order.
    """
    resolved = [resolve_policy(p) for p in policies]
    if not resolved:
        raise ReplayError("submit_replay_suite needs at least one policy")
    jobs: list[Job] = []
    for design, spec in suite.iter_workloads():
        design_xml = design_to_xml(design, device_name=device)
        for policy in resolved:
            kwargs: dict[str, Any] = {}
            if max_attempts is not None:
                kwargs["max_attempts"] = max_attempts
            jobs.append(
                store.submit(
                    name=f"{design.name}/{spec.environment}[{spec.seed}]/{policy.name}",
                    design_xml=design_xml,
                    device=device,
                    max_candidate_sets=max_candidate_sets,
                    priority=priority,
                    submitter=submitter,
                    kind="replay",
                    replay={"trace": spec.to_dict(), "policy": policy.to_dict()},
                    **kwargs,
                )
            )
    return jobs
