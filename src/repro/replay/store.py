"""Content-addressed on-disk store of replay records.

Mirrors the :class:`repro.service.cache.ResultCache` disciplines --
sharded layout (``<root>/ab/<key>.json``), atomic writes, format/version
envelope, per-instance hit/miss counters -- for the replay subsystem's
records.  Keys come from :func:`repro.replay.engine.replay_result_key`
(problem key x trace key x policy x replay version), so a fleet sweep
re-run completes entirely from this store, exactly like partition jobs
complete from the result cache.

Two write layouts coexist:

* **per-key files** (``<root>/ab/<key>.json``) -- one record per file,
  written by single-trace jobs; and
* **segments** (``<root>/segments/<digest>.json``) -- one atomic file
  holding *all* the records of one micro-batched job, so an N-trace job
  costs one write instead of N.  The digest is the SHA-256 of the
  segment payload itself, so concurrent workers producing the same
  batch race to an identical file, exactly like per-key entries.

Reads see the union: :meth:`get_record`/:meth:`probe` fall back to the
segment index on a per-key miss, and :meth:`probe_many` resolves a
whole sweep's keys with O(shards + segments) directory/file reads
instead of O(keys) file opens -- the warm-sweep fast path.

The store lives in its own subtree (conventionally
``<cache_root>/replay`` -- see :func:`repro.replay.service.replay_store_for`)
so the partition cache's directory scans never see replay entries.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping

from ..eval.persistence import PersistenceError
from ..service.cache import ArtifactStore
from .engine import ReplayResult, replay_record, result_from_record

#: Envelope header of every stored record.
ENTRY_FORMAT = "repro-replay-record"
ENTRY_VERSION = 1

#: Envelope header of every stored segment (micro-batched append).
SEGMENT_FORMAT = "repro-replay-segment"
SEGMENT_VERSION = 1

#: Subdirectory holding segment files; deliberately longer than the
#: two-hex shard names so the layouts can never collide.
SEGMENT_DIRNAME = "segments"


class ReplayResultStore(ArtifactStore):
    """Sharded, atomic store of canonical replay records.

    Builds on :class:`~repro.service.cache.ArtifactStore` for layout and
    atomic text IO; adds the JSON envelope and record (de)serialisation.
    Because :func:`replay_record` is deterministic and the envelope is
    dumped canonically, the bytes for one key are identical no matter
    which worker writes them -- concurrent writers race to the same file.
    """

    SUFFIX = ".json"

    def __init__(self, root: str | Path):
        super().__init__(root)
        self._segment_index: dict[str, dict[str, Any]] | None = None

    def path_for(self, key: str) -> Path:
        if len(key) < 3:
            raise PersistenceError(f"replay key too short: {key!r}")
        return self.root / key[:2] / f"{key}{self.SUFFIX}"

    def put_record(self, key: str, record: Mapping[str, Any]) -> Path:
        """Store one canonical record under ``key`` atomically."""
        text = json.dumps(
            {
                "format": ENTRY_FORMAT,
                "version": ENTRY_VERSION,
                "key": key,
                "record": dict(record),
            },
            sort_keys=True,
            separators=(",", ":"),
        ) + "\n"
        return self.put(key, text)

    def put_result(self, key: str, result: ReplayResult) -> Path:
        return self.put_record(key, replay_record(result))

    def _envelope(self, key: str, text: str) -> Mapping[str, Any] | None:
        try:
            doc = json.loads(text)
        except json.JSONDecodeError:
            return None
        if (
            not isinstance(doc, Mapping)
            or doc.get("format") != ENTRY_FORMAT
            or doc.get("version") != ENTRY_VERSION
            or doc.get("key") != key
            or not isinstance(doc.get("record"), Mapping)
        ):
            return None
        return doc

    def get_record(self, key: str) -> dict[str, Any] | None:
        """The record for ``key``; ``None`` on a miss or corrupt entry.

        Looks at the per-key layout first, then at the segment index,
        so batched and single-trace sweeps read each other's records.
        """
        try:
            text = self.path_for(key).read_text(encoding="utf-8")
        except FileNotFoundError:
            record = self.segment_index().get(key)
            if record is None:
                self.misses += 1
                return None
            self.hits += 1
            return dict(record)
        doc = self._envelope(key, text)
        if doc is None:
            self.misses += 1
            return None
        self.hits += 1
        return dict(doc["record"])

    def get_result(self, key: str) -> ReplayResult | None:
        record = self.get_record(key)
        return None if record is None else result_from_record(record)

    def probe(self, key: str) -> bool:
        """Cheap hit test: is there a plausibly valid record for ``key``?

        Mirrors :meth:`repro.service.cache.ResultCache.probe` -- the
        batch runner's phase-1 check: envelope validation only, corrupt
        or missing entries count as misses.  Falls back to the segment
        index on a per-key miss.
        """
        try:
            text = self.path_for(key).read_text(encoding="utf-8")
        except OSError:
            if key in self.segment_index():
                self.hits += 1
                return True
            self.misses += 1
            return False
        if self._envelope(key, text) is None:
            self.misses += 1
            return False
        self.hits += 1
        return True

    # ------------------------------------------------------------------
    # segment layout (micro-batched appends)
    # ------------------------------------------------------------------
    def segment_dir(self) -> Path:
        return self.root / SEGMENT_DIRNAME

    def segment_paths(self) -> list[Path]:
        """All segment files, sorted (order is cosmetic: the segment
        digest is content-derived, so overlapping keys hold identical
        records and merge order cannot matter)."""
        try:
            return sorted(self.segment_dir().glob(f"*{self.SUFFIX}"))
        except OSError:
            return []

    def put_many(self, records: Mapping[str, Mapping[str, Any]]) -> Path | None:
        """Store a whole batch of ``key -> record`` in ONE atomic write.

        The segment file is named by the SHA-256 of its own canonical
        payload, so identical batches race to identical files (the
        per-key discipline, lifted to batches).  Returns the segment
        path, or ``None`` for an empty batch.
        """
        if not records:
            return None
        payload = json.dumps(
            {
                "format": SEGMENT_FORMAT,
                "version": SEGMENT_VERSION,
                "records": {k: dict(v) for k, v in records.items()},
            },
            sort_keys=True,
            separators=(",", ":"),
        ) + "\n"
        digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()
        path = self.segment_dir() / f"{digest}{self.SUFFIX}"
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{digest[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._segment_index = None
        return path

    def _load_segment(self, path: Path) -> Mapping[str, Any] | None:
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        if (
            not isinstance(doc, Mapping)
            or doc.get("format") != SEGMENT_FORMAT
            or doc.get("version") != SEGMENT_VERSION
            or not isinstance(doc.get("records"), Mapping)
        ):
            return None
        records = doc["records"]
        if not all(
            isinstance(k, str) and isinstance(v, Mapping)
            for k, v in records.items()
        ):
            return None
        return records

    def segment_index(self) -> Mapping[str, dict[str, Any]]:
        """``key -> record`` over every valid segment, cached.

        One pass over the segment directory (corrupt segments are
        skipped -- their keys just miss and recompute, the per-key
        corruption discipline).  Invalidation: :meth:`put_many` drops
        the cache; cross-process writers are visible to a fresh store
        instance, which is what each ``run_batch`` call constructs.
        """
        if self._segment_index is None:
            index: dict[str, dict[str, Any]] = {}
            for path in self.segment_paths():
                records = self._load_segment(path)
                if records is None:
                    continue
                for key, record in records.items():
                    index[key] = dict(record)
            self._segment_index = index
        return self._segment_index

    def _file_keys(self) -> set[str]:
        """Keys of the per-key layout, by directory listing alone.

        Per-key files are written atomically and named by their content
        address, so presence-by-name is trustworthy without opening the
        files -- this is what keeps :meth:`probe_many` at O(shards)
        reads.
        """
        out: set[str] = set()
        try:
            shards = sorted(self.root.iterdir())
        except OSError:
            return out
        for shard in shards:
            if not shard.is_dir() or shard.name == SEGMENT_DIRNAME:
                continue
            for entry in shard.glob(f"*{self.SUFFIX}"):
                out.add(entry.stem)
        return out

    def probe_many(self, keys: Iterable[str]) -> set[str]:
        """The subset of ``keys`` with a stored record.

        A fully cached N-trace sweep resolves in O(shards + segments)
        reads instead of N file opens: one directory listing for the
        per-key layout, one parse per segment.  Hit/miss counters move
        by the same amounts per-key :meth:`probe` calls would.
        """
        keys = list(keys)
        known = self._file_keys() | set(self.segment_index())
        present = {k for k in keys if k in known}
        self.hits += len(present)
        self.misses += len(keys) - len(present)
        return present

    def keys(self) -> Iterator[str]:
        """All stored keys across both layouts (order unspecified)."""
        seen = self._file_keys()
        yield from seen
        for key in self.segment_index():
            if key not in seen:
                yield key

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists() or key in self.segment_index()
