"""Content-addressed on-disk store of replay records.

Mirrors the :class:`repro.service.cache.ResultCache` disciplines --
sharded layout (``<root>/ab/<key>.json``), atomic writes, format/version
envelope, per-instance hit/miss counters -- for the replay subsystem's
records.  Keys come from :func:`repro.replay.engine.replay_result_key`
(problem key x trace key x policy x replay version), so a fleet sweep
re-run completes entirely from this store, exactly like partition jobs
complete from the result cache.

The store lives in its own subtree (conventionally
``<cache_root>/replay`` -- see :func:`repro.replay.service.replay_store_for`)
so the partition cache's directory scans never see replay entries.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

from ..eval.persistence import PersistenceError
from ..service.cache import ArtifactStore
from .engine import ReplayResult, replay_record, result_from_record

#: Envelope header of every stored record.
ENTRY_FORMAT = "repro-replay-record"
ENTRY_VERSION = 1


class ReplayResultStore(ArtifactStore):
    """Sharded, atomic store of canonical replay records.

    Builds on :class:`~repro.service.cache.ArtifactStore` for layout and
    atomic text IO; adds the JSON envelope and record (de)serialisation.
    Because :func:`replay_record` is deterministic and the envelope is
    dumped canonically, the bytes for one key are identical no matter
    which worker writes them -- concurrent writers race to the same file.
    """

    SUFFIX = ".json"

    def path_for(self, key: str) -> Path:
        if len(key) < 3:
            raise PersistenceError(f"replay key too short: {key!r}")
        return self.root / key[:2] / f"{key}{self.SUFFIX}"

    def put_record(self, key: str, record: Mapping[str, Any]) -> Path:
        """Store one canonical record under ``key`` atomically."""
        text = json.dumps(
            {
                "format": ENTRY_FORMAT,
                "version": ENTRY_VERSION,
                "key": key,
                "record": dict(record),
            },
            sort_keys=True,
            separators=(",", ":"),
        ) + "\n"
        return self.put(key, text)

    def put_result(self, key: str, result: ReplayResult) -> Path:
        return self.put_record(key, replay_record(result))

    def _envelope(self, key: str, text: str) -> Mapping[str, Any] | None:
        try:
            doc = json.loads(text)
        except json.JSONDecodeError:
            return None
        if (
            not isinstance(doc, Mapping)
            or doc.get("format") != ENTRY_FORMAT
            or doc.get("version") != ENTRY_VERSION
            or doc.get("key") != key
            or not isinstance(doc.get("record"), Mapping)
        ):
            return None
        return doc

    def get_record(self, key: str) -> dict[str, Any] | None:
        """The record for ``key``; ``None`` on a miss or corrupt entry."""
        text = self.get(key)
        if text is None:
            return None
        doc = self._envelope(key, text)
        if doc is None:
            self.hits -= 1
            self.misses += 1
            return None
        return dict(doc["record"])

    def get_result(self, key: str) -> ReplayResult | None:
        record = self.get_record(key)
        return None if record is None else result_from_record(record)

    def probe(self, key: str) -> bool:
        """Cheap hit test: is there a plausibly valid record for ``key``?

        Mirrors :meth:`repro.service.cache.ResultCache.probe` -- the
        batch runner's phase-1 check: envelope validation only, corrupt
        or missing entries count as misses.
        """
        try:
            text = self.path_for(key).read_text(encoding="utf-8")
        except OSError:
            self.misses += 1
            return False
        if self._envelope(key, text) is None:
            self.misses += 1
            return False
        self.hits += 1
        return True
