"""Replay fast paths: precomputed tables, an inlined scalar loop and a
vectorized event kernel.

:func:`repro.replay.engine.replay_trace` semantics are defined by the
manager-based reference loop (kept as ``engine="reference"``); this
module reimplements them two ways, both **bit-identical** to the
reference (same :class:`~repro.replay.engine.ReplayResult`, same
``replay_record`` bytes -- pinned by the differential gate in
tests/replay/test_kernel.py):

* :func:`run_scalar` -- the reference loop with everything loop-
  invariant hoisted into :class:`ReplayTables` (activity rows, per-
  region ICAP seconds, config-name ids) and the manager/prefetch state
  machines inlined, so one event costs a handful of dict/list
  operations instead of a ``TransitionRecord`` allocation plus an
  O(regions) ``next()`` scan per rewritten region.  Covers *every*
  policy and preserves the engine's streaming contract (million-event
  traces never materialise).
* :func:`run_vector` -- the ``repro.core.kernels`` treatment of the
  event loop: the trace becomes an int id array, per-region loaded
  state is a ``maximum.accumulate`` forward fill, and rewrite masks /
  frame totals are array ops.  Eligible exactly when the per-event
  state is history-free: the plain manager with ``none`` or ``static``
  eviction (a static store never changes residency after construction).
  Stateful policies (prefetch predictors, lru/activity stores) fall
  back to :func:`run_scalar`.

Bit-identity hinges on float evaluation order, so the only accumulation
the vector path leaves in Python is the one the reference performs:
per-event latency sums run region-by-region in ascending region order
(one masked add per region column), and ``total_seconds`` plus the
latency histogram consume the per-event values strictly in event order
(:meth:`repro.obs.metrics.Histogram.observe_many`).
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

import numpy as np

from ..core.kernels import NONE_ID
from ..core.result import PartitioningScheme
from ..runtime.manager import TraceError
from ..runtime.prefetch import markov_predictor
from .policies import BitstreamStore, PolicySpec

#: ``scheme._cost_cache`` slot holding the scheme's :class:`ReplayTables`.
_TABLES_SLOT = "replay_tables"


class ReplayTables:
    """Loop-invariant per-scheme data shared by every replay of a scheme.

    Cached on the scheme's ``_cost_cache`` (the :mod:`repro.core.cost`
    discipline), so a warm worker sweeping many traces and policies over
    one scheme builds these exactly once.
    """

    __slots__ = (
        "config_id", "activity", "act_ids", "region_names", "frames",
        "frames_arr", "_policy_slots",
    )

    def __init__(self, scheme: PartitioningScheme):
        names = [c.name for c in scheme.design.configurations]
        self.config_id: dict[str, int] = {n: i for i, n in enumerate(names)}
        #: Per-config activity rows (label strings, ``None`` = unused).
        self.activity: list[tuple[str | None, ...]] = [
            scheme.activity(n) for n in names
        ]
        self.region_names: tuple[str, ...] = tuple(
            r.name for r in scheme.regions
        )
        self.frames: list[int] = [r.frames for r in scheme.regions]
        self.frames_arr = np.asarray(self.frames, dtype=np.int64)
        # Integer-encoded activity (one codec per region column: labels
        # are only ever compared within a region).
        C, R = len(names), len(scheme.regions)
        self.act_ids = np.full((C, R), NONE_ID, dtype=np.int32)
        for r in range(R):
            codec: dict[str, int] = {}
            for c in range(C):
                label = self.activity[c][r]
                if label is not None:
                    self.act_ids[c, r] = codec.setdefault(label, len(codec))
        #: Per-policy derived arrays, keyed by the policy fields that
        #: matter (ICAP presets, eviction, capacity).
        self._policy_slots: dict[tuple, Any] = {}

    def seconds_for(self, policy: PolicySpec) -> tuple[list[float], np.ndarray]:
        """Fast-path per-region rewrite seconds under ``policy.icap``."""
        slot = ("secs", policy.icap)
        cached = self._policy_slots.get(slot)
        if cached is None:
            icap = policy.icap_model
            secs = [icap.time_for_frames(f) for f in self.frames]
            cached = (secs, np.asarray(secs, dtype=np.float64))
            self._policy_slots[slot] = cached
        return cached

    def static_store_arrays(
        self, scheme: PartitioningScheme, policy: PolicySpec
    ) -> tuple[np.ndarray, np.ndarray, int, int]:
        """(resident[C,R], slow_secs[R], capacity, resident_frames) for a
        ``static`` store -- its residency never changes after pinning, so
        one boolean matrix answers every fetch."""
        slot = (
            "static", policy.icap, policy.slow_icap,
            policy.store_capacity_frames,
        )
        cached = self._policy_slots.get(slot)
        if cached is None:
            store = BitstreamStore(scheme, policy)
            pinned = store.resident_keys
            resident = np.zeros(self.act_ids.shape, dtype=bool)
            for c, row in enumerate(self.activity):
                for r, label in enumerate(row):
                    if label is not None:
                        resident[c, r] = (self.region_names[r], label) in pinned
            slow = policy.slow_icap_model
            slow_secs = np.asarray(
                [slow.time_for_frames(f) for f in self.frames],
                dtype=np.float64,
            )
            cached = (
                resident, slow_secs, store.capacity,
                store.stats()["resident_frames"],
            )
            self._policy_slots[slot] = cached
        return cached


def tables_for(scheme: PartitioningScheme) -> ReplayTables:
    """The scheme's cached :class:`ReplayTables` (built on first use)."""
    tables = scheme._cost_cache.get(_TABLES_SLOT)
    if tables is None:
        tables = ReplayTables(scheme)
        scheme._cost_cache[_TABLES_SLOT] = tables
    return tables


def vector_eligible(policy: PolicySpec) -> bool:
    """True when the per-event state machine is history-free."""
    return policy.manager == "plain" and policy.eviction in ("none", "static")


def encode_trace(
    tables: ReplayTables, trace: Iterable[str]
) -> np.ndarray:
    """The trace as a config-id array (raises the reference's
    :class:`TraceError` on unknown names)."""
    config_id = tables.config_id
    try:
        ids = [config_id[name] for name in trace]
    except KeyError as exc:
        raise TraceError(
            f"unknown configuration {exc.args[0]!r}"
        ) from None
    return np.asarray(ids, dtype=np.int64)


def run_vector(
    scheme: PartitioningScheme,
    tables: ReplayTables,
    ids: np.ndarray,
    policy: PolicySpec,
    result,
) -> None:
    """Fill ``result`` from an encoded trace with array ops.

    ``result`` is the engine's freshly constructed
    :class:`~repro.replay.engine.ReplayResult` (duck-typed here to keep
    the import graph acyclic).
    """
    E = int(ids.size)
    if E == 0:
        if policy.eviction == "static":
            # The reference constructs the store up front, so even an
            # empty replay reports its pinned residency.
            _res, _slow, capacity, resident_frames = (
                tables.static_store_arrays(scheme, policy)
            )
            result.store = {
                "hits": 0,
                "misses": 0,
                "evictions": 0,
                "capacity_frames": capacity,
                "resident_frames": resident_frames,
            }
        return
    A = tables.act_ids[ids]  # [E, R] required content per event
    R = A.shape[1]
    seen = A != NONE_ID
    # Forward-filled define index: last[e, r] = latest event <= e that
    # wrote region r; the content loaded *before* event e is the define
    # at last[e-1, r] (row -1 = nothing loaded yet).
    rows = np.where(seen, np.arange(E, dtype=np.int64)[:, None], -1)
    last = np.maximum.accumulate(rows, axis=0)
    prev_last = np.empty_like(last)
    prev_last[0] = -1
    prev_last[1:] = last[:-1]
    before = np.take_along_axis(A, np.clip(prev_last, 0, None), axis=0)
    loaded_before = np.where(prev_last >= 0, before, NONE_ID)
    rewrite = seen & (A != loaded_before)
    rewrite[0] = False  # the initial full configuration is uncharged

    result.events = E
    result.rewrites = int(rewrite.sum())
    result.total_frames = int((rewrite @ tables.frames_arr).sum())
    switch = np.empty(E, dtype=bool)
    switch[0] = False
    np.not_equal(ids[1:], ids[:-1], out=switch[1:])
    result.switches = int(switch.sum())

    # Per-event latency, accumulated region-by-region in ascending
    # region order -- the exact float-addition order of the reference's
    # per-event ``sum()`` over rewritten regions.
    latency = np.zeros(E, dtype=np.float64)
    fast_list, fast_secs = tables.seconds_for(policy)
    if policy.eviction == "static":
        resident, slow_secs, capacity, resident_frames = (
            tables.static_store_arrays(scheme, policy)
        )
        res = resident[ids]  # [E, R] fetch hits per event-region
        for r in range(R):
            mask = rewrite[:, r]
            if mask.any():
                latency[mask] += np.where(
                    res[mask, r], fast_secs[r], slow_secs[r]
                )
        hits = int((rewrite & res).sum())
        result.store = {
            "hits": hits,
            "misses": result.rewrites - hits,
            "evictions": 0,
            "capacity_frames": capacity,
            "resident_frames": resident_frames,
        }
    else:
        for r in range(R):
            mask = rewrite[:, r]
            if mask.any():
                latency[mask] += fast_list[r]

    result.stall_events = int((latency[1:] > policy.dwell_s).sum())
    # Exact sequential accumulation in event order (reference:
    # ``total_seconds += latency`` once per non-initial event).
    total = result.total_seconds
    for value in latency[1:].tolist():
        total += value
    result.total_seconds = total
    result.latency.observe_many(latency[switch].tolist())


def run_scalar(
    scheme: PartitioningScheme,
    tables: ReplayTables,
    trace: Iterable[str],
    policy: PolicySpec,
    matrix: Mapping[str, Mapping[str, float]] | None,
    result,
) -> None:
    """The reference loop with the manager state machines inlined.

    Streams ``trace`` lazily; every arithmetic step mirrors the
    reference implementation operation for operation (see the module
    docstring), so the filled ``result`` is bit-identical.
    """
    config_id = tables.config_id
    activity = tables.activity
    region_names = tables.region_names
    frames = tables.frames
    fast_secs, _ = tables.seconds_for(policy)
    R = len(region_names)
    dwell = policy.dwell_s
    observe = result.latency.observe

    store: BitstreamStore | None = None
    if policy.eviction != "none":
        store = BitstreamStore(scheme, policy)

    prefetching = policy.manager == "prefetch"
    oracle = policy.predictor == "oracle"
    predictions: dict[int, int | None] = {}
    predict_name = None
    if prefetching and not oracle:
        predict_name = markov_predictor(matrix or {})

    loaded: list[str | None] = [None] * R
    speculative: set[int] = set()
    prefetch_hits = prefetched_frames = prefetch_wasted = 0
    events = switches = rewrites = total_frames = stall_events = 0
    total_seconds = result.total_seconds
    prev = -1
    first = True

    it = iter(trace)
    try:
        current = next(it)
    except StopIteration:
        current = None
    while current is not None:
        upcoming = next(it, None)
        ci = config_id.get(current)
        if ci is None:
            raise TraceError(f"unknown configuration {current!r}")
        need = activity[ci]
        if first:
            for r in range(R):
                label = need[r]
                if label is not None:
                    loaded[r] = label
            if store is not None:
                for r in range(R):
                    label = need[r]
                    if label is not None:
                        store.preload(region_names[r], label)
            events += 1
            first = False
        else:
            latency = 0.0
            for r in range(R):
                label = need[r]
                if label is None:
                    continue
                if loaded[r] == label:
                    if prefetching and r in speculative:
                        prefetch_hits += 1
                        speculative.discard(r)
                    continue
                loaded[r] = label
                if prefetching:
                    speculative.discard(r)
                rewrites += 1
                total_frames += frames[r]
                if store is None:
                    latency += fast_secs[r]
                else:
                    seconds, _resident = store.fetch(region_names[r], label)
                    latency += seconds
            events += 1
            if ci != prev:
                switches += 1
                observe(latency)
            total_seconds += latency
            if latency > dwell:
                stall_events += 1
        if prefetching:
            # Speculation during the dwell that follows the event.
            gi: int | None
            if oracle:
                if upcoming is None:
                    gi = None
                else:
                    gi = config_id.get(upcoming)
                    if gi is None:
                        raise TraceError(
                            f"predictor returned unknown configuration "
                            f"{upcoming!r}"
                        )
            else:
                if ci in predictions:
                    gi = predictions[ci]
                else:
                    guess = predict_name(current)  # type: ignore[misc]
                    if guess is None:
                        gi = None
                    else:
                        gi = config_id.get(guess)
                        if gi is None:
                            raise TraceError(
                                f"predictor returned unknown configuration "
                                f"{guess!r}"
                            )
                    predictions[ci] = gi
            if gi is not None and gi != ci:
                guess_need = activity[gi]
                for r in range(R):
                    if need[r] is not None:
                        continue  # region busy serving the current config
                    then = guess_need[r]
                    if then is None or loaded[r] == then:
                        continue
                    if loaded[r] is not None and r in speculative:
                        prefetch_wasted += frames[r]
                    loaded[r] = then
                    speculative.add(r)
                    prefetched_frames += frames[r]
        prev = ci
        current = upcoming

    result.events = events
    result.switches = switches
    result.rewrites = rewrites
    result.total_frames = total_frames
    result.total_seconds = total_seconds
    result.stall_events = stall_events
    if prefetching:
        result.prefetch = {
            "hits": prefetch_hits,
            "prefetched_frames": prefetched_frames,
            "wasted_frames": prefetch_wasted,
        }
    if store is not None:
        result.store = store.stats()
