"""Deterministic, content-addressable workload traces, streamed lazily.

A :class:`TraceSpec` names one synthetic traffic trace: which
environment model generates it (uniform / markov / bursty -- the
:mod:`repro.runtime.adaptive` generators), how long it is, and the seed.
The spec is pure data, so a trace has a *content address*
(:func:`trace_key`): the SHA-256 of the ordered configuration names plus
the canonical spec document.  Replay results are keyed by it, which is
what makes fleet sweeps cache-first (docs/REPLAY.md).

:func:`iter_trace` streams the events one at a time while drawing the
**exact same rng call sequence** as the eager ``Environment.trace()``
methods, so a streamed trace is element-for-element identical to the
list the environment classes build -- verified by tests -- without ever
materialising it.  A million-event trace costs O(1) memory.

:class:`WorkloadSuite` scales that to fleets: (design index, trace
index) -> (synthetic design, :class:`TraceSpec`) lazily, deterministic
per (designs, traces_per_design, seed), round-robining the environment
kinds so every design is exercised under every traffic shape.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

import numpy as np

from ..core.model import PRDesign
from ..synth.generator import generate_population

#: The environment kinds a spec may name, in suite round-robin order.
ENVIRONMENTS = ("uniform", "markov", "bursty")

#: Header folded into every trace key; bump on semantic changes so old
#: replay records miss instead of aliasing.
TRACE_FORMAT = "repro-trace"
TRACE_VERSION = 1


class TraceSpecError(ValueError):
    """Raised for malformed trace specifications."""


#: Canonical matrix encoding: ((src, ((dst, p), ...)), ...) with rows and
#: destinations sorted by name -- hashable, JSON-stable, order-preserving
#: for the rng (the generator walks destinations in this stored order).
MatrixRows = tuple[tuple[str, tuple[tuple[str, float], ...]], ...]


def _canonical_matrix(
    matrix: Mapping[str, Mapping[str, float]] | MatrixRows,
) -> MatrixRows:
    if isinstance(matrix, tuple):
        rows = matrix
    else:
        rows = tuple(
            (src, tuple(sorted((dst, float(p)) for dst, p in row.items())))
            for src, row in sorted(matrix.items())
        )
    for src, row in rows:
        total = 0.0
        for _dst, p in row:
            if p < 0:
                raise TraceSpecError(f"negative probability in row {src!r}")
            total += p
        if abs(total - 1.0) > 1e-9:
            raise TraceSpecError(f"row {src!r} sums to {total}, expected 1.0")
    return rows


def ring_matrix(names: Sequence[str], bias: float = 0.7) -> MatrixRows:
    """A biased successor-ring transition matrix over ``names``.

    Each configuration transitions to the next one in order with
    probability ``bias`` and uniformly to every other configuration with
    the remainder -- a cheap, deterministic way to give every synthetic
    design a non-trivial Markov environment without storing per-design
    matrices.  Needs at least two configurations.
    """
    if len(names) < 2:
        raise TraceSpecError("a ring matrix needs at least two configurations")
    if not (0.0 < bias < 1.0):
        raise TraceSpecError("bias must lie in (0, 1)")
    rest = (1.0 - bias) / (len(names) - 2) if len(names) > 2 else 0.0
    rows = []
    for i, src in enumerate(names):
        successor = names[(i + 1) % len(names)]
        row = {}
        for dst in names:
            if dst == src:
                continue
            row[dst] = bias if dst == successor else rest
        if len(names) == 2:
            row[successor] = 1.0
        rows.append((src, tuple(sorted(row.items()))))
    return _canonical_matrix(tuple(rows))


@dataclass(frozen=True)
class TraceSpec:
    """One deterministic synthetic traffic trace, as pure data.

    ``matrix`` applies to the markov environment only; ``None`` derives
    the :func:`ring_matrix` over the design's configuration names at
    stream time (kept out of the spec so fleet specs stay tiny -- the
    derivation is deterministic, hence still content-addressed).
    ``dwell`` applies to the bursty environment only.
    """

    environment: str
    length: int
    seed: int = 0
    dwell: float = 0.9
    matrix: MatrixRows | None = None
    start: str | None = None

    def __post_init__(self) -> None:
        if self.environment not in ENVIRONMENTS:
            raise TraceSpecError(
                f"unknown environment {self.environment!r}; "
                f"expected one of {ENVIRONMENTS}"
            )
        if self.length < 0:
            raise TraceSpecError("trace length must be non-negative")
        if not (0.0 <= self.dwell < 1.0):
            raise TraceSpecError("dwell probability must lie in [0, 1)")
        if self.matrix is not None:
            if self.environment != "markov":
                raise TraceSpecError(
                    "a transition matrix only applies to the markov "
                    "environment"
                )
            object.__setattr__(self, "matrix", _canonical_matrix(self.matrix))
        if self.start is not None and self.environment != "markov":
            raise TraceSpecError(
                "a start configuration only applies to the markov environment"
            )

    def to_dict(self) -> dict:
        return {
            "environment": self.environment,
            "length": self.length,
            "seed": self.seed,
            "dwell": self.dwell,
            "matrix": (
                None
                if self.matrix is None
                else [[src, [[d, p] for d, p in row]] for src, row in self.matrix]
            ),
            "start": self.start,
        }

    @classmethod
    def from_dict(cls, doc: Mapping) -> "TraceSpec":
        try:
            matrix = doc.get("matrix")
            rows: MatrixRows | None = None
            if matrix is not None:
                rows = tuple(
                    (str(src), tuple((str(d), float(p)) for d, p in row))
                    for src, row in matrix
                )
            return cls(
                environment=str(doc["environment"]),
                length=int(doc["length"]),
                seed=int(doc.get("seed", 0)),
                dwell=float(doc.get("dwell", 0.9)),
                matrix=rows,
                start=None if doc.get("start") is None else str(doc["start"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceSpecError(f"malformed trace spec: {exc}") from exc


def config_names(design: PRDesign) -> tuple[str, ...]:
    """The design's configuration names in declaration order.

    Order matters: the generators index into this list, so the trace
    key hashes the *ordered* names, not a set.
    """
    return tuple(c.name for c in design.configurations)


def trace_key(names: Sequence[str], spec: TraceSpec) -> str:
    """Content address of one trace: SHA-256 over names + canonical spec."""
    payload = json.dumps(
        {
            "format": TRACE_FORMAT,
            "version": TRACE_VERSION,
            "names": list(names),
            "spec": spec.to_dict(),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def resolved_matrix(
    names: Sequence[str], spec: TraceSpec
) -> MatrixRows:
    """The transition matrix a markov spec streams with (explicit or ring)."""
    if spec.matrix is not None:
        return spec.matrix
    return ring_matrix(names)


def generator_matrix(
    names: Sequence[str], spec: TraceSpec
) -> dict[str, dict[str, float]] | None:
    """The true next-state distribution of ``spec``, as a nested mapping.

    This is what a markov *predictor* should be primed with: for markov
    specs the (explicit or derived) matrix itself; for uniform/bursty
    specs the induced jump distribution (uniform over the other
    configurations).  ``None`` when the design has a single
    configuration (no transition to predict).
    """
    names = list(names)
    if len(names) < 2:
        return None
    if spec.environment == "markov":
        return {
            src: {dst: p for dst, p in row}
            for src, row in resolved_matrix(names, spec)
        }
    p = 1.0 / (len(names) - 1)
    return {src: {dst: p for dst in names if dst != src} for src in names}


def iter_trace(names: Sequence[str], spec: TraceSpec) -> Iterator[str]:
    """Stream the events of ``spec`` over ``names`` lazily.

    Draws the exact rng call sequence of the eager environment classes
    (:class:`~repro.runtime.adaptive.UniformEnvironment` etc.), so the
    streamed trace equals ``env.trace(length, seed)`` element for
    element -- the equivalence tests in tests/replay/test_trace.py pin
    this down per environment.
    """
    names = list(names)
    if not names:
        raise TraceSpecError("cannot trace a design with no configurations")
    if spec.environment == "uniform":
        yield from _iter_uniform(names, spec)
    elif spec.environment == "markov":
        yield from _iter_markov(names, spec)
    else:
        yield from _iter_bursty(names, spec)


def _iter_uniform(names: list[str], spec: TraceSpec) -> Iterator[str]:
    if len(names) == 1:
        # Mirrors UniformEnvironment: ``names * min(length, 1)``.
        if spec.length >= 1:
            yield names[0]
        return
    rng = np.random.default_rng(spec.seed)
    current = None
    for _ in range(spec.length):
        candidates = [n for n in names if n != current]
        current = candidates[int(rng.integers(len(candidates)))]
        yield current


def _iter_markov(names: list[str], spec: TraceSpec) -> Iterator[str]:
    matrix = {src: dict(row) for src, row in resolved_matrix(names, spec)}
    known = set(names)
    for src, row in matrix.items():
        if src not in known:
            raise TraceSpecError(f"unknown source configuration {src!r}")
        for dst in row:
            if dst not in known:
                raise TraceSpecError(f"unknown destination configuration {dst!r}")
    missing = known - set(matrix)
    if missing:
        raise TraceSpecError(
            f"transition matrix missing rows for {sorted(missing)}"
        )
    rng = np.random.default_rng(spec.seed)
    current = spec.start or names[0]
    if current not in known:
        raise TraceSpecError(f"unknown start configuration {current!r}")
    if spec.length <= 0:
        return
    yield current
    emitted = 1
    while emitted < spec.length:
        row = matrix[current]
        dsts = list(row)
        probs = np.array([row[d] for d in dsts], dtype=float)
        probs = probs / probs.sum()
        current = dsts[int(rng.choice(len(dsts), p=probs))]
        yield current
        emitted += 1


def _iter_bursty(names: list[str], spec: TraceSpec) -> Iterator[str]:
    rng = np.random.default_rng(spec.seed)
    current = names[int(rng.integers(len(names)))]
    for _ in range(spec.length):
        if len(names) > 1 and rng.random() >= spec.dwell:
            candidates = [n for n in names if n != current]
            current = candidates[int(rng.integers(len(candidates)))]
        yield current


@dataclass(frozen=True)
class WorkloadSuite:
    """A deterministic fleet of (synthetic design, trace spec) pairs.

    ``designs`` synthetic designs (the Sec. V generator, same seed
    discipline as ``repro sweep``), each carrying ``traces_per_design``
    traces that round-robin over ``environments``.  Trace seeds are
    derived from (suite seed, design index, trace index), so the whole
    fleet is reproducible from four integers, and iteration is lazy --
    a 10k-trace suite costs nothing until consumed.
    """

    designs: int
    traces_per_design: int = 1
    length: int = 256
    seed: int = 2013
    dwell: float = 0.9
    environments: tuple[str, ...] = ENVIRONMENTS

    def __post_init__(self) -> None:
        if self.designs < 1:
            raise TraceSpecError("a suite needs at least one design")
        if self.traces_per_design < 1:
            raise TraceSpecError("a suite needs at least one trace per design")
        if self.length < 0:
            raise TraceSpecError("trace length must be non-negative")
        if not self.environments:
            raise TraceSpecError("a suite needs at least one environment")
        for env in self.environments:
            if env not in ENVIRONMENTS:
                raise TraceSpecError(f"unknown environment {env!r}")

    @property
    def trace_count(self) -> int:
        return self.designs * self.traces_per_design

    def spec_for(self, design_index: int, trace_index: int) -> TraceSpec:
        """The trace spec at one (design, trace) slot of the suite."""
        environment = self.environments[trace_index % len(self.environments)]
        # Distinct, deterministic seed per slot; the multipliers keep
        # slots from colliding for any realistic suite size.
        seed = self.seed * 1_000_003 + design_index * 10_007 + trace_index
        return TraceSpec(
            environment=environment,
            length=self.length,
            seed=seed,
            dwell=self.dwell,
        )

    def iter_workloads(self) -> Iterator[tuple[PRDesign, TraceSpec]]:
        """Lazily yield every (design, spec) pair of the fleet."""
        for d, (_cls, design) in enumerate(
            generate_population(self.designs, seed=self.seed)
        ):
            for t in range(self.traces_per_design):
                yield design, self.spec_for(d, t)
