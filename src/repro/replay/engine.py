"""The replay loop: one scheme x one trace x one policy -> measured latency.

Runs a partition scheme against a streamed configuration-request trace
through the policy's manager, predictor and bitstream store, emitting
per-switch latency into a :class:`repro.obs.Histogram`.  What the paper
scores analytically (Eq. 7/8 total frames) becomes a delivered-latency
distribution: p50/p95/p99 switch latency, stall events (latency past
the policy's per-event slot budget), ICAP utilisation and prefetch hit
rate.

Determinism is the contract everything downstream leans on: the trace
is a seeded stream, the managers and stores are clock- and rng-free,
and :func:`replay_record` serialises without wall-clock fields -- so
the same (problem key, trace key, policy) always produces byte-
identical records, which is what makes fleet sweeps cache-first
(:mod:`repro.replay.store`) and the dashboard ``--check``-able.

The oracle predictor needs one-step lookahead; the engine buffers a
single upcoming event while consuming the stream, so laziness is
preserved (million-event traces still never materialise).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from ..core.result import PartitioningScheme
from ..obs import NULL_TRACER, Tracer
from ..obs.metrics import Histogram
from ..runtime.manager import ConfigurationManager
from ..runtime.prefetch import PrefetchingManager, markov_predictor
from . import kernel
from .policies import BitstreamStore, PolicySpec, resolve_policy

#: The replay engines ``replay_trace`` dispatches between.  ``auto``
#: picks the vectorized kernel when the policy is history-free and the
#: inlined scalar loop otherwise; ``reference`` is the original
#: manager-based loop, kept as the differential oracle (the fast paths
#: are pinned bit-identical to it by tests/replay/test_kernel.py).
REPLAY_ENGINES = ("auto", "vector", "scalar", "reference")

#: Bumped whenever replay semantics change -- part of every result key,
#: so stale cached records miss instead of aliasing.
REPLAY_VERSION = 1

#: Latency bucket bounds tuned to ICAP switch times (tens of us to
#: hundreds of ms); the embedded quantile summary supplies the accurate
#: percentiles, buckets shape the Prometheus/dashboard exposition.
REPLAY_LATENCY_BOUNDS: tuple[float, ...] = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 1.0,
)


class ReplayError(ValueError):
    """Raised for invalid replay requests (not per-event trace errors)."""


@dataclass
class ReplayResult:
    """The measured outcome of one replay."""

    policy: dict[str, Any]
    events: int = 0
    switches: int = 0
    rewrites: int = 0
    total_frames: int = 0
    total_seconds: float = 0.0
    stall_events: int = 0
    dwell_s: float = 0.01
    prefetch: dict[str, int] | None = None
    store: dict[str, int] | None = None
    latency: Histogram = field(
        default_factory=lambda: Histogram(bounds=REPLAY_LATENCY_BOUNDS)
    )
    problem_key: str | None = None
    trace_key: str | None = None

    @property
    def icap_utilisation(self) -> float:
        """Reconfiguration seconds over the trace's total slot budget."""
        budget = self.events * self.dwell_s
        return self.total_seconds / budget if budget > 0 else 0.0

    @property
    def prefetch_hit_rate(self) -> float:
        if not self.prefetch:
            return 0.0
        hits = self.prefetch.get("hits", 0)
        attempts = hits + self.rewrites
        return hits / attempts if attempts else 0.0

    def percentile(self, pct: float) -> float | None:
        """Delivered switch-latency percentile (seconds)."""
        return self.latency.percentile(pct)


def replay_record(result: ReplayResult) -> dict[str, Any]:
    """The canonical serialisation of a result (no wall-clock fields)."""
    return {
        "policy": dict(result.policy),
        "problem_key": result.problem_key,
        "trace_key": result.trace_key,
        "events": result.events,
        "switches": result.switches,
        "rewrites": result.rewrites,
        "total_frames": result.total_frames,
        "total_seconds": result.total_seconds,
        "stall_events": result.stall_events,
        "dwell_s": result.dwell_s,
        "icap_utilisation": result.icap_utilisation,
        "prefetch": result.prefetch,
        "store": result.store,
        "latency": result.latency.to_dict(),
    }


def result_from_record(doc: Mapping[str, Any]) -> ReplayResult:
    """Rebuild a :class:`ReplayResult` from its canonical record."""
    try:
        return ReplayResult(
            policy=dict(doc["policy"]),
            events=int(doc["events"]),
            switches=int(doc["switches"]),
            rewrites=int(doc["rewrites"]),
            total_frames=int(doc["total_frames"]),
            total_seconds=float(doc["total_seconds"]),
            stall_events=int(doc["stall_events"]),
            dwell_s=float(doc["dwell_s"]),
            prefetch=None if doc.get("prefetch") is None else dict(doc["prefetch"]),
            store=None if doc.get("store") is None else dict(doc["store"]),
            latency=Histogram.from_dict(doc["latency"]),
            problem_key=doc.get("problem_key"),
            trace_key=doc.get("trace_key"),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ReplayError(f"malformed replay record: {exc}") from exc


def replay_result_key(
    problem_key: str, trace_key: str, policy: PolicySpec | str | Mapping
) -> str:
    """Content address of one replay: (problem, trace, policy, version)."""
    payload = json.dumps(
        {
            "format": "repro-replay",
            "version": REPLAY_VERSION,
            "problem": problem_key,
            "trace": trace_key,
            "policy": resolve_policy(policy).to_dict(),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def replay_batch_key(
    problem_key: str,
    trace_keys: Iterable[str],
    policy: PolicySpec | str | Mapping,
) -> str:
    """Content address of one micro-batched replay job.

    A batch job is the ordered set of its member replays, so its key
    hashes (problem, ordered trace keys, policy, version); the members
    themselves stay individually addressed by
    :func:`replay_result_key`, which is what lets batched and
    single-trace sweeps share one record store.
    """
    payload = json.dumps(
        {
            "format": "repro-replay-batch",
            "version": REPLAY_VERSION,
            "problem": problem_key,
            "traces": list(trace_keys),
            "policy": resolve_policy(policy).to_dict(),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def replay_trace(
    scheme: PartitioningScheme,
    trace: Iterable[str],
    policy: PolicySpec | str | Mapping = "no-prefetch",
    matrix: Mapping[str, Mapping[str, float]] | None = None,
    problem_key: str | None = None,
    trace_key: str | None = None,
    engine: str = "auto",
    tracer: Tracer = NULL_TRACER,
) -> ReplayResult:
    """Replay ``trace`` (any iterable of configuration names) under a policy.

    ``matrix`` primes the markov predictor with the environment's true
    next-state distribution (:func:`repro.replay.trace.generator_matrix`);
    required exactly when the policy asks for that predictor.  The
    initial full configuration is never charged (it loads at power-up,
    matching :class:`~repro.runtime.manager.ConfigurationManager`).

    ``engine`` selects the implementation (:data:`REPLAY_ENGINES`); every
    engine produces bit-identical results, so the choice is purely a
    throughput knob.  ``vector`` materialises the trace as an id array
    (and errors on stateful policies); ``auto``/``scalar``/``reference``
    preserve the streaming contract.  The vector path counts the events
    it absorbs on ``tracer`` as ``replay.vector_events``.
    """
    policy = resolve_policy(policy)
    if engine not in REPLAY_ENGINES:
        raise ReplayError(
            f"unknown replay engine {engine!r}; expected one of "
            f"{REPLAY_ENGINES}"
        )
    if policy.predictor == "markov" and matrix is None:
        raise ReplayError(
            "the markov predictor needs the environment's "
            "transition matrix (see generator_matrix)"
        )
    if engine == "reference":
        return _replay_reference(
            scheme, trace, policy, matrix, problem_key, trace_key
        )
    result = ReplayResult(
        policy=policy.to_dict(),
        dwell_s=policy.dwell_s,
        problem_key=problem_key,
        trace_key=trace_key,
    )
    tables = kernel.tables_for(scheme)
    eligible = kernel.vector_eligible(policy)
    if engine == "vector" and not eligible:
        raise ReplayError(
            "the vectorized kernel covers plain-manager policies with "
            f"'none'/'static' eviction; policy {policy.name!r} is stateful "
            "(use engine='auto' to fall back to the scalar loop)"
        )
    if eligible and engine in ("auto", "vector"):
        ids = kernel.encode_trace(tables, trace)
        kernel.run_vector(scheme, tables, ids, policy, result)
        tracer.count("replay.vector_events", int(ids.size))
    else:
        kernel.run_scalar(scheme, tables, trace, policy, matrix, result)
    return result


def _replay_reference(
    scheme: PartitioningScheme,
    trace: Iterable[str],
    policy: PolicySpec,
    matrix: Mapping[str, Mapping[str, float]] | None = None,
    problem_key: str | None = None,
    trace_key: str | None = None,
) -> ReplayResult:
    """The original manager-based replay loop -- the semantic oracle."""
    store: BitstreamStore | None = None
    if policy.eviction != "none":
        store = BitstreamStore(scheme, policy)

    lookahead: list[str | None] = [None]
    if policy.manager == "prefetch":
        if policy.predictor == "markov":
            if matrix is None:
                raise ReplayError(
                    "the markov predictor needs the environment's "
                    "transition matrix (see generator_matrix)"
                )
            predict = markov_predictor(matrix)
        else:  # oracle: the engine's one-step lookahead slot
            def predict(_current: str) -> str | None:
                return lookahead[0]

        manager: Any = PrefetchingManager(
            scheme, predict, icap=policy.icap_model
        )
    else:
        manager = ConfigurationManager(scheme, icap=policy.icap_model)

    result = ReplayResult(
        policy=policy.to_dict(),
        dwell_s=policy.dwell_s,
        problem_key=problem_key,
        trace_key=trace_key,
    )
    region_index = {r.name: i for i, r in enumerate(scheme.regions)}

    it = iter(trace)
    try:
        current = next(it)
    except StopIteration:
        current = None
    while current is not None:
        upcoming = next(it, None)
        lookahead[0] = upcoming
        rec = manager.goto(current)
        initial = rec.step == 0
        if not initial:
            latency = rec.seconds
            if store is not None and rec.regions_rewritten:
                # The store replaces the flat fast-path estimate with
                # residency-dependent fetch times per rewritten region.
                loaded = manager.loaded_contents
                latency = 0.0
                for name in rec.regions_rewritten:
                    label = loaded[region_index[name]]
                    seconds, _resident = store.fetch(name, label)
                    latency += seconds
            result.events += 1
            if rec.to_configuration != rec.from_configuration:
                result.switches += 1
                result.latency.observe(latency)
            result.rewrites += len(rec.regions_rewritten)
            result.total_frames += rec.frames
            result.total_seconds += latency
            if latency > policy.dwell_s:
                result.stall_events += 1
        else:
            # Power-up load: uncharged, but the store still starts warm
            # with the initial configuration's bitstreams resident.
            if store is not None:
                for region, label in zip(
                    scheme.regions, scheme.activity(rec.to_configuration)
                ):
                    if label is not None:
                        store.preload(region.name, label)
            result.events += 1
        current = upcoming

    if isinstance(manager, PrefetchingManager):
        result.prefetch = {
            "hits": manager.stats.prefetch_hits,
            "prefetched_frames": manager.stats.prefetched_frames,
            "wasted_frames": manager.stats.prefetch_wasted,
        }
    if store is not None:
        result.store = store.stats()
    return result
