"""Trace-driven workload replay: measured reconfiguration latency under load.

The paper optimizes a *static* objective -- total reconfiguration time
over all configuration pairs (Eq. 7/8) -- but the adaptive systems it
targets live online: what matters in deployment is the *delivered*
mode-switch latency under real traffic.  This package turns that into a
measured quantity, wired through every existing layer:

* :mod:`repro.replay.trace` -- :class:`TraceSpec` / :class:`WorkloadSuite`:
  deterministic, content-addressable synthesis of traffic-trace fleets
  from the :mod:`repro.runtime.adaptive` environment models and the
  :mod:`repro.synth` design generator, streamed lazily so million-event
  traces never materialise in memory;
* :mod:`repro.replay.policies` -- the pluggable policy matrix: plain
  :class:`~repro.runtime.manager.ConfigurationManager` vs
  :class:`~repro.runtime.prefetch.PrefetchingManager` with
  markov/oracle/none predictors, plus bitstream-store eviction policies
  (LRU / static pinning / activity-weighted, after the reconfigurable-
  region management literature, arXiv 1803.03331);
* :mod:`repro.replay.engine` -- the replay loop: run one partition
  scheme against one trace under one policy, emitting per-switch
  latency into :mod:`repro.obs` histograms (p50/p95/p99 delivered
  switch latency, stall events, ICAP utilisation, prefetch hit rate);
* :mod:`repro.replay.store` -- content-addressed on-disk store of
  replay records, keyed by (problem key, trace key, policy);
* :mod:`repro.replay.service` -- replay jobs as the batch service's
  second workload class: sweeps (schemes x environments x policies x
  seeds) fan out over :func:`repro.service.run_batch` with cache-first
  completion, supervision and telemetry like partition jobs;
* :mod:`repro.replay.compare` -- fold stored replay records into a
  per-policy comparison for ``repro replay compare`` and the
  deterministic latency dashboard (:func:`repro.render.render_replay_html`).

Full guide: docs/REPLAY.md.  CLI: ``repro-pr replay run|sweep|compare``.
"""

from .compare import (
    PolicyComparison,
    PolicyLatency,
    collect_policy_comparison,
    comparison_key,
    render_policy_comparison,
)
from .engine import (
    REPLAY_ENGINES,
    REPLAY_LATENCY_BOUNDS,
    REPLAY_VERSION,
    ReplayError,
    ReplayResult,
    replay_batch_key,
    replay_record,
    replay_result_key,
    replay_trace,
)
from .policies import (
    EVICTION_POLICIES,
    POLICY_PRESETS,
    BitstreamStore,
    PolicySpec,
    resolve_policy,
)
from .service import (
    replay_job_key,
    replay_probe_keys,
    replay_store_for,
    replay_summary,
    run_replay_batch_payload,
    run_replay_payload,
    submit_replay_suite,
)
from .store import ReplayResultStore
from .trace import (
    ENVIRONMENTS,
    TraceSpec,
    WorkloadSuite,
    generator_matrix,
    iter_trace,
    ring_matrix,
    trace_key,
)

__all__ = [
    "ENVIRONMENTS",
    "EVICTION_POLICIES",
    "POLICY_PRESETS",
    "REPLAY_ENGINES",
    "REPLAY_LATENCY_BOUNDS",
    "REPLAY_VERSION",
    "BitstreamStore",
    "PolicyComparison",
    "PolicyLatency",
    "PolicySpec",
    "ReplayError",
    "ReplayResult",
    "ReplayResultStore",
    "TraceSpec",
    "WorkloadSuite",
    "collect_policy_comparison",
    "comparison_key",
    "generator_matrix",
    "iter_trace",
    "render_policy_comparison",
    "replay_batch_key",
    "replay_job_key",
    "replay_probe_keys",
    "replay_record",
    "replay_result_key",
    "replay_store_for",
    "replay_summary",
    "replay_trace",
    "resolve_policy",
    "ring_matrix",
    "run_replay_batch_payload",
    "run_replay_payload",
    "submit_replay_suite",
    "trace_key",
]
