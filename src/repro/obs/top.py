"""``repro obs top``: a refreshing fleet view folded from live telemetry.

:class:`FleetView` consumes sink records one at a time -- typically
straight off a :class:`~repro.obs.follow.TelemetryFollower` -- and
maintains the operator's picture of a running batch: per-worker
resource state, in-flight jobs, queue depth, cache-hit rate, throughput
(jobs/s and replay cells/s) and an ETA.  Folding is incremental and
O(fleet) in memory, so it can watch a sweep of any length.

The view is pure state + fold + render; the CLI owns the refresh loop
(clear screen, poll the follower, re-render), which keeps every piece
testable without a terminal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping


@dataclass
class WorkerView:
    """Latest known state of one worker process."""

    pid: int
    rss_peak_mb: float | None = None
    cpu_user_s: float = 0.0
    cpu_sys_s: float = 0.0
    jobs: int = 0
    last_job: str | None = None
    last_ts: float | None = None
    live: bool = False

    @property
    def cpu_s(self) -> float:
        return self.cpu_user_s + self.cpu_sys_s


@dataclass
class FleetView:
    """Incrementally folded state of one telemetry directory."""

    records: int = 0
    first_ts: float | None = None
    last_ts: float | None = None
    #: Totals from the run's opening ``pool`` record (phase=start).
    submitted: int = 0
    workers: int = 0
    #: Latest pool occupancy sample.
    in_flight: int = 0
    queue_depth: int = 0
    #: Outcome counts from ``job`` records.
    done: int = 0
    cached: int = 0
    failed: int = 0
    retried: int = 0
    timeouts: int = 0
    events: int = 0
    #: Replay cells completed (micro-batched jobs count their members).
    cells: int = 0
    runs_finished: int = 0
    #: job id -> start ts of jobs dispatched but not yet reported.
    in_flight_jobs: dict[str, float] = field(default_factory=dict)
    worker_views: dict[int, WorkerView] = field(default_factory=dict)

    # -- folding ---------------------------------------------------------
    def fold(self, record: Mapping[str, Any]) -> None:
        """Consume one sink record (any kind; unknown kinds counted only)."""
        self.records += 1
        ts = record.get("ts")
        if isinstance(ts, (int, float)):
            if self.first_ts is None:
                self.first_ts = float(ts)
            self.last_ts = float(ts)
        kind = record.get("kind")
        if kind == "event":
            self._fold_event(record)
        elif kind == "job":
            self._fold_job(record)
        elif kind == "pool":
            self._fold_pool(record)
        elif kind == "resource":
            self._fold_resource(record)
        elif kind == "run":
            self.runs_finished += 1

    def _fold_event(self, record: Mapping[str, Any]) -> None:
        self.events += 1
        payload = record.get("payload")
        if record.get("name") == "batch.job_started" and isinstance(
            payload, Mapping
        ):
            job = payload.get("job")
            if isinstance(job, str):
                ts = record.get("ts")
                self.in_flight_jobs[job] = (
                    float(ts) if isinstance(ts, (int, float)) else 0.0
                )

    def _fold_job(self, record: Mapping[str, Any]) -> None:
        job = record.get("job")
        if isinstance(job, str):
            self.in_flight_jobs.pop(job, None)
        status = record.get("status")
        if status == "done":
            self.done += 1
            summary = record.get("replay")
            if isinstance(summary, Mapping):
                self.cells += int(summary.get("traces", 1))
        elif status == "cached":
            self.cached += 1
        elif status == "failed":
            self.failed += 1
        elif status == "retried":
            self.retried += 1
        if record.get("timeout"):
            self.timeouts += 1

    def _fold_pool(self, record: Mapping[str, Any]) -> None:
        if record.get("phase") == "start":
            pending = record.get("pending")
            workers = record.get("workers")
            if isinstance(pending, int):
                self.submitted += pending
            if isinstance(workers, int):
                self.workers = workers
        in_flight = record.get("in_flight")
        depth = record.get("queue_depth")
        if isinstance(in_flight, int):
            self.in_flight = in_flight
        if isinstance(depth, int):
            self.queue_depth = depth

    def _fold_resource(self, record: Mapping[str, Any]) -> None:
        pid = record.get("pid")
        if not isinstance(pid, int):
            return
        view = self.worker_views.setdefault(pid, WorkerView(pid=pid))
        rss = record.get("rss_peak_mb")
        if isinstance(rss, (int, float)):
            view.rss_peak_mb = max(view.rss_peak_mb or 0.0, float(rss))
        live = bool(record.get("live"))
        view.live = live
        if not live:
            view.jobs += 1
            for attr in ("cpu_user_s", "cpu_sys_s"):
                value = record.get(attr)
                if isinstance(value, (int, float)):
                    setattr(view, attr, getattr(view, attr) + float(value))
        job = record.get("job")
        if isinstance(job, str):
            view.last_job = job
        ts = record.get("ts")
        if isinstance(ts, (int, float)):
            view.last_ts = float(ts)

    # -- derived ---------------------------------------------------------
    @property
    def drained(self) -> int:
        return self.done + self.cached + self.failed

    @property
    def remaining(self) -> int:
        return max(0, self.submitted - self.drained)

    @property
    def elapsed_s(self) -> float:
        if self.first_ts is None or self.last_ts is None:
            return 0.0
        return max(0.0, self.last_ts - self.first_ts)

    @property
    def cache_hit_rate(self) -> float:
        return self.cached / self.drained if self.drained else 0.0

    @property
    def jobs_per_s(self) -> float:
        elapsed = self.elapsed_s
        return self.drained / elapsed if elapsed > 0 else 0.0

    @property
    def cells_per_s(self) -> float:
        elapsed = self.elapsed_s
        return self.cells / elapsed if elapsed > 0 else 0.0

    @property
    def eta_s(self) -> float | None:
        """Naive drain-rate ETA; ``None`` until a rate exists."""
        rate = self.jobs_per_s
        if rate <= 0 or not self.remaining:
            return None
        return self.remaining / rate


def render_top(view: FleetView, directory: str | None = None) -> str:
    """One refresh frame of the fleet view."""
    header = "fleet" + (f" @ {directory}" if directory else "")
    if view.records == 0:
        return f"{header}\n(no telemetry records yet)"
    eta = view.eta_s
    lines = [
        f"{header}  T+{view.elapsed_s:.1f}s  ({view.records} records)",
        (
            f"jobs: {view.drained}/{view.submitted} drained = "
            f"{view.done} computed + {view.cached} cached + "
            f"{view.failed} failed; retries {view.retried}; "
            f"timeouts {view.timeouts}"
        ),
        (
            f"pool: {view.in_flight} in-flight, queue {view.queue_depth}, "
            f"{view.workers} worker(s)"
        ),
        (
            f"rates: {view.jobs_per_s:.2f} jobs/s"
            + (f", {view.cells_per_s:.2f} cells/s" if view.cells else "")
            + f"; cache hit {100.0 * view.cache_hit_rate:.1f}%"
            + (f"; eta ~{eta:.0f}s" if eta is not None else "")
        ),
    ]
    if view.worker_views:
        lines.append("workers:")
        for pid in sorted(view.worker_views):
            worker = view.worker_views[pid]
            rss = (
                f"{worker.rss_peak_mb:.1f} MiB"
                if worker.rss_peak_mb is not None else "-"
            )
            tag = " live" if worker.live else ""
            job = f" job={worker.last_job}" if worker.last_job else ""
            lines.append(
                f"  pid {pid} : rss {rss}, cpu {worker.cpu_s:.3f} s, "
                f"jobs {worker.jobs}{job}{tag}"
            )
    if view.in_flight_jobs:
        lines.append("in-flight jobs:")
        base = view.last_ts or 0.0
        for job_id in sorted(view.in_flight_jobs):
            started = view.in_flight_jobs[job_id]
            lines.append(f"  {job_id} ({max(0.0, base - started):.1f}s)")
    if view.runs_finished:
        lines.append(f"runs finished: {view.runs_finished}")
    return "\n".join(lines)
