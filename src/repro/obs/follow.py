"""Live telemetry: an incremental, resumable cursor over a sink directory.

``load_telemetry`` is post-hoc -- it sees a run only after the run
quiesces.  :class:`TelemetryFollower` is the live half: it tails a
rotating :class:`~repro.obs.sink.TelemetrySink` directory *while a run
writes it*, yielding each record exactly once, in order, with bounded
memory (one line buffered at a time, never a whole segment or
directory).

The discipline mirrors the sink's crash model:

* a **torn tail** on the newest segment (a record whose terminating
  newline has not landed yet -- mid-append, or a crash) is *pending*:
  the follower stops in front of it and re-examines it on the next
  :meth:`~TelemetryFollower.poll`, emitting the record only once its
  newline arrives.  A tear that never completes (a crash) is never
  emitted -- exactly what ``load_telemetry`` would drop;
* **rotation** is followed transparently: when a newer segment exists,
  the current one must be complete (the sink writes whole lines and
  never reopens a rotated segment), so an incomplete tail there raises
  :class:`~repro.obs.sink.SinkError`, as does any structurally invalid
  record -- the same verdicts as :func:`~repro.obs.sink.iter_telemetry`;
* once the run quiesces, the concatenation of everything a follower
  ever yielded equals ``load_telemetry`` on the same directory,
  record for record.

The cursor (segment index + byte offset) is a plain serialisable value
(:class:`FollowCursor`), so ``repro obs tail --cursor-file`` can resume
across invocations without re-reading (or re-emitting) history.

:func:`iter_telemetry` is implemented on the same machinery -- one
strict pass over a quiesced directory -- which is what makes its
streaming guarantee explicit: records are decoded one line at a time
and yielded immediately, never materialised per segment or directory.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping

from .sink import (
    SINK_VERSION,
    SinkError,
    _segment_index,
    _segment_path,
    _segments,
)

#: Module-level decode hook -- tests monkeypatch this to prove the
#: reader holds O(1) records, not a segment or directory at a time.
_decode = json.loads


@dataclass(frozen=True)
class FollowCursor:
    """A resumable position in a telemetry directory.

    ``segment`` is the numeric index of the segment being read (the
    ``NNNNN`` of ``telemetry-NNNNN.jsonl``); ``offset`` the byte offset
    of the next unread byte within it; ``records`` the count of records
    yielded up to this position (display/diagnostics only -- resumption
    needs just segment + offset).
    """

    segment: int = 0
    offset: int = 0
    records: int = 0

    def to_dict(self) -> dict[str, int]:
        return {
            "segment": self.segment,
            "offset": self.offset,
            "records": self.records,
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "FollowCursor":
        try:
            return cls(
                segment=int(doc["segment"]),
                offset=int(doc["offset"]),
                records=int(doc.get("records", 0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SinkError(f"invalid follow cursor: {dict(doc)!r}") from exc


def _validate(record: Any, where: str) -> dict[str, Any]:
    """The per-record structural checks shared with ``iter_telemetry``."""
    if not isinstance(record, Mapping):
        raise SinkError(f"{where}: telemetry record must be an object")
    if record.get("v") != SINK_VERSION:
        raise SinkError(
            f"{where}: unsupported telemetry version {record.get('v')!r}"
        )
    if not isinstance(record.get("kind"), str):
        raise SinkError(f"{where}: telemetry record has no kind")
    return dict(record)


class TelemetryFollower:
    """Incremental reader over a (possibly still-growing) sink directory.

    Each :meth:`poll` yields every record that became *complete* since
    the previous poll, advancing the cursor as records are consumed --
    abandoning the generator mid-iteration loses nothing.  A directory
    (or segment) that does not exist yet simply yields no records: the
    follower may be started before the run it watches.

    Not a watcher -- polling is the caller's loop (:func:`follow_records`
    wraps the common sleep-until-idle shape).
    """

    def __init__(
        self,
        directory: str | Path,
        cursor: FollowCursor | None = None,
    ):
        self.directory = Path(directory)
        cursor = cursor or FollowCursor()
        self._segment = cursor.segment
        self._offset = cursor.offset
        self._records = cursor.records

    @property
    def cursor(self) -> FollowCursor:
        """The resumable position after everything yielded so far."""
        return FollowCursor(
            segment=self._segment, offset=self._offset, records=self._records
        )

    def poll(self) -> Iterator[dict[str, Any]]:
        """Yield every newly-completed record, oldest first.

        Bounded memory: one line is buffered at a time.  Raises
        :class:`SinkError` for real corruption (an invalid record, a
        torn tail on a rotated segment, a segment that shrank beneath
        the cursor); a torn tail on the *newest* segment is pending
        data, not corruption.
        """
        segments = _segments(self.directory)
        if not segments:
            return
        indices = [_segment_index(p) for p in segments]
        if self._segment not in indices:
            if any(i > self._segment for i in indices):
                raise SinkError(
                    f"{self.directory}: segment {self._segment} vanished "
                    "beneath the cursor"
                )
            # The cursor's segment has not been created yet (a follower
            # started ahead of the sink, or resumed past the end).
            if self._offset:
                raise SinkError(
                    f"{self.directory}: cursor names missing segment "
                    f"{self._segment} at offset {self._offset}"
                )
            return
        newest = max(indices)
        while True:
            path = _segment_path(self.directory, self._segment)
            is_newest = self._segment == newest
            complete = yield from self._drain_segment(path, is_newest)
            if is_newest or not complete:
                return
            # Rotation: this segment is done, move to its successor.
            # Indices rise by one per rotation (the sink never skips).
            self._segment += 1
            self._offset = 0

    def _drain_segment(self, path: Path, is_newest: bool):
        """Yield completed records from ``path`` starting at the cursor.

        Returns True when the segment was consumed to a clean
        (newline-terminated) end, False when a pending tail remains on
        the newest segment.
        """
        with path.open("rb") as fh:
            fh.seek(0, 2)
            size = fh.tell()
            if size < self._offset:
                raise SinkError(
                    f"{path}: segment shrank beneath the cursor "
                    f"({size} < {self._offset})"
                )
            fh.seek(self._offset)
            while True:
                line = fh.readline()
                if not line:
                    return True
                if not line.endswith(b"\n"):
                    # Incomplete tail.  On the newest segment it is a
                    # record still being written (or a crash tear) --
                    # wait for its newline.  On a rotated segment no
                    # writer will ever finish it: corruption.
                    if is_newest:
                        return False
                    raise SinkError(
                        f"{path}: rotated segment has a torn final line"
                    )
                where = f"{path}@{self._offset}"
                try:
                    record = _decode(line.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                    # A newline-terminated line that is not JSON: if it
                    # is (currently) the final line of the newest
                    # segment, treat it as a torn tail -- exactly what
                    # ``load_telemetry`` would silently drop.  Anywhere
                    # else it is mid-log corruption.
                    if is_newest and fh.tell() >= size:
                        return False
                    raise SinkError(f"{where}: corrupt record: {exc}") from exc
                # Validate, then advance *before* yielding: the moment
                # a yield delivers, the record is consumed -- a caller
                # that abandons the generator afterwards must not see
                # it again on the next poll.
                record = _validate(record, where)
                self._offset += len(line)
                self._records += 1
                yield record


def follow_records(
    directory: str | Path,
    cursor: FollowCursor | None = None,
    poll_s: float = 0.2,
    idle_timeout_s: float | None = None,
    stop: Callable[[], bool] | None = None,
    clock: Callable[[], float] = time.monotonic,
    sleep: Callable[[float], None] = time.sleep,
) -> Iterator[dict[str, Any]]:
    """Follow a telemetry directory live: poll, yield, sleep, repeat.

    Ends when ``stop()`` returns true or no new record has arrived for
    ``idle_timeout_s`` seconds (``None`` follows forever).  The
    ``clock``/``sleep`` injection keeps tests deterministic.
    """
    follower = TelemetryFollower(directory, cursor)
    last_news = clock()
    stopped = False
    while True:
        got = False
        for record in follower.poll():
            got = True
            yield record
        if stopped:
            # ``stop()`` was observed true *before* this poll started,
            # so the poll that just drained saw everything durable.
            return
        now = clock()
        if got:
            last_news = now
        if stop is not None and stop():
            stopped = True
            continue
        if idle_timeout_s is not None and now - last_news >= idle_timeout_s:
            return
        sleep(poll_s)
