"""Structured tracing for the partitioning pipeline.

Three primitives, all dependency-free:

* **spans** -- nested, named stage timings (``time.perf_counter``);
* **counters / gauges** -- typed numeric metrics (cliques found, merge
  states explored, cache hits, ...), accumulated both per-span and
  trace-wide;
* **progress events** -- a callback stream for long searches, so a UI or
  log can follow candidate-set iteration without polling.

The base :class:`Tracer` is a no-op: every instrumented entry point in
:mod:`repro.core` defaults to :data:`NULL_TRACER`, so uninstrumented
runs pay only a handful of no-op method calls per *stage* (never per
inner-loop iteration -- hot loops batch their totals into one ``count``
call at stage exit).  :class:`RecordingTracer` records everything and
serialises to the JSON trace schema documented in docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping, Sequence

#: Embedded in every serialised trace; bumped on schema changes.
TRACE_FORMAT = "repro-trace"
TRACE_VERSION = 1


class TraceError(ValueError):
    """Raised for malformed or incompatible serialised traces."""


@dataclass(frozen=True)
class ProgressEvent:
    """One progress tick emitted by a long-running search."""

    name: str
    payload: Mapping[str, Any]


class _NullSpan:
    """Context manager returned by the no-op tracer's :meth:`Tracer.span`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def annotate(self, **attrs: Any) -> None:
        """Attach attributes after entry -- ignored on the null span."""


NULL_SPAN = _NullSpan()


class Tracer:
    """No-op tracer: the default on every instrumented entry point.

    Instrumented code calls the tracer unconditionally; subclasses decide
    whether anything is recorded.  ``enabled`` lets per-iteration emitters
    (progress events inside restart loops) skip even the no-op call.
    """

    enabled: bool = False

    def span(self, name: str, **attrs: Any) -> Any:
        """A context manager timing one named stage."""
        return NULL_SPAN

    def count(self, name: str, value: float = 1) -> None:
        """Add ``value`` to the named counter."""

    def gauge(self, name: str, value: float) -> None:
        """Set the named gauge to its latest value."""

    def progress(self, name: str, **payload: Any) -> None:
        """Emit one progress event to registered callbacks."""

    def on_progress(self, callback: Callable[[ProgressEvent], None]) -> None:
        """Register a progress callback -- ignored by the no-op tracer."""


#: Shared no-op instance; instrumented code does ``tracer or NULL_TRACER``.
NULL_TRACER = Tracer()


@dataclass
class Span:
    """One recorded stage: timing, attributes, metrics, children.

    ``start_s`` is relative to the owning trace's epoch;``duration_s`` is
    ``None`` while the span is still open.  ``counters``/``gauges`` hold
    the metrics emitted while this span was innermost.
    """

    name: str
    start_s: float
    attrs: dict[str, Any] = field(default_factory=dict)
    duration_s: float | None = None
    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    def annotate(self, **attrs: Any) -> None:
        """Attach attributes discovered after the span opened."""
        self.attrs.update(attrs)

    def walk(self, path: tuple[str, ...] = ()) -> Iterator[tuple[tuple[str, ...], "Span"]]:
        """Depth-first (path, span) pairs, self included."""
        here = path + (self.name,)
        yield here, self
        for child in self.children:
            yield from child.walk(here)

    def find(self, name: str) -> list["Span"]:
        """All descendant spans (self included) with the given name."""
        return [s for _, s in self.walk() if s.name == name]

    def to_dict(self) -> dict[str, Any]:
        doc: dict[str, Any] = {"name": self.name, "start_s": self.start_s}
        if self.duration_s is not None:
            doc["duration_s"] = self.duration_s
        if self.attrs:
            doc["attrs"] = dict(self.attrs)
        if self.counters:
            doc["counters"] = dict(self.counters)
        if self.gauges:
            doc["gauges"] = dict(self.gauges)
        if self.children:
            doc["children"] = [c.to_dict() for c in self.children]
        return doc

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "Span":
        if "name" not in doc or "start_s" not in doc:
            raise TraceError(f"span missing name/start_s: {sorted(doc)}")
        return cls(
            name=str(doc["name"]),
            start_s=float(doc["start_s"]),
            attrs=dict(doc.get("attrs", {})),
            duration_s=doc.get("duration_s"),
            counters=dict(doc.get("counters", {})),
            gauges=dict(doc.get("gauges", {})),
            children=[cls.from_dict(c) for c in doc.get("children", [])],
        )


@dataclass
class Trace:
    """A completed (or snapshot) trace: root spans plus trace-wide metrics."""

    spans: list[Span] = field(default_factory=list)
    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    events: int = 0

    @property
    def total_duration_s(self) -> float:
        return sum(s.duration_s or 0.0 for s in self.spans)

    def walk(self) -> Iterator[tuple[tuple[str, ...], Span]]:
        for root in self.spans:
            yield from root.walk()

    def find(self, name: str) -> list[Span]:
        return [s for _, s in self.walk() if s.name == name]

    def span_names(self) -> set[str]:
        return {s.name for _, s in self.walk()}

    def to_dict(self) -> dict[str, Any]:
        return {
            "format": TRACE_FORMAT,
            "version": TRACE_VERSION,
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "events": self.events,
            "spans": [s.to_dict() for s in self.spans],
        }

    def to_json(self, indent: int | None = 1) -> str:
        return json.dumps(self.to_dict(), indent=indent)


def trace_from_dict(doc: Mapping[str, Any]) -> Trace:
    """Rebuild a :class:`Trace` from its :meth:`Trace.to_dict` form."""
    if doc.get("format") != TRACE_FORMAT:
        raise TraceError("not a repro trace document")
    if doc.get("version") != TRACE_VERSION:
        raise TraceError(f"unsupported trace version {doc.get('version')!r}")
    return Trace(
        spans=[Span.from_dict(s) for s in doc.get("spans", [])],
        counters=dict(doc.get("counters", {})),
        gauges=dict(doc.get("gauges", {})),
        events=int(doc.get("events", 0)),
    )


def trace_from_json(text: str) -> Trace:
    """Reload a trace saved with :meth:`Trace.to_json`."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise TraceError(f"invalid JSON: {exc}") from exc
    return trace_from_dict(doc)


class _RecordingSpan:
    """Context manager opening/closing one :class:`Span` on a tracer."""

    __slots__ = ("_tracer", "_name", "_attrs", "_span")

    def __init__(self, tracer: "RecordingTracer", name: str, attrs: dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._span: Span | None = None

    def __enter__(self) -> Span:
        self._span = self._tracer._open(self._name, self._attrs)
        return self._span

    def __exit__(self, *exc: object) -> bool:
        assert self._span is not None
        self._tracer._close(self._span)
        return False


class RecordingTracer(Tracer):
    """Records spans, metrics and progress events for one pipeline run.

    Metrics land on the innermost open span *and* on the trace-wide
    totals; spans opened with no parent become trace roots (a device
    escalation produces several root ``partition`` spans).  Progress
    events are retained up to ``max_events`` (the stream keeps flowing to
    callbacks; only retention is capped) so unbounded searches cannot
    exhaust memory.
    """

    enabled = True

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        max_events: int = 10_000,
    ) -> None:
        self._clock = clock
        self._epoch = clock()
        self._stack: list[Span] = []
        self._callbacks: list[Callable[[ProgressEvent], None]] = []
        self.max_events = max_events
        self.spans: list[Span] = []
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.events: list[ProgressEvent] = []
        self.events_dropped = 0

    # -- span lifecycle -------------------------------------------------
    def _open(self, name: str, attrs: dict[str, Any]) -> Span:
        span = Span(name=name, start_s=self._clock() - self._epoch, attrs=attrs)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.spans.append(span)
        self._stack.append(span)
        return span

    def _close(self, span: Span) -> None:
        if not self._stack or self._stack[-1] is not span:
            raise TraceError(f"span {span.name!r} closed out of order")
        self._stack.pop()
        span.duration_s = (self._clock() - self._epoch) - span.start_s

    def span(self, name: str, **attrs: Any) -> _RecordingSpan:
        return _RecordingSpan(self, name, attrs)

    @property
    def current_span(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    # -- metrics ---------------------------------------------------------
    def count(self, name: str, value: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value
        if self._stack:
            bucket = self._stack[-1].counters
            bucket[name] = bucket.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value
        if self._stack:
            self._stack[-1].gauges[name] = value

    # -- progress stream -------------------------------------------------
    def on_progress(self, callback: Callable[[ProgressEvent], None]) -> None:
        self._callbacks.append(callback)

    def progress(self, name: str, **payload: Any) -> None:
        event = ProgressEvent(name=name, payload=payload)
        if len(self.events) < self.max_events:
            self.events.append(event)
        else:
            self.events_dropped += 1
        for callback in self._callbacks:
            callback(event)

    # -- snapshot ---------------------------------------------------------
    def trace(self) -> Trace:
        """Snapshot the recorded data as an immutable-ish :class:`Trace`."""
        return Trace(
            spans=list(self.spans),
            counters=dict(self.counters),
            gauges=dict(self.gauges),
            events=len(self.events) + self.events_dropped,
        )

    def to_json(self, indent: int | None = 1) -> str:
        return self.trace().to_json(indent=indent)
