"""Structured tracing for the partitioning pipeline.

Three primitives, all dependency-free:

* **spans** -- nested, named stage timings (``time.perf_counter``);
* **counters / gauges** -- typed numeric metrics (cliques found, merge
  states explored, cache hits, ...), accumulated both per-span and
  trace-wide;
* **progress events** -- a callback stream for long searches, so a UI or
  log can follow candidate-set iteration without polling.

The base :class:`Tracer` is a no-op: every instrumented entry point in
:mod:`repro.core` defaults to :data:`NULL_TRACER`, so uninstrumented
runs pay only a handful of no-op method calls per *stage* (never per
inner-loop iteration -- hot loops batch their totals into one ``count``
call at stage exit).  :class:`RecordingTracer` records everything and
serialises to the JSON trace schema documented in docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import json
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from .metrics import Histogram, merge_histogram_maps

#: Embedded in every serialised trace; bumped on schema changes.
#: Version 2 added the optional ``histograms`` block; version-1 traces
#: (no histograms) still load.
TRACE_FORMAT = "repro-trace"
TRACE_VERSION = 2
_READABLE_VERSIONS = (1, 2)


class TraceError(ValueError):
    """Raised for malformed or incompatible serialised traces."""


@dataclass(frozen=True)
class ProgressEvent:
    """One progress tick emitted by a long-running search."""

    name: str
    payload: Mapping[str, Any]


class _NullSpan:
    """Context manager returned by the no-op tracer's :meth:`Tracer.span`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def annotate(self, **attrs: Any) -> None:
        """Attach attributes after entry -- ignored on the null span."""


NULL_SPAN = _NullSpan()


class Tracer:
    """No-op tracer: the default on every instrumented entry point.

    Instrumented code calls the tracer unconditionally; subclasses decide
    whether anything is recorded.  ``enabled`` lets per-iteration emitters
    (progress events inside restart loops) skip even the no-op call.
    """

    enabled: bool = False

    def span(self, name: str, **attrs: Any) -> Any:
        """A context manager timing one named stage."""
        return NULL_SPAN

    def count(self, name: str, value: float = 1) -> None:
        """Add ``value`` to the named counter."""

    def gauge(self, name: str, value: float) -> None:
        """Set the named gauge to its latest value."""

    def observe(
        self, name: str, value: float, bounds: Iterable[float] | None = None
    ) -> None:
        """Record one sample into the named histogram."""

    def progress(self, name: str, **payload: Any) -> None:
        """Emit one progress event to registered callbacks."""

    def on_progress(self, callback: Callable[[ProgressEvent], None]) -> None:
        """Register a progress callback -- ignored by the no-op tracer."""

    def now(self) -> float:
        """Seconds since the tracer's epoch (0.0 on the no-op tracer)."""
        return 0.0


#: Shared no-op instance; instrumented code does ``tracer or NULL_TRACER``.
NULL_TRACER = Tracer()


@dataclass
class Span:
    """One recorded stage: timing, attributes, metrics, children.

    ``start_s`` is relative to the owning trace's epoch;``duration_s`` is
    ``None`` while the span is still open.  ``counters``/``gauges`` hold
    the metrics emitted while this span was innermost.
    """

    name: str
    start_s: float
    attrs: dict[str, Any] = field(default_factory=dict)
    duration_s: float | None = None
    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    def annotate(self, **attrs: Any) -> None:
        """Attach attributes discovered after the span opened."""
        self.attrs.update(attrs)

    def walk(self, path: tuple[str, ...] = ()) -> Iterator[tuple[tuple[str, ...], "Span"]]:
        """Depth-first (path, span) pairs, self included."""
        here = path + (self.name,)
        yield here, self
        for child in self.children:
            yield from child.walk(here)

    def find(self, name: str) -> list["Span"]:
        """All descendant spans (self included) with the given name."""
        return [s for _, s in self.walk() if s.name == name]

    def to_dict(self) -> dict[str, Any]:
        doc: dict[str, Any] = {"name": self.name, "start_s": self.start_s}
        if self.duration_s is not None:
            doc["duration_s"] = self.duration_s
        if self.attrs:
            doc["attrs"] = dict(self.attrs)
        if self.counters:
            doc["counters"] = dict(self.counters)
        if self.gauges:
            doc["gauges"] = dict(self.gauges)
        if self.children:
            doc["children"] = [c.to_dict() for c in self.children]
        return doc

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "Span":
        if "name" not in doc or "start_s" not in doc:
            raise TraceError(f"span missing name/start_s: {sorted(doc)}")
        return cls(
            name=str(doc["name"]),
            start_s=float(doc["start_s"]),
            attrs=dict(doc.get("attrs", {})),
            duration_s=doc.get("duration_s"),
            counters=dict(doc.get("counters", {})),
            gauges=dict(doc.get("gauges", {})),
            children=[cls.from_dict(c) for c in doc.get("children", [])],
        )


@dataclass
class Trace:
    """A completed (or snapshot) trace: root spans plus trace-wide metrics."""

    spans: list[Span] = field(default_factory=list)
    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, Histogram] = field(default_factory=dict)
    events: int = 0

    @property
    def total_duration_s(self) -> float:
        return sum(s.duration_s or 0.0 for s in self.spans)

    def walk(self) -> Iterator[tuple[tuple[str, ...], Span]]:
        for root in self.spans:
            yield from root.walk()

    def find(self, name: str) -> list[Span]:
        return [s for _, s in self.walk() if s.name == name]

    def span_names(self) -> set[str]:
        return {s.name for _, s in self.walk()}

    def to_dict(self) -> dict[str, Any]:
        doc: dict[str, Any] = {
            "format": TRACE_FORMAT,
            "version": TRACE_VERSION,
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "events": self.events,
            "spans": [s.to_dict() for s in self.spans],
        }
        if self.histograms:
            doc["histograms"] = {
                name: h.to_dict() for name, h in self.histograms.items()
            }
        return doc

    def to_json(self, indent: int | None = 1) -> str:
        return json.dumps(self.to_dict(), indent=indent)


def trace_from_dict(doc: Mapping[str, Any]) -> Trace:
    """Rebuild a :class:`Trace` from its :meth:`Trace.to_dict` form."""
    if doc.get("format") != TRACE_FORMAT:
        raise TraceError("not a repro trace document")
    if doc.get("version") not in _READABLE_VERSIONS:
        raise TraceError(f"unsupported trace version {doc.get('version')!r}")
    try:
        histograms = {
            name: Histogram.from_dict(h)
            for name, h in doc.get("histograms", {}).items()
        }
    except ValueError as exc:
        raise TraceError(f"invalid histogram block: {exc}") from exc
    return Trace(
        spans=[Span.from_dict(s) for s in doc.get("spans", [])],
        counters=dict(doc.get("counters", {})),
        gauges=dict(doc.get("gauges", {})),
        histograms=histograms,
        events=int(doc.get("events", 0)),
    )


def trace_from_json(text: str) -> Trace:
    """Reload a trace saved with :meth:`Trace.to_json`."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise TraceError(f"invalid JSON: {exc}") from exc
    return trace_from_dict(doc)


def _shift_span(span: Span, offset: float) -> None:
    """Move a span subtree onto a new time base (recursively)."""
    span.start_s += offset
    for child in span.children:
        _shift_span(child, offset)


class _RecordingSpan:
    """Context manager opening/closing one :class:`Span` on a tracer."""

    __slots__ = ("_tracer", "_name", "_attrs", "_span")

    def __init__(self, tracer: "RecordingTracer", name: str, attrs: dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._span: Span | None = None

    def __enter__(self) -> Span:
        self._span = self._tracer._open(self._name, self._attrs)
        return self._span

    def __exit__(self, *exc: object) -> bool:
        assert self._span is not None
        self._tracer._close(self._span)
        return False


class RecordingTracer(Tracer):
    """Records spans, metrics and progress events for one pipeline run.

    Metrics land on the innermost open span *and* on the trace-wide
    totals; spans opened with no parent become trace roots (a device
    escalation produces several root ``partition`` spans).  Progress
    events are retained in a **ring buffer** of ``max_events`` (the
    stream keeps flowing to callbacks; only retention is capped, and the
    buffer keeps the *newest* events) so unbounded searches cannot
    exhaust memory -- each overwrite bumps ``events_dropped`` and the
    ``obs.events_dropped`` counter.
    """

    enabled = True

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        max_events: int = 10_000,
    ) -> None:
        self._clock = clock
        self._epoch = clock()
        self._stack: list[Span] = []
        self._callbacks: list[Callable[[ProgressEvent], None]] = []
        self.max_events = max_events
        self.spans: list[Span] = []
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}
        self.events: deque[ProgressEvent] = deque(maxlen=max_events)
        self.events_dropped = 0

    # -- span lifecycle -------------------------------------------------
    def _open(self, name: str, attrs: dict[str, Any]) -> Span:
        span = Span(name=name, start_s=self._clock() - self._epoch, attrs=attrs)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.spans.append(span)
        self._stack.append(span)
        return span

    def _close(self, span: Span) -> None:
        if not self._stack or self._stack[-1] is not span:
            raise TraceError(f"span {span.name!r} closed out of order")
        self._stack.pop()
        span.duration_s = (self._clock() - self._epoch) - span.start_s

    def span(self, name: str, **attrs: Any) -> _RecordingSpan:
        return _RecordingSpan(self, name, attrs)

    @property
    def current_span(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    # -- metrics ---------------------------------------------------------
    def count(self, name: str, value: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value
        if self._stack:
            bucket = self._stack[-1].counters
            bucket[name] = bucket.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value
        if self._stack:
            self._stack[-1].gauges[name] = value

    def observe(
        self, name: str, value: float, bounds: Iterable[float] | None = None
    ) -> None:
        """Record one sample into the named trace-wide histogram.

        ``bounds`` customises the bucket layout on *first* observation of
        a name; later calls reuse the existing layout.  Histograms are
        trace-wide only -- per-span distribution tracking would bloat
        every span for data the report never slices that way.
        """
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = (
                Histogram() if bounds is None else Histogram(bounds)
            )
        histogram.observe(value)

    # -- progress stream -------------------------------------------------
    def on_progress(self, callback: Callable[[ProgressEvent], None]) -> None:
        self._callbacks.append(callback)

    def progress(self, name: str, **payload: Any) -> None:
        event = ProgressEvent(name=name, payload=payload)
        if len(self.events) == self.max_events:
            # The ring is full: appending evicts the oldest retained
            # event.  Count the loss so long runs stay honest about it.
            self.events_dropped += 1
            self.count("obs.events_dropped")
        self.events.append(event)
        for callback in self._callbacks:
            callback(event)

    # -- cross-process adoption -------------------------------------------
    def now(self) -> float:
        """Seconds since this tracer's epoch (the span time base)."""
        return self._clock() - self._epoch

    def adopt_trace(
        self,
        trace: "Trace | Mapping[str, Any]",
        name: str = "job",
        start_s: float | None = None,
        **attrs: Any,
    ) -> Span:
        """Re-root another tracer's completed trace under this one.

        The workhorse of cross-process telemetry: a supervised worker
        records its run on a private :class:`RecordingTracer`, ships
        ``tracer.trace().to_dict()`` back over the result channel, and
        the parent adopts it here so ``render_trace_summary`` shows one
        coherent tree for the whole batch.

        A synthetic span ``name`` (carrying ``attrs``) is appended under
        the currently open span (or as a root), its children are the
        adopted trace's root spans shifted onto this tracer's time base
        (``start_s`` -- when the worker actually started, default now;
        relative order and nesting inside the adopted trace are
        preserved exactly), and its duration is the adopted spans' total
        extent.  Counters and histograms merge associatively into the
        trace-wide totals; gauges are last-write-wins; the worker's
        event *count* folds into ``obs.worker_events``.
        """
        if isinstance(trace, Mapping):
            trace = trace_from_dict(trace)
        if start_s is None:
            start_s = self.now()
        span = self._open(name, dict(attrs))
        span.start_s = start_s
        extent = 0.0
        for root in trace.spans:
            _shift_span(root, start_s)
            span.children.append(root)
            extent = max(extent, root.start_s + (root.duration_s or 0.0)
                         - start_s)
        span.counters = dict(trace.counters)
        span.gauges = dict(trace.gauges)
        self._stack.pop()
        span.duration_s = extent
        for key, value in trace.counters.items():
            self.counters[key] = self.counters.get(key, 0) + value
        self.gauges.update(trace.gauges)
        merge_histogram_maps(self.histograms, trace.histograms)
        if trace.events:
            self.count("obs.worker_events", trace.events)
        return span

    # -- snapshot ---------------------------------------------------------
    def trace(self) -> Trace:
        """Snapshot the recorded data as an immutable-ish :class:`Trace`."""
        return Trace(
            spans=list(self.spans),
            counters=dict(self.counters),
            gauges=dict(self.gauges),
            histograms={
                name: Histogram.from_dict(h.to_dict())
                for name, h in self.histograms.items()
            },
            events=len(self.events) + self.events_dropped,
        )

    def to_json(self, indent: int | None = 1) -> str:
        return self.trace().to_json(indent=indent)
