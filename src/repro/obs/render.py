"""Human-readable stage summaries of recorded traces.

Dependency-free (this package sits below :mod:`repro.eval`, which
re-exports :func:`render_trace_summary` next to the paper-table
renderers), so the boxed-table formatting is reimplemented here in
miniature rather than imported from ``repro.eval.report``.
"""

from __future__ import annotations

from typing import Sequence

from .tracer import RecordingTracer, Trace


def _table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    rule = "+-" + "-+-".join("-" * w for w in widths) + "-+"

    def line(cells: Sequence[str]) -> str:
        return "| " + " | ".join(c.ljust(w) for c, w in zip(cells, widths)) + " |"

    out = [rule, line(list(headers)), rule]
    out.extend(line(row) for row in str_rows)
    out.append(rule)
    return "\n".join(out)


def _fmt_metric(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:g}"
    return str(int(value))


def _fmt_quantile(value: float | None) -> str:
    return "-" if value is None else f"{value:.4g}"


def stage_summary_rows(
    trace: Trace,
) -> list[tuple[str, int, float, float]]:
    """Aggregate spans by path: (indented stage, calls, seconds, percent).

    Repeated spans at the same path (one ``merge_search`` per candidate
    set) collapse into a single row with a call count; rows appear in
    first-occurrence order, indented by nesting depth.
    """
    order: list[tuple[str, ...]] = []
    calls: dict[tuple[str, ...], int] = {}
    seconds: dict[tuple[str, ...], float] = {}
    for path, span in trace.walk():
        if path not in calls:
            order.append(path)
            calls[path] = 0
            seconds[path] = 0.0
        calls[path] += 1
        seconds[path] += span.duration_s or 0.0
    total = trace.total_duration_s or 1e-12
    return [
        (
            "  " * (len(path) - 1) + path[-1],
            calls[path],
            seconds[path],
            100.0 * seconds[path] / total,
        )
        for path in order
    ]


def render_trace_summary(trace: Trace | RecordingTracer) -> str:
    """The per-stage summary table plus counter/gauge listings."""
    if isinstance(trace, RecordingTracer):
        trace = trace.trace()
    rows = [
        (stage, calls, f"{secs:.4f}", f"{pct:5.1f}")
        for stage, calls, secs, pct in stage_summary_rows(trace)
    ]
    blocks = [
        _table(("stage", "calls", "time (s)", "% of total"), rows)
        if rows
        else "(no spans recorded)"
    ]
    if trace.counters:
        width = max(len(k) for k in trace.counters)
        blocks.append(
            "counters:\n"
            + "\n".join(
                f"  {k.ljust(width)} : {_fmt_metric(v)}"
                for k, v in sorted(trace.counters.items())
            )
        )
    if trace.gauges:
        width = max(len(k) for k in trace.gauges)
        blocks.append(
            "gauges:\n"
            + "\n".join(
                f"  {k.ljust(width)} : {_fmt_metric(v)}"
                for k, v in sorted(trace.gauges.items())
            )
        )
    if trace.histograms:
        rows = [
            (
                name,
                h.count,
                _fmt_quantile(h.percentile(50)),
                _fmt_quantile(h.percentile(90)),
                _fmt_quantile(h.percentile(99)),
                _fmt_quantile(h.maximum),
            )
            for name, h in sorted(trace.histograms.items())
        ]
        blocks.append(
            "histograms:\n"
            + _table(("histogram", "count", "p50", "p90", "p99", "max"), rows)
        )
    if trace.events:
        blocks.append(f"progress events: {trace.events}")
    return "\n".join(blocks)
