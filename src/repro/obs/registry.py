"""Durable run registry: every batch run, what it was, how it ended.

Telemetry directories answer "what happened inside run X"; the registry
answers "which runs exist at all".  It is one append-only
``runs.jsonl`` in a registry directory, written with the shared
:func:`repro.util.jsonl.replay_jsonl` crash discipline (flush per
append; a crash tears at most the final line, which readers drop), and
folded into :class:`RunEntry` objects on read:

* a ``start`` record lands the moment ``run_batch`` (or ``replay
  sweep``) accepts a batch: run id, job kinds, job count, workers, the
  sha-256 **config digest** of the run's effective configuration, and
  the telemetry directory if one is attached;
* a ``finish`` record lands when the run returns: status plus the final
  report summary.

A run that crashed mid-batch simply never writes its ``finish`` record
-- it lists as ``running`` forever, which is exactly the honest answer
(``repro obs runs`` shows it with no finish time).  The registry never
mutates old lines, so concurrent readers are always safe.

One registry per fleet/queue is the intended shape (the CLI defaults to
``<queue>/registry``), but nothing couples a registry to a queue --
point several queues at one registry to get a fleet-wide ledger.
"""

from __future__ import annotations

import hashlib
import json
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping

from ..util.jsonl import JsonlError, replay_jsonl

#: Schema version stamped into every registry record.
REGISTRY_VERSION = 1

#: The ledger file inside a registry directory.
REGISTRY_FILENAME = "runs.jsonl"


class RegistryError(ValueError):
    """Raised for corrupt registries or malformed registry calls."""


def config_digest(config: Mapping[str, Any] | None) -> str:
    """A stable content-address of a run's effective configuration.

    Canonical-JSON sha-256, like :func:`repro.core.fingerprint` keys --
    two runs share a digest exactly when their configs are equal as
    JSON values.  ``None`` digests as the empty config.
    """
    canonical = json.dumps(
        dict(config or {}), sort_keys=True, separators=(",", ":"),
        default=str,
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _default_run_id(clock: Callable[[], float]) -> str:
    """Sortable-by-start run id: UTC timestamp + random suffix."""
    stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime(clock()))
    return f"{stamp}-{uuid.uuid4().hex[:8]}"


@dataclass
class RunEntry:
    """One registered run, folded from its start/finish records."""

    run_id: str
    status: str = "running"  # running | done | failed
    kinds: tuple[str, ...] = ()
    jobs: int = 0
    workers: int = 1
    config_digest: str = ""
    telemetry: str | None = None
    started_ts: float | None = None
    finished_ts: float | None = None
    summary: dict[str, Any] = field(default_factory=dict)
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def duration_s(self) -> float | None:
        if self.started_ts is None or self.finished_ts is None:
            return None
        return max(0.0, self.finished_ts - self.started_ts)

    def to_dict(self) -> dict[str, Any]:
        return {
            "run_id": self.run_id,
            "status": self.status,
            "kinds": list(self.kinds),
            "jobs": self.jobs,
            "workers": self.workers,
            "config_digest": self.config_digest,
            "telemetry": self.telemetry,
            "started_ts": self.started_ts,
            "finished_ts": self.finished_ts,
            "duration_s": self.duration_s,
            "summary": dict(self.summary),
            "meta": dict(self.meta),
        }


class RunRegistry:
    """Append-only ledger of batch runs in one directory.

    Reopening an existing registry heals a torn tail (the job-store
    recovery discipline) before appending.  Not multi-writer safe
    within one process -- share one instance per run, like the sink.
    """

    def __init__(
        self,
        directory: str | Path,
        clock: Callable[[], float] = time.time,
        id_factory: Callable[[], str] | None = None,
    ):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._clock = clock
        self._id_factory = id_factory or (lambda: _default_run_id(clock))
        if self.path.exists():
            try:
                replay_jsonl(self.path)  # heal a torn tail pre-append
            except JsonlError as exc:
                raise RegistryError(str(exc)) from exc

    @property
    def path(self) -> Path:
        return self.directory / REGISTRY_FILENAME

    # -- writing ---------------------------------------------------------
    def _append(self, record: dict[str, Any]) -> None:
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
            fh.flush()

    def start(
        self,
        *,
        kinds: Iterable[str] = (),
        jobs: int = 0,
        workers: int = 1,
        config: Mapping[str, Any] | None = None,
        telemetry: str | Path | None = None,
        meta: Mapping[str, Any] | None = None,
        run_id: str | None = None,
    ) -> str:
        """Register a run as started; returns its run id."""
        run_id = run_id or self._id_factory()
        self._append({
            "v": REGISTRY_VERSION,
            "event": "start",
            "run": run_id,
            "ts": self._clock(),
            "kinds": sorted(set(kinds)),
            "jobs": int(jobs),
            "workers": int(workers),
            "config_digest": config_digest(config),
            "telemetry": str(telemetry) if telemetry is not None else None,
            "meta": dict(meta or {}),
        })
        return run_id

    def finish(
        self,
        run_id: str,
        *,
        status: str = "done",
        summary: Mapping[str, Any] | None = None,
    ) -> None:
        """Register a run as finished, with its final report summary."""
        if status not in ("done", "failed"):
            raise RegistryError(f"invalid finish status: {status!r}")
        self._append({
            "v": REGISTRY_VERSION,
            "event": "finish",
            "run": run_id,
            "ts": self._clock(),
            "status": status,
            "summary": dict(summary or {}),
        })

    # -- reading ---------------------------------------------------------
    def entries(self) -> list[RunEntry]:
        """Every registered run, oldest start first, records folded.

        Read-only and crash-tolerant: a torn final line (a crash
        mid-append) is dropped without repairing the file, so read-only
        checkouts and concurrent readers are safe.
        """
        try:
            records = replay_jsonl(self.path, repair=False)
        except JsonlError as exc:
            raise RegistryError(str(exc)) from exc
        entries: dict[str, RunEntry] = {}
        for i, record in enumerate(records, start=1):
            where = f"{self.path}:{i}"
            if not isinstance(record, Mapping):
                raise RegistryError(f"{where}: registry record must be an object")
            if record.get("v") != REGISTRY_VERSION:
                raise RegistryError(
                    f"{where}: unsupported registry version {record.get('v')!r}"
                )
            run_id = record.get("run")
            event = record.get("event")
            if not isinstance(run_id, str) or not run_id:
                raise RegistryError(f"{where}: registry record has no run id")
            entry = entries.get(run_id)
            if entry is None:
                entry = entries[run_id] = RunEntry(run_id=run_id)
            if event == "start":
                entry.started_ts = float(record.get("ts") or 0.0)
                entry.kinds = tuple(record.get("kinds") or ())
                entry.jobs = int(record.get("jobs") or 0)
                entry.workers = int(record.get("workers") or 1)
                entry.config_digest = str(record.get("config_digest") or "")
                telemetry = record.get("telemetry")
                entry.telemetry = str(telemetry) if telemetry else None
                entry.meta = dict(record.get("meta") or {})
            elif event == "finish":
                entry.finished_ts = float(record.get("ts") or 0.0)
                entry.status = str(record.get("status") or "done")
                entry.summary = dict(record.get("summary") or {})
            else:
                raise RegistryError(
                    f"{where}: unknown registry event {event!r}"
                )
        return sorted(
            entries.values(),
            key=lambda e: (e.started_ts is None, e.started_ts or 0.0, e.run_id),
        )

    def get(self, run_id: str) -> RunEntry:
        """The folded entry for one run id."""
        for entry in self.entries():
            if entry.run_id == run_id:
                return entry
        raise RegistryError(f"unknown run id: {run_id}")
