"""Durable telemetry: a crash-safe, rotating JSONL event sink.

An in-process :class:`~repro.obs.tracer.RecordingTracer` evaporates with
its process; the sink is the persistent half of the pipeline.  A
telemetry directory holds numbered segment files::

    telemetry-00000.jsonl
    telemetry-00001.jsonl      # opened when the previous hit max_bytes
    ...

Each line is one self-describing record -- ``{"v": 1, "kind": ...,
"ts": <unix seconds>, ...}`` -- flushed per append, so a crash can tear
at most the final line of the *newest* segment.  Loading tolerates (and
repairs) exactly that tear via the shared
:func:`repro.util.jsonl.replay_jsonl` discipline; damage anywhere else
raises :class:`SinkError`.

Record kinds written by the batch service (docs/OBSERVABILITY.md has
the schema table):

* ``event`` -- one tracer progress event (name + payload);
* ``job``   -- one job outcome, keyed by job id **and** the
  content-addressed ``problem_key`` so records join cleanly against the
  result cache;
* ``run``   -- one end-of-run summary: the ``BatchReport`` dict plus
  the tracer's counters/gauges/histograms.

``repro obs report`` / ``export-prom`` aggregate these directories.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterator

from ..util.jsonl import replay_jsonl
from .tracer import ProgressEvent, Tracer

#: Schema version stamped into every record (the ``v`` field).
SINK_VERSION = 1

#: Segment rotation threshold (bytes) -- generous; telemetry lines are
#: small, so one segment typically holds an entire run.
DEFAULT_MAX_BYTES = 16 * 1024 * 1024

_SEGMENT_PREFIX = "telemetry-"
_SEGMENT_SUFFIX = ".jsonl"


class SinkError(ValueError):
    """Raised for corrupt telemetry directories or malformed records."""


def _segments(directory: Path) -> list[Path]:
    """Segment files of a telemetry directory, in rotation order."""
    return sorted(directory.glob(f"{_SEGMENT_PREFIX}*{_SEGMENT_SUFFIX}"))


def _segment_index(path: Path) -> int:
    """The numeric rotation index of one segment file name."""
    stem = path.name[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)]
    try:
        return int(stem)
    except ValueError as exc:
        raise SinkError(f"not a telemetry segment: {path.name}") from exc


def _segment_path(directory: Path, index: int) -> Path:
    """The segment file path for one rotation index."""
    return directory / f"{_SEGMENT_PREFIX}{index:05d}{_SEGMENT_SUFFIX}"


class TelemetrySink:
    """Append-only telemetry writer for one directory.

    Safe to reopen over an existing directory: writing resumes on the
    newest segment (after tail repair) and rotation continues the
    numbering.  Not multi-writer safe -- one sink per run directory,
    like one :class:`~repro.service.jobs.JobStore` per queue.
    """

    def __init__(
        self,
        directory: str | Path,
        max_bytes: int = DEFAULT_MAX_BYTES,
        clock: Callable[[], float] = time.time,
    ):
        if max_bytes < 1:
            raise SinkError("max_bytes must be positive")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max_bytes
        self._clock = clock
        self.records_written = 0
        self._attached: set[int] = set()
        existing = _segments(self.directory)
        if existing:
            # Heal a torn tail before appending to it.
            replay_jsonl(existing[-1])
            self._index = _segment_index(existing[-1])
        else:
            self._index = 0

    @property
    def segment_path(self) -> Path:
        return _segment_path(self.directory, self._index)

    # -- writing ---------------------------------------------------------
    def append(self, kind: str, /, **fields: Any) -> dict[str, Any]:
        """Write one record; returns the full dict that landed on disk.

        ``v``/``kind``/``ts`` are reserved header fields; the rest of the
        record is the caller's payload (must be JSON-serialisable).
        """
        record = {"v": SINK_VERSION, "kind": str(kind), "ts": self._clock()}
        for key, value in fields.items():
            if key in record:
                raise SinkError(f"field {key!r} is a reserved header field")
            record[key] = value
        path = self.segment_path
        if path.exists() and path.stat().st_size >= self.max_bytes:
            self._index += 1
            path = self.segment_path
        with path.open("a", encoding="utf-8") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
            fh.flush()
        self.records_written += 1
        return record

    def attach(self, tracer: Tracer) -> None:
        """Persist every progress event of ``tracer`` as it happens.

        Idempotent per tracer -- attaching the same tracer again (e.g.
        across several ``run_batch`` calls sharing one sink) does not
        double-write events.
        """
        if id(tracer) in self._attached:
            return
        self._attached.add(id(tracer))
        tracer.on_progress(self._on_event)

    def _on_event(self, event: ProgressEvent) -> None:
        self.append("event", name=event.name, payload=dict(event.payload))


def iter_telemetry(directory: str | Path) -> Iterator[dict[str, Any]]:
    """Yield every record of a telemetry directory, oldest first.

    **Streaming**: records are decoded one line at a time and yielded
    immediately -- no segment or directory is ever materialised in
    memory, so a multi-gigabyte telemetry directory costs O(1) records
    of working set (one pass of the same incremental reader that powers
    :class:`~repro.obs.follow.TelemetryFollower`).

    Tolerates a torn final line on the newest segment (a crash
    mid-append) -- without repairing the files, so read-only checkouts
    and concurrent readers are safe.  A torn line in any *older* segment
    is real corruption (rotation closed that file long before the crash)
    and raises :class:`SinkError`, as does any structurally invalid
    record.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise SinkError(f"not a telemetry directory: {directory}")
    segments = _segments(directory)
    if not segments:
        raise SinkError(f"no telemetry segments in {directory}")
    from .follow import TelemetryFollower

    yield from TelemetryFollower(directory).poll()


@dataclass(frozen=True)
class SinkStats:
    """Filesystem-level shape of one telemetry directory."""

    segments: int
    bytes: int

    @property
    def rotations(self) -> int:
        """Completed size-triggered rotations (segments beyond the first)."""
        return max(0, self.segments - 1)

    def to_dict(self) -> dict[str, int]:
        return {
            "segments": self.segments,
            "bytes": self.bytes,
            "rotations": self.rotations,
        }


def sink_stats(directory: str | Path) -> SinkStats:
    """Segment count and on-disk size of a telemetry directory.

    A missing or empty directory has zero segments -- consistent with
    :func:`~repro.obs.report.aggregate_run` treating "no telemetry yet"
    as a normal state rather than an error.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return SinkStats(segments=0, bytes=0)
    paths = _segments(directory)
    total = 0
    for path in paths:
        try:
            total += path.stat().st_size
        except OSError:
            pass
    return SinkStats(segments=len(paths), bytes=total)


def load_telemetry(directory: str | Path) -> list[dict[str, Any]]:
    """Every record of a telemetry directory, oldest first (see
    :func:`iter_telemetry`)."""
    return list(iter_telemetry(directory))
