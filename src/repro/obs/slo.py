"""Declarative SLO rules over a :class:`~repro.obs.report.RunReport`.

A committed TOML file states what a healthy run looks like::

    [[slo]]
    metric = "job_wall_s.p95"        # histogram percentile
    max = 30.0

    [[slo]]
    metric = "cache_hit_rate"        # report field
    min = 0.5

    [[slo]]
    metric = "worker_peak_rss_mb"    # resource telemetry
    max = 2048.0
    allow_missing = true             # platforms without getrusage

``repro obs check DIR --slo FILE`` aggregates the telemetry directory,
evaluates every rule against ``RunReport.to_dict()``, and exits 3 on
any breach -- the same exit-code convention as ``obs bench-diff`` and
``render --check``, so CI wires it in as one blocking step.

Metric selectors resolve in this order:

1. **derived metrics** computed here (currently none beyond what the
   report already exposes -- the hook exists so selectors stay stable
   if report fields move);
2. a **dotted walk** of the report document, longest-prefix first, so
   ``counters.obs.events_dropped`` finds the literal key
   ``"obs.events_dropped"`` inside ``counters`` (dots inside key names
   never need quoting);
3. a **histogram percentile**: ``<name>.pNN`` looks up ``<name>`` in
   the report's histograms -- by exact name first, then by unique
   dot-suffix, so ``job_wall_s.p95`` matches ``service.job_wall_s``.

A selector that resolves to nothing is a **breach** (a guard that
silently stops measuring is worse than one that fires) unless the rule
says ``allow_missing = true``.

TOML parsing uses :mod:`tomllib` where available (Python >= 3.11) and
falls back to a small strict subset parser (``[[slo]]`` tables with
``key = number | bool | "string"`` pairs and comments) on 3.10 -- the
full grammar is deliberately not needed by SLO files.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from .metrics import Histogram

try:  # pragma: no cover - version-dependent import
    import tomllib as _tomllib
except ImportError:  # pragma: no cover - Python 3.10
    _tomllib = None


class SloError(ValueError):
    """Raised for unreadable SLO files or malformed rules."""


# ----------------------------------------------------------------------
# TOML loading (tomllib + a tested strict-subset fallback)
# ----------------------------------------------------------------------

_BARE_KEY = re.compile(r"^[A-Za-z0-9_-]+$")


def _parse_toml_subset(text: str, where: str) -> dict[str, Any]:
    """Parse the SLO subset of TOML: ``[[table]]`` + scalar pairs.

    Strict on what it accepts -- anything outside the subset raises
    :class:`SloError` rather than guessing, so a file that parses here
    parses identically under :mod:`tomllib`.
    """
    doc: dict[str, Any] = {}
    current: dict[str, Any] | None = None
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("[[") and line.endswith("]]"):
            name = line[2:-2].strip()
            if not _BARE_KEY.match(name):
                raise SloError(f"{where}:{lineno}: invalid table name {name!r}")
            current = {}
            doc.setdefault(name, []).append(current)
            continue
        if "=" not in line:
            raise SloError(f"{where}:{lineno}: expected 'key = value'")
        key, _, value = line.partition("=")
        key = key.strip()
        value = value.strip()
        if not _BARE_KEY.match(key):
            raise SloError(f"{where}:{lineno}: invalid key {key!r}")
        if current is None:
            raise SloError(
                f"{where}:{lineno}: top-level keys are not supported -- "
                "put rules under [[slo]] tables"
            )
        if value.startswith('"') and value.endswith('"') and len(value) >= 2:
            try:
                current[key] = json.loads(value)
            except json.JSONDecodeError as exc:
                raise SloError(f"{where}:{lineno}: bad string: {exc}") from exc
        elif value in ("true", "false"):
            current[key] = value == "true"
        else:
            try:
                current[key] = int(value)
            except ValueError:
                try:
                    current[key] = float(value)
                except ValueError as exc:
                    raise SloError(
                        f"{where}:{lineno}: unsupported value {value!r} "
                        "(subset parser: number, bool, or quoted string)"
                    ) from exc
    return doc


def _load_toml(path: Path) -> dict[str, Any]:
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise SloError(f"cannot read {path}: {exc}") from exc
    if _tomllib is not None:
        try:
            return _tomllib.loads(text)
        except _tomllib.TOMLDecodeError as exc:
            raise SloError(f"{path}: {exc}") from exc
    return _parse_toml_subset(text, str(path))


# ----------------------------------------------------------------------
# Rules
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SloRule:
    """One threshold: ``min <= metric <= max`` (either bound optional)."""

    metric: str
    min: float | None = None
    max: float | None = None
    allow_missing: bool = False

    def __post_init__(self) -> None:
        if not self.metric:
            raise SloError("SLO rule needs a metric selector")
        if self.min is None and self.max is None:
            raise SloError(
                f"SLO rule for {self.metric!r} needs a min or a max"
            )


def load_slo(path: str | Path) -> list[SloRule]:
    """Parse a TOML SLO file into rules, validating as it goes."""
    path = Path(path)
    doc = _load_toml(path)
    tables = doc.get("slo")
    if not isinstance(tables, list) or not tables:
        raise SloError(f"{path}: no [[slo]] rules")
    rules: list[SloRule] = []
    for i, table in enumerate(tables, start=1):
        if not isinstance(table, Mapping):
            raise SloError(f"{path}: [[slo]] #{i} is not a table")
        unknown = set(table) - {"metric", "min", "max", "allow_missing"}
        if unknown:
            raise SloError(
                f"{path}: [[slo]] #{i} has unknown keys: {sorted(unknown)}"
            )
        metric = table.get("metric")
        if not isinstance(metric, str):
            raise SloError(f"{path}: [[slo]] #{i} needs a string 'metric'")
        bounds: dict[str, float | None] = {}
        for bound in ("min", "max"):
            value = table.get(bound)
            if value is not None and not isinstance(value, (int, float)):
                raise SloError(
                    f"{path}: [[slo]] #{i} {bound} must be a number"
                )
            bounds[bound] = None if value is None else float(value)
        allow_missing = table.get("allow_missing", False)
        if not isinstance(allow_missing, bool):
            raise SloError(
                f"{path}: [[slo]] #{i} allow_missing must be a bool"
            )
        rules.append(
            SloRule(
                metric=metric,
                min=bounds["min"],
                max=bounds["max"],
                allow_missing=allow_missing,
            )
        )
    return rules


# ----------------------------------------------------------------------
# Metric resolution
# ----------------------------------------------------------------------

_PERCENTILE = re.compile(r"^(?P<name>.+)\.p(?P<pct>\d{1,2}(?:\.\d+)?)$")


def _walk(doc: Mapping[str, Any], selector: str) -> tuple[bool, Any]:
    """Dotted lookup, longest literal prefix first.

    Trying the longest joined prefix before splitting means keys that
    themselves contain dots (``counters["obs.events_dropped"]``) win
    over any accidental nesting, and plain paths resolve as expected.
    """
    parts = selector.split(".")
    for take in range(len(parts), 0, -1):
        head = ".".join(parts[:take])
        if head not in doc:
            continue
        value = doc[head]
        rest = parts[take:]
        if not rest:
            return True, value
        if isinstance(value, Mapping):
            found, inner = _walk(value, ".".join(rest))
            if found:
                return True, inner
    return False, None


def _histogram_percentile(
    doc: Mapping[str, Any], name: str, pct: float
) -> tuple[bool, float | None]:
    """``<name>.pNN`` against the report's histogram map.

    Exact name first, then unique dot-suffix match -- ``job_wall_s``
    finds ``service.job_wall_s`` as long as no other histogram ends the
    same way (ambiguity is an error, not a guess).
    """
    histograms = doc.get("histograms")
    if not isinstance(histograms, Mapping):
        return False, None
    candidates = []
    if name in histograms:
        candidates = [name]
    else:
        candidates = [
            full for full in histograms if str(full).endswith(f".{name}")
        ]
        if len(candidates) > 1:
            raise SloError(
                f"ambiguous histogram selector {name!r}: "
                f"matches {sorted(candidates)}"
            )
    if not candidates:
        return False, None
    hist_doc = histograms[candidates[0]]
    if not isinstance(hist_doc, Mapping):
        return False, None
    return True, Histogram.from_dict(hist_doc).percentile(pct)


def resolve_metric(doc: Mapping[str, Any], selector: str) -> float | None:
    """The numeric value of ``selector`` in a report document.

    Returns ``None`` when the selector does not resolve or resolves to
    a missing measurement (e.g. ``worker_peak_rss_mb`` with no resource
    samples, a percentile of an empty histogram).
    """
    found, value = _walk(doc, selector)
    if not found:
        match = _PERCENTILE.match(selector)
        if match:
            found, value = _histogram_percentile(
                doc, match.group("name"), float(match.group("pct"))
            )
    if not found or value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise SloError(
            f"metric {selector!r} is not numeric: {value!r}"
        )
    return float(value)


# ----------------------------------------------------------------------
# Evaluation
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SloVerdict:
    """One rule evaluated against one report."""

    rule: SloRule
    value: float | None
    ok: bool
    reason: str

    def to_dict(self) -> dict[str, Any]:
        return {
            "metric": self.rule.metric,
            "min": self.rule.min,
            "max": self.rule.max,
            "value": self.value,
            "ok": self.ok,
            "reason": self.reason,
        }


@dataclass
class SloResult:
    """Every rule's verdict; breached when any verdict failed."""

    verdicts: list[SloVerdict] = field(default_factory=list)

    @property
    def breaches(self) -> list[SloVerdict]:
        return [v for v in self.verdicts if not v.ok]

    @property
    def ok(self) -> bool:
        return not self.breaches

    def to_dict(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "rules": len(self.verdicts),
            "breaches": len(self.breaches),
            "verdicts": [v.to_dict() for v in self.verdicts],
        }


def evaluate_slo(
    doc: Mapping[str, Any], rules: list[SloRule]
) -> SloResult:
    """Check every rule against a ``RunReport.to_dict()`` document."""
    result = SloResult()
    for rule in rules:
        value = resolve_metric(doc, rule.metric)
        if value is None:
            if rule.allow_missing:
                result.verdicts.append(
                    SloVerdict(rule, None, True, "missing (allowed)")
                )
            else:
                result.verdicts.append(
                    SloVerdict(
                        rule, None, False,
                        "metric missing (set allow_missing to tolerate)",
                    )
                )
            continue
        if rule.min is not None and value < rule.min:
            result.verdicts.append(
                SloVerdict(
                    rule, value, False,
                    f"{value:g} < min {rule.min:g}",
                )
            )
        elif rule.max is not None and value > rule.max:
            result.verdicts.append(
                SloVerdict(
                    rule, value, False,
                    f"{value:g} > max {rule.max:g}",
                )
            )
        else:
            result.verdicts.append(SloVerdict(rule, value, True, "ok"))
    return result


def render_slo_result(result: SloResult) -> str:
    """Human-readable verdict table plus a one-line summary."""
    lines = []
    width = max((len(v.rule.metric) for v in result.verdicts), default=0)
    for v in result.verdicts:
        bounds = []
        if v.rule.min is not None:
            bounds.append(f">= {v.rule.min:g}")
        if v.rule.max is not None:
            bounds.append(f"<= {v.rule.max:g}")
        shown = "-" if v.value is None else f"{v.value:g}"
        status = "ok" if v.ok else "BREACH"
        lines.append(
            f"  {v.rule.metric.ljust(width)} : {shown} "
            f"({' and '.join(bounds)})  {status}"
            + ("" if v.reason in ("ok",) else f" -- {v.reason}")
        )
    verdict = (
        f"{len(result.breaches)} breach(es) of {len(result.verdicts)} rule(s)"
    )
    return "\n".join(["slo:", *lines, verdict])
