"""Aggregation toolchain over telemetry directories and BENCH files.

Three consumers of the durable telemetry the sink writes:

* :func:`aggregate_run` folds a telemetry directory into a
  :class:`RunReport` -- job-latency percentiles, cache hit rate,
  timeout/retry counts, merged counters/gauges/histograms across every
  ``run`` record (multi-run directories sum associatively);
* :func:`render_run_report` renders it for ``repro obs report``;
* :func:`bench_diff` compares two committed ``BENCH_*.json`` artifacts
  (benchmarks/conftest.py writes them) against a configurable
  regression threshold for ``repro obs bench-diff`` -- the CI smoke
  that notices a slowdown before a human does.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from .metrics import Histogram, merge_histogram_maps
from .resources import WorkerResources, fold_resource_records
from .sink import _segments, iter_telemetry, sink_stats

#: Default relative regression threshold of ``bench_diff`` (25% -- wide
#: enough for shared-runner noise, tight enough to catch real cliffs).
DEFAULT_BENCH_THRESHOLD = 0.25


def _percentile(ordered: list[float], pct: float) -> float | None:
    """Exact linear-interpolated percentile of a pre-sorted list."""
    if not ordered:
        return None
    pos = (pct / 100.0) * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


@dataclass
class ReplayPolicyStats:
    """Per-policy replay aggregates folded out of ``job`` records.

    Only *computed* replay jobs ship a summary (cached completions are
    served without re-running the replay), so these numbers cover the
    work this telemetry directory actually performed.
    """

    policy: str
    jobs: int = 0
    events: int = 0
    switches: int = 0
    stall_events: int = 0
    total_seconds: float = 0.0
    latency: Histogram | None = None

    def fold(self, summary: Mapping[str, Any]) -> None:
        # A micro-batched job ships one summary covering ``traces``
        # member replays; single-trace summaries carry no field and
        # count as one, so jobs counts *traces*, batched or not.
        self.jobs += int(summary.get("traces", 1))
        self.events += int(summary.get("events", 0))
        self.switches += int(summary.get("switches", 0))
        self.stall_events += int(summary.get("stall_events", 0))
        self.total_seconds += float(summary.get("total_seconds", 0.0))
        doc = summary.get("latency")
        if isinstance(doc, Mapping):
            incoming = Histogram.from_dict(doc)
            if self.latency is None:
                self.latency = incoming
            else:
                self.latency.merge(incoming)

    def percentile(self, pct: float) -> float | None:
        return None if self.latency is None else self.latency.percentile(pct)

    def to_dict(self) -> dict[str, Any]:
        return {
            "policy": self.policy,
            "jobs": self.jobs,
            "events": self.events,
            "switches": self.switches,
            "stall_events": self.stall_events,
            "total_seconds": self.total_seconds,
            "p50_s": self.percentile(50),
            "p95_s": self.percentile(95),
            "p99_s": self.percentile(99),
        }


@dataclass
class RunReport:
    """Aggregate view of one telemetry directory."""

    directory: str
    runs: int = 0
    jobs_done: int = 0
    jobs_cached: int = 0
    jobs_failed: int = 0
    retries: int = 0
    timeouts: int = 0
    events: int = 0
    #: Sorted wall times of *computed* (non-cached) job completions.
    job_latencies_s: list[float] = field(default_factory=list)
    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, Histogram] = field(default_factory=dict)
    #: Policy name -> replay aggregates (from replay-job summaries).
    replay_policies: dict[str, ReplayPolicyStats] = field(default_factory=dict)
    #: pid -> folded worker resource telemetry (``resource`` records).
    worker_resources: dict[int, WorkerResources] = field(default_factory=dict)
    #: Pool occupancy timeline: (ts, in_flight, queue_depth) samples.
    occupancy: list[tuple[float, int, int]] = field(default_factory=list)
    #: Summed ``duration_s * workers`` across run records -- the wall
    #: budget that CPU utilisation is measured against.
    wall_budget_s: float = 0.0
    #: On-disk shape of the directory (segments / bytes / rotations).
    sink_segments: int = 0
    sink_bytes: int = 0
    sink_rotations: int = 0

    @property
    def jobs_total(self) -> int:
        return self.jobs_done + self.jobs_cached + self.jobs_failed

    @property
    def is_empty(self) -> bool:
        """True when the directory contributed no records at all.

        An empty (or record-less) telemetry directory is a normal state
        -- a sink that was opened but never written, or a run that died
        before its first record -- so consumers render explicit "no
        data" output instead of failing (``repro obs report`` exits 0).
        """
        return (
            self.runs == 0
            and self.jobs_total == 0
            and self.retries == 0
            and self.events == 0
            and not self.counters
            and not self.gauges
            and not self.histograms
            and not self.replay_policies
        )

    @property
    def cache_hit_rate(self) -> float:
        total = self.jobs_total
        return self.jobs_cached / total if total else 0.0

    def latency_percentile(self, pct: float) -> float | None:
        return _percentile(self.job_latencies_s, pct)

    @property
    def timeout_rate(self) -> float:
        total = self.jobs_total
        return self.timeouts / total if total else 0.0

    @property
    def failure_rate(self) -> float:
        total = self.jobs_total
        return self.jobs_failed / total if total else 0.0

    @property
    def events_dropped(self) -> float:
        """Ring-buffer drops (``obs.events_dropped``): silent event loss."""
        return float(self.counters.get("obs.events_dropped", 0.0))

    @property
    def worker_peak_rss_mb(self) -> float | None:
        """High-water RSS across every worker, or ``None`` unsampled."""
        if not self.worker_resources:
            return None
        return max(w.rss_peak_mb for w in self.worker_resources.values())

    @property
    def cpu_total_s(self) -> float:
        """Summed per-job CPU (user + sys deltas) across all workers."""
        return sum(w.cpu_s for w in self.worker_resources.values())

    @property
    def cpu_utilisation(self) -> float | None:
        """CPU seconds burned over the pool's wall budget, or ``None``.

        The budget is ``duration_s * workers`` summed over run records,
        so it needs at least one completed run *and* resource samples.
        """
        if not self.worker_resources or self.wall_budget_s <= 0:
            return None
        return min(1.0, self.cpu_total_s / self.wall_budget_s)

    @property
    def peak_in_flight(self) -> int:
        return max((s[1] for s in self.occupancy), default=0)

    def to_dict(self) -> dict[str, Any]:
        return {
            "directory": self.directory,
            "runs": self.runs,
            "jobs_total": self.jobs_total,
            "jobs_done": self.jobs_done,
            "jobs_cached": self.jobs_cached,
            "jobs_failed": self.jobs_failed,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "events": self.events,
            "cache_hit_rate": self.cache_hit_rate,
            "latency_p50_s": self.latency_percentile(50),
            "latency_p90_s": self.latency_percentile(90),
            "latency_p99_s": self.latency_percentile(99),
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: h.to_dict() for name, h in self.histograms.items()
            },
            "replay": {
                name: stats.to_dict()
                for name, stats in sorted(self.replay_policies.items())
            },
            "timeout_rate": self.timeout_rate,
            "failure_rate": self.failure_rate,
            "events_dropped": self.events_dropped,
            "sink": {
                "segments": self.sink_segments,
                "bytes": self.sink_bytes,
                "rotations": self.sink_rotations,
            },
            "workers": [
                self.worker_resources[pid].to_dict()
                for pid in sorted(self.worker_resources)
            ],
            "worker_peak_rss_mb": self.worker_peak_rss_mb,
            "cpu_total_s": self.cpu_total_s,
            "cpu_utilisation": self.cpu_utilisation,
            "occupancy": [
                {"ts": ts, "in_flight": in_flight, "queue_depth": depth}
                for ts, in_flight, depth in self.occupancy
            ],
            "peak_in_flight": self.peak_in_flight,
        }


def aggregate_run(directory: str | Path) -> RunReport:
    """Fold every record of a telemetry directory into a report.

    ``job`` records drive the outcome counts and exact latency
    percentiles; ``run`` records contribute counters/gauges/histograms
    (summed / last-write / merged respectively across runs) plus the
    wall budget CPU utilisation divides by; ``resource`` records fold
    into per-worker aggregates (peak RSS, CPU totals); ``pool`` records
    build the occupancy timeline; ``event`` records are counted.
    Unknown kinds are skipped -- forward compatibility within a schema
    version.

    A directory that exists but holds no telemetry segments yet (a sink
    opened and never written, a run killed before its first record)
    aggregates to an *empty* report (:attr:`RunReport.is_empty`) rather
    than raising -- only a missing directory or structurally corrupt
    records raise :class:`~repro.obs.sink.SinkError`.
    """
    report = RunReport(directory=str(directory))
    path = Path(directory)
    if path.is_dir() and not _segments(path):
        return report
    stats = sink_stats(path)
    report.sink_segments = stats.segments
    report.sink_bytes = stats.bytes
    report.sink_rotations = stats.rotations
    resource_records: list[Mapping[str, Any]] = []
    for record in iter_telemetry(directory):
        kind = record["kind"]
        if kind == "event":
            report.events += 1
        elif kind == "job":
            status = record.get("status")
            if status == "cached":
                report.jobs_cached += 1
            elif status == "done":
                report.jobs_done += 1
                latency = record.get("compute_s")
                if latency is not None:
                    report.job_latencies_s.append(float(latency))
                summary = record.get("replay")
                if isinstance(summary, Mapping):
                    name = str(summary.get("policy", "?"))
                    report.replay_policies.setdefault(
                        name, ReplayPolicyStats(policy=name)
                    ).fold(summary)
            elif status == "failed":
                report.jobs_failed += 1
            elif status == "retried":
                report.retries += 1
            if record.get("timeout"):
                report.timeouts += 1
        elif kind == "run":
            report.runs += 1
            for name, value in (record.get("counters") or {}).items():
                report.counters[name] = report.counters.get(name, 0) + value
            report.gauges.update(record.get("gauges") or {})
            merge_histogram_maps(
                report.histograms,
                {
                    name: Histogram.from_dict(doc)
                    for name, doc in (record.get("histograms") or {}).items()
                },
            )
            summary = record.get("report")
            if isinstance(summary, Mapping):
                duration = summary.get("duration_s")
                workers = summary.get("workers")
                if isinstance(duration, (int, float)) and isinstance(
                    workers, (int, float)
                ):
                    report.wall_budget_s += float(duration) * float(workers)
        elif kind == "resource":
            resource_records.append(record)
        elif kind == "pool":
            in_flight = record.get("in_flight")
            depth = record.get("queue_depth")
            if isinstance(in_flight, int) and isinstance(depth, int):
                report.occupancy.append(
                    (float(record.get("ts") or 0.0), in_flight, depth)
                )
    report.worker_resources = fold_resource_records(resource_records)
    report.job_latencies_s.sort()
    return report


def render_run_report(report: RunReport) -> str:
    """Human-readable summary for ``repro obs report``."""
    def fmt_s(value: float | None) -> str:
        return "-" if value is None else f"{value:.4f} s"

    if report.is_empty:
        return "\n".join(
            [
                f"telemetry: {report.directory}",
                "runs: no data",
                "jobs: no data",
                "job latency: no data",
                "replay: no data",
                "(no telemetry records -- run the batch service with "
                "--telemetry-dir to populate this directory)",
            ]
        )

    lines = [
        f"telemetry: {report.directory}",
        f"runs: {report.runs}; events: {report.events}",
        (
            f"jobs: {report.jobs_total} total = {report.jobs_done} computed"
            f" + {report.jobs_cached} cached + {report.jobs_failed} failed"
        ),
        (
            f"cache hit rate: {100.0 * report.cache_hit_rate:.1f}%; "
            f"timeouts: {report.timeouts}; retries: {report.retries}"
        ),
        (
            "job latency (computed): "
            f"p50 {fmt_s(report.latency_percentile(50))}, "
            f"p90 {fmt_s(report.latency_percentile(90))}, "
            f"p99 {fmt_s(report.latency_percentile(99))}"
        ),
    ]
    if report.replay_policies:
        lines.append("replay (computed jobs, switch latency):")
        width = max(len(name) for name in report.replay_policies)
        for name, stats in sorted(report.replay_policies.items()):
            lines.append(
                f"  {name.ljust(width)} : jobs={stats.jobs}"
                f" switches={stats.switches}"
                f" stalls={stats.stall_events}"
                f" p50={_fmt_opt(stats.percentile(50))}"
                f" p95={_fmt_opt(stats.percentile(95))}"
                f" p99={_fmt_opt(stats.percentile(99))}"
            )
    else:
        lines.append(
            "replay: no data (no computed replay jobs in this directory)"
        )
    if report.histograms:
        lines.append("per-stage distributions:")
        width = max(len(name) for name in report.histograms)
        for name, h in sorted(report.histograms.items()):
            lines.append(
                f"  {name.ljust(width)} : n={h.count}"
                f" p50={_fmt_opt(h.percentile(50))}"
                f" p90={_fmt_opt(h.percentile(90))}"
                f" p99={_fmt_opt(h.percentile(99))}"
                f" max={_fmt_opt(h.maximum)}"
            )
    if report.worker_resources:
        lines.append("worker resources (per pid):")
        for pid in sorted(report.worker_resources):
            worker = report.worker_resources[pid]
            lines.append(
                f"  pid {pid} : peak_rss={worker.rss_peak_mb:.1f} MiB"
                f" cpu={worker.cpu_s:.3f} s"
                f" (user {worker.cpu_user_s:.3f} + sys {worker.cpu_sys_s:.3f})"
                f" jobs={worker.jobs}"
            )
        peak = report.worker_peak_rss_mb
        util = report.cpu_utilisation
        lines.append(
            f"  fleet : peak_rss={peak:.1f} MiB"
            + (f" cpu_utilisation={100.0 * util:.1f}%" if util is not None
               else " cpu_utilisation=-")
        )
    if report.occupancy:
        lines.append(
            f"pool occupancy: {len(report.occupancy)} samples, "
            f"peak in-flight {report.peak_in_flight}"
        )
    lines.append(
        f"sink: {report.sink_segments} segment(s), {report.sink_bytes} bytes, "
        f"{report.sink_rotations} rotation(s); "
        f"events dropped: {report.events_dropped:g}"
    )
    if report.counters:
        lines.append("counters:")
        width = max(len(name) for name in report.counters)
        for name, value in sorted(report.counters.items()):
            lines.append(f"  {name.ljust(width)} : {value:g}")
    return "\n".join(lines)


def _fmt_opt(value: float | None) -> str:
    return "-" if value is None else f"{value:.4g}"


# ----------------------------------------------------------------------
# BENCH_*.json comparison
# ----------------------------------------------------------------------

class BenchDiffError(ValueError):
    """Raised for unreadable or structurally invalid BENCH documents."""


@dataclass(frozen=True)
class BenchDelta:
    """One benchmark compared across two BENCH documents."""

    name: str
    old: float
    new: float

    @property
    def ratio(self) -> float:
        return self.new / self.old if self.old > 0 else float("inf")

    @property
    def delta_pct(self) -> float:
        return 100.0 * (self.ratio - 1.0)


@dataclass
class BenchDiff:
    """The comparison of two BENCH documents at a threshold."""

    threshold: float
    deltas: list[BenchDelta] = field(default_factory=list)
    only_old: list[str] = field(default_factory=list)
    only_new: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[BenchDelta]:
        return [d for d in self.deltas if d.ratio > 1.0 + self.threshold]

    @property
    def improvements(self) -> list[BenchDelta]:
        return [d for d in self.deltas if d.ratio < 1.0 - self.threshold]


def load_bench(path: str | Path) -> dict[str, Any]:
    """Load and structurally validate one ``BENCH_*.json`` document."""
    path = Path(path)
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise BenchDiffError(f"cannot read {path}: {exc}") from exc
    if not isinstance(doc, Mapping) or "suite" not in doc:
        raise BenchDiffError(f"{path}: not a BENCH document (no 'suite')")
    return dict(doc)


def bench_timings(doc: Mapping[str, Any]) -> dict[str, float]:
    """name -> representative seconds (mean, falling back to min).

    Shared by :func:`bench_diff` and the bench-trend renderer
    (:func:`repro.render.render_bench_trend_html`), so both agree on
    what "the" time of a benchmark is.
    """
    out: dict[str, float] = {}
    for bench in doc.get("benchmarks") or []:
        if not isinstance(bench, Mapping) or "name" not in bench:
            continue
        value = bench.get("mean", bench.get("min"))
        if isinstance(value, (int, float)) and value > 0:
            out[str(bench["name"])] = float(value)
    return out


def bench_diff(
    old: Mapping[str, Any],
    new: Mapping[str, Any],
    threshold: float = DEFAULT_BENCH_THRESHOLD,
) -> BenchDiff:
    """Compare two BENCH documents; flag timings past the threshold.

    ``threshold`` is relative: 0.25 flags any benchmark whose
    representative time grew (regression) or shrank (improvement) by
    more than 25%.  Benchmarks present on only one side are listed but
    never flagged -- suite membership changes are not slowdowns.
    """
    if threshold < 0:
        raise BenchDiffError("threshold must be non-negative")
    old_timings = bench_timings(old)
    new_timings = bench_timings(new)
    diff = BenchDiff(threshold=threshold)
    for name in sorted(old_timings.keys() & new_timings.keys()):
        diff.deltas.append(
            BenchDelta(name=name, old=old_timings[name], new=new_timings[name])
        )
    diff.only_old = sorted(old_timings.keys() - new_timings.keys())
    diff.only_new = sorted(new_timings.keys() - old_timings.keys())
    return diff


def render_bench_diff(diff: BenchDiff) -> str:
    """Comparison table plus a one-line verdict."""
    lines = []
    if diff.deltas:
        width = max(len(d.name) for d in diff.deltas)
        for d in diff.deltas:
            flag = ""
            if d.ratio > 1.0 + diff.threshold:
                flag = "  REGRESSION"
            elif d.ratio < 1.0 - diff.threshold:
                flag = "  improved"
            lines.append(
                f"  {d.name.ljust(width)} : {d.old:.6g} s -> {d.new:.6g} s "
                f"({d.delta_pct:+.1f}%){flag}"
            )
    for name in diff.only_old:
        lines.append(f"  {name} : removed")
    for name in diff.only_new:
        lines.append(f"  {name} : new")
    if not lines:
        lines.append("  (no comparable benchmarks)")
    verdict = (
        f"{len(diff.regressions)} regression(s) past "
        f"{100.0 * diff.threshold:.0f}% of {len(diff.deltas)} compared"
    )
    return "\n".join([f"bench-diff (threshold {100.0 * diff.threshold:.0f}%):",
                      *lines, verdict])


def export_prometheus_dir(directory: str | Path, prefix: str | None = None) -> str:
    """Prometheus exposition of an aggregated telemetry directory.

    Adds the derived run-level series (job totals, cache hit rate,
    latency quantile gauges) next to the raw merged tracer metrics.
    """
    from .export import DEFAULT_PREFIX, prometheus_text

    report = aggregate_run(directory)
    counters = dict(report.counters)
    counters.update({
        "report.jobs_done": report.jobs_done,
        "report.jobs_cached": report.jobs_cached,
        "report.jobs_failed": report.jobs_failed,
        "report.retries": report.retries,
        "report.timeouts": report.timeouts,
        "report.events": report.events,
    })
    counters.update({
        "report.events_dropped": report.events_dropped,
        "report.sink_segments": report.sink_segments,
        "report.sink_bytes": report.sink_bytes,
        "report.sink_rotations": report.sink_rotations,
    })
    gauges = dict(report.gauges)
    gauges["report.cache_hit_rate"] = report.cache_hit_rate
    gauges["report.timeout_rate"] = report.timeout_rate
    gauges["report.failure_rate"] = report.failure_rate
    gauges["report.peak_in_flight"] = report.peak_in_flight
    if report.worker_peak_rss_mb is not None:
        gauges["report.worker_peak_rss_mb"] = report.worker_peak_rss_mb
        gauges["report.cpu_total_s"] = report.cpu_total_s
    if report.cpu_utilisation is not None:
        gauges["report.cpu_utilisation"] = report.cpu_utilisation
    for pct in (50, 90, 99):
        value = report.latency_percentile(pct)
        if value is not None:
            gauges[f"report.job_latency_p{pct}_s"] = value
    return prometheus_text(
        counters=counters,
        gauges=gauges,
        histograms=report.histograms,
        prefix=DEFAULT_PREFIX if prefix is None else prefix,
    )
