"""Distribution metrics for the tracer: histograms and streaming quantiles.

Counters answer "how much in total", gauges "what is it now"; neither
answers "how is it *distributed*" -- the question that matters for job
latencies, merge-search step times and cache-lookup costs once the
service runs thousands of jobs.  Two structures fill the gap, both
dependency-free and both **mergeable** (worker processes record locally
and the parent folds the results together):

* :class:`Histogram` -- fixed upper-bound buckets in the Prometheus
  style (cumulative on export, so ``repro obs export-prom`` emits
  standard ``_bucket{le=...}`` series), plus exact ``count``/``sum``/
  ``min``/``max``;
* :class:`QuantileSummary` -- a deterministic bounded reservoir riding
  inside every histogram.  It retains every observation until
  ``max_samples``, then halves resolution (keeps every 2nd, 4th, ...
  sample), so small runs report *exact* percentiles and long runs
  degrade gracefully instead of growing without bound.

Merging is associative on the exact fields (``count``/``sum``/``min``/
``max``/bucket counts) by construction; retained-sample quantiles are
exact until any party has thinned, then approximate.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Iterable, Mapping

#: Default bucket upper bounds: geometric, centred on sub-second latency
#: but wide enough for iteration counts (the summary supplies accurate
#: percentiles regardless; buckets only shape the Prometheus exposition).
DEFAULT_BOUNDS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 25.0, 60.0, 250.0, 1000.0,
)

#: Default retained-sample cap of the streaming quantile summary.
DEFAULT_MAX_SAMPLES = 512


class MetricsError(ValueError):
    """Raised for malformed serialised metrics or incompatible merges."""


class QuantileSummary:
    """Bounded, deterministic sample reservoir with exact aggregates.

    Every ``stride``-th observation is retained; when the reservoir
    fills, it is thinned to every 2nd element and the stride doubles.
    No randomness, so runs are reproducible and property-testable.
    """

    __slots__ = ("max_samples", "count", "total", "minimum", "maximum",
                 "_samples", "_stride", "_tick")

    def __init__(self, max_samples: int = DEFAULT_MAX_SAMPLES):
        if max_samples < 2:
            raise MetricsError("max_samples must be at least 2")
        self.max_samples = max_samples
        self.count = 0
        self.total = 0.0
        self.minimum: float | None = None
        self.maximum: float | None = None
        self._samples: list[float] = []
        self._stride = 1
        self._tick = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        self._tick += 1
        if self._tick % self._stride == 0:
            self._samples.append(value)
            if len(self._samples) >= self.max_samples:
                self._samples = self._samples[::2]
                self._stride *= 2

    def quantile(self, q: float) -> float | None:
        """The q-th quantile (q in [0, 1]) of the retained samples.

        Exact while ``stride`` is 1 (no observation has been thinned
        away); an estimate afterwards.  ``None`` before any observation.
        """
        if not 0.0 <= q <= 1.0:
            raise MetricsError(f"quantile {q} outside [0, 1]")
        if not self._samples:
            return None
        ordered = sorted(self._samples)
        if q <= 0.0:
            return self.minimum
        if q >= 1.0:
            return self.maximum
        pos = q * (len(ordered) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(ordered) - 1)
        frac = pos - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    def merge(self, other: "QuantileSummary") -> "QuantileSummary":
        """Fold ``other`` in; exact fields combine associatively."""
        self.count += other.count
        self.total += other.total
        for bound in (other.minimum, other.maximum):
            if bound is None:
                continue
            if self.minimum is None or bound < self.minimum:
                self.minimum = bound
            if self.maximum is None or bound > self.maximum:
                self.maximum = bound
        # Thin both reservoirs to the coarser stride before combining so
        # neither side dominates, then re-thin until under the cap.
        stride = max(self._stride, other._stride)
        mine = self._samples[:: stride // self._stride]
        theirs = other._samples[:: stride // other._stride]
        samples = mine + theirs
        while len(samples) >= self.max_samples:
            samples = samples[::2]
            stride *= 2
        self._samples = samples
        self._stride = stride
        self._tick = 0
        return self

    def to_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "stride": self._stride,
            "samples": list(self._samples),
        }

    @classmethod
    def from_dict(
        cls, doc: Mapping[str, Any], max_samples: int = DEFAULT_MAX_SAMPLES
    ) -> "QuantileSummary":
        try:
            out = cls(max_samples=max_samples)
            out.count = int(doc["count"])
            out.total = float(doc["sum"])
            out.minimum = None if doc["min"] is None else float(doc["min"])
            out.maximum = None if doc["max"] is None else float(doc["max"])
            out._stride = int(doc.get("stride", 1))
            out._samples = [float(v) for v in doc.get("samples", [])]
        except (KeyError, TypeError, ValueError) as exc:
            raise MetricsError(f"malformed quantile summary: {exc}") from exc
        if out._stride < 1:
            raise MetricsError("quantile summary stride must be >= 1")
        return out


class Histogram:
    """Fixed-bucket histogram with an embedded quantile summary.

    ``bounds`` are *upper* bucket bounds (an implicit +Inf bucket catches
    the overflow); ``bucket_counts[i]`` counts observations with
    ``value <= bounds[i]`` (non-cumulative storage; cumulative only on
    Prometheus export).
    """

    __slots__ = ("bounds", "bucket_counts", "summary")

    def __init__(
        self,
        bounds: Iterable[float] = DEFAULT_BOUNDS,
        max_samples: int = DEFAULT_MAX_SAMPLES,
    ):
        self.bounds = tuple(float(b) for b in bounds)
        if not self.bounds:
            raise MetricsError("a histogram needs at least one bucket bound")
        if list(self.bounds) != sorted(set(self.bounds)):
            raise MetricsError("bucket bounds must be strictly increasing")
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.summary = QuantileSummary(max_samples=max_samples)

    # -- recording -------------------------------------------------------
    def observe(self, value: float) -> None:
        value = float(value)
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.summary.observe(value)

    def observe_many(self, values: Iterable[float]) -> None:
        """Observe a sequence of values, in order.

        Bit-identical to calling :meth:`observe` once per value (same
        bucket counts, same exact aggregates, same retained samples and
        stride) -- the replay vector kernel leans on this equivalence --
        but with the per-value attribute traffic hoisted out of the
        loop, so bulk feeds cost a fraction of repeated calls.
        """
        bounds = self.bounds
        counts = self.bucket_counts
        summary = self.summary
        count = summary.count
        total = summary.total
        minimum = summary.minimum
        maximum = summary.maximum
        tick = summary._tick
        stride = summary._stride
        samples = summary._samples
        cap = summary.max_samples
        for value in values:
            value = float(value)
            counts[bisect_left(bounds, value)] += 1
            count += 1
            total += value
            if minimum is None or value < minimum:
                minimum = value
            if maximum is None or value > maximum:
                maximum = value
            tick += 1
            if tick % stride == 0:
                samples.append(value)
                if len(samples) >= cap:
                    samples = samples[::2]
                    stride *= 2
        summary.count = count
        summary.total = total
        summary.minimum = minimum
        summary.maximum = maximum
        summary._tick = tick
        summary._stride = stride
        summary._samples = samples

    # -- aggregates ------------------------------------------------------
    @property
    def count(self) -> int:
        return self.summary.count

    @property
    def total(self) -> float:
        return self.summary.total

    @property
    def mean(self) -> float | None:
        return self.total / self.count if self.count else None

    @property
    def minimum(self) -> float | None:
        return self.summary.minimum

    @property
    def maximum(self) -> float | None:
        return self.summary.maximum

    def percentile(self, pct: float) -> float | None:
        """The pct-th percentile (0-100), summary-first.

        The retained-sample estimate is exact for runs below the sample
        cap; the bucket interpolation fallback only fires for documents
        deserialised without samples.
        """
        q = pct / 100.0
        estimate = self.summary.quantile(q)
        if estimate is not None:
            return estimate
        return self._bucket_quantile(q)

    def _bucket_quantile(self, q: float) -> float | None:
        if not 0.0 <= q <= 1.0:
            raise MetricsError(f"quantile {q} outside [0, 1]")
        total = sum(self.bucket_counts)
        if total == 0:
            return None
        rank = q * total
        cumulative = 0
        for i, bucket in enumerate(self.bucket_counts):
            cumulative += bucket
            if cumulative >= rank and bucket:
                lower = self.bounds[i - 1] if i > 0 else 0.0
                upper = (
                    self.bounds[i]
                    if i < len(self.bounds)
                    else (self.maximum or lower)
                )
                frac = (rank - (cumulative - bucket)) / bucket
                return lower + (upper - lower) * min(max(frac, 0.0), 1.0)
        return self.maximum

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """(upper bound, cumulative count) pairs, +Inf last -- the
        Prometheus ``_bucket{le=...}`` series."""
        out = []
        running = 0
        for bound, bucket in zip(self.bounds, self.bucket_counts):
            running += bucket
            out.append((bound, running))
        out.append((float("inf"), running + self.bucket_counts[-1]))
        return out

    # -- merging ---------------------------------------------------------
    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other`` in; bucket layouts must match exactly."""
        if other.bounds != self.bounds:
            raise MetricsError(
                f"cannot merge histograms with different bounds "
                f"({len(self.bounds)} vs {len(other.bounds)} buckets)"
            )
        for i, bucket in enumerate(other.bucket_counts):
            self.bucket_counts[i] += bucket
        self.summary.merge(other.summary)
        return self

    # -- serialisation ---------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
            "summary": self.summary.to_dict(),
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "Histogram":
        try:
            out = cls(bounds=doc["bounds"])
            counts = [int(c) for c in doc["bucket_counts"]]
        except (KeyError, TypeError, ValueError) as exc:
            raise MetricsError(f"malformed histogram: {exc}") from exc
        if len(counts) != len(out.bucket_counts):
            raise MetricsError(
                f"histogram has {len(counts)} bucket counts for "
                f"{len(out.bounds)} bounds"
            )
        out.bucket_counts = counts
        out.summary = QuantileSummary.from_dict(doc.get("summary", {
            "count": sum(counts), "sum": 0.0, "min": None, "max": None,
            "samples": [],
        }))
        return out


def merge_histogram_maps(
    target: dict[str, Histogram], incoming: Mapping[str, Histogram]
) -> dict[str, Histogram]:
    """Fold a name->histogram map into ``target`` (merge or adopt-copy)."""
    for name, histogram in incoming.items():
        mine = target.get(name)
        if mine is None:
            target[name] = Histogram.from_dict(histogram.to_dict())
        else:
            mine.merge(histogram)
    return target
