"""Prometheus text-exposition export of recorded metrics.

Turns tracer metrics (counters, gauges, histograms) into the Prometheus
text format, version 0.0.4 -- the dialect node_exporter's
textfile collector scrapes, so ``repro obs export-prom RUN_DIR >
/var/lib/node_exporter/repro.prom`` is the whole integration.

Counters export as ``<name>_total``; histograms as the standard
``_bucket{le=...}`` / ``_sum`` / ``_count`` triplet with cumulative
bucket values and a closing ``le="+Inf"`` bucket.  Metric names are
sanitised (``service.cache_hits`` -> ``repro_service_cache_hits``).

:func:`parse_prometheus` is the matching reader: a small, strict parser
used by the round-trip tests to guarantee the emitted text *is* valid
exposition format, and available to anyone post-processing the output.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Any, Mapping

from .metrics import Histogram

#: Prefix of every exported metric name.
DEFAULT_PREFIX = "repro_"

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
_LABEL = re.compile(r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>[^"]*)"$')


class PrometheusFormatError(ValueError):
    """Raised by :func:`parse_prometheus` for invalid exposition text."""


def metric_name(name: str, prefix: str = DEFAULT_PREFIX) -> str:
    """Sanitise a tracer metric name into a Prometheus metric name."""
    flat = re.sub(r"[^a-zA-Z0-9_:]", "_", prefix + name)
    if not _NAME_OK.match(flat):
        flat = "_" + flat
    return flat


def _fmt(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def prometheus_text(
    counters: Mapping[str, float] | None = None,
    gauges: Mapping[str, float] | None = None,
    histograms: Mapping[str, Histogram] | None = None,
    prefix: str = DEFAULT_PREFIX,
) -> str:
    """Render metrics as Prometheus text exposition (ends with newline)."""
    lines: list[str] = []
    for name, value in sorted((counters or {}).items()):
        flat = metric_name(name, prefix) + "_total"
        lines.append(f"# TYPE {flat} counter")
        lines.append(f"{flat} {_fmt(value)}")
    for name, value in sorted((gauges or {}).items()):
        flat = metric_name(name, prefix)
        lines.append(f"# TYPE {flat} gauge")
        lines.append(f"{flat} {_fmt(value)}")
    for name, histogram in sorted((histograms or {}).items()):
        flat = metric_name(name, prefix)
        lines.append(f"# TYPE {flat} histogram")
        for bound, cumulative in histogram.cumulative_buckets():
            lines.append(
                f'{flat}_bucket{{le="{_fmt(bound)}"}} {cumulative}'
            )
        lines.append(f"{flat}_sum {_fmt(histogram.total)}")
        lines.append(f"{flat}_count {histogram.count}")
    return "\n".join(lines) + "\n" if lines else ""


@dataclass
class PrometheusMetric:
    """One parsed metric family: declared type plus its samples."""

    name: str
    type: str
    #: (sample name, labels, value) triples in document order.
    samples: list[tuple[str, dict[str, str], float]] = field(
        default_factory=list
    )


def parse_prometheus(text: str) -> dict[str, PrometheusMetric]:
    """Parse text exposition format into metric families, strictly.

    Enforces what a scraper would: every sample belongs to a declared
    ``# TYPE`` family (histogram samples belong to their base name),
    names are legal, values are floats, histogram bucket series are
    cumulative and end with ``le="+Inf"`` matching ``_count``.
    """
    families: dict[str, PrometheusMetric] = {}
    current: PrometheusMetric | None = None
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                raise PrometheusFormatError(f"line {lineno}: malformed TYPE")
            _, _, name, mtype = parts
            if not _NAME_OK.match(name):
                raise PrometheusFormatError(
                    f"line {lineno}: illegal metric name {name!r}"
                )
            if mtype not in ("counter", "gauge", "histogram", "summary",
                             "untyped"):
                raise PrometheusFormatError(
                    f"line {lineno}: unknown metric type {mtype!r}"
                )
            if name in families:
                raise PrometheusFormatError(
                    f"line {lineno}: duplicate TYPE for {name}"
                )
            current = families[name] = PrometheusMetric(name=name, type=mtype)
            continue
        if line.startswith("#"):
            continue  # HELP / comments
        match = _SAMPLE.match(line)
        if not match:
            raise PrometheusFormatError(f"line {lineno}: malformed sample")
        name = match.group("name")
        labels: dict[str, str] = {}
        if match.group("labels"):
            for part in match.group("labels").split(","):
                lm = _LABEL.match(part.strip())
                if not lm:
                    raise PrometheusFormatError(
                        f"line {lineno}: malformed label {part!r}"
                    )
                labels[lm.group("key")] = lm.group("value")
        try:
            value = float(match.group("value"))
        except ValueError as exc:
            raise PrometheusFormatError(
                f"line {lineno}: non-numeric value"
            ) from exc
        family = _family_of(families, name, current)
        if family is None:
            raise PrometheusFormatError(
                f"line {lineno}: sample {name} has no TYPE declaration"
            )
        family.samples.append((name, labels, value))
    for family in families.values():
        if family.type == "histogram":
            _check_histogram(family)
    return families


def _family_of(
    families: dict[str, PrometheusMetric],
    sample_name: str,
    current: PrometheusMetric | None,
) -> PrometheusMetric | None:
    if sample_name in families:
        return families[sample_name]
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            family = families.get(base)
            if family is not None and family.type in ("histogram", "summary"):
                return family
    return None


def _check_histogram(family: PrometheusMetric) -> None:
    buckets = [
        (labels["le"], value)
        for name, labels, value in family.samples
        if name == f"{family.name}_bucket" and "le" in labels
    ]
    if not buckets:
        raise PrometheusFormatError(f"histogram {family.name} has no buckets")
    if buckets[-1][0] != "+Inf":
        raise PrometheusFormatError(
            f"histogram {family.name} must end with an le=\"+Inf\" bucket"
        )
    previous = -math.inf
    cumulative = -1.0
    for le, value in buckets:
        bound = math.inf if le == "+Inf" else float(le)
        if bound <= previous:
            raise PrometheusFormatError(
                f"histogram {family.name}: bucket bounds not increasing"
            )
        if value < cumulative:
            raise PrometheusFormatError(
                f"histogram {family.name}: bucket counts not cumulative"
            )
        previous, cumulative = bound, value
    counts = [
        value
        for name, labels, value in family.samples
        if name == f"{family.name}_count"
    ]
    if counts and counts[0] != buckets[-1][1]:
        raise PrometheusFormatError(
            f"histogram {family.name}: _count ({counts[0]:g}) disagrees "
            f"with the +Inf bucket ({buckets[-1][1]:g})"
        )
