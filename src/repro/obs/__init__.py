"""Observability for the partitioning pipeline: tracing, metrics, events.

See docs/OBSERVABILITY.md for the full API, the JSON trace schema and
the durable telemetry pipeline (sink format, ``repro obs`` toolchain).
Dependency-free by design -- :mod:`repro.core` imports this package, so
it must not import anything above :mod:`repro.obs` itself
(:mod:`repro.util` sits below and is fair game).
"""

from .export import (
    PrometheusFormatError,
    PrometheusMetric,
    parse_prometheus,
    prometheus_text,
)
from .metrics import (
    DEFAULT_BOUNDS,
    Histogram,
    MetricsError,
    QuantileSummary,
    merge_histogram_maps,
)
from .render import render_trace_summary, stage_summary_rows
from .report import (
    BenchDiff,
    BenchDiffError,
    ReplayPolicyStats,
    RunReport,
    aggregate_run,
    bench_diff,
    bench_timings,
    export_prometheus_dir,
    load_bench,
    render_bench_diff,
    render_run_report,
)
from .sink import (
    SINK_VERSION,
    SinkError,
    TelemetrySink,
    iter_telemetry,
    load_telemetry,
)
from .tracer import (
    NULL_TRACER,
    TRACE_FORMAT,
    TRACE_VERSION,
    ProgressEvent,
    RecordingTracer,
    Span,
    Trace,
    TraceError,
    Tracer,
    trace_from_dict,
    trace_from_json,
)

__all__ = [
    "BenchDiff",
    "BenchDiffError",
    "DEFAULT_BOUNDS",
    "Histogram",
    "MetricsError",
    "NULL_TRACER",
    "ProgressEvent",
    "PrometheusFormatError",
    "PrometheusMetric",
    "QuantileSummary",
    "RecordingTracer",
    "ReplayPolicyStats",
    "RunReport",
    "SINK_VERSION",
    "SinkError",
    "Span",
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "TelemetrySink",
    "Trace",
    "TraceError",
    "Tracer",
    "aggregate_run",
    "bench_diff",
    "bench_timings",
    "export_prometheus_dir",
    "iter_telemetry",
    "load_bench",
    "load_telemetry",
    "merge_histogram_maps",
    "parse_prometheus",
    "prometheus_text",
    "render_bench_diff",
    "render_run_report",
    "render_trace_summary",
    "stage_summary_rows",
    "trace_from_dict",
    "trace_from_json",
]
