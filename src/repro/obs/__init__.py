"""Observability for the partitioning pipeline: tracing, metrics, events.

See docs/OBSERVABILITY.md for the full API and the JSON trace schema.
Dependency-free by design -- :mod:`repro.core` imports this package, so
it must not import anything above :mod:`repro.obs` itself.
"""

from .render import render_trace_summary, stage_summary_rows
from .tracer import (
    NULL_TRACER,
    TRACE_FORMAT,
    TRACE_VERSION,
    ProgressEvent,
    RecordingTracer,
    Span,
    Trace,
    TraceError,
    Tracer,
    trace_from_dict,
    trace_from_json,
)

__all__ = [
    "NULL_TRACER",
    "ProgressEvent",
    "RecordingTracer",
    "Span",
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "Trace",
    "TraceError",
    "Tracer",
    "render_trace_summary",
    "stage_summary_rows",
    "trace_from_dict",
    "trace_from_json",
]
