"""Observability for the partitioning pipeline: tracing, metrics, events.

See docs/OBSERVABILITY.md for the full API, the JSON trace schema and
the durable telemetry pipeline (sink format, ``repro obs`` toolchain).
Dependency-free by design -- :mod:`repro.core` imports this package, so
it must not import anything above :mod:`repro.obs` itself
(:mod:`repro.util` sits below and is fair game).
"""

from .export import (
    PrometheusFormatError,
    PrometheusMetric,
    parse_prometheus,
    prometheus_text,
)
from .follow import FollowCursor, TelemetryFollower, follow_records
from .metrics import (
    DEFAULT_BOUNDS,
    Histogram,
    MetricsError,
    QuantileSummary,
    merge_histogram_maps,
)
from .registry import (
    RegistryError,
    RunEntry,
    RunRegistry,
    config_digest,
)
from .render import render_trace_summary, stage_summary_rows
from .report import (
    BenchDiff,
    BenchDiffError,
    ReplayPolicyStats,
    RunReport,
    aggregate_run,
    bench_diff,
    bench_timings,
    export_prometheus_dir,
    load_bench,
    render_bench_diff,
    render_run_report,
)
from .resources import (
    ResourceSample,
    WorkerResources,
    fold_resource_records,
    job_resources,
    sample_self,
)
from .sink import (
    SINK_VERSION,
    SinkError,
    SinkStats,
    TelemetrySink,
    iter_telemetry,
    load_telemetry,
    sink_stats,
)
from .slo import (
    SloError,
    SloResult,
    SloRule,
    SloVerdict,
    evaluate_slo,
    load_slo,
    render_slo_result,
    resolve_metric,
)
from .top import FleetView, WorkerView, render_top
from .tracer import (
    NULL_TRACER,
    TRACE_FORMAT,
    TRACE_VERSION,
    ProgressEvent,
    RecordingTracer,
    Span,
    Trace,
    TraceError,
    Tracer,
    trace_from_dict,
    trace_from_json,
)

__all__ = [
    "BenchDiff",
    "BenchDiffError",
    "DEFAULT_BOUNDS",
    "FleetView",
    "FollowCursor",
    "Histogram",
    "MetricsError",
    "NULL_TRACER",
    "ProgressEvent",
    "PrometheusFormatError",
    "PrometheusMetric",
    "QuantileSummary",
    "RecordingTracer",
    "RegistryError",
    "ReplayPolicyStats",
    "ResourceSample",
    "RunEntry",
    "RunRegistry",
    "RunReport",
    "SINK_VERSION",
    "SinkError",
    "SinkStats",
    "SloError",
    "SloResult",
    "SloRule",
    "SloVerdict",
    "Span",
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "TelemetryFollower",
    "TelemetrySink",
    "Trace",
    "TraceError",
    "Tracer",
    "WorkerResources",
    "WorkerView",
    "aggregate_run",
    "bench_diff",
    "bench_timings",
    "config_digest",
    "evaluate_slo",
    "export_prometheus_dir",
    "fold_resource_records",
    "follow_records",
    "iter_telemetry",
    "job_resources",
    "load_bench",
    "load_slo",
    "load_telemetry",
    "merge_histogram_maps",
    "parse_prometheus",
    "prometheus_text",
    "render_bench_diff",
    "render_run_report",
    "render_slo_result",
    "render_top",
    "render_trace_summary",
    "resolve_metric",
    "sample_self",
    "sink_stats",
    "stage_summary_rows",
    "trace_from_dict",
    "trace_from_json",
]
