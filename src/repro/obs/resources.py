"""Process resource sampling: ``getrusage`` snapshots and per-job deltas.

The batch service answers "how fast" with histograms; this module is
the "how heavy" half.  Workers sample :func:`resource.getrusage` around
each job and ship the result back inside the outcome dict
(``outcome["resources"]``); supervised workers additionally publish a
*live* sample in every heartbeat file, so the parent can stream
resource telemetry while the job still runs.

Semantics worth being precise about:

* ``rss_peak_mb`` is the process's **high-water mark** (``ru_maxrss``),
  not its current size -- it only rises, and on a warm pool it is
  cumulative across every job the worker ever ran.  That is the right
  number for capacity planning ("how big must a worker box be"), which
  is what the ``worker_peak_rss_mb`` SLO guards.
* ``cpu_user_s``/``cpu_sys_s`` in a **job** sample are *deltas* over
  the job (end minus start), so they sum cleanly into a run's CPU
  total.  In a **live** sample they are the process's cumulative
  counters -- useful for liveness display, never for summation, which
  is why report folding takes CPU only from job samples.

``resource`` is POSIX-only; every entry point degrades to ``None`` /
no-op where it is missing, so importing this module never breaks a
platform.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass
from typing import Any, Mapping

try:  # pragma: no cover - exercised only where resource exists
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    _resource = None  # type: ignore[assignment]

#: True when ``resource.getrusage`` is available on this platform.
RUSAGE_AVAILABLE = _resource is not None


def _maxrss_mb(ru_maxrss: int) -> float:
    """``ru_maxrss`` in MiB -- Linux reports KiB, macOS reports bytes."""
    if sys.platform == "darwin":
        return ru_maxrss / (1024.0 * 1024.0)
    return ru_maxrss / 1024.0


@dataclass(frozen=True)
class ResourceSample:
    """One ``getrusage(RUSAGE_SELF)`` snapshot of the calling process."""

    pid: int
    rss_peak_mb: float
    cpu_user_s: float
    cpu_sys_s: float

    def to_dict(self) -> dict[str, Any]:
        return {
            "pid": self.pid,
            "rss_peak_mb": self.rss_peak_mb,
            "cpu_user_s": self.cpu_user_s,
            "cpu_sys_s": self.cpu_sys_s,
        }


def sample_self() -> ResourceSample | None:
    """Snapshot the calling process, or ``None`` where unsupported."""
    if _resource is None:  # pragma: no cover - non-POSIX platforms
        return None
    ru = _resource.getrusage(_resource.RUSAGE_SELF)
    return ResourceSample(
        pid=os.getpid(),
        rss_peak_mb=_maxrss_mb(ru.ru_maxrss),
        cpu_user_s=float(ru.ru_utime),
        cpu_sys_s=float(ru.ru_stime),
    )


def job_resources(start: ResourceSample | None) -> dict[str, Any] | None:
    """The per-job resource delta since ``start`` (a pre-job snapshot).

    CPU fields are deltas (clamped at zero against clock weirdness);
    ``rss_peak_mb`` is the process high-water mark at job end.  Returns
    ``None`` where sampling is unsupported.
    """
    end = sample_self()
    if end is None or start is None:
        return None
    return {
        "pid": end.pid,
        "rss_peak_mb": end.rss_peak_mb,
        "cpu_user_s": max(0.0, end.cpu_user_s - start.cpu_user_s),
        "cpu_sys_s": max(0.0, end.cpu_sys_s - start.cpu_sys_s),
    }


@dataclass
class WorkerResources:
    """Aggregated resource telemetry for one worker process (by pid)."""

    pid: int
    rss_peak_mb: float = 0.0
    cpu_user_s: float = 0.0
    cpu_sys_s: float = 0.0
    jobs: int = 0

    @property
    def cpu_s(self) -> float:
        return self.cpu_user_s + self.cpu_sys_s

    def to_dict(self) -> dict[str, Any]:
        return {
            "pid": self.pid,
            "rss_peak_mb": self.rss_peak_mb,
            "cpu_user_s": self.cpu_user_s,
            "cpu_sys_s": self.cpu_sys_s,
            "cpu_s": self.cpu_s,
            "jobs": self.jobs,
        }


def fold_resource_records(
    records: list[Mapping[str, Any]],
) -> dict[int, WorkerResources]:
    """Fold ``kind == "resource"`` sink records into per-pid aggregates.

    Job samples (``live`` falsy) contribute CPU deltas and a job count;
    every sample -- live or job -- raises the RSS high-water mark (it is
    monotone per process, so ``max`` is exact, not an approximation).
    """
    workers: dict[int, WorkerResources] = {}
    for record in records:
        pid = record.get("pid")
        if not isinstance(pid, int):
            continue
        worker = workers.setdefault(pid, WorkerResources(pid=pid))
        rss = record.get("rss_peak_mb")
        if isinstance(rss, (int, float)):
            worker.rss_peak_mb = max(worker.rss_peak_mb, float(rss))
        if not record.get("live"):
            worker.jobs += 1
            for attr, field_name in (
                ("cpu_user_s", "cpu_user_s"),
                ("cpu_sys_s", "cpu_sys_s"),
            ):
                value = record.get(field_name)
                if isinstance(value, (int, float)):
                    setattr(worker, attr, getattr(worker, attr) + float(value))
    return workers
