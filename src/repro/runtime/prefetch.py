"""Speculative configuration prefetching.

The paper's related work (ref. [4], Li & Hauck) hides reconfiguration
latency by *prefetching* likely-next bitstreams; the paper itself cannot
schedule (adaptive systems have no task graph) but a probabilistic
environment model enables probabilistic prefetch: while the system sits
in configuration *c*, regions that *c* does not use are dead weight --
they can be speculatively loaded with the content the most probable next
configuration will need.

:class:`PrefetchingManager` wraps the plain
:class:`~repro.runtime.manager.ConfigurationManager` semantics with that
policy.  Prefetches are free at transition time (they happen during
dwell); a *hit* means the next transition finds the region already
loaded.  A *miss* wastes nothing: the region would have been rewritten
anyway.  The stats expose demand frames (charged) and prefetched frames
(hidden), so examples can report how much latency a predictor of a given
quality hides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from ..core.result import PartitioningScheme
from .icap import CUSTOM_DMA_CONTROLLER, IcapModel
from .manager import RuntimeStats, TraceError, TransitionRecord


@dataclass
class PrefetchStats(RuntimeStats):
    """Runtime stats plus prefetch accounting."""

    prefetched_frames: int = 0
    prefetch_hits: int = 0
    prefetch_wasted: int = 0


class PrefetchingManager:
    """A configuration manager that speculatively preloads idle regions.

    ``predictor(current) -> next_configuration`` supplies the guess; a
    Markov environment's argmax row is the natural choice
    (:func:`markov_predictor`).  Only regions *unused* by the current
    configuration are eligible -- rewriting an active region would
    corrupt the running system.
    """

    def __init__(
        self,
        scheme: PartitioningScheme,
        predictor: Callable[[str], str | None],
        icap: IcapModel = CUSTOM_DMA_CONTROLLER,
    ):
        self._scheme = scheme
        self._predictor = predictor
        self._icap = icap
        self._loaded: list[str | None] = [None] * len(scheme.regions)
        self._speculative: set[int] = set()
        self._current: str | None = None
        self._step = 0
        self.stats = PrefetchStats()
        self.history: list[TransitionRecord] = []
        self._config_names = {c.name for c in scheme.design.configurations}

    @property
    def current_configuration(self) -> str | None:
        return self._current

    # ------------------------------------------------------------------
    def _prefetch(self) -> None:
        """Speculatively load idle regions for the predicted successor."""
        if self._current is None:
            return
        guess = self._predictor(self._current)
        if guess is None or guess == self._current:
            return
        if guess not in self._config_names:
            raise TraceError(f"predictor returned unknown configuration {guess!r}")
        current_needs = self._scheme.activity(self._current)
        guess_needs = self._scheme.activity(guess)
        for idx, (now, then) in enumerate(zip(current_needs, guess_needs)):
            if now is not None:
                continue  # region busy serving the current configuration
            if then is None or self._loaded[idx] == then:
                continue
            if self._loaded[idx] is not None and idx in self._speculative:
                # Overwriting an unconsumed speculation: count the waste.
                self.stats.prefetch_wasted += self._scheme.regions[idx].frames
            self._loaded[idx] = then
            self._speculative.add(idx)
            self.stats.prefetched_frames += self._scheme.regions[idx].frames

    # ------------------------------------------------------------------
    def goto(self, configuration_name: str) -> TransitionRecord:
        if configuration_name not in self._config_names:
            raise TraceError(f"unknown configuration {configuration_name!r}")
        required = self._scheme.activity(configuration_name)
        rewritten: list[str] = []
        frames = 0
        initial = self._current is None
        for idx, (region, need) in enumerate(
            zip(self._scheme.regions, required)
        ):
            if need is None:
                continue
            if self._loaded[idx] == need:
                if idx in self._speculative:
                    self.stats.prefetch_hits += 1
                    self._speculative.discard(idx)
                continue
            self._loaded[idx] = need
            self._speculative.discard(idx)
            if initial:
                continue
            rewritten.append(region.name)
            frames += region.frames

        seconds = sum(
            self._icap.time_for_frames(r.frames)
            for r in self._scheme.regions
            if r.name in rewritten
        )
        record = TransitionRecord(
            step=self._step,
            from_configuration=self._current,
            to_configuration=configuration_name,
            regions_rewritten=tuple(rewritten),
            frames=frames,
            seconds=seconds,
        )
        self._step += 1
        if not initial:
            self.stats.record(record)
        self.history.append(record)
        self._current = configuration_name
        # Speculation happens during the dwell that follows.
        self._prefetch()
        return record

    def run(self, trace: Sequence[str]) -> PrefetchStats:
        for name in trace:
            self.goto(name)
        return self.stats


def markov_predictor(matrix: Mapping[str, Mapping[str, float]]):
    """Most-probable-successor predictor from a transition matrix.

    Self-transitions are skipped (prefetching the current configuration
    is a no-op); ties break deterministically by name.
    """

    def predict(current: str) -> str | None:
        row = matrix.get(current)
        if not row:
            return None
        candidates = sorted(
            ((p, dst) for dst, p in row.items() if dst != current),
            key=lambda t: (-t[0], t[1]),
        )
        return candidates[0][1] if candidates else None

    return predict


def oracle_predictor(trace: Sequence[str]):
    """A perfect predictor for upper-bound studies: peeks at the trace."""
    lookup: dict[int, str] = {i: name for i, name in enumerate(trace)}
    state = {"i": 0}

    def predict(current: str) -> str | None:
        # Called right after arriving at trace position i.
        state["i"] += 1
        return lookup.get(state["i"])

    return predict


def replay_with_prefetch(
    scheme: PartitioningScheme,
    trace: Sequence[str],
    predictor: Callable[[str], str | None],
    icap: IcapModel = CUSTOM_DMA_CONTROLLER,
) -> PrefetchStats:
    """One-shot prefetching replay."""
    return PrefetchingManager(scheme, predictor, icap=icap).run(trace)
