"""Trace profiling: estimate transition statistics from observed runs.

Closes the adaptive loop the paper sketches: an adaptive system that
has been running for a while *knows* its empirical transition behaviour,
and that knowledge can re-enter the partitioner as pair probabilities
(``PartitionerOptions(pair_probabilities=...)``).  This module turns
configuration traces into exactly that input:

* :func:`pair_frequencies` -- unordered-pair transition frequencies;
* :func:`transition_counts` -- the raw ordered counts (for inspection);
* :func:`estimate_markov` -- a row-stochastic chain fitted to the trace
  (Laplace-smoothed), usable with
  :class:`~repro.runtime.adaptive.MarkovEnvironment`.
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence

from ..core.model import PRDesign


def transition_counts(trace: Sequence[str]) -> dict[tuple[str, str], int]:
    """Ordered (from, to) counts over consecutive trace steps.

    Self-transitions are kept (they carry dwell information for
    :func:`estimate_markov`) -- the pair-frequency view drops them,
    since they trigger no reconfiguration.
    """
    counts: Counter[tuple[str, str]] = Counter()
    for a, b in zip(trace, trace[1:]):
        counts[(a, b)] += 1
    return dict(counts)


def pair_frequencies(trace: Sequence[str]) -> dict[tuple[str, str], float]:
    """Unordered-pair switching frequencies, normalised to sum to 1.

    Exactly the shape :class:`~repro.core.partitioner.PartitionerOptions`
    expects for the probability-weighted objective.  Self-transitions are
    excluded; an all-dwell trace yields an empty mapping.
    """
    pairs: Counter[tuple[str, str]] = Counter()
    for (a, b), n in transition_counts(trace).items():
        if a == b:
            continue
        key = (a, b) if a < b else (b, a)
        pairs[key] += n
    total = sum(pairs.values())
    if total == 0:
        return {}
    return {k: v / total for k, v in pairs.items()}


def estimate_markov(
    design: PRDesign,
    trace: Sequence[str],
    smoothing: float = 1e-3,
) -> dict[str, dict[str, float]]:
    """Fit a row-stochastic transition matrix to an observed trace.

    Laplace smoothing (``smoothing`` pseudo-counts on every edge,
    including unseen ones) keeps the chain irreducible so that
    :meth:`MarkovEnvironment.pair_probabilities` stays well defined.
    Configurations of the design never visited by the trace still get
    (uniform) rows.
    """
    if smoothing < 0:
        raise ValueError("smoothing must be non-negative")
    names = [c.name for c in design.configurations]
    unknown = set(trace) - set(names)
    if unknown:
        raise ValueError(f"trace contains unknown configurations {sorted(unknown)}")

    counts = transition_counts(trace)
    matrix: dict[str, dict[str, float]] = {}
    for src in names:
        row = {dst: counts.get((src, dst), 0) + smoothing for dst in names}
        total = sum(row.values())
        if total == 0:
            # smoothing == 0 and never visited: fall back to uniform.
            row = {dst: 1.0 for dst in names}
            total = float(len(names))
        matrix[src] = {dst: v / total for dst, v in row.items()}
    return matrix


def reoptimise_from_trace(
    design: PRDesign,
    trace: Sequence[str],
    capacity,
    options=None,
):
    """One-call adaptive re-optimisation: trace -> weights -> partition.

    Returns the :class:`~repro.core.partitioner.PartitionResult` of the
    probability-weighted search using the trace's empirical pair
    frequencies.  Falls back to the unweighted objective when the trace
    contains no switches.
    """
    from ..core.partitioner import PartitionerOptions, partition

    weights = pair_frequencies(trace)
    options = options or PartitionerOptions()
    options.pair_probabilities = weights or None
    return partition(design, capacity, options)
