"""ICAP controller timing model (substitute for the authors' FPT'12
open-source controller, ref. [15]).

Converts frame counts into wall-clock reconfiguration time.  The Virtex-5
ICAP is 32 bits wide at 100 MHz, so the theoretical ceiling is 400 MB/s;
a real controller adds per-transfer latency (command handshake, DMA
setup) and is limited by where bitstreams are fetched from.  The paper's
custom controller achieves near-theoretical throughput from DDR memory;
slower baselines (e.g. fetching from compact flash) are included so the
runtime examples can show why reconfiguration time dominates adaptive
system behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.tiles import WORDS_PER_FRAME

#: ICAP interface parameters (UG191).
ICAP_WIDTH_BITS = 32
ICAP_CLOCK_HZ = 100_000_000

#: Theoretical ICAP throughput: one 32-bit word per cycle.
ICAP_PEAK_BYTES_PER_S = ICAP_CLOCK_HZ * ICAP_WIDTH_BITS // 8


@dataclass(frozen=True)
class IcapModel:
    """Throughput/latency model of one controller + bitstream store.

    ``efficiency`` scales the theoretical ICAP bandwidth (1.0 = a word
    every cycle); ``per_transfer_latency_s`` is the fixed cost of one
    partial reconfiguration (fetch setup, command preamble).
    """

    name: str
    efficiency: float
    per_transfer_latency_s: float = 0.0

    def __post_init__(self) -> None:
        if not (0 < self.efficiency <= 1.0):
            raise ValueError("efficiency must lie in (0, 1]")
        if self.per_transfer_latency_s < 0:
            raise ValueError("latency must be non-negative")

    @property
    def bytes_per_second(self) -> float:
        return ICAP_PEAK_BYTES_PER_S * self.efficiency

    def time_for_frames(self, frames: int) -> float:
        """Seconds to write ``frames`` frames through this controller."""
        if frames < 0:
            raise ValueError("frame count must be non-negative")
        if frames == 0:
            return 0.0
        payload_bytes = frames * WORDS_PER_FRAME * 4
        return self.per_transfer_latency_s + payload_bytes / self.bytes_per_second

    def time_for_bytes(self, nbytes: int) -> float:
        """Seconds for an arbitrary payload (full bitstreams, overheads)."""
        if nbytes < 0:
            raise ValueError("byte count must be non-negative")
        if nbytes == 0:
            return 0.0
        return self.per_transfer_latency_s + nbytes / self.bytes_per_second


#: The authors' custom DMA controller: ~95% of the ICAP ceiling [15].
CUSTOM_DMA_CONTROLLER = IcapModel(
    name="custom-dma", efficiency=0.95, per_transfer_latency_s=5e-6
)

#: Vendor reference design (OPB/PLB HWICAP): roughly 10 MB/s class.
VENDOR_HWICAP = IcapModel(
    name="vendor-hwicap", efficiency=0.025, per_transfer_latency_s=50e-6
)

#: Bitstreams streamed from slow external flash.
FLASH_STREAMING = IcapModel(
    name="flash", efficiency=0.005, per_transfer_latency_s=200e-6
)

#: Named presets for CLI/examples.
PRESETS: dict[str, IcapModel] = {
    m.name: m
    for m in (CUSTOM_DMA_CONTROLLER, VENDOR_HWICAP, FLASH_STREAMING)
}
