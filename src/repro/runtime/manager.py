"""Configuration-manager simulator: executes adaptation traces.

The static region of a PR system runs configuration-management software
(paper Sec. III-A) that, on every adaptation event, works out which
regions must be rewritten and streams the partial bitstreams through the
ICAP.  This module simulates that loop over a partitioned design:

* per-region *loaded content* is tracked across the whole trace (unlike
  the analytic pairwise proxy of Eq. 7, stale content persists, so a
  region revisited with unchanged content costs nothing);
* each rewrite costs the region's frame span, converted to seconds by an
  :class:`~repro.runtime.icap.IcapModel`;
* statistics (per-transition frames, totals, worst case, per-region
  rewrite counts) feed the runtime examples and the validation tests
  that compare trace behaviour against the analytic cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..core.result import PartitioningScheme
from .icap import CUSTOM_DMA_CONTROLLER, IcapModel


class TraceError(ValueError):
    """Raised when a trace references unknown configurations."""


@dataclass(frozen=True)
class TransitionRecord:
    """What one adaptation event cost."""

    step: int
    from_configuration: str | None
    to_configuration: str
    regions_rewritten: tuple[str, ...]
    frames: int
    seconds: float


@dataclass
class RuntimeStats:
    """Aggregates over an executed trace."""

    transitions: int = 0
    total_frames: int = 0
    total_seconds: float = 0.0
    worst_frames: int = 0
    worst_seconds: float = 0.0
    rewrites_by_region: dict[str, int] = field(default_factory=dict)

    def record(self, rec: TransitionRecord) -> None:
        self.transitions += 1
        self.total_frames += rec.frames
        self.total_seconds += rec.seconds
        if rec.frames > self.worst_frames:
            self.worst_frames = rec.frames
        if rec.seconds > self.worst_seconds:
            self.worst_seconds = rec.seconds
        for name in rec.regions_rewritten:
            self.rewrites_by_region[name] = self.rewrites_by_region.get(name, 0) + 1

    @property
    def mean_frames(self) -> float:
        return self.total_frames / self.transitions if self.transitions else 0.0


class ConfigurationManager:
    """Replays configuration requests against a partitioned design.

    The manager owns the per-region loaded state.  ``goto`` performs one
    adaptation: every region whose required content differs from what is
    loaded is rewritten (a region not used by the target keeps its stale
    content -- rewriting it would waste time, matching the LENIENT cost
    policy).  The first ``goto`` after construction models the initial
    full configuration: by default it is *not* charged (the full
    bitstream loads at power-up), controllable via ``charge_initial``.
    """

    def __init__(
        self,
        scheme: PartitioningScheme,
        icap: IcapModel = CUSTOM_DMA_CONTROLLER,
        charge_initial: bool = False,
    ):
        self._scheme = scheme
        self._icap = icap
        self._charge_initial = charge_initial
        self._loaded: list[str | None] = [None] * len(scheme.regions)
        self._current: str | None = None
        self._step = 0
        self.stats = RuntimeStats()
        self.history: list[TransitionRecord] = []
        self._config_names = {c.name for c in scheme.design.configurations}

    # ------------------------------------------------------------------
    @property
    def current_configuration(self) -> str | None:
        return self._current

    @property
    def loaded_contents(self) -> tuple[str | None, ...]:
        """Per-region loaded partition labels (None = never configured)."""
        return tuple(self._loaded)

    # ------------------------------------------------------------------
    def goto(self, configuration_name: str) -> TransitionRecord:
        """Adapt to a configuration, rewriting regions as needed."""
        if configuration_name not in self._config_names:
            raise TraceError(f"unknown configuration {configuration_name!r}")
        required = self._scheme.activity(configuration_name)
        rewritten: list[str] = []
        frames = 0
        initial = self._current is None
        for idx, (region, need) in enumerate(
            zip(self._scheme.regions, required)
        ):
            if need is None:
                continue  # stale content is fine; the target ignores it
            if self._loaded[idx] == need:
                continue
            self._loaded[idx] = need
            if initial and not self._charge_initial:
                continue
            rewritten.append(region.name)
            frames += region.frames

        seconds = sum(
            self._icap.time_for_frames(
                next(r.frames for r in self._scheme.regions if r.name == name)
            )
            for name in rewritten
        )
        record = TransitionRecord(
            step=self._step,
            from_configuration=self._current,
            to_configuration=configuration_name,
            regions_rewritten=tuple(rewritten),
            frames=frames,
            seconds=seconds,
        )
        self._step += 1
        if not initial or self._charge_initial:
            self.stats.record(record)
        self.history.append(record)
        self._current = configuration_name
        return record

    def run(self, trace: Iterable[str]) -> RuntimeStats:
        """Execute a whole trace of configuration names."""
        for name in trace:
            self.goto(name)
        return self.stats


def replay(
    scheme: PartitioningScheme,
    trace: Sequence[str],
    icap: IcapModel = CUSTOM_DMA_CONTROLLER,
) -> RuntimeStats:
    """One-shot trace execution (fresh manager)."""
    return ConfigurationManager(scheme, icap=icap).run(trace)


def compare_schemes_on_trace(
    schemes: Iterable[PartitioningScheme],
    trace: Sequence[str],
    icap: IcapModel = CUSTOM_DMA_CONTROLLER,
) -> dict[str, RuntimeStats]:
    """Replay the same trace over several schemes (examples/benches)."""
    return {s.strategy: replay(s, trace, icap) for s in schemes}
