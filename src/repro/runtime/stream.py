"""Cycle-level ICAP consumption of real bitstream bytes.

Bridges the flow substrate and the runtime: the byte streams produced by
:mod:`repro.flow.bitgen` are fed word-by-word through a model of the
32-bit ICAP port, reproducing the interface behaviour UG191 describes:

* words before the sync word configure the bus width and are absorbed
  at line rate;
* after sync, command words execute in one cycle; FDRI payload streams
  one word per cycle (the paper's custom controller [15] sustains this;
  slower controllers insert stall cycles);
* DESYNC closes the transaction.

The consumer verifies framing while it counts cycles, so a corrupted
stream fails loudly rather than producing a bogus latency number.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..flow.bitgen import (
    BitstreamFormatError,
    CMD_DESYNC,
    REG_CMD,
    REG_FDRI,
    SYNC_WORD,
)
from .icap import ICAP_CLOCK_HZ, IcapModel


@dataclass(frozen=True)
class StreamReport:
    """What one bitstream cost to push through the ICAP."""

    words_total: int
    words_payload: int
    cycles: int
    stall_cycles: int

    @property
    def seconds(self) -> float:
        return self.cycles / ICAP_CLOCK_HZ

    @property
    def efficiency(self) -> float:
        """Achieved fraction of the one-word-per-cycle ceiling."""
        return self.words_total / self.cycles if self.cycles else 0.0


def consume_bitstream(
    data: bytes,
    icap: IcapModel | None = None,
) -> StreamReport:
    """Push a bitgen-produced file through the ICAP model.

    ``icap.efficiency`` < 1 models a controller that cannot feed a word
    every cycle: each transferred word incurs ``1/efficiency`` cycles on
    average (rounded at the end), matching the byte-rate model used by
    the coarse timing path so the two agree to within a cycle.
    """
    # Skip the ASCII header: find the body marker written by bitgen.
    pos = data.find(b"e")
    while pos != -1:
        if pos + 5 <= len(data):
            (body_len,) = struct.unpack_from(">I", data, pos + 1)
            if pos + 5 + body_len == len(data) and body_len % 4 == 0:
                break
        pos = data.find(b"e", pos + 1)
    if pos == -1:
        raise BitstreamFormatError("no body marker found")
    body = data[pos + 5 :]
    words = list(struct.unpack(f">{len(body) // 4}I", body))

    try:
        sync_at = words.index(SYNC_WORD)
    except ValueError:
        raise BitstreamFormatError("sync word not found") from None

    cycles = sync_at + 1  # pre-sync words absorbed at line rate
    payload_words = 0
    i = sync_at + 1
    desynced = False
    while i < len(words):
        w = words[i]
        cycles += 1
        if w >> 29 == 1 and (w >> 27) & 0x3 == 2:  # type-1 write
            register = (w >> 13) & 0x1F
            count = w & 0x7FF
            if register == REG_FDRI and count == 0:
                t2 = words[i + 1]
                count = t2 & 0x7FFFFFF
                cycles += 1 + count
                payload_words += count
                i += 2 + count
                continue
            if register == REG_FDRI:
                payload_words += count
            if register == REG_CMD and count >= 1 and words[i + 1] == CMD_DESYNC:
                cycles += count
                i += 1 + count
                desynced = True
                break
            cycles += count
            i += 1 + count
            continue
        i += 1  # NOOPs and absorbed words
    if not desynced:
        raise BitstreamFormatError("stream did not DESYNC")
    # Trailing pad words (post-DESYNC NOOPs) still cross the port.
    cycles += len(words) - i

    total_words = len(words)
    stall = 0
    if icap is not None and icap.efficiency < 1.0:
        ideal = cycles
        stalled = int(round(ideal / icap.efficiency))
        stall = stalled - ideal
        cycles = stalled
    return StreamReport(
        words_total=total_words,
        words_payload=payload_words,
        cycles=cycles,
        stall_cycles=stall,
    )


def stream_scheme_bitstreams(paths, icap: IcapModel | None = None) -> dict[str, StreamReport]:
    """Consume a directory's worth of bitstreams; keyed by file stem."""
    from pathlib import Path

    out: dict[str, StreamReport] = {}
    for path in paths:
        p = Path(path)
        out[p.stem] = consume_bitstream(p.read_bytes(), icap)
    return out
