"""Adaptive-system runtime substrate: ICAP timing, configuration
management, environment-driven adaptation traces."""

from .adaptive import (
    AdaptiveEnvironmentError,
    BurstyEnvironment,
    MarkovEnvironment,
    UniformEnvironment,
    uniform_markov,
)
from .icap import (
    CUSTOM_DMA_CONTROLLER,
    FLASH_STREAMING,
    ICAP_CLOCK_HZ,
    ICAP_PEAK_BYTES_PER_S,
    ICAP_WIDTH_BITS,
    PRESETS,
    VENDOR_HWICAP,
    IcapModel,
)
from .prefetch import (
    PrefetchingManager,
    PrefetchStats,
    markov_predictor,
    oracle_predictor,
    replay_with_prefetch,
)
from .profile import (
    estimate_markov,
    pair_frequencies,
    reoptimise_from_trace,
    transition_counts,
)
from .stream import StreamReport, consume_bitstream, stream_scheme_bitstreams
from .manager import (
    ConfigurationManager,
    RuntimeStats,
    TraceError,
    TransitionRecord,
    compare_schemes_on_trace,
    replay,
)

def __getattr__(name: str):
    # Deprecated alias: the old exception name shadowed the builtin
    # ``EnvironmentError``.  Resolving it through the defining module
    # keeps the warning text (and its single source of truth) there.
    if name == "EnvironmentError":
        from . import adaptive

        return adaptive.EnvironmentError
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "AdaptiveEnvironmentError",
    "BurstyEnvironment",
    "CUSTOM_DMA_CONTROLLER",
    "ConfigurationManager",
    "FLASH_STREAMING",
    "ICAP_CLOCK_HZ",
    "ICAP_PEAK_BYTES_PER_S",
    "ICAP_WIDTH_BITS",
    "IcapModel",
    "MarkovEnvironment",
    "PRESETS",
    "PrefetchStats",
    "PrefetchingManager",
    "StreamReport",
    "RuntimeStats",
    "TraceError",
    "TransitionRecord",
    "UniformEnvironment",
    "VENDOR_HWICAP",
    "compare_schemes_on_trace",
    "consume_bitstream",
    "estimate_markov",
    "markov_predictor",
    "oracle_predictor",
    "pair_frequencies",
    "reoptimise_from_trace",
    "replay",
    "replay_with_prefetch",
    "stream_scheme_bitstreams",
    "transition_counts",
    "uniform_markov",
]
